module timber

go 1.22
