// Package timber is a from-scratch Go reproduction of "Grouping in
// XML" (Paparizos et al., EDBT 2002): the TAX tree algebra with its
// grouping and aggregation operators, the XQuery-subset front end, the
// naive-plan translation and GROUPBY rewrite of Sec. 4, and a
// TIMBER-style native XML storage engine (paged store, B+tree indices,
// structural joins, identifier processing) sufficient to regenerate
// the paper's Sec. 6 experiments.
//
// The implementation lives under internal/; see README.md for the
// architecture map, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go (this directory) regenerate every experiment.
package timber
