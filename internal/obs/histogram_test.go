package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad ExpBuckets args should panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 50, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// le semantics: bucket i counts v <= bounds[i]; last is overflow.
	want := []uint64{2, 2, 3, 2} // {0.5,1}, {1.5,10}, {50,99,100}, {101,1e9}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (snap %v)", i, snap[i], want[i], snap)
		}
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 50 + 99 + 100 + 101 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("h", []float64{10, 20, 40})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 10 observations in (10, 20]: quantiles interpolate linearly
	// within the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("p50 = %v, want within (10, 20]", q)
	}
	// Half below 10, half in (20, 40]: p50 stays in the low bucket,
	// p99 lands in the high one.
	h2 := newHistogram("h2", []float64{10, 20, 40})
	for i := 0; i < 50; i++ {
		h2.Observe(5)
		h2.Observe(30)
	}
	if q := h2.Quantile(0.25); q > 10 {
		t.Errorf("p25 = %v, want <= 10", q)
	}
	if q := h2.Quantile(0.99); q < 20 || q > 40 {
		t.Errorf("p99 = %v, want within (20, 40]", q)
	}
	// Overflow observations report the last finite bound.
	h3 := newHistogram("h3", []float64{1})
	h3.Observe(1e12)
	if q := h3.Quantile(0.5); q != 1 {
		t.Errorf("overflow quantile = %v, want last bound 1", q)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram("h", DefaultLatencyBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.25) > 1e-9 {
		t.Errorf("sum = %v, want 0.25", h.Sum())
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("nil histogram should be inert")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(3.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	if again := r.Gauge("g", "help"); again != g {
		t.Error("Gauge should return the same child for the same name")
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge should be inert")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("responses", "by code", "path", "code")
	cv.With("/query", "200").Add(2)
	cv.With("/query", "400").Inc()
	if got := cv.With("/query", "200").Load(); got != 2 {
		t.Errorf("child = %d, want 2", got)
	}
	hv := r.HistogramVec("lat", "latency", []float64{1, 10}, "strategy")
	hv.With("groupby").Observe(0.5)
	hv.With("direct").Observe(5)
	if hv.With("groupby").Count() != 1 || hv.With("direct").Count() != 1 {
		t.Error("histogram children should be independent")
	}
	// Wrong arity is a programmer error.
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity should panic")
		}
	}()
	cv.With("/query")
}

func TestFamilySchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramConcurrent hammers one histogram from 16 goroutines and
// checks nothing is lost: the bucket total and count agree with the
// number of observations. Run under -race by make check.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("h", ExpBuckets(1e-6, 2, 20))
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
}
