package obs

import (
	"strings"
	"testing"
)

const validExposition = `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{path="/query",code="200"} 12
requests_total{path="/query",code="400"} 2
# TYPE inflight gauge
inflight 3
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{op="scan",le="0.01"} 1
lat_seconds_bucket{op="scan",le="0.1"} 4
lat_seconds_bucket{op="scan",le="+Inf"} 5
lat_seconds_sum{op="scan"} 0.42
lat_seconds_count{op="scan"} 5
`

func TestLintValidExposition(t *testing.T) {
	sum, errs := LintExposition([]byte(validExposition))
	for _, err := range errs {
		t.Error(err)
	}
	if sum.Counters != 1 || sum.Gauges != 1 || sum.Histograms != 1 {
		t.Errorf("summary = %v", sum)
	}
	if sum.LabeledCounters != 1 || sum.LabeledHistograms != 1 {
		t.Errorf("summary = %v, want labeled counter and histogram seen", sum)
	}
	if sum.Samples != 8 {
		t.Errorf("samples = %d, want 8", sum.Samples)
	}
}

// lintErrs returns the joined error text for a broken exposition and
// fails the test when it lints clean.
func lintErrs(t *testing.T, broken, wantSubstr string) {
	t.Helper()
	_, errs := LintExposition([]byte(broken))
	if len(errs) == 0 {
		t.Fatalf("exposition should not lint clean:\n%s", broken)
	}
	var all []string
	for _, err := range errs {
		all = append(all, err.Error())
	}
	joined := strings.Join(all, "; ")
	if !strings.Contains(joined, wantSubstr) {
		t.Errorf("errors %q do not mention %q", joined, wantSubstr)
	}
}

func TestLintCatchesBrokenExpositions(t *testing.T) {
	t.Run("non-cumulative buckets", func(t *testing.T) {
		lintErrs(t, `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`, "not cumulative")
	})
	t.Run("bounds not increasing", func(t *testing.T) {
		lintErrs(t, `# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`, "not increasing")
	})
	t.Run("missing +Inf", func(t *testing.T) {
		lintErrs(t, `# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`, "no +Inf")
	})
	t.Run("count disagrees with +Inf", func(t *testing.T) {
		lintErrs(t, `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 7
`, "_count 7 != +Inf bucket 2")
	})
	t.Run("missing sum", func(t *testing.T) {
		lintErrs(t, `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`, "no _sum")
	})
	t.Run("bad escape", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
c{v="a\qb"} 1
`, "broken escape")
	})
	t.Run("unterminated quote", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
c{v="abc} 1
`, "broken escape or unterminated")
	})
	t.Run("duplicate sample", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
c{v="a"} 1
c{v="a"} 2
`, "duplicate sample")
	})
	t.Run("TYPE after samples", func(t *testing.T) {
		lintErrs(t, `c 1
# TYPE c counter
`, "after its samples")
	})
	t.Run("duplicate TYPE", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
# TYPE c counter
c 1
`, "duplicate TYPE")
	})
	t.Run("bad metric name", func(t *testing.T) {
		lintErrs(t, `0bad 1
`, "invalid metric name")
	})
	t.Run("bad label name", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
c{0bad="x"} 1
`, "invalid label name")
	})
	t.Run("bad value", func(t *testing.T) {
		lintErrs(t, `# TYPE c counter
c potato
`, "bad sample value")
	})
	t.Run("unknown type", func(t *testing.T) {
		lintErrs(t, `# TYPE c widget
c 1
`, "unknown TYPE")
	})
}

func TestLintAllowsFormatLegalities(t *testing.T) {
	// Timestamps, escaped label values, +Inf/NaN values and untyped
	// samples are all legal.
	_, errs := LintExposition([]byte(`# TYPE c counter
c{v="a\\b\"c\nd"} 1 1712345678000
untyped_thing 3
weird NaN
edge +Inf
`))
	for _, err := range errs {
		t.Error(err)
	}
}
