// Package obs is the query-level observability layer: an
// EXPLAIN-ANALYZE-style tracer that attributes wall time, buffer-pool
// activity and index-traversal work to individual operator phases of a
// physical plan.
//
// The design goal is that tracing is a correctness tool, not logging:
//
//   - Zero cost when disabled. A nil *Tracer (and the nil *Span every
//     method on it hands out) turns every call into a nil-check and
//     nothing else, so executors thread spans unconditionally and the
//     untraced path stays byte-identical and unmeasurably slower.
//   - Exact when enabled. Span counter deltas come from snapshots of
//     the storage layer's atomic counters taken at span begin/end on
//     the orchestrating goroutine. Operator phases execute
//     sequentially (each phase may fan out internally, but joins its
//     workers before the phase ends), so sibling spans never overlap
//     and the root span's delta telescopes: the sum of every span's
//     self delta equals the root delta, which equals the global
//     counters for the run. Verify checks this invariant.
//
// Timings use Go's monotonic clock (time.Since on a time.Now origin).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
	"unicode/utf8"
)

// Counters is a snapshot of the storage-layer activity counters a span
// attributes to itself: the buffer-pool counters of internal/pagestore
// plus the index-traversal counters of internal/btree. Deltas of two
// snapshots are themselves Counters.
type Counters struct {
	// Fetches is the number of logical page reads (pagestore).
	Fetches uint64 `json:"fetches"`
	// Hits is the number of fetches served from the buffer pool.
	Hits uint64 `json:"hits"`
	// PhysicalReads is the number of pages read from disk.
	PhysicalReads uint64 `json:"physical_reads"`
	// PhysicalWrites is the number of pages written to disk.
	PhysicalWrites uint64 `json:"physical_writes"`
	// NodeVisits is the number of B+tree pages examined during descents
	// and scans (btree).
	NodeVisits uint64 `json:"node_visits"`
	// LeafScans is the number of B+tree leaf pages cursored by
	// iterators (btree).
	LeafScans uint64 `json:"leaf_scans"`
}

// Sub returns c - o, field by field.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Fetches:        c.Fetches - o.Fetches,
		Hits:           c.Hits - o.Hits,
		PhysicalReads:  c.PhysicalReads - o.PhysicalReads,
		PhysicalWrites: c.PhysicalWrites - o.PhysicalWrites,
		NodeVisits:     c.NodeVisits - o.NodeVisits,
		LeafScans:      c.LeafScans - o.LeafScans,
	}
}

// Plus returns c + o, field by field.
func (c Counters) Plus(o Counters) Counters {
	return Counters{
		Fetches:        c.Fetches + o.Fetches,
		Hits:           c.Hits + o.Hits,
		PhysicalReads:  c.PhysicalReads + o.PhysicalReads,
		PhysicalWrites: c.PhysicalWrites + o.PhysicalWrites,
		NodeVisits:     c.NodeVisits + o.NodeVisits,
		LeafScans:      c.LeafScans + o.LeafScans,
	}
}

// fitsIn reports whether every field of c is <= the matching field of o.
func (c Counters) fitsIn(o Counters) bool {
	return c.Fetches <= o.Fetches &&
		c.Hits <= o.Hits &&
		c.PhysicalReads <= o.PhysicalReads &&
		c.PhysicalWrites <= o.PhysicalWrites &&
		c.NodeVisits <= o.NodeVisits &&
		c.LeafScans <= o.LeafScans
}

// IsZero reports whether every counter is zero.
func (c Counters) IsZero() bool { return c == Counters{} }

func (c Counters) String() string {
	return fmt.Sprintf("fetches=%d hits=%d reads=%d writes=%d nodeVisits=%d leafScans=%d",
		c.Fetches, c.Hits, c.PhysicalReads, c.PhysicalWrites, c.NodeVisits, c.LeafScans)
}

// SnapshotFunc captures the current global counters. The storage layer
// provides one wired to its atomic counters (storage.DB.NewTracer);
// snapshots must be cheap and side-effect free.
type SnapshotFunc func() Counters

// Tracer collects one query execution's span tree. A nil *Tracer is
// the disabled tracer: Start returns a nil *Span and Finish returns
// nil, so callers never branch on enablement themselves.
//
// Spans must be created and ended on the goroutine orchestrating the
// plan (worker goroutines inside a phase do not touch the tracer);
// this is what makes snapshot deltas exact without synchronization.
type Tracer struct {
	snap SnapshotFunc
	root *Span
}

// New creates an enabled tracer whose root span begins immediately.
// snap supplies global counter snapshots; nil means all-zero counters
// (wall-clock-only tracing).
func New(name string, snap SnapshotFunc) *Tracer {
	if snap == nil {
		snap = func() Counters { return Counters{} }
	}
	t := &Tracer{snap: snap}
	t.root = newSpan(t, name)
	return t
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a new span directly under the root. Nil-safe.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.root.Child(name)
}

// Finish ends the root span (and any still-open descendants) and
// returns the completed span tree. Nil-safe: returns nil when
// disabled. The returned data is immutable; call once per run.
func (t *Tracer) Finish() *SpanData {
	if t == nil {
		return nil
	}
	t.root.End()
	return t.root.data
}

// Span is one operator phase under measurement. All methods are
// nil-safe no-ops, so executors keep a single code path whether or not
// a tracer is attached.
type Span struct {
	t        *Tracer
	name     string
	start    time.Time
	startC   Counters
	ops      map[string]int64
	children []*Span
	data     *SpanData
}

func newSpan(t *Tracer, name string) *Span {
	return &Span{t: t, name: name, start: time.Now(), startC: t.snap()}
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.t, name)
	s.children = append(s.children, c)
	return c
}

// Add accumulates an operator-specific counter (postings scanned,
// witnesses produced, ...) on the span. Nil-safe.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	if s.ops == nil {
		s.ops = map[string]int64{}
	}
	s.ops[key] += n
}

// End closes the span, snapshotting the counters. Children still open
// are ended first, so their deltas stay nested inside the parent's.
// End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil || s.data != nil {
		return
	}
	d := &SpanData{Name: s.name, Ops: s.ops}
	for _, c := range s.children {
		c.End()
		d.Children = append(d.Children, c.data)
	}
	d.WallNS = time.Since(s.start).Nanoseconds()
	d.Delta = s.t.snap().Sub(s.startC)
	s.data = d
}

// SpanData is the completed, serializable form of a span.
type SpanData struct {
	// Name identifies the operator phase.
	Name string `json:"name"`
	// WallNS is the span's wall time in nanoseconds (monotonic clock).
	WallNS int64 `json:"wall_ns"`
	// Delta is the change in global counters over the span, children
	// included.
	Delta Counters `json:"counters"`
	// Ops carries operator-specific counts (postings, witnesses, ...).
	Ops map[string]int64 `json:"ops,omitempty"`
	// Children are the nested phases, in execution order.
	Children []*SpanData `json:"children,omitempty"`
}

// Self returns the span's counter delta net of its children — the
// work attributed to the span's own code between (and around) its
// sub-phases. Summing Self over a whole tree telescopes to the root
// Delta exactly.
func (d *SpanData) Self() Counters {
	out := d.Delta
	for _, c := range d.Children {
		out = out.Sub(c.Delta)
	}
	return out
}

// SumSelf totals Self over the span and every descendant. By
// construction this equals d.Delta; Verify re-derives it as a check.
func (d *SpanData) SumSelf() Counters {
	out := d.Self()
	for _, c := range d.Children {
		out = out.Plus(c.SumSelf())
	}
	return out
}

// Spans counts the spans in the tree.
func (d *SpanData) Spans() int {
	n := 1
	for _, c := range d.Children {
		n += c.Spans()
	}
	return n
}

// Verify checks the exactness invariant against the run's global
// counters (the storage counters accumulated since they were reset at
// run start): the root delta must equal the global counters, every
// child sum must fit inside its parent (no span attributes more work
// than its parent observed), and the self deltas must sum back to the
// global counters. A violation means a span leaked work outside the
// measured window — a bug in the instrumentation, never a rounding
// artifact, since every quantity is an exact integer counter.
func (d *SpanData) Verify(global Counters) error {
	if d.Delta != global {
		return fmt.Errorf("obs: root span %q delta (%v) != global counters (%v)", d.Name, d.Delta, global)
	}
	if sum := d.SumSelf(); sum != global {
		return fmt.Errorf("obs: span self deltas sum to %v, global counters are %v", sum, global)
	}
	return d.verifyNesting()
}

func (d *SpanData) verifyNesting() error {
	var sum Counters
	for _, c := range d.Children {
		if err := c.verifyNesting(); err != nil {
			return err
		}
		sum = sum.Plus(c.Delta)
	}
	if !sum.fitsIn(d.Delta) {
		return fmt.Errorf("obs: span %q: children deltas (%v) exceed parent delta (%v)", d.Name, sum, d.Delta)
	}
	return nil
}

// WriteJSON writes the span tree as indented JSON.
func (d *SpanData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteJSONFile writes the span tree as indented JSON to path.
func (d *SpanData) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteText renders the span tree as an aligned EXPLAIN-ANALYZE-style
// text tree: one line per span with wall time, pool/index counter
// deltas and operator counts.
func (d *SpanData) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, d.Text())
	return err
}

// Text renders the tree as a string; see WriteText.
func (d *SpanData) Text() string {
	var b []byte
	b = d.render(b, "", "", true)
	return string(b)
}

func (d *SpanData) render(b []byte, linePrefix, childPrefix string, isRoot bool) []byte {
	wall := time.Duration(d.WallNS).Round(time.Microsecond)
	b = append(b, linePrefix...)
	b = append(b, d.Name...)
	pad := 40 - utf8.RuneCountInString(linePrefix) - utf8.RuneCountInString(d.Name)
	if pad < 1 {
		pad = 1
	}
	for i := 0; i < pad; i++ {
		b = append(b, ' ')
	}
	b = append(b, fmt.Sprintf("%10v  %s", wall, d.Delta.String())...)
	if len(d.Ops) > 0 {
		keys := make([]string, 0, len(d.Ops))
		for k := range d.Ops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, "  ["...)
		for i, k := range keys {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, fmt.Sprintf("%s=%d", k, d.Ops[k])...)
		}
		b = append(b, ']')
	}
	b = append(b, '\n')
	for i, c := range d.Children {
		last := i == len(d.Children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		b = c.render(b, childPrefix+branch, childPrefix+cont, false)
	}
	return b
}
