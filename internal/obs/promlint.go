package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small, dependency-free validator for the Prometheus
// text exposition format — enough of the spec to catch the bugs an
// exposition writer can realistically introduce (bad names, broken
// escaping, duplicate samples, non-cumulative histogram buckets,
// missing +Inf, TYPE after samples). `make metrics-check` scrapes a
// live timber-serve and runs it via cmd/metricslint.

// ExpositionSummary counts what a lint pass saw, so callers can assert
// coverage requirements ("at least one histogram with labels") beyond
// well-formedness.
type ExpositionSummary struct {
	// Counters, Gauges and Histograms count TYPE-declared families of
	// each kind.
	Counters   int
	Gauges     int
	Histograms int
	// LabeledHistograms counts histogram families with at least one
	// label (beyond le) on their bucket samples.
	LabeledHistograms int
	// LabeledCounters counts counter families with at least one
	// labeled sample.
	LabeledCounters int
	// Samples is the total sample-line count.
	Samples int
}

func (s ExpositionSummary) String() string {
	return fmt.Sprintf("%d counters (%d labeled), %d gauges, %d histograms (%d labeled), %d samples",
		s.Counters, s.LabeledCounters, s.Gauges, s.Histograms, s.LabeledHistograms, s.Samples)
}

type lintState struct {
	types       map[string]string // family -> TYPE
	sampled     map[string]bool   // family base names with samples seen
	seen        map[string]bool   // name{sorted labels} dedup
	labeledFams map[string]bool
	// histogram accounting, keyed by family + label set (minus le)
	buckets map[string]*bucketSeries
	sums    map[string]float64
	counts  map[string]float64
	errs    []error
	sum     ExpositionSummary
}

type bucketSeries struct {
	lastLE  float64
	lastVal float64
	hasInf  bool
	infVal  float64
	ordered bool // le values strictly increasing
	cumul   bool // bucket values non-decreasing
}

// LintExposition validates a Prometheus text exposition. It returns a
// coverage summary and every violation found (nil when the exposition
// is clean).
func LintExposition(data []byte) (ExpositionSummary, []error) {
	st := &lintState{
		types:       map[string]string{},
		sampled:     map[string]bool{},
		seen:        map[string]bool{},
		labeledFams: map[string]bool{},
		buckets:     map[string]*bucketSeries{},
		sums:        map[string]float64{},
		counts:      map[string]float64{},
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		st.lintLine(ln+1, line)
	}
	st.finish()
	return st.sum, st.errs
}

func (st *lintState) errf(ln int, format string, args ...any) {
	st.errs = append(st.errs, fmt.Errorf("line %d: %s", ln, fmt.Sprintf(format, args...)))
}

func (st *lintState) lintLine(ln int, line string) {
	if strings.HasPrefix(line, "#") {
		st.lintComment(ln, line)
		return
	}
	name, labels, value, ok := st.parseSample(ln, line)
	if !ok {
		return
	}
	st.sum.Samples++
	base := histogramBase(name, st.types)
	st.sampled[base] = true

	// Duplicate sample check: name plus the full sorted label set must
	// be unique.
	key := name + "{" + canonicalLabels(labels) + "}"
	if st.seen[key] {
		st.errf(ln, "duplicate sample %s", key)
	}
	st.seen[key] = true

	// Histogram series accounting.
	if st.types[base] == "histogram" {
		switch {
		case name == base+"_bucket":
			st.lintBucket(ln, base, labels, value)
		case name == base+"_sum":
			st.sums[base+"|"+canonicalLabelsExcept(labels, "le")] = value
		case name == base+"_count":
			st.counts[base+"|"+canonicalLabelsExcept(labels, "le")] = value
		default:
			st.errf(ln, "histogram family %q has non-histogram sample %q", base, name)
		}
		nonLE := 0
		for k := range labels {
			if k != "le" {
				nonLE++
			}
		}
		if nonLE > 0 {
			st.labeledFams[base+"#hist"] = true
		}
	} else if len(labels) > 0 && st.types[base] == "counter" {
		st.labeledFams[base+"#ctr"] = true
	}
}

func (st *lintState) lintComment(ln int, line string) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			st.errf(ln, "malformed TYPE line %q", line)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			st.errf(ln, "TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			st.errf(ln, "unknown TYPE %q for %q", typ, name)
			return
		}
		if _, dup := st.types[name]; dup {
			st.errf(ln, "duplicate TYPE for %q", name)
			return
		}
		if st.sampled[name] {
			st.errf(ln, "TYPE for %q appears after its samples", name)
		}
		st.types[name] = typ
		switch typ {
		case "counter":
			st.sum.Counters++
		case "gauge":
			st.sum.Gauges++
		case "histogram":
			st.sum.Histograms++
		}
	case "HELP":
		if len(fields) < 3 {
			st.errf(ln, "malformed HELP line %q", line)
			return
		}
		if !validMetricName(fields[2]) {
			st.errf(ln, "HELP for invalid metric name %q", fields[2])
		}
	}
}

// parseSample parses `name{k="v",...} value` into its parts.
func (st *lintState) parseSample(ln int, line string) (string, map[string]string, float64, bool) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		st.errf(ln, "malformed sample %q", line)
		return "", nil, 0, false
	}
	name := line[:i]
	if !validMetricName(name) {
		st.errf(ln, "invalid metric name %q", name)
		return "", nil, 0, false
	}
	labels := map[string]string{}
	rest := line[i:]
	if rest[0] == '{' {
		var ok bool
		labels, rest, ok = st.parseLabels(ln, rest)
		if !ok {
			return "", nil, 0, false
		}
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may follow the value; timber never writes one but the
	// format allows it.
	if j := strings.IndexByte(valStr, ' '); j >= 0 {
		valStr = valStr[:j]
	}
	value, err := parseSampleValue(valStr)
	if err != nil {
		st.errf(ln, "bad sample value %q: %v", valStr, err)
		return "", nil, 0, false
	}
	return name, labels, value, true
}

func (st *lintState) parseLabels(ln int, s string) (map[string]string, string, bool) {
	labels := map[string]string{}
	s = s[1:] // consume {
	for {
		s = strings.TrimLeft(s, " ")
		if len(s) > 0 && s[0] == '}' {
			return labels, s[1:], true
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			st.errf(ln, "unterminated label block")
			return nil, "", false
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			st.errf(ln, "invalid label name %q", lname)
			return nil, "", false
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			st.errf(ln, "label %q value is not quoted", lname)
			return nil, "", false
		}
		val, rest, ok := unescapeLabelValue(s[1:])
		if !ok {
			st.errf(ln, "label %q has a broken escape or unterminated quote", lname)
			return nil, "", false
		}
		if _, dup := labels[lname]; dup {
			st.errf(ln, "duplicate label %q", lname)
		}
		labels[lname] = val
		s = rest
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// unescapeLabelValue consumes a label value up to its closing quote,
// validating the escape sequences (\\, \", \n only).
func unescapeLabelValue(s string) (string, string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], true
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '\n':
			return "", "", false
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}

func (st *lintState) lintBucket(ln int, base string, labels map[string]string, value float64) {
	le, ok := labels["le"]
	if !ok {
		st.errf(ln, "%s_bucket without le label", base)
		return
	}
	key := base + "|" + canonicalLabelsExcept(labels, "le")
	bs := st.buckets[key]
	if bs == nil {
		bs = &bucketSeries{ordered: true, cumul: true}
		st.buckets[key] = bs
	}
	if le == "+Inf" {
		bs.hasInf = true
		bs.infVal = value
		if value < bs.lastVal {
			bs.cumul = false
			st.errf(ln, "%s +Inf bucket %v below previous bucket %v", base, value, bs.lastVal)
		}
		return
	}
	bound, err := strconv.ParseFloat(le, 64)
	if err != nil {
		st.errf(ln, "%s_bucket has unparsable le %q", base, le)
		return
	}
	if bs.lastLE != 0 || bs.lastVal != 0 {
		if bound <= bs.lastLE {
			bs.ordered = false
			st.errf(ln, "%s bucket bounds not increasing: %v after %v", base, bound, bs.lastLE)
		}
		if value < bs.lastVal {
			bs.cumul = false
			st.errf(ln, "%s buckets not cumulative: %v after %v", base, value, bs.lastVal)
		}
	}
	bs.lastLE, bs.lastVal = bound, value
}

// finish runs the whole-series checks that need every line first.
func (st *lintState) finish() {
	for key, bs := range st.buckets {
		base := key[:strings.IndexByte(key, '|')]
		series := strings.TrimPrefix(key, base+"|")
		where := base
		if series != "" {
			where = fmt.Sprintf("%s{%s}", base, series)
		}
		if !bs.hasInf {
			st.errs = append(st.errs, fmt.Errorf("histogram %s has no +Inf bucket", where))
		}
		cnt, ok := st.counts[key]
		if !ok {
			st.errs = append(st.errs, fmt.Errorf("histogram %s has buckets but no _count", where))
		} else if bs.hasInf && cnt != bs.infVal {
			st.errs = append(st.errs, fmt.Errorf("histogram %s _count %v != +Inf bucket %v", where, cnt, bs.infVal))
		}
		if _, ok := st.sums[key]; !ok {
			st.errs = append(st.errs, fmt.Errorf("histogram %s has buckets but no _sum", where))
		}
	}
	for fam := range st.labeledFams {
		if strings.HasSuffix(fam, "#hist") {
			st.sum.LabeledHistograms++
		} else {
			st.sum.LabeledCounters++
		}
	}
}

// histogramBase maps a sample name to its family name: _bucket/_sum/
// _count samples of a TYPE-histogram family report under the base.
func histogramBase(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
