package obs

import "runtime"

// RegisterRuntimeMetrics registers Go runtime health metrics —
// goroutine count, heap size and GC activity — as callback families
// evaluated at scrape time. Call once per registry; re-registration is
// a no-op. Each callback reads runtime.MemStats independently, which
// costs a few stop-the-world microseconds per scrape — negligible at
// scrape cadence, and it keeps the callbacks stateless.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapObjects)
	})
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
	r.CounterFunc("go_gcs_total", "Completed GC cycles.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}
