package obs

import (
	"fmt"
	"sort"
)

// EventType identifies one kind of journal event. Every type emitted
// anywhere in the tree must be registered in eventInfos below — the
// schema lint (cmd/eventslint) fails the build when an emission site
// references an unregistered type, when a registered type carries no
// documentation, or when a registered type is never emitted. The
// registry is the single source of truth the /debug/events filter and
// DESIGN.md §7.3 are checked against.
type EventType uint8

const (
	// EvNone is the zero value; Emit rejects it.
	EvNone EventType = iota
	// EvTxnBegin marks a write transaction opening (ingest insert or
	// delete, statistics rebuild) while the commit lock is held.
	EvTxnBegin
	// EvTxnCommit marks a transaction's WAL commit record being
	// appended and the writer tip advancing.
	EvTxnCommit
	// EvTxnAbort marks a failed transaction releasing its fresh pages.
	EvTxnAbort
	// EvWALFsync marks a group-commit leader fsync making a WAL prefix
	// durable (followers satisfied by the same flush do not emit).
	EvWALFsync
	// EvCheckpoint marks a checkpoint: data pages flushed, meta page
	// written, WAL reset.
	EvCheckpoint
	// EvRecovery marks crash recovery on open: committed WAL
	// transactions replayed, torn tail truncated, meta fallback taken.
	EvRecovery
	// EvPagesRetired marks a commit queueing superseded pages for
	// epoch- and durability-gated reclamation.
	EvPagesRetired
	// EvPagesReclaimed marks retired pages returning to the allocator.
	EvPagesReclaimed
	// EvStatsRebuild marks an ANALYZE pass persisting a fresh
	// cardinality-statistics catalog.
	EvStatsRebuild
	// EvPlanDecision marks the cost-based planner choosing a strategy
	// for one auto execution.
	EvPlanDecision
	// EvPlanEstimate records one planner estimate joined against the
	// actual of the run it planned (quantity, estimate, actual, ratio).
	EvPlanEstimate
	// EvQueryDone marks a query execution completing.
	EvQueryDone
	// EvQueryError marks a query execution failing (also retained in
	// the anomaly ring).
	EvQueryError
	// EvSlowQuery marks an execution at or above the server's
	// slow-query threshold, with its WAL/checkpoint overlap.
	EvSlowQuery

	numEventTypes // sentinel; keep last
)

// EventTypeInfo documents one registered event type for the schema
// lint and the /debug endpoints.
type EventTypeInfo struct {
	Type EventType `json:"-"`
	// ConstName is the Go identifier emission sites use (obs.EvXxx).
	ConstName string `json:"const"`
	// Name is the wire spelling (snake_case) used in JSON output and
	// the /debug/events?type= filter.
	Name string `json:"name"`
	// Doc is the one-line description; the lint requires it non-empty
	// and requires Name to appear in DESIGN.md §7.3.
	Doc string `json:"doc"`
}

// eventInfos is the registry. Index = EventType.
var eventInfos = [numEventTypes]EventTypeInfo{
	EvTxnBegin:       {EvTxnBegin, "EvTxnBegin", "txn_begin", "Write transaction opened (label: kind:document; epoch: base state)."},
	EvTxnCommit:      {EvTxnCommit, "EvTxnCommit", "txn_commit", "WAL commit appended; tip advanced (wal_seq, epoch, count: fresh pages, bytes: WAL bytes appended, dur_ns: build+log time)."},
	EvTxnAbort:       {EvTxnAbort, "EvTxnAbort", "txn_abort", "Write transaction failed and released its fresh pages (err: cause)."},
	EvWALFsync:       {EvWALFsync, "EvWALFsync", "wal_fsync", "Group-commit leader fsync (wal_seq: highest sequence covered, dur_ns: fsync latency)."},
	EvCheckpoint:     {EvCheckpoint, "EvCheckpoint", "checkpoint", "Checkpoint completed (wal_seq, epoch, bytes: WAL length before reset, dur_ns)."},
	EvRecovery:       {EvRecovery, "EvRecovery", "recovery", "Crash recovery replayed the WAL (wal_seq: last committed, bytes: committed prefix length, count: records replayed, aux: pages restored, label: torn_tail/meta_fallback flags)."},
	EvPagesRetired:   {EvPagesRetired, "EvPagesRetired", "pages_retired", "Superseded pages queued for reclamation (count; epoch/wal_seq: freeing commit)."},
	EvPagesReclaimed: {EvPagesReclaimed, "EvPagesReclaimed", "pages_reclaimed", "Retired pages returned to the allocator (count)."},
	EvStatsRebuild:   {EvStatsRebuild, "EvStatsRebuild", "stats_rebuild", "ANALYZE persisted a fresh statistics catalog (count: tags, wal_seq, epoch, dur_ns)."},
	EvPlanDecision:   {EvPlanDecision, "EvPlanDecision", "plan_decision", "Cost-based planner picked a strategy or pattern matcher (qid, label: strategy, or matcher:<name> for matcher picks; value: winning cost, count: candidates)."},
	EvPlanEstimate:   {EvPlanEstimate, "EvPlanEstimate", "plan_estimate", "Planner estimate vs actual for one quantity (qid, label: quantity, count: estimate, aux: actual, value: relative error)."},
	EvQueryDone:      {EvQueryDone, "EvQueryDone", "query_done", "Query completed (qid, label: strategy, dur_ns: wall, count: result trees, aux: value lookups, bytes: index postings read)."},
	EvQueryError:     {EvQueryError, "EvQueryError", "query_error", "Query failed (qid, label: strategy, err; retained in the anomaly ring)."},
	EvSlowQuery:      {EvSlowQuery, "EvSlowQuery", "slow_query", "Execution at/above the slow-query threshold (qid, dur_ns, label: strategy, aux: first overlapping wal_seq, wal_seq: last, count: checkpoints overlapped)."},
}

// String returns the type's wire name ("?" for unregistered values).
func (t EventType) String() string {
	if int(t) < len(eventInfos) && eventInfos[t].Name != "" {
		return eventInfos[t].Name
	}
	return fmt.Sprintf("?ev%d", uint8(t))
}

// MarshalJSON renders the wire name as a JSON string.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// EventTypeByName resolves a wire name to its type (for filters).
func EventTypeByName(name string) (EventType, bool) {
	for i := range eventInfos {
		if eventInfos[i].Name == name && eventInfos[i].Name != "" {
			return EventType(i), true
		}
	}
	return EvNone, false
}

// EventTypes returns the registered types sorted by wire name — the
// schema the lint validates and /debug/events documents.
func EventTypes() []EventTypeInfo {
	out := make([]EventTypeInfo, 0, len(eventInfos))
	for i := range eventInfos {
		if eventInfos[i].Name != "" {
			out = append(out, eventInfos[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Event is one structured journal entry. One fixed struct serves every
// type: the generic numeric fields (Count, Aux, Bytes, Value) carry
// per-type meanings documented in the registry above, so emission
// allocates nothing beyond the entry itself and the ring needs no
// per-type storage. Correlation keys: QID joins an event to a query's
// trace, log line and flight record; WALSeq and Epoch join it to the
// commits and checkpoints it overlapped.
type Event struct {
	// Seq is the journal-assigned sequence number: strictly increasing
	// in emission order, never reused. Stamped by Emit.
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock emission time in Unix nanoseconds.
	// Stamped by Emit.
	TimeNS int64 `json:"time_ns"`
	// Type classifies the event; see the registry.
	Type EventType `json:"type"`
	// QID is the query ID, when the event belongs to a request.
	QID string `json:"qid,omitempty"`
	// WALSeq is the WAL commit sequence the event refers to.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Epoch is the storage epoch the event refers to.
	Epoch uint64 `json:"epoch,omitempty"`
	// DurNS is the event's duration in nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Bytes is a byte quantity (WAL bytes, committed prefix, ...).
	Bytes int64 `json:"bytes,omitempty"`
	// Count is the event's primary count (pages, rows, tags, ...).
	Count int64 `json:"count,omitempty"`
	// Aux is the event's secondary count (actuals, low bounds, ...).
	Aux int64 `json:"aux,omitempty"`
	// Value is a ratio or cost.
	Value float64 `json:"value,omitempty"`
	// Label carries a bounded string: strategy, kind:document, flags.
	Label string `json:"label,omitempty"`
	// Err is the error text of failure events; any event with a
	// non-empty Err is also retained in the anomaly ring.
	Err string `json:"err,omitempty"`
}
