package obs

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every family kind and
// the tricky exposition corners: label values needing escaping, help
// text with newlines and backslashes, label ordering, histograms with
// and without labels, callback families.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("seed_requests").Add(3)
	r.SetHelp("seed_requests", "Requests since start.")

	cv := r.CounterVec("http_responses_total", "Responses by path and status code.", "path", "code")
	cv.With("/query", "200").Add(12)
	cv.With("/query", "400").Add(2)
	cv.With("/metrics", "200").Inc()

	tricky := r.CounterVec("tricky_total", "Help with a \\ backslash\nand a newline.", "q")
	tricky.With(`he said "hi" \ there` + "\nnext").Inc()

	r.Gauge("pool_occupancy_pages", "Pages currently cached.").Set(42)
	r.GaugeFunc("pool_hit_ratio", "Fraction of fetches served from the pool.", func() float64 { return 0.75 })
	r.CounterFunc("pool_fetches", "Logical page reads.", func() float64 { return 12345 })

	h := r.Histogram("op_seconds", "Unlabeled operator latency.", ExpBuckets(0.001, 10, 3))
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5)

	hv := r.HistogramVec("query_seconds", "Query latency by strategy.", ExpBuckets(0.01, 10, 2), "strategy")
	hv.With("groupby").Observe(0.002)
	hv.With("groupby").Observe(0.05)
	hv.With("direct").Observe(0.5)
	return r
}

// TestWritePrometheusGolden pins the exposition byte-for-byte:
// HELP/TYPE lines, escaping, label ordering, cumulative buckets, and
// deterministic family/child ordering.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Two renders must be byte-identical: scrapers diff expositions.
	var b2 strings.Builder
	if err := goldenRegistry().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("two renders of identical registries differ")
	}
}

// TestGoldenExpositionLints: the writer and the linter must agree on
// the format — the golden registry's output is clean and the summary
// sees every family kind.
func TestGoldenExpositionLints(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sum, errs := LintExposition([]byte(b.String()))
	for _, err := range errs {
		t.Error(err)
	}
	if sum.Counters != 4 || sum.Gauges != 2 || sum.Histograms != 2 {
		t.Errorf("summary = %v, want 4 counters / 2 gauges / 2 histograms", sum)
	}
	if sum.LabeledHistograms != 1 || sum.LabeledCounters != 2 {
		t.Errorf("summary = %v, want 1 labeled histogram and 2 labeled counters", sum)
	}
}

// TestExpositionEscaping checks the escape rules directly.
func TestExpositionEscaping(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("label escape = %q", got)
	}
	if got := escapeHelp("a\\b\"c\nd"); got != "a\\\\b\"c\\nd" {
		t.Errorf("help escape = %q", got)
	}
	// Round trip through the linter's unescaper.
	val, rest, ok := unescapeLabelValue(escapeLabelValue("a\\b\"c\nd") + `"tail`)
	if !ok || val != "a\\b\"c\nd" || rest != "tail" {
		t.Errorf("unescape = %q, %q, %v", val, rest, ok)
	}
}

// TestScrapeWhileHammering runs 16 goroutines mutating histograms,
// gauges and counters while the main goroutine scrapes continuously;
// under -race this pins the lock-free scrape path, and every scrape
// must stay lint-clean (cumulative buckets, count == +Inf) even
// mid-burst.
func TestScrapeWhileHammering(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "latency", ExpBuckets(1e-6, 4, 10), "op")
	g := r.Gauge("inflight", "in flight")
	cv := r.CounterVec("events_total", "events", "kind")
	r.GaugeFunc("derived", "callback", func() float64 { return g.Value() * 2 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := []string{"scan", "join", "sort", "materialize"}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				hv.With(ops[(w+i)%len(ops)]).Observe(float64(i%1000) * 1e-6)
				g.Add(1)
				cv.With(ops[i%len(ops)]).Inc()
				g.Add(-1)
				i++
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if _, errs := LintExposition([]byte(b.String())); len(errs) > 0 {
			t.Fatalf("scrape %d not lint-clean under concurrency: %v", i, errs)
		}
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
