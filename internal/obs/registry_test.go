package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounter(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits")
	a.Inc()
	a.Add(2)
	if got := r.Counter("hits"); got != a {
		t.Error("Counter should return the same metric for the same name")
	}
	if a.Load() != 3 {
		t.Errorf("hits = %d, want 3", a.Load())
	}
	snap := r.Snapshot()
	if snap["hits"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRegistryWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(2)
	r.Counter("aa").Add(1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "aa 1\nzz 2\n" {
		t.Errorf("text = %q", b.String())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	m := r.Counter("orphan")
	m.Inc()
	if m.Load() != 1 {
		t.Error("nil-registry metric should still count")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.String() != "" {
		t.Errorf("nil registry text = %q, %v", b.String(), err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
}
