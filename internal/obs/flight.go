package obs

import "sync"

// FlightRecord is one retained query execution: the correlation keys
// that join it to the event journal (QID, WAL sequence range, epoch),
// the headline outcome, and — when the run was traced — the full
// operator span tree, so a recent query's EXPLAIN-ANALYZE view
// survives the request that produced it. The server keeps the last N
// of these in the journal's flight recorder and serves them at
// /debug/flight.
type FlightRecord struct {
	// QID is the query ID (empty for runs below the server, e.g.
	// timber-query).
	QID string `json:"qid"`
	// Query is the source text (set by the server; executors below the
	// engine do not know it).
	Query string `json:"query,omitempty"`
	// Strategy is the plan that ran.
	Strategy string `json:"strategy,omitempty"`
	// StartNS is the execution start in Unix nanoseconds.
	StartNS int64 `json:"start_ns,omitempty"`
	// WallNS is the execution wall time.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Rows is the number of result trees.
	Rows int64 `json:"rows,omitempty"`
	// ValueLookups and IndexPostings itemize the run's data accesses
	// (exec.ExecStats; zero for plan-level strategies).
	ValueLookups  int64 `json:"value_lookups,omitempty"`
	IndexPostings int64 `json:"index_postings,omitempty"`
	// Epoch is the committed state the query read.
	Epoch uint64 `json:"epoch,omitempty"`
	// WALSeqLow/High bound the WAL commit sequences that overlapped the
	// execution: every txn_commit event with WALSeqLow < seq <=
	// WALSeqHigh committed while this query ran.
	WALSeqLow  uint64 `json:"wal_seq_low,omitempty"`
	WALSeqHigh uint64 `json:"wal_seq_high,omitempty"`
	// Checkpoints counts checkpoints that completed during the
	// execution.
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// Slow marks records that crossed the server's slow-query
	// threshold (the /debug/flight view of the slow-query log line).
	Slow bool `json:"slow,omitempty"`
	// Error is the failure text for runs that errored.
	Error string `json:"error,omitempty"`
	// Trace is the full operator span tree, when the run was traced.
	Trace *SpanData `json:"trace,omitempty"`
	// Explain is the EXPLAIN report for runs that requested one (typed
	// in the engine; opaque here to keep obs dependency-free).
	Explain any `json:"explain,omitempty"`
}

// flightRing retains the newest N flight records. Additions happen
// once per query completion and annotations once per request — far off
// the hot path — so a mutex ring is the right tool.
type flightRing struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next int
	full bool
}

func newFlightRing(n int) *flightRing {
	return &flightRing{buf: make([]FlightRecord, n)}
}

// AddFlight retains a completed query record, evicting the oldest past
// capacity. Nil-safe.
func (j *Journal) AddFlight(rec FlightRecord) {
	if j == nil {
		return
	}
	r := j.flight
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// RecordFlightTrace hands a finished span tree to the flight recorder:
// if the newest record for qid has no trace yet the tree is attached
// to it, otherwise a fresh record is added. This is the executor-side
// hand-off — exec.Run calls it with its private tracer's output, and
// the server then annotates the same record with the query text and
// WAL/checkpoint correlation. Nil-safe in both arguments.
func (j *Journal) RecordFlightTrace(qid string, d *SpanData) {
	if j == nil || d == nil {
		return
	}
	if j.AnnotateFlight(qid, func(rec *FlightRecord) {
		if rec.Trace == nil {
			rec.Trace = d
			if rec.WallNS == 0 {
				rec.WallNS = d.WallNS
			}
		}
	}) {
		return
	}
	j.AddFlight(FlightRecord{QID: qid, WallNS: d.WallNS, Trace: d})
}

// AnnotateFlight applies fn to the newest record with the given QID,
// under the recorder's lock. Reports whether a record matched.
// Nil-safe (returns false). Empty qid never matches — anonymous
// records cannot be told apart.
func (j *Journal) AnnotateFlight(qid string, fn func(*FlightRecord)) bool {
	if j == nil || qid == "" {
		return false
	}
	r := j.flight
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if !r.full {
		n = r.next
	}
	// Scan newest → oldest.
	for i := 1; i <= n; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		if r.buf[idx].QID == qid {
			fn(&r.buf[idx])
			return true
		}
	}
	return false
}

// Flights returns the retained records, newest first. Nil-safe.
func (j *Journal) Flights() []FlightRecord {
	if j == nil {
		return nil
	}
	r := j.flight
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if !r.full {
		n = r.next
	}
	out := make([]FlightRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// FlightByQID returns the newest record for qid. Nil-safe.
func (j *Journal) FlightByQID(qid string) (FlightRecord, bool) {
	var out FlightRecord
	ok := j.AnnotateFlight(qid, func(rec *FlightRecord) { out = *rec })
	return out, ok
}
