package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeCounters drives a tracer with a hand-cranked counter source.
type fakeCounters struct{ c Counters }

func (f *fakeCounters) snap() Counters { return f.c }

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("anything")
	sp.Add("k", 1)
	child := sp.Child("nested")
	child.End()
	sp.End()
	if got := tr.Finish(); got != nil {
		t.Fatalf("Finish on nil tracer = %v, want nil", got)
	}
	if tr.Root() != nil {
		t.Fatal("Root on nil tracer should be nil")
	}
}

func TestSpanDeltasTelescope(t *testing.T) {
	src := &fakeCounters{}
	tr := New("query", src.snap)

	a := tr.Start("phase a")
	src.c.Fetches += 10
	src.c.Hits += 7
	a.Add("postings", 42)
	a.End()

	b := tr.Start("phase b")
	b1 := b.Child("b sub 1")
	src.c.Fetches += 5
	src.c.PhysicalReads += 2
	b1.End()
	src.c.Fetches += 3 // b's own work, outside b1
	b.End()

	src.c.Fetches += 1 // untracked root work (between phases)
	data := tr.Finish()

	if data == nil || len(data.Children) != 2 {
		t.Fatalf("unexpected tree: %+v", data)
	}
	global := src.c
	if err := data.Verify(global); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := data.Children[0].Delta.Fetches; got != 10 {
		t.Errorf("phase a fetches = %d, want 10", got)
	}
	if got := data.Children[1].Delta.Fetches; got != 8 {
		t.Errorf("phase b fetches = %d, want 8", got)
	}
	if got := data.Children[1].Self().Fetches; got != 3 {
		t.Errorf("phase b self fetches = %d, want 3", got)
	}
	if got := data.Self().Fetches; got != 1 {
		t.Errorf("root self fetches = %d, want 1", got)
	}
	if sum := data.SumSelf(); sum != global {
		t.Errorf("SumSelf = %v, want %v", sum, global)
	}
	if data.Children[0].Ops["postings"] != 42 {
		t.Errorf("ops not recorded: %v", data.Children[0].Ops)
	}
	if n := data.Spans(); n != 4 {
		t.Errorf("Spans = %d, want 4", n)
	}
}

func TestVerifyCatchesMismatch(t *testing.T) {
	src := &fakeCounters{}
	tr := New("query", src.snap)
	sp := tr.Start("only")
	src.c.Fetches = 4
	sp.End()
	data := tr.Finish()

	if err := data.Verify(src.c); err != nil {
		t.Fatalf("exact run should verify: %v", err)
	}
	if err := data.Verify(Counters{Fetches: 5}); err == nil {
		t.Fatal("Verify should reject a global mismatch")
	}
	// A corrupted child delta must be caught by the nesting check.
	data.Children[0].Delta.Fetches = 99
	if err := data.Verify(Counters{Fetches: 4}); err == nil {
		t.Fatal("Verify should reject children exceeding the parent")
	}
}

func TestEndIsIdempotentAndClosesChildren(t *testing.T) {
	src := &fakeCounters{}
	tr := New("query", src.snap)
	sp := tr.Start("outer")
	sp.Child("left open") // never explicitly ended
	src.c.Fetches = 2
	data := tr.Finish() // ends outer and its open child
	if err := data.Verify(src.c); err != nil {
		t.Fatalf("Verify after implicit closes: %v", err)
	}
	sp.End() // idempotent after Finish
	if len(data.Children[0].Children) != 1 {
		t.Fatalf("open child missing from tree: %+v", data)
	}
}

func TestRenderers(t *testing.T) {
	src := &fakeCounters{}
	tr := New("query", src.snap)
	sp := tr.Start("scan")
	src.c.Fetches = 3
	sp.Add("postings", 9)
	sp.End()
	data := tr.Finish()

	text := data.Text()
	for _, want := range []string{"query", "└─ scan", "fetches=3", "postings=9"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := data.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SpanData
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Name != "query" || len(back.Children) != 1 || back.Children[0].Delta.Fetches != 3 {
		t.Errorf("JSON round trip mangled the tree: %+v", back)
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := Counters{Fetches: 5, Hits: 3, NodeVisits: 2}
	b := Counters{Fetches: 2, Hits: 1}
	if got := a.Sub(b); got != (Counters{Fetches: 3, Hits: 2, NodeVisits: 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := b.Plus(b); got != (Counters{Fetches: 4, Hits: 2}) {
		t.Errorf("Plus = %v", got)
	}
	if !b.fitsIn(a) || a.fitsIn(b) {
		t.Error("fitsIn misordered")
	}
	if a.IsZero() || !(Counters{}).IsZero() {
		t.Error("IsZero wrong")
	}
}
