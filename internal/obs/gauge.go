package obs

// Gauge is a metric that can go up and down — occupancy, in-flight
// requests, drain state. All methods are atomic and nil-safe; obtain
// gauges through Registry.Gauge (or register a callback with
// Registry.GaugeFunc for values derived from existing state).
type Gauge struct {
	name string
	v    atomicFloat
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add increments the gauge by d (negative to decrement).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
