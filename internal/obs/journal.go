// The event journal is the write path's flight recorder: a bounded,
// lock-free ring of typed events (WAL commits, checkpoints, recovery,
// plan decisions, query completions, ...) that a live server exposes
// read-only under /debug and flushes to a file on crash. It follows
// the tracer's enablement discipline: a nil *Journal turns every
// emission into a nil check, so instrumented code threads the journal
// unconditionally and the disabled path stays byte-identical and
// unmeasurably slower.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultJournalEvents is the ring capacity NewJournal(0) uses.
const DefaultJournalEvents = 4096

// DefaultFlightRecords is the flight recorder's trace retention.
const DefaultFlightRecords = 32

// DefaultAnomalyEvents is the anomaly ring's retention.
const DefaultAnomalyEvents = 64

// Journal is a bounded structured-event ring. Writers reserve a slot
// with one atomic add and publish a completed *Event with one atomic
// pointer store — no locks, no waiting, safe from any goroutine
// (including under writeMu or pinMu). Readers snapshot by loading the
// slot pointers; an overwritten slot simply yields the newer event, so
// a reader never blocks a writer and vice versa. Overwriting is the
// intended retention policy: the journal answers "what happened
// recently", the metrics registry answers "how much ever happened".
type Journal struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64 // next sequence to assign (== events emitted)

	flight    *flightRing
	anomalies *anomalyRing
}

// NewJournal creates a journal retaining the most recent `size` events
// (rounded up to a power of two; 0 means DefaultJournalEvents), plus
// the flight recorder and anomaly ring at their default retentions.
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = DefaultJournalEvents
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Journal{
		slots:     make([]atomic.Pointer[Event], n),
		mask:      uint64(n - 1),
		flight:    newFlightRing(DefaultFlightRecords),
		anomalies: newAnomalyRing(DefaultAnomalyEvents),
	}
}

// Emit records one event: it stamps the sequence number and timestamp,
// publishes the entry in the ring, and retains it in the anomaly ring
// when Err is set. Nil-safe (the disabled journal) and safe for
// concurrent use. Events with Type EvNone are dropped.
func (j *Journal) Emit(e Event) {
	if j == nil || e.Type == EvNone {
		return
	}
	e.Seq = j.seq.Add(1)
	e.TimeNS = time.Now().UnixNano()
	ev := &e
	j.slots[(e.Seq-1)&j.mask].Store(ev)
	if e.Err != "" {
		j.anomalies.add(ev)
	}
}

// Seq returns the number of events emitted so far (the next event gets
// Seq+1). Zero on a nil journal.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// Capacity returns the ring's event retention (0 on a nil journal).
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// EventFilter selects events from a snapshot.
type EventFilter struct {
	// Types restricts to the listed types; empty means all.
	Types []EventType
	// QID restricts to events stamped with this query ID.
	QID string
	// SinceSeq restricts to events with Seq > SinceSeq (a resumption
	// cursor: pass the last Seq you saw).
	SinceSeq uint64
	// Limit keeps only the newest N matching events (0 = no limit).
	Limit int
}

func (f EventFilter) match(e *Event) bool {
	if e.Seq <= f.SinceSeq {
		return false
	}
	if f.QID != "" && e.QID != f.QID {
		return false
	}
	if len(f.Types) > 0 {
		ok := false
		for _, t := range f.Types {
			if e.Type == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Events snapshots the ring: the retained events matching f, in
// strictly increasing sequence order. The snapshot is taken without
// blocking writers, so events emitted mid-scan may or may not appear —
// but every returned sequence is a real emission and the order is
// always monotonic. Nil-safe (returns nil).
func (j *Journal) Events(f EventFilter) []*Event {
	if j == nil {
		return nil
	}
	out := make([]*Event, 0, len(j.slots))
	for i := range j.slots {
		e := j.slots[i].Load()
		if e != nil && f.match(e) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	// A slot can be overwritten between two loads, so two positions may
	// briefly hold events from the same generation ordering; sequences
	// themselves are unique, but trim duplicates defensively.
	dedup := out[:0]
	var last uint64
	for _, e := range out {
		if e.Seq != last {
			dedup = append(dedup, e)
			last = e.Seq
		}
	}
	if f.Limit > 0 && len(dedup) > f.Limit {
		dedup = dedup[len(dedup)-f.Limit:]
	}
	return dedup
}

// Anomalies returns the retained error/anomaly events, oldest first.
// Nil-safe.
func (j *Journal) Anomalies() []*Event {
	if j == nil {
		return nil
	}
	return j.anomalies.snapshot()
}

// WriteEvents renders the events matching f as JSON lines (one event
// per line) — the /debug/events wire format. Nil-safe (writes
// nothing).
func (j *Journal) WriteEvents(w io.Writer, f EventFilter) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events(f) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// anomalyRing retains the last K events that carried an error, so a
// burst of normal traffic cannot push a rare failure out of the
// journal before anyone looks. Writes are rare (errors), so a mutex
// is fine here; the hot Emit path only touches it when Err != "".
type anomalyRing struct {
	mu   sync.Mutex
	buf  []*Event
	next int
	full bool
}

func newAnomalyRing(k int) *anomalyRing {
	return &anomalyRing{buf: make([]*Event, k)}
}

func (r *anomalyRing) add(e *Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

func (r *anomalyRing) snapshot() []*Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Event
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	// Copy: the ring keeps mutating after return.
	res := make([]*Event, len(out))
	copy(res, out)
	return res
}
