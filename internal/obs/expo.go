package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format rendered by WritePrometheus.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the Prometheus text
// exposition format: a # HELP line (when help text is registered), a
// # TYPE line, then one sample per child — counters and gauges as
// `name{labels} value`, histograms as cumulative `name_bucket` series
// with `le` bounds plus `name_sum` and `name_count`. Families are
// sorted by name and children by label values, and callback families
// are invoked exactly once, so two scrapes of an idle registry are
// byte-identical — the property the golden exposition test pins.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatSample(f.fn()))
		return
	}
	for _, ce := range f.sortedChildren() {
		values := splitLabels(ce.key)
		switch m := ce.metric.(type) {
		case *Metric:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelBlock(f.labels, values, ""), m.Load())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelBlock(f.labels, values, ""), formatSample(m.Value()))
		case *Histogram:
			renderHistogram(b, f.name, f.labels, values, m)
		}
	}
}

// renderHistogram writes the cumulative bucket series from one bucket
// snapshot, so _count always equals the +Inf bucket even while other
// goroutines keep observing mid-scrape.
func renderHistogram(b *strings.Builder, name string, labels, values []string, h *Histogram) {
	snap := h.snapshot()
	var cum uint64
	for i, bound := range h.bounds {
		cum += snap[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelBlock(labels, values, formatSample(bound)), cum)
	}
	cum += snap[len(snap)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelBlock(labels, values, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelBlock(labels, values, ""), formatSample(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelBlock(labels, values, ""), cum)
}

// labelBlock renders `{k1="v1",k2="v2"}` (plus le when non-empty), or
// the empty string for an unlabeled sample without le.
func labelBlock(labels, values []string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatLabels renders the k="v" list without braces — the terse
// WriteText form shares it with labelBlock's contents.
func formatLabels(labels, values []string, le string) string {
	s := labelBlock(labels, values, le)
	return strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash
// and newline (quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatSample renders a float sample value: integral values without
// an exponent, +Inf/NaN in exposition spelling, everything else in
// Go's shortest round-trip form.
func formatSample(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
