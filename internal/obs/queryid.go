package obs

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Query IDs join the observability planes: timber-serve stamps one on
// every request, logs it in each structured log line, names the
// request's span tree with it, and returns it in the X-Query-ID
// response header — so a slow-query log line, its EXPLAIN-ANALYZE
// trace and the client's view of the request can all be correlated.

// qidEntropy distinguishes processes, so IDs from two server restarts
// do not collide in aggregated logs; qidSeq orders IDs within one.
var (
	qidEntropy = rand.Uint32()
	qidSeq     atomic.Uint64
)

// NewQueryID returns a process-unique query identifier, cheap enough
// to mint per request.
func NewQueryID() string {
	return fmt.Sprintf("q-%08x-%06d", qidEntropy, qidSeq.Add(1))
}

type qidKey struct{}

// WithQueryID returns a context carrying the query ID.
func WithQueryID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, qidKey{}, id)
}

// QueryIDFrom returns the query ID carried by ctx, or "" when none is
// set (or ctx is nil).
func QueryIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(qidKey{}).(string)
	return id
}

// OperatorSecondsMetric is the histogram family RecordTree folds span
// trees into: one child per operator-phase name.
const OperatorSecondsMetric = "exec_operator_seconds"

// RecordTree folds a finished span tree into the registry's cumulative
// per-operator wall-time histograms (exec_operator_seconds{op=...}) —
// aggregating across queries what a single trace shows for one run.
// Span names label the histogram children, so callers must not pass
// spans with unbounded names (per-request roots named by query ID go
// through their children instead). Nil-safe in both arguments.
func RecordTree(r *Registry, d *SpanData) {
	if r == nil || d == nil {
		return
	}
	hv := r.HistogramVec(OperatorSecondsMetric,
		"Cumulative per-operator wall time across all executions, labeled by operator phase.",
		DefaultLatencyBuckets, "op")
	recordSpans(hv, d)
}

func recordSpans(hv *HistogramVec, d *SpanData) {
	hv.With(d.Name).Observe(float64(d.WallNS) / 1e9)
	for _, c := range d.Children {
		recordSpans(hv, c)
	}
}
