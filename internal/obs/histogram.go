package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the standard lock-free accumulator for metric sums, where
// contention is rare and a mutex per Observe would serialize hot paths.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n exponentially spaced histogram upper bounds
// starting at start: start, start*factor, start*factor², … — the fixed
// log-bucketed layout every Histogram in this package uses. start must
// be positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 10µs to ~84s in powers of two — wide
// enough for both a sub-millisecond plan-cache hit and a paper-scale
// minutes-long direct plan, in 24 buckets.
var DefaultLatencyBuckets = ExpBuckets(10e-6, 2, 24)

// Histogram is a fixed-bucket histogram with lock-free atomic buckets:
// an Observe is one binary search over the (small, immutable) bound
// slice plus two atomic adds, so any number of goroutines can record
// into one histogram without serializing. Bounds are upper bounds in
// ascending order (Prometheus `le` semantics: bucket i counts
// observations <= bounds[i]); values above the last bound land in an
// implicit +Inf overflow bucket. Create through Registry.Histogram or
// Registry.HistogramVec so the histogram is rendered at scrape time.
type Histogram struct {
	name    string
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum     atomicFloat
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds — the unit every
// *_seconds histogram exposes.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Bounds returns the bucket upper bounds (shared; do not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshot copies the bucket counts at one instant. Individual loads
// are exact; a snapshot taken mid-burst may split an Observe between
// its bucket and the sum, which is the usual scrape-consistency
// contract for lock-free metrics.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank — the
// standard bucketed estimate, exact to within one bucket's width.
// Returns NaN when the histogram is empty; observations in the +Inf
// overflow bucket are reported as the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	snap := h.snapshot()
	var total uint64
	for _, c := range snap {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range snap {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
