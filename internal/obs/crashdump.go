package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// WriteDump renders the journal's full retained state — events, flight
// records, anomalies — as JSON lines for post-mortem inspection. The
// format is self-describing: each line is one object with a "kind"
// wrapper ("event", "flight", "anomaly") so a dump file can be grepped
// or fed to jq without schema knowledge. Nil-safe (writes nothing).
func (j *Journal) WriteDump(w io.Writer) error {
	if j == nil {
		return nil
	}
	for _, e := range j.Events(EventFilter{}) {
		if err := writeDumpLine(w, "event", e); err != nil {
			return err
		}
	}
	for _, e := range j.Anomalies() {
		if err := writeDumpLine(w, "anomaly", e); err != nil {
			return err
		}
	}
	for _, rec := range j.Flights() {
		if err := writeDumpLine(w, "flight", rec); err != nil {
			return err
		}
	}
	return nil
}

func writeDumpLine(w io.Writer, kind string, payload any) error {
	line := struct {
		Kind    string `json:"kind"`
		Payload any    `json:"payload"`
	}{kind, payload}
	return json.NewEncoder(w).Encode(line)
}

// DumpToFile flushes the journal to a timestamped file in dir (created
// if missing) and returns its path. This is the crash-time path —
// timber-serve calls it from the SIGQUIT handler and the panic
// recovery wrapper — so it must not itself panic: a nil journal
// returns "" with no error, and any filesystem failure is returned for
// the caller to log.
func (j *Journal) DumpToFile(dir string) (string, error) {
	if j == nil {
		return "", nil
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("timber-events-%s.jsonl", time.Now().UTC().Format("20060102T150405.000000000Z"))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := j.WriteDump(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}
