package obs

import (
	"sync"
	"testing"
)

// mutexRegistry is the pre-telemetry Registry design — one global
// mutex around a plain map — kept here as the benchmark baseline for
// the lock-free lookup path. BenchmarkCounterLookup vs
// BenchmarkCounterLookupMutexBaseline quantifies the win of the
// sync.Map fast path under parallel load.
type mutexRegistry struct {
	mu       sync.Mutex
	counters map[string]*Metric
}

func (r *mutexRegistry) Counter(name string) *Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Metric{}
	}
	m, ok := r.counters[name]
	if !ok {
		m = &Metric{name: name}
		r.counters[name] = m
	}
	return m
}

// The lookup benchmarks measure Counter(name) resolution alone — the
// part the sync.Map fast path changes. (Benchmarking lookup+Inc would
// hide the difference behind contention on the shared counter word.)
var benchSink *Metric

func BenchmarkCounterLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench_hits") // pre-create: measure the steady state
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchSink = r.Counter("bench_hits")
		}
	})
}

func BenchmarkCounterLookupMutexBaseline(b *testing.B) {
	r := &mutexRegistry{}
	r.Counter("bench_hits")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchSink = r.Counter("bench_hits")
		}
	})
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	cv := r.CounterVec("bench_responses", "", "path", "code")
	cv.With("/query", "200")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			cv.With("/query", "200").Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram("bench_lat", DefaultLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v *= 1.7
			if v > 100 {
				v = 1e-6
			}
		}
	})
}
