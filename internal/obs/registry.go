package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric is one named monotonic counter in a Registry. All methods are
// safe for concurrent use; a Metric is obtained once (Registry.Counter
// or CounterVec.With) and bumped on hot paths with a single atomic add.
type Metric struct {
	name string
	v    atomic.Int64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string { return m.name }

// Add increments the counter by n.
func (m *Metric) Add(n int64) { m.v.Add(n) }

// Inc increments the counter by one.
func (m *Metric) Inc() { m.v.Add(1) }

// Load returns the current value.
func (m *Metric) Load() int64 { return m.v.Load() }

// MetricType classifies a metric family for exposition.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// labelSep joins label values into a child key. \x1f (unit separator)
// cannot appear in sane label values; a value containing it still only
// risks aliasing two children of the same family, never corruption.
const labelSep = "\x1f"

// family is one named metric family: a type, a help string, a label
// schema, and a set of children (one per distinct label-value tuple;
// exactly one, keyed by the empty string, for unlabeled metrics).
// Children are read through a sync.Map so steady-state lookups are
// lock-free; creation serializes on mu.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64      // histogram families only
	fn     func() float64 // callback families (CounterFunc/GaugeFunc) only

	mu       sync.Mutex
	children sync.Map // label key -> *Metric | *Gauge | *Histogram
}

// child returns the family member for the given label key, creating it
// on first use. The fast path is a single lock-free map load.
func (f *family) child(key string) any {
	if c, ok := f.children.Load(key); ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c
	}
	var c any
	switch f.typ {
	case TypeCounter:
		c = &Metric{name: f.name}
	case TypeGauge:
		c = &Gauge{name: f.name}
	case TypeHistogram:
		c = newHistogram(f.name, f.bounds)
	}
	f.children.Store(key, c)
	return c
}

// Registry is a namespace of metric families — counters, gauges and
// histograms, unlabeled or labeled — the service-level complement of
// the per-query span tree. Long-lived components register metrics once
// and bump them per event; an endpoint renders the whole registry for
// scraping (WritePrometheus for the Prometheus text exposition,
// WriteText for the terse name/value form). The zero value is not
// usable; call NewRegistry. All lookups take a lock-free fast path
// once a metric exists, so hot paths can re-resolve by name without
// contending (see BenchmarkCounterLookup).
type Registry struct {
	mu       sync.Mutex // serializes family creation only
	families sync.Map   // name -> *family
	counters sync.Map   // name -> *Metric; unlabeled-counter lookup cache
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// family returns the named family, creating it with the given schema
// on first registration. Re-registering an existing name returns the
// incumbent; a type or label-arity mismatch is a programmer error and
// panics — metric names are a global contract and silently aliasing
// two schemas would corrupt the exposition.
func (r *Registry) family(name, help string, typ MetricType, labels []string, bounds []float64, fn func() float64) *family {
	if v, ok := r.families.Load(name); ok {
		f := v.(*family)
		f.check(typ, labels)
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.families.Load(name); ok {
		f := v.(*family)
		f.check(typ, labels)
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, bounds: bounds, fn: fn}
	r.families.Store(name, f)
	return f
}

func (f *family) check(typ MetricType, labels []string) {
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v with %d labels (have %v with %d labels)",
			f.name, typ, len(labels), f.typ, len(f.labels)))
	}
}

// Counter returns the unlabeled counter with the given name, creating
// it at zero on first use. Nil-safe: a nil registry hands out an
// unregistered metric, so components can count unconditionally whether
// or not anyone is scraping. The steady-state lookup is one lock-free
// map load — hot paths may call Counter per event (see
// BenchmarkCounterLookup), though holding the *Metric is cheaper still.
func (r *Registry) Counter(name string) *Metric {
	if r == nil {
		return &Metric{name: name}
	}
	if m, ok := r.counters.Load(name); ok {
		return m.(*Metric)
	}
	m := r.family(name, "", TypeCounter, nil, nil, nil).child("").(*Metric)
	r.counters.Store(name, m)
	return m
}

// SetHelp attaches (or replaces) the HELP text of an existing family —
// the escape hatch for metrics created through the terse Counter(name)
// form. No-op when the family does not exist or on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	if v, ok := r.families.Load(name); ok {
		v.(*family).help = help
	}
}

// Gauge returns the unlabeled gauge with the given name, creating it
// on first use. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{name: name}
	}
	return r.family(name, help, TypeGauge, nil, nil, nil).child("").(*Gauge)
}

// GaugeFunc registers a callback gauge: fn is invoked at scrape time,
// so values derived from existing state (pool occupancy, goroutine
// counts) need no shadow bookkeeping. Nil-safe no-op.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.family(name, help, TypeGauge, nil, nil, fn)
}

// CounterFunc registers a callback counter over an existing monotonic
// source (the pagestore's atomic I/O counters, GC totals). fn must be
// monotonically non-decreasing. Nil-safe no-op.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.family(name, help, TypeCounter, nil, nil, fn)
}

// Histogram returns the unlabeled histogram with the given name,
// creating it with the given bucket bounds (nil =
// DefaultLatencyBuckets) on first use. Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(name, bounds)
	}
	return r.family(name, help, TypeHistogram, nil, bounds, nil).child("").(*Histogram)
}

// CounterVec is a labeled counter family: one child counter per
// distinct label-value tuple (e.g. http_responses_total{path,code}).
type CounterVec struct {
	f *family
}

// CounterVec returns the labeled counter family with the given name
// and label schema. Nil-safe.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return &CounterVec{}
	}
	return &CounterVec{f: r.family(name, help, TypeCounter, labels, nil, nil)}
}

// With returns the child counter for the given label values (one per
// registered label, in schema order), creating it at zero on first
// use. The steady-state lookup is one lock-free map load.
func (v *CounterVec) With(values ...string) *Metric {
	if v == nil || v.f == nil {
		return &Metric{}
	}
	v.f.checkArity(len(values))
	return v.f.child(joinLabels(values)).(*Metric)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the labeled gauge family with the given name and
// label schema. Nil-safe.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return &GaugeVec{}
	}
	return &GaugeVec{f: r.family(name, help, TypeGauge, labels, nil, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return &Gauge{}
	}
	v.f.checkArity(len(values))
	return v.f.child(joinLabels(values)).(*Gauge)
}

// HistogramVec is a labeled histogram family (e.g.
// query_seconds{strategy="groupby"}). Every child shares the family's
// bucket bounds, so the exposition stays comparable across labels.
type HistogramVec struct {
	f *family
}

// HistogramVec returns the labeled histogram family with the given
// name, bucket bounds (nil = DefaultLatencyBuckets) and label schema.
// Nil-safe.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return &HistogramVec{}
	}
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labels, bounds, nil)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return newHistogram("", nil)
	}
	v.f.checkArity(len(values))
	return v.f.child(joinLabels(values)).(*Histogram)
}

func (f *family) checkArity(n int) {
	if n != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q given %d label values, schema has %d (%v)", f.name, n, len(f.labels), f.labels))
	}
}

func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, v...)
	}
	return string(b)
}

func splitLabels(key string) []string {
	if key == "" {
		return nil
	}
	var out []string
	for {
		i := indexByte(key, labelSep[0])
		if i < 0 {
			return append(out, key)
		}
		out = append(out, key[:i])
		key = key[i+1:]
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// sortedFamilies snapshots the families in name order — the
// deterministic iteration both renderers use.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	var fams []*family
	r.families.Range(func(_, v any) bool {
		fams = append(fams, v.(*family))
		return true
	})
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children in label-key order.
func (f *family) sortedChildren() []childEntry {
	var out []childEntry
	f.children.Range(func(k, v any) bool {
		out = append(out, childEntry{key: k.(string), metric: v})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

type childEntry struct {
	key    string
	metric any
}

// Snapshot returns the current value of every unlabeled counter, keyed
// by name — the flat view older callers consume. Labeled families,
// gauges and histograms are exposed through WritePrometheus.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	out := map[string]int64{}
	for _, f := range r.sortedFamilies() {
		if f.typ != TypeCounter || len(f.labels) != 0 || f.fn != nil {
			continue
		}
		if c, ok := f.children.Load(""); ok {
			out[f.name] = c.(*Metric).Load()
		}
	}
	return out
}

// WriteText renders the registry in the terse text format: one
// "name value" line per sample, sorted by name. Counters and gauges
// print their value; histograms print _count, _sum and estimated
// p50/p95/p99 lines. Labeled children carry their label values in
// braces. This is the human-facing form; scrapers use WritePrometheus.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, ce := range f.sortedChildren() {
			suffix := ""
			if len(f.labels) > 0 {
				suffix = "{" + formatLabels(f.labels, splitLabels(ce.key), "") + "}"
			}
			switch m := ce.metric.(type) {
			case *Metric:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, m.Load()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n%s_sum%s %s\n%s_p50%s %s\n%s_p95%s %s\n%s_p99%s %s\n",
					f.name, suffix, m.Count(),
					f.name, suffix, formatFloat(m.Sum()),
					f.name, suffix, formatFloat(m.Quantile(0.50)),
					f.name, suffix, formatFloat(m.Quantile(0.95)),
					f.name, suffix, formatFloat(m.Quantile(0.99))); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
