package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric is one named monotonic counter in a Registry. All methods are
// safe for concurrent use; a Metric is obtained once (Registry.Counter)
// and bumped on hot paths with a single atomic add.
type Metric struct {
	name string
	v    atomic.Int64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string { return m.name }

// Add increments the counter by n.
func (m *Metric) Add(n int64) { m.v.Add(n) }

// Inc increments the counter by one.
func (m *Metric) Inc() { m.v.Add(1) }

// Load returns the current value.
func (m *Metric) Load() int64 { return m.v.Load() }

// Registry is a flat namespace of named counters — the service-level
// complement of the per-query span tree. Long-lived components (the
// engine's plan cache, the HTTP service) register counters once and
// bump them per event; an endpoint renders the whole registry for
// scraping. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*Metric{}}
}

// Counter returns the metric with the given name, creating it at zero
// on first use. Nil-safe: a nil registry hands out an unregistered
// metric, so components can count unconditionally whether or not
// anyone is scraping.
func (r *Registry) Counter(name string) *Metric {
	if r == nil {
		return &Metric{name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = &Metric{name: name}
		r.metrics[name] = m
	}
	return m
}

// Snapshot returns the current value of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.Load()
	}
	return out
}

// WriteText renders the registry in the text exposition format
// scrapers expect: one "name value" line per metric, sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap[name]); err != nil {
			return err
		}
	}
	return nil
}
