package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestJournalNilIsDisabled(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: EvTxnCommit})
	j.AddFlight(FlightRecord{QID: "q1"})
	j.RecordFlightTrace("q1", &SpanData{Name: "x"})
	if j.Seq() != 0 || j.Capacity() != 0 {
		t.Fatalf("nil journal reported state: seq=%d cap=%d", j.Seq(), j.Capacity())
	}
	if got := j.Events(EventFilter{}); got != nil {
		t.Fatalf("nil journal returned events: %v", got)
	}
	if got := j.Flights(); got != nil {
		t.Fatalf("nil journal returned flights: %v", got)
	}
	if _, ok := j.FlightByQID("q1"); ok {
		t.Fatal("nil journal resolved a flight record")
	}
	if err := j.WriteDump(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteDump: %v", err)
	}
	if path, err := j.DumpToFile(t.TempDir()); err != nil || path != "" {
		t.Fatalf("nil DumpToFile: path=%q err=%v", path, err)
	}
}

func TestJournalEmitAndFilter(t *testing.T) {
	j := NewJournal(64)
	j.Emit(Event{Type: EvTxnCommit, WALSeq: 1, Epoch: 2, Bytes: 128})
	j.Emit(Event{Type: EvQueryDone, QID: "q1", Label: "groupby", Count: 7})
	j.Emit(Event{Type: EvQueryDone, QID: "q2", Label: "direct"})
	j.Emit(Event{Type: EvCheckpoint, WALSeq: 1, Epoch: 3})
	j.Emit(Event{Type: EvNone}) // must be dropped

	if got := j.Seq(); got != 4 {
		t.Fatalf("Seq = %d, want 4", got)
	}
	all := j.Events(EventFilter{})
	if len(all) != 4 {
		t.Fatalf("Events = %d, want 4", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
		if e.TimeNS == 0 {
			t.Fatalf("event %d missing timestamp", i)
		}
	}

	byType := j.Events(EventFilter{Types: []EventType{EvQueryDone}})
	if len(byType) != 2 {
		t.Fatalf("type filter matched %d, want 2", len(byType))
	}
	byQID := j.Events(EventFilter{QID: "q2"})
	if len(byQID) != 1 || byQID[0].Label != "direct" {
		t.Fatalf("qid filter: %+v", byQID)
	}
	since := j.Events(EventFilter{SinceSeq: 3})
	if len(since) != 1 || since[0].Type != EvCheckpoint {
		t.Fatalf("since filter: %+v", since)
	}
	limited := j.Events(EventFilter{Limit: 2})
	if len(limited) != 2 || limited[0].Seq != 3 || limited[1].Seq != 4 {
		t.Fatalf("limit filter kept wrong events: %+v", limited)
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(8)
	if j.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", j.Capacity())
	}
	for i := 0; i < 20; i++ {
		j.Emit(Event{Type: EvTxnCommit, WALSeq: uint64(i + 1)})
	}
	got := j.Events(EventFilter{})
	if len(got) != 8 {
		t.Fatalf("retained %d events, want 8", len(got))
	}
	// The newest 8 of 20 emissions are sequences 13..20.
	for i, e := range got {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("event %d: Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestJournalSizeRounding(t *testing.T) {
	if got := NewJournal(0).Capacity(); got != DefaultJournalEvents {
		t.Fatalf("NewJournal(0) capacity = %d", got)
	}
	if got := NewJournal(100).Capacity(); got != 128 {
		t.Fatalf("NewJournal(100) capacity = %d, want 128", got)
	}
}

func TestJournalAnomalies(t *testing.T) {
	j := NewJournal(16)
	j.Emit(Event{Type: EvTxnCommit})
	j.Emit(Event{Type: EvQueryError, QID: "q1", Err: "boom"})
	j.Emit(Event{Type: EvTxnAbort, Err: "disk full"})
	got := j.Anomalies()
	if len(got) != 2 {
		t.Fatalf("anomalies = %d, want 2", len(got))
	}
	if got[0].Err != "boom" || got[1].Err != "disk full" {
		t.Fatalf("anomaly order wrong: %+v", got)
	}
	// Anomalies survive the main ring wrapping.
	for i := 0; i < 40; i++ {
		j.Emit(Event{Type: EvTxnCommit})
	}
	if got := j.Anomalies(); len(got) != 2 {
		t.Fatalf("anomalies lost after wrap: %d", len(got))
	}
}

func TestEventTypeRegistry(t *testing.T) {
	infos := EventTypes()
	if len(infos) != int(numEventTypes)-1 {
		t.Fatalf("registry has %d entries, want %d", len(infos), int(numEventTypes)-1)
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if info.Name == "" || info.Doc == "" || info.ConstName == "" {
			t.Fatalf("incomplete registry entry: %+v", info)
		}
		if seen[info.Name] {
			t.Fatalf("duplicate wire name %q", info.Name)
		}
		seen[info.Name] = true
		typ, ok := EventTypeByName(info.Name)
		if !ok || typ != info.Type {
			t.Fatalf("EventTypeByName(%q) = %v, %v", info.Name, typ, ok)
		}
		if typ.String() != info.Name {
			t.Fatalf("String mismatch for %q", info.Name)
		}
	}
	if _, ok := EventTypeByName("nope"); ok {
		t.Fatal("EventTypeByName resolved an unknown name")
	}
	b, err := json.Marshal(EvWALFsync)
	if err != nil || string(b) != `"wal_fsync"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}

func TestFlightRecorder(t *testing.T) {
	j := NewJournal(16)
	j.AddFlight(FlightRecord{QID: "q1", Strategy: "groupby", Rows: 3})
	j.AddFlight(FlightRecord{QID: "q2", Strategy: "direct"})

	got := j.Flights()
	if len(got) != 2 || got[0].QID != "q2" || got[1].QID != "q1" {
		t.Fatalf("flights order wrong: %+v", got)
	}
	rec, ok := j.FlightByQID("q1")
	if !ok || rec.Rows != 3 {
		t.Fatalf("FlightByQID(q1) = %+v, %v", rec, ok)
	}
	if _, ok := j.FlightByQID("q9"); ok {
		t.Fatal("resolved unknown qid")
	}
	if ok := j.AnnotateFlight("", func(*FlightRecord) {}); ok {
		t.Fatal("empty qid matched")
	}

	// Trace hand-off attaches to the newest record for the qid...
	j.RecordFlightTrace("q2", &SpanData{Name: "query", WallNS: 42})
	rec, _ = j.FlightByQID("q2")
	if rec.Trace == nil || rec.Trace.Name != "query" {
		t.Fatalf("trace not attached: %+v", rec)
	}
	if len(j.Flights()) != 2 {
		t.Fatal("trace hand-off created a duplicate record")
	}
	// ...and creates one when no record exists yet.
	j.RecordFlightTrace("q3", &SpanData{Name: "orphan", WallNS: 7})
	rec, ok = j.FlightByQID("q3")
	if !ok || rec.Trace == nil || rec.WallNS != 7 {
		t.Fatalf("orphan trace record: %+v, %v", rec, ok)
	}

	// Eviction past capacity keeps the newest N.
	for i := 0; i < DefaultFlightRecords+5; i++ {
		j.AddFlight(FlightRecord{QID: "bulk"})
	}
	if got := j.Flights(); len(got) != DefaultFlightRecords {
		t.Fatalf("flight retention = %d, want %d", len(got), DefaultFlightRecords)
	}
}

func TestJournalWriteEventsJSONLines(t *testing.T) {
	j := NewJournal(16)
	j.Emit(Event{Type: EvTxnCommit, WALSeq: 9, Epoch: 4})
	j.Emit(Event{Type: EvQueryDone, QID: "q1", DurNS: 1000})
	var buf bytes.Buffer
	if err := j.WriteEvents(&buf, EventFilter{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &struct {
		*Event
		Type string `json:"type"`
	}{Event: &e}); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e.WALSeq != 9 || e.Epoch != 4 {
		t.Fatalf("decoded event: %+v", e)
	}
	if !strings.Contains(lines[0], `"type":"txn_commit"`) {
		t.Fatalf("type not rendered as wire name: %s", lines[0])
	}
}

func TestJournalDumpToFile(t *testing.T) {
	j := NewJournal(16)
	j.Emit(Event{Type: EvTxnCommit, WALSeq: 1})
	j.Emit(Event{Type: EvQueryError, QID: "q1", Err: "boom"})
	j.AddFlight(FlightRecord{QID: "q1", Strategy: "groupby"})

	dir := t.TempDir()
	path, err := j.DumpToFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(path, dir) || !strings.Contains(path, "timber-events-") {
		t.Fatalf("dump path: %q", path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("dump line not JSON: %v (%s)", err, sc.Text())
		}
		kinds[line.Kind]++
	}
	if kinds["event"] != 2 || kinds["anomaly"] != 1 || kinds["flight"] != 1 {
		t.Fatalf("dump kinds: %v", kinds)
	}
}

// TestJournalConcurrentHammer is the obs-level half of the mandated
// race test: many writers emitting while readers snapshot and the
// flight recorder churns. Run with -race. Asserts no event is lost
// (every writer's count lands in Seq), snapshots are strictly
// monotonic, and retained events are intact (seq within the emitted
// range, type registered).
func TestJournalConcurrentHammer(t *testing.T) {
	const writers, perWriter, readers = 8, 500, 4
	j := NewJournal(256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0:
					j.Emit(Event{Type: EvTxnCommit, WALSeq: uint64(i), Bytes: 64})
				case 1:
					j.Emit(Event{Type: EvQueryDone, QID: "q", Count: int64(i)})
				default:
					j.Emit(Event{Type: EvCheckpoint, Epoch: uint64(w)})
				}
				if i%50 == 0 {
					j.AddFlight(FlightRecord{QID: "q", Rows: int64(i)})
					j.RecordFlightTrace("q", &SpanData{Name: "hammer"})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				evs := j.Events(EventFilter{})
				var last uint64
				for _, e := range evs {
					if e.Seq <= last {
						panic("snapshot not strictly monotonic")
					}
					last = e.Seq
					if e.Type == EvNone || int(e.Type) >= int(numEventTypes) {
						panic("corrupt event type in snapshot")
					}
				}
				j.Flights()
				j.Anomalies()
			}
		}()
	}
	wg.Wait()
	close(done)
	rwg.Wait()

	if got, want := j.Seq(), uint64(writers*perWriter); got != want {
		t.Fatalf("lost writes: Seq = %d, want %d", got, want)
	}
	final := j.Events(EventFilter{})
	if len(final) != j.Capacity() {
		t.Fatalf("final snapshot has %d events, want full ring %d", len(final), j.Capacity())
	}
	for _, e := range final {
		if e.Seq == 0 || e.Seq > uint64(writers*perWriter) {
			t.Fatalf("event with out-of-range seq %d", e.Seq)
		}
	}
}
