package pattern

// Subset implements Phase 1 step 2 of the paper's rewrite algorithm: it
// decides whether pattern tree sub (V1, E1) is a subset of pattern tree
// super (V2, E2), i.e. whether V1 ⊆ V2 and E1 ⊆ E2*, where E2* is the
// transitive closure of E2.
//
// Nodes correspond when the super node's predicate conjunction implies
// the sub node's (syntactically: contains every predicate of it), so
// every binding the super pattern produces also satisfies the sub
// pattern at the mapped position. Edges follow the paper's footnote 6:
// closure edges derived from two or more base edges carry the
// ancestor-descendant mark, and pc ⊆ ad but not ad ⊆ pc — so a pc edge
// of E1 corresponds only to an actual pc edge of E2, while an ad edge of
// E1 corresponds to any E2* edge.
//
// On success it returns an injective mapping from sub labels to super
// labels. Phase 2 uses the mapping to locate, inside the join plan's
// "inner" pattern, the nodes playing the outer pattern's roles.
func Subset(sub, super *Tree) (map[string]string, bool) {
	superNodes := collect(super.Root)
	assign := map[string]string{} // sub label -> super label
	used := map[string]bool{}     // super labels already taken

	var tryNode func(sn *Node) bool
	tryNode = func(sn *Node) bool {
		for _, cand := range superNodes {
			if used[cand.Label] {
				continue
			}
			if !PredsImply(cand.Preds, sn.Preds) {
				continue
			}
			if sn.Parent != nil {
				parentCand := super.NodeByLabel(assign[sn.Parent.Label])
				if !edgeInClosure(parentCand, cand, sn.Axis) {
					continue
				}
			}
			assign[sn.Label] = cand.Label
			used[cand.Label] = true
			ok := true
			for _, c := range sn.Children {
				if !tryNode(c) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
			delete(assign, sn.Label)
			delete(used, cand.Label)
		}
		return false
	}

	if !tryNode(sub.Root) {
		return nil, false
	}
	return assign, true
}

// edgeInClosure reports whether (anc, desc) is an edge of the super
// tree's transitive closure compatible with the required axis: a Child
// requirement needs a single pc base edge; a Descendant requirement
// accepts any upward path of length >= 1.
func edgeInClosure(anc, desc *Node, required Axis) bool {
	if anc == nil || desc == nil || anc == desc {
		return false
	}
	if required == Child {
		return desc.Parent == anc && desc.Axis == Child
	}
	for p := desc.Parent; p != nil; p = p.Parent {
		if p == anc {
			return true
		}
	}
	return false
}

func collect(root *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
