package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTree parses the indented textual pattern notation Tree.String
// renders — the same shape the paper's figures use:
//
//	$1 [tag=article]
//	  pc $2 [tag=title & content~"*Transaction*"]
//	  pc $3 [tag=author]
//
// Each line is one pattern node: an axis (pc or ad, absent on the
// root), a label, and an optional bracketed conjunction of predicates.
// Two spaces of indentation per level give the tree shape. Supported
// predicates (matching Predicate.String): tag=NAME, content="...",
// content~"glob", content<"v" (also <=, >, >=, !=), @name="v", @name.
func ParseTree(src string) (*Tree, error) {
	type frame struct {
		node  *Node
		depth int
	}
	var stack []frame
	var root *Node
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		if strings.TrimSpace(raw) == "" {
			continue
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		if indent%2 != 0 {
			return nil, fmt.Errorf("pattern: line %d: indentation must be a multiple of two spaces", lineNo)
		}
		depth := indent / 2
		line := strings.TrimSpace(raw)

		axis := Child
		switch {
		case depth == 0:
			if root != nil {
				return nil, fmt.Errorf("pattern: line %d: multiple roots", lineNo)
			}
		case strings.HasPrefix(line, "pc "):
			line = strings.TrimSpace(line[3:])
		case strings.HasPrefix(line, "ad "):
			axis = Descendant
			line = strings.TrimSpace(line[3:])
		default:
			return nil, fmt.Errorf("pattern: line %d: non-root node needs a pc or ad axis", lineNo)
		}

		label := line
		var predSrc string
		if i := strings.IndexByte(line, '['); i >= 0 {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("pattern: line %d: unterminated predicate list", lineNo)
			}
			label = strings.TrimSpace(line[:i])
			predSrc = line[i+1 : len(line)-1]
		}
		if label == "" {
			return nil, fmt.Errorf("pattern: line %d: missing label", lineNo)
		}
		if !strings.HasPrefix(label, "$") || strings.ContainsAny(label, " \t") {
			return nil, fmt.Errorf("pattern: line %d: label %q must be a $-token", lineNo, label)
		}
		preds, err := parsePreds(predSrc)
		if err != nil {
			return nil, fmt.Errorf("pattern: line %d: %w", lineNo, err)
		}
		node := NewNode(label, preds...)

		if depth == 0 {
			root = node
			stack = []frame{{node: node, depth: 0}}
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 || stack[len(stack)-1].depth != depth-1 {
			return nil, fmt.Errorf("pattern: line %d: bad indentation depth %d", lineNo, depth)
		}
		stack[len(stack)-1].node.AddChild(axis, node)
		stack = append(stack, frame{node: node, depth: depth})
	}
	if root == nil {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	return NewTree(root)
}

// MustParseTree is ParseTree panicking on error, for literals in tests.
func MustParseTree(src string) *Tree {
	t, err := ParseTree(src)
	if err != nil {
		panic(err)
	}
	return t
}

// parsePreds parses "p & p & p" (possibly empty).
func parsePreds(src string) ([]Predicate, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, nil
	}
	var out []Predicate
	for _, part := range splitPreds(src) {
		p, err := parsePred(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// splitPreds splits on '&' outside quoted strings, honouring backslash
// escapes within quotes.
func splitPreds(src string) []string {
	var parts []string
	inQuote := false
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '&':
			if !inQuote {
				parts = append(parts, src[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, src[start:])
	return parts
}

func parsePred(src string) (Predicate, error) {
	switch {
	case strings.HasPrefix(src, "tag="):
		return TagEq{Tag: strings.TrimPrefix(src, "tag=")}, nil
	case strings.HasPrefix(src, "content~"):
		v, err := unquote(strings.TrimPrefix(src, "content~"))
		if err != nil {
			return nil, err
		}
		return ContentGlob{Pattern: v}, nil
	case strings.HasPrefix(src, "content"):
		rest := strings.TrimPrefix(src, "content")
		for _, cand := range []struct {
			sym string
			op  CmpOp
			eq  bool
		}{
			{"!=", Ne, false}, {"<=", Le, false}, {">=", Ge, false},
			{"=", 0, true}, {"<", Lt, false}, {">", Gt, false},
		} {
			if strings.HasPrefix(rest, cand.sym) {
				v, err := unquote(strings.TrimPrefix(rest, cand.sym))
				if err != nil {
					return nil, err
				}
				if cand.eq {
					return ContentEq{Value: v}, nil
				}
				return ContentCmp{Op: cand.op, Value: v}, nil
			}
		}
		return nil, fmt.Errorf("bad content predicate %q", src)
	case strings.HasPrefix(src, "@"):
		rest := strings.TrimPrefix(src, "@")
		if i := strings.IndexByte(rest, '='); i >= 0 {
			v, err := unquote(rest[i+1:])
			if err != nil {
				return nil, err
			}
			return AttrEq{Name: rest[:i], Value: v}, nil
		}
		return AttrExists{Name: rest}, nil
	default:
		return nil, fmt.Errorf("unknown predicate %q", src)
	}
}

func unquote(s string) (string, error) {
	v, err := strconv.Unquote(strings.TrimSpace(s))
	if err != nil {
		return "", fmt.Errorf("bad quoted value %s: %w", s, err)
	}
	return v, nil
}
