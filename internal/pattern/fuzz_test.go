package pattern

import "testing"

// FuzzParseTree asserts the figure-notation parser never panics: every
// input yields a tree or an error. Seeds exercise the notation's
// grammar — labels, axes, predicate conjunctions, content globs — and
// malformed fragments of each.
func FuzzParseTree(f *testing.F) {
	seeds := []string{
		"",
		"$1 [tag=article]",
		"$1 [tag=article]\n  pc $2 [tag=title & content~\"*XML*\"]\n  pc $3 [tag=author]",
		"$1 [tag=article]\n  ad $2 [tag=author]",
		"$1 [tag=a]\n  pc $2 [tag=b]\n    pc $3 [tag=c]",
		"$1",
		"$1 [",
		"$1 [tag=]",
		"pc $2 [tag=title]",
		"$1 [tag=article]\n      pc $9 [tag=x]",
		"$1 [tag=a & content=\"v\"]",
		"$1 [attr:id=\"7\"]",
		"$1 [tag=a]\n  xx $2 [tag=b]",
		"$1 [tag=a]\r\n  pc $2 [tag=b]",
		"$1 [tag=\x00]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pt, err := ParseTree(src)
		if err == nil && pt == nil {
			t.Errorf("ParseTree(%q) returned nil tree and nil error", src)
		}
	})
}
