package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Predicate is a node-local condition on a data node's fields. The
// predicates here cover everything the paper's queries use: tag
// equality, content equality, the "*Transaction*" style glob of
// Figure 1, value comparisons, and attribute tests.
type Predicate interface {
	// Matches reports whether the data node satisfies the predicate.
	Matches(f Fields) bool
	// String renders the predicate in the paper's notation, with $i
	// left implicit (the owning pattern node supplies it).
	String() string
}

// TagEq requires $i.tag = Tag.
type TagEq struct{ Tag string }

// Matches implements Predicate.
func (p TagEq) Matches(f Fields) bool { return f.Tag() == p.Tag }

func (p TagEq) String() string { return "tag=" + p.Tag }

// ContentEq requires $i.content = Value (string equality).
type ContentEq struct{ Value string }

// Matches implements Predicate.
func (p ContentEq) Matches(f Fields) bool { return f.Content() == p.Value }

func (p ContentEq) String() string { return fmt.Sprintf("content=%q", p.Value) }

// ContentGlob requires $i.content to match a glob where '*' matches any
// (possibly empty) substring — the paper's `content = "*Transaction*"`.
type ContentGlob struct{ Pattern string }

// Matches implements Predicate.
func (p ContentGlob) Matches(f Fields) bool { return globMatch(p.Pattern, f.Content()) }

func (p ContentGlob) String() string { return fmt.Sprintf("content~%q", p.Pattern) }

// globMatch matches pattern against s, where '*' matches any substring.
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return strings.HasSuffix(s, last) && len(s) >= len(last)
}

// CmpOp is a comparison operator for ContentCmp.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Ne
)

func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "!="
	}
}

// ContentCmp requires $i.content Op Value. If both the content and the
// value parse as numbers the comparison is numeric, otherwise
// lexicographic — the usual untyped-XML convention.
type ContentCmp struct {
	Op    CmpOp
	Value string
}

// Matches implements Predicate.
func (p ContentCmp) Matches(f Fields) bool {
	c := f.Content()
	var sign int
	if cn, err1 := strconv.ParseFloat(c, 64); err1 == nil {
		if vn, err2 := strconv.ParseFloat(p.Value, 64); err2 == nil {
			switch {
			case cn < vn:
				sign = -1
			case cn > vn:
				sign = 1
			}
			return cmpSign(p.Op, sign)
		}
	}
	sign = strings.Compare(c, p.Value)
	return cmpSign(p.Op, sign)
}

func cmpSign(op CmpOp, sign int) bool {
	switch op {
	case Lt:
		return sign < 0
	case Le:
		return sign <= 0
	case Gt:
		return sign > 0
	case Ge:
		return sign >= 0
	default:
		return sign != 0
	}
}

func (p ContentCmp) String() string { return fmt.Sprintf("content%s%q", p.Op, p.Value) }

// AttrEq requires $i.attr Name to exist with value Value.
type AttrEq struct{ Name, Value string }

// Matches implements Predicate.
func (p AttrEq) Matches(f Fields) bool {
	v, ok := f.Attr(p.Name)
	return ok && v == p.Value
}

func (p AttrEq) String() string { return fmt.Sprintf("@%s=%q", p.Name, p.Value) }

// AttrExists requires $i to carry attribute Name.
type AttrExists struct{ Name string }

// Matches implements Predicate.
func (p AttrExists) Matches(f Fields) bool {
	_, ok := f.Attr(p.Name)
	return ok
}

func (p AttrExists) String() string { return fmt.Sprintf("@%s", p.Name) }

// PredsImply reports whether the conjunction a implies the conjunction
// b, using the syntactic rule "every predicate of b appears in a". It is
// the node-compatibility test of the Phase 1 subset check: a pattern
// node of the sub-tree is satisfied by a pattern node of the super-tree
// whose predicates are at least as strong.
func PredsImply(a, b []Predicate) bool {
	for _, pb := range b {
		found := false
		for _, pa := range a {
			if pa == pb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
