package pattern

import (
	"strings"
	"testing"
)

// fakeFields is a test double for a data node.
type fakeFields struct {
	tag     string
	content string
	attrs   map[string]string
}

func (f fakeFields) Tag() string     { return f.tag }
func (f fakeFields) Content() string { return f.content }
func (f fakeFields) Attr(name string) (string, bool) {
	v, ok := f.attrs[name]
	return v, ok
}

// figure1 builds the paper's Figure 1 pattern: $1 article with pc
// children $2 title (content ~ *Transaction*) and $3 author.
func figure1() *Tree {
	root := NewNode("$1", TagEq{Tag: "article"})
	root.AddChild(Child, NewNode("$2", TagEq{Tag: "title"}, ContentGlob{Pattern: "*Transaction*"}))
	root.AddChild(Child, NewNode("$3", TagEq{Tag: "author"}))
	return MustTree(root)
}

func TestTreeConstruction(t *testing.T) {
	pt := figure1()
	if pt.Size() != 3 {
		t.Errorf("Size = %d", pt.Size())
	}
	if got := pt.NodeByLabel("$2").TagConstraint(); got != "title" {
		t.Errorf("$2 tag constraint = %q", got)
	}
	if pt.NodeByLabel("$9") != nil {
		t.Error("bogus label should be nil")
	}
	labels := pt.Labels()
	if len(labels) != 3 || labels[0] != "$1" || labels[1] != "$2" || labels[2] != "$3" {
		t.Errorf("labels = %v", labels)
	}
	if pt.NodeByLabel("$2").Parent != pt.Root {
		t.Error("parent pointer not set")
	}
}

func TestNewTreeRejectsDuplicates(t *testing.T) {
	root := NewNode("$1")
	root.AddChild(Child, NewNode("$1"))
	if _, err := NewTree(root); err == nil {
		t.Error("duplicate labels should be rejected")
	}
	if _, err := NewTree(NewNode("")); err == nil {
		t.Error("empty label should be rejected")
	}
}

func TestMustTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTree should panic on invalid tree")
		}
	}()
	root := NewNode("$1")
	root.AddChild(Child, NewNode("$1"))
	MustTree(root)
}

func TestNodeMatches(t *testing.T) {
	n := NewNode("$2", TagEq{Tag: "title"}, ContentGlob{Pattern: "*Transaction*"})
	if !n.NodeMatches(fakeFields{tag: "title", content: "Overview of Transaction Mng"}) {
		t.Error("matching node rejected")
	}
	if n.NodeMatches(fakeFields{tag: "title", content: "Principles of DBMS"}) {
		t.Error("non-matching content accepted")
	}
	if n.NodeMatches(fakeFields{tag: "author", content: "Transaction"}) {
		t.Error("wrong tag accepted")
	}
}

func TestPredicates(t *testing.T) {
	f := fakeFields{tag: "year", content: "1999", attrs: map[string]string{"id": "a1"}}
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"tag eq hit", TagEq{Tag: "year"}, true},
		{"tag eq miss", TagEq{Tag: "month"}, false},
		{"content eq hit", ContentEq{Value: "1999"}, true},
		{"content eq miss", ContentEq{Value: "2000"}, false},
		{"glob exact", ContentGlob{Pattern: "1999"}, true},
		{"glob star", ContentGlob{Pattern: "19*"}, true},
		{"glob middle", ContentGlob{Pattern: "*99*"}, true},
		{"glob miss", ContentGlob{Pattern: "*2000*"}, false},
		{"cmp lt numeric", ContentCmp{Op: Lt, Value: "2000"}, true},
		{"cmp gt numeric", ContentCmp{Op: Gt, Value: "1990"}, true},
		{"cmp ge equal", ContentCmp{Op: Ge, Value: "1999"}, true},
		{"cmp le equal", ContentCmp{Op: Le, Value: "1999"}, true},
		{"cmp ne equal", ContentCmp{Op: Ne, Value: "1999"}, false},
		{"cmp numeric not lexicographic", ContentCmp{Op: Gt, Value: "234"}, true}, // 1999 > 234 numerically, "1999" < "234" lexically
		{"attr eq hit", AttrEq{Name: "id", Value: "a1"}, true},
		{"attr eq wrong value", AttrEq{Name: "id", Value: "a2"}, false},
		{"attr eq missing", AttrEq{Name: "nope", Value: "x"}, false},
		{"attr exists hit", AttrExists{Name: "id"}, true},
		{"attr exists miss", AttrExists{Name: "nope"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Matches(f); got != tc.want {
				t.Errorf("%s on %+v = %v, want %v", tc.p, f, got, tc.want)
			}
			if tc.p.String() == "" {
				t.Error("empty predicate String")
			}
		})
	}
}

func TestContentCmpLexicographic(t *testing.T) {
	f := fakeFields{content: "banana"}
	if !(ContentCmp{Op: Gt, Value: "apple"}).Matches(f) {
		t.Error("banana > apple lexicographically")
	}
	if (ContentCmp{Op: Lt, Value: "apple"}).Matches(f) {
		t.Error("banana < apple should be false")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a*b", "ab", true},
		{"a*b", "aXXb", true},
		{"a*b", "aXXbY", false},
		{"*x*y*", "wxvyz", true},
		{"*x*y*", "wyvxz", false},
		{"a**b", "ab", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"*abc", "xxabc", true},
		{"abc*", "abcxx", true},
		{"*aa*", "aa", true},
		{"a*a", "a", false}, // the two a's must not overlap
	}
	for _, tc := range cases {
		if got := globMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

func TestPredsImply(t *testing.T) {
	a := []Predicate{TagEq{Tag: "author"}, ContentEq{Value: "Jack"}}
	b := []Predicate{TagEq{Tag: "author"}}
	if !PredsImply(a, b) {
		t.Error("stronger conjunction should imply weaker")
	}
	if PredsImply(b, a) {
		t.Error("weaker conjunction must not imply stronger")
	}
	if !PredsImply(a, nil) {
		t.Error("anything implies the empty conjunction")
	}
}

func TestCloneIndependent(t *testing.T) {
	pt := figure1()
	cp := pt.Clone()
	if cp.String() != pt.String() {
		t.Errorf("clone differs:\n%s\n%s", cp, pt)
	}
	cp.NodeByLabel("$2").Preds = nil
	if len(pt.NodeByLabel("$2").Preds) != 2 {
		t.Error("mutating clone affected original")
	}
}

func TestString(t *testing.T) {
	s := figure1().String()
	for _, want := range []string{"$1 [tag=article]", "pc $2", `content~"*Transaction*"`, "pc $3 [tag=author]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// outerQ1 is the Figure 4.a outer pattern of Query 1: doc_root with an
// ad-descendant author.
func outerQ1() *Tree {
	root := NewNode("$1", TagEq{Tag: "doc_root"})
	root.AddChild(Descendant, NewNode("$2", TagEq{Tag: "author"}))
	return MustTree(root)
}

// innerQ1 is the right ("inner") part of the Figure 4.b join-plan
// pattern: doc_root with ad article with pc author.
func innerQ1() *Tree {
	root := NewNode("$4", TagEq{Tag: "doc_root"})
	art := root.AddChild(Descendant, NewNode("$5", TagEq{Tag: "article"}))
	art.AddChild(Child, NewNode("$6", TagEq{Tag: "author"}))
	return MustTree(root)
}

func TestSubsetQuery1(t *testing.T) {
	m, ok := Subset(outerQ1(), innerQ1())
	if !ok {
		t.Fatal("Query 1 outer pattern should be a subset of the inner pattern")
	}
	if m["$1"] != "$4" || m["$2"] != "$6" {
		t.Errorf("mapping = %v, want $1->$4 $2->$6", m)
	}
}

func TestSubsetAxisRules(t *testing.T) {
	// sub: a -pc-> b. super: a -ad-> b. pc is NOT satisfied by ad.
	subRoot := NewNode("s1", TagEq{Tag: "a"})
	subRoot.AddChild(Child, NewNode("s2", TagEq{Tag: "b"}))
	sub := MustTree(subRoot)

	superRoot := NewNode("t1", TagEq{Tag: "a"})
	superRoot.AddChild(Descendant, NewNode("t2", TagEq{Tag: "b"}))
	super := MustTree(superRoot)

	if _, ok := Subset(sub, super); ok {
		t.Error("pc requirement must not be satisfied by an ad edge (ad ⊄ pc)")
	}
	// The reverse direction is fine: ad requirement, pc edge.
	if _, ok := Subset(super, sub); !ok {
		t.Error("ad requirement should be satisfied by a pc edge (pc ⊆ ad)")
	}
}

func TestSubsetClosureEdge(t *testing.T) {
	// sub: a -ad-> c. super: a -pc-> b -pc-> c. The closure edge a->c
	// (derived, thus ad-marked) satisfies the ad requirement.
	subRoot := NewNode("s1", TagEq{Tag: "a"})
	subRoot.AddChild(Descendant, NewNode("s2", TagEq{Tag: "c"}))
	sub := MustTree(subRoot)

	superRoot := NewNode("t1", TagEq{Tag: "a"})
	b := superRoot.AddChild(Child, NewNode("t2", TagEq{Tag: "b"}))
	b.AddChild(Child, NewNode("t3", TagEq{Tag: "c"}))
	super := MustTree(superRoot)

	m, ok := Subset(sub, super)
	if !ok {
		t.Fatal("closure edge should satisfy ad requirement")
	}
	if m["s2"] != "t3" {
		t.Errorf("mapping = %v", m)
	}

	// But a pc requirement over the same two-step path must fail.
	subRoot2 := NewNode("s1", TagEq{Tag: "a"})
	subRoot2.AddChild(Child, NewNode("s2", TagEq{Tag: "c"}))
	if _, ok := Subset(MustTree(subRoot2), super); ok {
		t.Error("pc requirement must not be satisfied by a two-edge path")
	}
}

func TestSubsetPredicateStrength(t *testing.T) {
	// sub requires content="Jack"; super has no content predicate, so
	// super does not imply sub.
	subRoot := NewNode("s1", TagEq{Tag: "author"}, ContentEq{Value: "Jack"})
	sub := MustTree(subRoot)
	superRoot := NewNode("t1", TagEq{Tag: "author"})
	super := MustTree(superRoot)
	if _, ok := Subset(sub, super); ok {
		t.Error("weaker super node must not satisfy stronger sub node")
	}
	if _, ok := Subset(super, sub); !ok {
		t.Error("stronger super node satisfies weaker sub node")
	}
}

func TestSubsetInjective(t *testing.T) {
	// sub: root with two author children. super: root with ONE author.
	// The two sub authors cannot map to the same super node.
	subRoot := NewNode("s1", TagEq{Tag: "r"})
	subRoot.AddChild(Descendant, NewNode("s2", TagEq{Tag: "author"}))
	subRoot.AddChild(Descendant, NewNode("s3", TagEq{Tag: "author"}))
	sub := MustTree(subRoot)

	superRoot := NewNode("t1", TagEq{Tag: "r"})
	superRoot.AddChild(Descendant, NewNode("t2", TagEq{Tag: "author"}))
	super := MustTree(superRoot)

	if _, ok := Subset(sub, super); ok {
		t.Error("mapping must be injective")
	}
}

func TestSubsetBacktracking(t *testing.T) {
	// super: root with two children, first author (no content pred),
	// second author with content pred. sub needs the content pred, so a
	// greedy first assignment must backtrack.
	subRoot := NewNode("s1", TagEq{Tag: "r"})
	subRoot.AddChild(Descendant, NewNode("s2", TagEq{Tag: "author"}, ContentEq{Value: "J"}))
	sub := MustTree(subRoot)

	superRoot := NewNode("t1", TagEq{Tag: "r"})
	superRoot.AddChild(Descendant, NewNode("t2", TagEq{Tag: "author"}))
	superRoot.AddChild(Descendant, NewNode("t3", TagEq{Tag: "author"}, ContentEq{Value: "J"}))
	super := MustTree(superRoot)

	m, ok := Subset(sub, super)
	if !ok || m["s2"] != "t3" {
		t.Errorf("subset = %v, %v; want s2->t3", m, ok)
	}
}
