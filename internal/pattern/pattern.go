// Package pattern implements TAX pattern trees (Sec. 2 of the paper).
//
// A pattern tree specifies homogeneous tuples of node bindings: nodes
// carry labels ($1, $2, ...) and conjunctive predicates; edges are
// either parent-child (pc, immediate containment) or ancestor-descendant
// (ad, containment). Matching a pattern tree against a data tree yields
// witness trees — one per embedding — and the labels name the bound
// nodes, which is how TAX operators reference parts of heterogeneous
// trees as if they were homogeneous.
//
// The package also implements the tree-subset test of the rewrite
// algorithm's Phase 1 (Sec. 4.1): V1 ⊆ V2 and E1 ⊆ E2*, where E2* is
// the transitive closure of E2 with derived edges marked
// ancestor-descendant, and a pc requirement is only satisfied by a pc
// edge while an ad requirement is satisfied by either (pc ⊆ ad, not
// ad ⊆ pc — the paper's footnote 6).
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Axis is the structural relationship a pattern edge requires between
// the matches of its endpoints.
type Axis int

const (
	// Child is the parent-child axis (pc): immediate containment.
	Child Axis = iota
	// Descendant is the ancestor-descendant axis (ad): containment at
	// any depth (proper descendant).
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "pc"
	}
	return "ad"
}

// Fields exposes the queryable properties of a data node to predicates.
// Both in-memory tree nodes and stored node records adapt to it.
type Fields interface {
	// Tag returns the element name.
	Tag() string
	// Content returns the element's text content.
	Content() string
	// Attr returns the named attribute value and whether it exists.
	Attr(name string) (string, bool)
}

// Node is one node of a pattern tree.
type Node struct {
	// Label names the node ($1, $2, ...); it must be unique within the
	// pattern tree and is how operators refer to the binding.
	Label string
	// Axis relates this node to its parent (ignored on the root).
	Axis Axis
	// Preds is a conjunction of node-local predicates.
	Preds []Predicate
	// Children are the node's pattern children.
	Children []*Node
	// Parent is the node's pattern parent, nil at the root.
	Parent *Node
}

// Tree is a pattern tree.
type Tree struct {
	Root  *Node
	index map[string]*Node
}

// NewNode constructs a pattern node with a label and predicates.
func NewNode(label string, preds ...Predicate) *Node {
	return &Node{Label: label, Preds: preds}
}

// AddChild attaches child under n via the given axis and returns child.
func (n *Node) AddChild(axis Axis, child *Node) *Node {
	child.Axis = axis
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// NewTree finalizes a pattern tree rooted at root, validating label
// uniqueness.
func NewTree(root *Node) (*Tree, error) {
	t := &Tree{Root: root, index: map[string]*Node{}}
	var err error
	var walk func(*Node)
	walk = func(n *Node) {
		if err != nil {
			return
		}
		if n.Label == "" {
			err = fmt.Errorf("pattern: node without label")
			return
		}
		if _, dup := t.index[n.Label]; dup {
			err = fmt.Errorf("pattern: duplicate label %s", n.Label)
			return
		}
		t.index[n.Label] = n
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MustTree is NewTree panicking on error; for literals in tests and
// internal translators that construct labels programmatically.
func MustTree(root *Node) *Tree {
	t, err := NewTree(root)
	if err != nil {
		panic(err)
	}
	return t
}

// NodeByLabel returns the pattern node with the given label, or nil.
func (t *Tree) NodeByLabel(label string) *Node { return t.index[label] }

// Labels returns all labels of the pattern in pre-order.
func (t *Tree) Labels() []string {
	var out []string
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n.Label)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Size returns the number of pattern nodes.
func (t *Tree) Size() int { return len(t.index) }

// NodeMatches reports whether a data node's fields satisfy all of the
// pattern node's predicates.
func (n *Node) NodeMatches(f Fields) bool {
	for _, p := range n.Preds {
		if !p.Matches(f) {
			return false
		}
	}
	return true
}

// TagConstraint returns the tag this pattern node requires, if its
// predicates pin one down ("" if unconstrained). Index-driven matching
// uses it to pick candidate streams from the tag index.
func (n *Node) TagConstraint() string {
	for _, p := range n.Preds {
		if te, ok := p.(TagEq); ok {
			return te.Tag
		}
	}
	return ""
}

// Clone returns a deep copy of the pattern tree.
func (t *Tree) Clone() *Tree {
	var cp func(*Node) *Node
	cp = func(n *Node) *Node {
		m := &Node{Label: n.Label, Axis: n.Axis}
		m.Preds = append(m.Preds, n.Preds...)
		for _, c := range n.Children {
			cc := cp(c)
			cc.Parent = m
			m.Children = append(m.Children, cc)
		}
		return m
	}
	return MustTree(cp(t.Root))
}

// String renders the pattern in an indented form close to the paper's
// figures, e.g.
//
//	$1 [tag=doc_root]
//	  ad $2 [tag=author]
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			b.WriteString(n.Axis.String())
			b.WriteByte(' ')
		}
		b.WriteString(n.Label)
		if len(n.Preds) > 0 {
			parts := make([]string, len(n.Preds))
			for i, p := range n.Preds {
				parts[i] = p.String()
			}
			sort.Strings(parts)
			fmt.Fprintf(&b, " [%s]", strings.Join(parts, " & "))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}
