package pattern

import (
	"testing"
)

func TestParseTreeFigure1(t *testing.T) {
	pt, err := ParseTree(`
$1 [tag=article]
  pc $2 [tag=title & content~"*Transaction*"]
  pc $3 [tag=author]
`)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Size() != 3 {
		t.Fatalf("size = %d", pt.Size())
	}
	if pt.Root.TagConstraint() != "article" {
		t.Errorf("root tag = %s", pt.Root.TagConstraint())
	}
	title := pt.NodeByLabel("$2")
	if title.Axis != Child || len(title.Preds) != 2 {
		t.Errorf("$2 = axis %v preds %v", title.Axis, title.Preds)
	}
	if g, ok := title.Preds[1].(ContentGlob); !ok || g.Pattern != "*Transaction*" {
		t.Errorf("glob = %v", title.Preds[1])
	}
}

func TestParseTreeRoundTripsString(t *testing.T) {
	// Every construct: axes, all predicate kinds, depth > 2.
	root := NewNode("$1", TagEq{Tag: "doc_root"})
	art := root.AddChild(Descendant, NewNode("$2",
		TagEq{Tag: "article"}, AttrEq{Name: "id", Value: `x"1`}, AttrExists{Name: "lang"}))
	art.AddChild(Child, NewNode("$3", ContentEq{Value: "Jack & Jill"}))
	art.AddChild(Child, NewNode("$4", ContentCmp{Op: Ge, Value: "1999"}))
	y := art.AddChild(Descendant, NewNode("$5", ContentCmp{Op: Ne, Value: "x"}))
	y.AddChild(Child, NewNode("$6", ContentGlob{Pattern: "*a*"}))
	orig := MustTree(root)

	parsed, err := ParseTree(orig.String())
	if err != nil {
		t.Fatalf("parse of rendered pattern: %v\n%s", err, orig)
	}
	if parsed.String() != orig.String() {
		t.Errorf("round trip:\n--- orig ---\n%s--- parsed ---\n%s", orig, parsed)
	}
}

func TestParseTreeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"two roots", "$1\n$2"},
		{"missing axis", "$1\n  $2"},
		{"odd indent", "$1\n   pc $2"},
		{"depth jump", "$1\n    pc $2"},
		{"unterminated preds", "$1 [tag=a"},
		{"bad predicate", "$1 [wibble=3]"},
		{"bad quote", `$1 [content="unterminated]`},
		{"missing label", "$1\n  pc [tag=a]"},
		{"duplicate labels", "$1\n  pc $1"},
		{"bad content op", `$1 [content?"x"]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTree(tc.src); err == nil {
				t.Errorf("ParseTree(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseTreeSiblingsAfterDescent(t *testing.T) {
	pt, err := ParseTree(`
$1 [tag=a]
  pc $2 [tag=b]
    ad $3 [tag=c]
  pc $4 [tag=d]
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(pt.Root.Children))
	}
	if pt.NodeByLabel("$4").Parent != pt.Root {
		t.Error("$4 should be the root's child after popping back")
	}
	if pt.NodeByLabel("$3").Parent != pt.NodeByLabel("$2") {
		t.Error("$3 should nest under $2")
	}
}

func TestMustParseTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseTree should panic on bad input")
		}
	}()
	MustParseTree("not a pattern")
}

func TestParseTreeAmpInsideQuotes(t *testing.T) {
	pt, err := ParseTree(`$1 [tag=x & content="a & b"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Root.Preds) != 2 {
		t.Fatalf("preds = %v", pt.Root.Preds)
	}
	if eq, ok := pt.Root.Preds[1].(ContentEq); !ok || eq.Value != "a & b" {
		t.Errorf("content pred = %v", pt.Root.Preds[1])
	}
}
