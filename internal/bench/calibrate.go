package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"timber/internal/dblpgen"
	"timber/internal/engine"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/storage"
)

// CalibrationQuantity summarizes the planner's estimation error for
// one estimated quantity (one plan_estimate label) across a journal's
// worth of executions.
type CalibrationQuantity struct {
	Quantity string `json:"quantity"`
	Samples  int    `json:"samples"`
	// MeanRelErr / MedianRelErr / MaxRelErr aggregate the per-event
	// relative errors (|est - actual| / max(actual, 1)).
	MeanRelErr   float64 `json:"mean_rel_err"`
	MedianRelErr float64 `json:"median_rel_err"`
	MaxRelErr    float64 `json:"max_rel_err"`
	// Bias is the geometric mean of actual/estimate: > 1 means the
	// planner systematically underestimates, < 1 overestimates. A
	// +1 smoothing on both sides keeps zero counts finite.
	Bias float64 `json:"bias"`
	// SuggestedScale is the multiplier that would zero the geometric
	// bias — the calibration knob for the estimate (or the cost
	// constant it feeds).
	SuggestedScale float64 `json:"suggested_scale"`
	// Suggestion says what to do about it, in words.
	Suggestion string `json:"suggestion"`
}

// CalibrationReport is the -calibrate output: per-quantity planner
// estimation accuracy recovered from plan_estimate journal events.
type CalibrationReport struct {
	// Source names where the events came from (a dump path, or
	// "self-calibration").
	Source string `json:"source"`
	// Lines and Events count the journal lines read and the
	// plan_estimate events among them.
	Lines  int `json:"lines"`
	Events int `json:"events"`

	Quantities []CalibrationQuantity `json:"quantities"`
}

// dumpLine matches both journal serializations: the crash-dump wrapper
// {"kind": "event", "payload": {...}} and the bare /debug/events line
// {...}. Unknown kinds (flight records, anomalies) are skipped.
type dumpLine struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
	// Bare-event fields, used when Kind is empty.
	Type  string  `json:"type"`
	Label string  `json:"label"`
	Count int64   `json:"count"`
	Aux   int64   `json:"aux"`
	Value float64 `json:"value"`
}

// ReadCalibration parses a journal dump (crash-dump JSONL or
// /debug/events output), extracts the plan_estimate events — estimate
// in count, actual in aux, relative error in value, quantity in label
// — and summarizes the planner's estimation accuracy per quantity.
func ReadCalibration(r io.Reader) (*CalibrationReport, error) {
	rep := &CalibrationReport{}
	type sample struct{ est, actual, relErr float64 }
	byQuantity := map[string][]sample{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rep.Lines++
		var dl dumpLine
		if err := json.Unmarshal(line, &dl); err != nil {
			return nil, fmt.Errorf("bench: calibrate: line %d: %v", rep.Lines, err)
		}
		if dl.Kind != "" {
			// Dump wrapper: only event payloads can carry plan_estimate.
			if dl.Kind != "event" {
				continue
			}
			if err := json.Unmarshal(dl.Payload, &dl); err != nil {
				return nil, fmt.Errorf("bench: calibrate: line %d payload: %v", rep.Lines, err)
			}
		}
		if dl.Type != "plan_estimate" || dl.Label == "" {
			continue
		}
		rep.Events++
		byQuantity[dl.Label] = append(byQuantity[dl.Label],
			sample{est: float64(dl.Count), actual: float64(dl.Aux), relErr: dl.Value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Events == 0 {
		return nil, fmt.Errorf("bench: calibrate: no plan_estimate events in %d lines — run auto-strategy queries with the journal on first", rep.Lines)
	}

	for quantity, samples := range byQuantity {
		q := CalibrationQuantity{Quantity: quantity, Samples: len(samples)}
		errs := make([]float64, len(samples))
		logBias := 0.0
		for i, s := range samples {
			errs[i] = s.relErr
			q.MeanRelErr += s.relErr
			if s.relErr > q.MaxRelErr {
				q.MaxRelErr = s.relErr
			}
			logBias += math.Log((s.actual + 1) / (s.est + 1))
		}
		q.MeanRelErr /= float64(len(samples))
		sort.Float64s(errs)
		q.MedianRelErr = errs[len(errs)/2]
		q.Bias = math.Exp(logBias / float64(len(samples)))
		q.SuggestedScale = q.Bias
		switch {
		case q.Bias > 1.25:
			q.Suggestion = fmt.Sprintf("planner underestimates %s by ~%.2fx; scale the %s estimate (or the cost constants it feeds) up by that factor, or re-run ANALYZE for fresher distinct-value counts", quantity, q.Bias, quantity)
		case q.Bias < 0.8:
			q.Suggestion = fmt.Sprintf("planner overestimates %s by ~%.2fx; scale the %s estimate down by %.2fx, or re-run ANALYZE for fresher distinct-value counts", quantity, 1/q.Bias, quantity, 1/q.Bias)
		default:
			q.Suggestion = fmt.Sprintf("%s estimates are unbiased within 25%%; no cost-constant change indicated", quantity)
		}
		rep.Quantities = append(rep.Quantities, q)
	}
	sort.Slice(rep.Quantities, func(a, b int) bool { return rep.Quantities[a].Quantity < rep.Quantities[b].Quantity })
	return rep, nil
}

// ReadCalibrationFile is ReadCalibration over a dump file on disk.
func ReadCalibrationFile(path string) (*CalibrationReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadCalibration(f)
	if err != nil {
		return nil, err
	}
	rep.Source = path
	return rep, nil
}

// RunSelfCalibration produces calibration input when no journal dump
// exists: it builds a synthetic database with the event journal wired
// in, runs the Section 6 queries under the auto planner (each
// stats-informed execution emits one plan_estimate event), then feeds
// the journal's own dump through the same reader the -calibrate flag
// uses on operator-supplied files.
func RunSelfCalibration(articles, poolMB int, seed int64, logf func(format string, args ...any)) (*CalibrationReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if articles <= 0 {
		articles = 2000
	}
	if poolMB <= 0 {
		poolMB = 32
	}
	journal := obs.NewJournal(obs.DefaultJournalEvents)
	db, err := storage.CreateTemp(storage.Options{
		PoolPages: poolMB * 1024 * 1024 / pagestore.DefaultPageSize,
		Journal:   journal,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: articles, Seed: seed}); err != nil {
		return nil, err
	}

	eng := engine.New(db, engine.Options{})
	ctx := context.Background()
	for _, text := range []string{Query1Text, QueryCountText} {
		pq, err := eng.Prepare(text)
		if err != nil {
			return nil, err
		}
		// Three auto executions per query: repeated samples damp the
		// run-to-run noise in the actuals without new machinery.
		for i := 0; i < 3; i++ {
			if _, err := pq.Execute(ctx, engine.ExecOptions{}); err != nil {
				return nil, err
			}
		}
	}
	logf("self-calibration: %d articles, %d journal events", articles, journal.Seq())

	var buf bytes.Buffer
	if err := journal.WriteDump(&buf); err != nil {
		return nil, err
	}
	rep, err := ReadCalibration(&buf)
	if err != nil {
		return nil, err
	}
	rep.Source = "self-calibration"
	return rep, nil
}

// CalibrationTable renders the report as the aligned text table the
// -calibrate flag prints.
func CalibrationTable(r *CalibrationReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %8s\n", "quantity", "samples", "mean relerr", "med relerr", "max relerr", "bias")
	for _, q := range r.Quantities {
		fmt.Fprintf(&b, "%-12s %8d %12.3f %12.3f %12.3f %8.2f\n",
			q.Quantity, q.Samples, q.MeanRelErr, q.MedianRelErr, q.MaxRelErr, q.Bias)
	}
	for _, q := range r.Quantities {
		fmt.Fprintf(&b, "  %s\n", q.Suggestion)
	}
	return b.String()
}

// WriteJSON writes the report, indented, to path.
func (r *CalibrationReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
