package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"timber/internal/exec"
	"timber/internal/storage"
)

// This file measures the streaming-executor memory claim of the
// iterator refactor: identifier-only batches with late value
// materialization should cut both the buffer-pool fetch count and the
// peak live heap of the groupby plan against the naive materializing
// plan — and a counts-only query must finish without materializing a
// single title value ("we can perform the count without physically
// instantiating the elements", Sec. 5.3).

// StreamPlanMeasure is one plan's measurement under the streaming
// experiment.
type StreamPlanMeasure struct {
	Plan          string  `json:"plan"`
	WallMS        float64 `json:"wall_ms"`
	PoolFetches   uint64  `json:"pool_fetches"`
	PhysicalReads uint64  `json:"physical_reads"`
	// PeakHeapBytes is the sampled peak of runtime HeapAlloc above the
	// pre-run (post-GC) baseline — the live intermediate state the plan
	// holds, since the shared buffer pool is allocated up front.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	ValueLookups  int    `json:"value_lookups"`
	IndexPostings int    `json:"index_postings"`
	Groups        int    `json:"groups"`
}

// StreamQueryReport compares the plans on one query.
type StreamQueryReport struct {
	Query string              `json:"query"`
	Plans []StreamPlanMeasure `json:"plans"`
	// Reductions of the streaming groupby versus the naive direct plan.
	FetchReductionVsNaivePct float64 `json:"fetch_reduction_vs_naive_pct"`
	HeapReductionVsNaivePct  float64 `json:"heap_reduction_vs_naive_pct"`
}

// StreamReport is the machine-readable record the experiments binary
// writes as BENCH_streaming.json.
type StreamReport struct {
	Benchmark string              `json:"benchmark"`
	Articles  int                 `json:"articles"`
	PoolPages int                 `json:"pool_pages"`
	Queries   []StreamQueryReport `json:"queries"`
	// CountNoTitleMaterialization asserts the identifier-only count:
	// the count query's streaming value look-ups equal the
	// materializing reference's (grouping values only) and sit far
	// below the titles query's, which pays one look-up per output
	// title.
	CountNoTitleMaterialization bool   `json:"count_no_title_materialization"`
	Note                        string `json:"note,omitempty"`
}

// streamPlans are the three compared plans: the naive materializing
// direct plan, the materializing groupby reference, and the streaming
// iterator groupby.
var streamPlans = []struct {
	name  string
	strat exec.Strategy
}{
	{"direct (naive, materializing)", exec.StrategyDirect},
	{"groupby (materializing reference)", exec.StrategyGroupByMat},
	{"groupby (streaming iterators)", exec.StrategyGroupBy},
}

// heapSampler polls the runtime heap while a measurement runs and
// records the peak HeapAlloc above its post-GC baseline.
type heapSampler struct {
	base uint64
	peak uint64
	stop chan struct{}
	wg   sync.WaitGroup
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := &heapSampler{base: ms.HeapAlloc, peak: ms.HeapAlloc, stop: make(chan struct{})}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

// finish stops sampling and returns the peak heap growth in bytes.
func (h *heapSampler) finish() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	close(h.stop)
	h.wg.Wait()
	if h.peak < h.base {
		return 0
	}
	return h.peak - h.base
}

// measureStreamPlan runs one plan cold (pool dropped, counters reset)
// under the heap sampler.
func measureStreamPlan(db *storage.DB, q *Query, name string, strat exec.Strategy) (StreamPlanMeasure, error) {
	if err := db.DropCache(); err != nil {
		return StreamPlanMeasure{}, err
	}
	db.ResetStats()
	spec := q.Spec
	spec.Strategy = strat
	h := startHeapSampler()
	start := time.Now()
	res, err := exec.Run(db, spec, exec.Options{})
	wall := time.Since(start)
	peak := h.finish()
	if err != nil {
		return StreamPlanMeasure{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	pool := db.Stats()
	return StreamPlanMeasure{
		Plan:          name,
		WallMS:        float64(wall.Microseconds()) / 1000,
		PoolFetches:   pool.Fetches,
		PhysicalReads: pool.PhysicalReads,
		PeakHeapBytes: peak,
		ValueLookups:  res.Stats.ValueLookups,
		IndexPostings: res.Stats.IndexPostings,
		Groups:        res.Stats.Groups,
	}, nil
}

// RunStreamExperiment measures the three plans on the titles and count
// queries and derives the reduction figures.
func RunStreamExperiment(db *storage.DB, articles, poolPages int) (*StreamReport, error) {
	rep := &StreamReport{
		Benchmark: "streaming executor: identifier batches + late materialization",
		Articles:  articles,
		PoolPages: poolPages,
		Note:      "peak_heap_bytes samples HeapAlloc above a post-GC baseline; pool_fetches are logical buffer-pool reads",
	}
	queries := []struct{ name, text string }{
		{"titles", Query1Text},
		{"count", QueryCountText},
	}
	byQuery := map[string]map[string]StreamPlanMeasure{}
	for _, qd := range queries {
		q, err := BuildQuery(qd.text)
		if err != nil {
			return nil, err
		}
		qr := StreamQueryReport{Query: qd.name}
		byQuery[qd.name] = map[string]StreamPlanMeasure{}
		for _, p := range streamPlans {
			m, err := measureStreamPlan(db, q, p.name, p.strat)
			if err != nil {
				return nil, err
			}
			qr.Plans = append(qr.Plans, m)
			byQuery[qd.name][p.name] = m
		}
		naive := qr.Plans[0]
		streaming := qr.Plans[len(qr.Plans)-1]
		if naive.PoolFetches > 0 {
			qr.FetchReductionVsNaivePct = 100 * (1 - float64(streaming.PoolFetches)/float64(naive.PoolFetches))
		}
		if naive.PeakHeapBytes > 0 {
			qr.HeapReductionVsNaivePct = 100 * (1 - float64(streaming.PeakHeapBytes)/float64(naive.PeakHeapBytes))
		}
		rep.Queries = append(rep.Queries, qr)
	}
	countStream := byQuery["count"]["groupby (streaming iterators)"]
	countMat := byQuery["count"]["groupby (materializing reference)"]
	titlesStream := byQuery["titles"]["groupby (streaming iterators)"]
	rep.CountNoTitleMaterialization = countStream.ValueLookups == countMat.ValueLookups &&
		countStream.ValueLookups < titlesStream.ValueLookups
	return rep, nil
}

// WriteJSONFile writes the report, indented, to path.
func (r *StreamReport) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// StreamTable renders the report as an aligned text table.
func StreamTable(r *StreamReport) string {
	var b []byte
	for _, qr := range r.Queries {
		b = append(b, fmt.Sprintf("--- %s ---\n", qr.Query)...)
		b = append(b, fmt.Sprintf("%-36s %10s %12s %14s %13s %8s\n",
			"plan", "wall ms", "pool fetches", "peak heap KiB", "value lookups", "groups")...)
		for _, m := range qr.Plans {
			b = append(b, fmt.Sprintf("%-36s %10.1f %12d %14.1f %13d %8d\n",
				m.Plan, m.WallMS, m.PoolFetches, float64(m.PeakHeapBytes)/1024, m.ValueLookups, m.Groups)...)
		}
		b = append(b, fmt.Sprintf("streaming vs naive: fetches %+.1f%%, peak heap %+.1f%%\n",
			-qr.FetchReductionVsNaivePct, -qr.HeapReductionVsNaivePct)...)
	}
	b = append(b, fmt.Sprintf("count identifier-only (no title materialization): %v\n", r.CountNoTitleMaterialization)...)
	return string(b)
}
