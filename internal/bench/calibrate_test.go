package bench

import (
	"strings"
	"testing"
)

// TestReadCalibration parses both journal serializations — the
// crash-dump {"kind","payload"} wrapper and bare /debug/events lines —
// skips non-estimate noise, and computes the per-quantity summaries.
func TestReadCalibration(t *testing.T) {
	dump := strings.Join([]string{
		`{"kind":"event","payload":{"seq":1,"type":"plan_decision","label":"groupby","value":100,"count":3}}`,
		`{"kind":"event","payload":{"seq":2,"type":"plan_estimate","label":"groups","count":50,"aux":100,"value":0.5}}`,
		`{"kind":"flight","payload":{"qid":"q1"}}`,
		`{"seq":3,"type":"plan_estimate","label":"groups","count":40,"aux":100,"value":0.6}`,
		`{"seq":4,"type":"plan_estimate","label":"rows","count":100,"aux":100,"value":0}`,
		``,
	}, "\n")
	rep, err := ReadCalibration(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 3 || rep.Lines != 5 {
		t.Errorf("events = %d lines = %d, want 3 and 5", rep.Events, rep.Lines)
	}
	if len(rep.Quantities) != 2 || rep.Quantities[0].Quantity != "groups" || rep.Quantities[1].Quantity != "rows" {
		t.Fatalf("quantities = %+v", rep.Quantities)
	}
	groups := rep.Quantities[0]
	if groups.Samples != 2 || groups.MaxRelErr != 0.6 || groups.MeanRelErr != 0.55 {
		t.Errorf("groups summary = %+v", groups)
	}
	if groups.Bias <= 1.25 || !strings.Contains(groups.Suggestion, "underestimates") {
		t.Errorf("underestimated quantity not flagged: %+v", groups)
	}
	rows := rep.Quantities[1]
	if rows.Bias < 0.8 || rows.Bias > 1.25 || !strings.Contains(rows.Suggestion, "unbiased") {
		t.Errorf("unbiased quantity mis-summarized: %+v", rows)
	}
	if !strings.Contains(CalibrationTable(rep), "groups") {
		t.Error("table missing quantity row")
	}
}

// TestReadCalibrationEmpty: a dump without plan_estimate events is an
// error, not a vacuous report.
func TestReadCalibrationEmpty(t *testing.T) {
	if _, err := ReadCalibration(strings.NewReader(`{"seq":1,"type":"plan_decision","label":"groupby"}`)); err == nil {
		t.Error("no-estimate dump should fail")
	}
}

// TestRunSelfCalibration: the no-dump fallback builds its own journal,
// emits plan_estimate events through real auto executions, and the
// report flows through the same reader as operator dumps.
func TestRunSelfCalibration(t *testing.T) {
	rep, err := RunSelfCalibration(300, 8, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "self-calibration" || rep.Events == 0 {
		t.Fatalf("report = %+v", rep)
	}
	found := false
	for _, q := range rep.Quantities {
		if q.Quantity == "groups" && q.Samples >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no groups quantity with repeated samples: %+v", rep.Quantities)
	}
}
