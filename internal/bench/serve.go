package bench

import (
	"encoding/json"
	"os"
)

// ServeReport is the machine-readable record of timber-serve's hammer
// mode (BENCH_serve.json): end-to-end /query latency under concurrent
// HTTP load. The quantiles come from the server's own
// http_request_seconds histogram — the same series a Prometheus
// scrape sees — not from client-side timers, so the report and the
// exposition agree by construction.
type ServeReport struct {
	Benchmark string `json:"benchmark"`
	// Requests is the number of /query requests fired; Errors counts
	// non-200 responses and transport failures among them.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Clients is the concurrent client count.
	Clients    int `json:"clients"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// WallNS is the whole hammer's wall time; ThroughputRPS is
	// Requests/Wall.
	WallNS        int64   `json:"wall_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanMS and the quantiles describe the server-side request
	// latency distribution. Quantiles are histogram estimates
	// (linear interpolation within a log-spaced bucket).
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	// Note records measurement caveats.
	Note string `json:"note,omitempty"`
}

// WriteJSON writes the report, indented, to path.
func (r *ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
