package bench

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"timber/internal/dblpgen"
	"timber/internal/exec"
)

func TestBuildQuery(t *testing.T) {
	q, err := BuildQuery(Query1Text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec.Mode != exec.Titles || q.Spec.MemberTag != "article" {
		t.Errorf("spec = %+v", q.Spec)
	}
	qc, err := BuildQuery(QueryCountText)
	if err != nil {
		t.Fatal(err)
	}
	if qc.Spec.Mode != exec.Count {
		t.Errorf("count spec = %+v", qc.Spec)
	}
	if _, err := BuildQuery("not a query"); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := BuildQuery(`FOR $a IN distinct-values(document("d")//x) RETURN <r>{$a}</r>`); err == nil {
		t.Error("non-grouping query should fail to build (no rewrite)")
	}
}

func TestRunExperimentAllStrategiesAgree(t *testing.T) {
	db, err := SetupDB(256)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 400, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{Query1Text, QueryCountText} {
		q, err := BuildQuery(text)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := RunExperiment(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 5 {
			t.Fatalf("measurements = %d", len(ms))
		}
		// Every strategy reports the same number of groups.
		for _, m := range ms[1:] {
			if m.Groups != ms[0].Groups {
				t.Errorf("%s groups = %d, %s groups = %d", ms[0].Name, ms[0].Groups, m.Name, m.Groups)
			}
		}
		if ms[0].Groups == 0 {
			t.Error("no groups produced")
		}
		// Cold-cache runs must have performed physical reads.
		for _, m := range ms {
			if m.Pool.PhysicalReads == 0 {
				t.Errorf("%s: no physical reads on a cold cache", m.Name)
			}
		}
		// The identifier plan does strictly fewer value look-ups than
		// the replicating strawman and the nested-loops direct plan.
		byName := map[string]Measurement{}
		for _, m := range ms {
			byName[m.Name] = m
		}
		gb := byName[StratGroupBy]
		if gb.Exec.ValueLookups >= byName[StratGroupByReplic].Exec.ValueLookups {
			t.Error("identifier plan should populate fewer values than replicating plan")
		}
		if gb.Exec.ValueLookups >= byName[StratDirectNested].Exec.ValueLookups {
			t.Error("identifier plan should populate fewer values than the nested-loops plan")
		}
		if gb.Exec.ValueLookups >= byName[StratDirectNaive].Exec.ValueLookups {
			t.Error("identifier plan should populate fewer values than the naive materialized plan")
		}
	}
}

func TestResultsMatchAcrossStrategies(t *testing.T) {
	db, err := SetupDB(256)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 150, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery(Query1Text)
	if err != nil {
		t.Fatal(err)
	}
	render := func(res *exec.Result) []string {
		var out []string
		for _, tr := range res.Trees {
			var b strings.Builder
			for _, c := range tr.Children {
				b.WriteString(c.Tag + "=" + c.Content + ";")
			}
			out = append(out, b.String())
		}
		sort.Strings(out)
		return out
	}
	runStrat := func(strat exec.Strategy) *exec.Result {
		t.Helper()
		spec := q.Spec
		spec.Strategy = strat
		res, err := exec.Run(db, spec, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := render(runStrat(exec.StrategyDirectNested))
	for name, strat := range map[string]exec.Strategy{
		"materialized": exec.StrategyDirect, "batch": exec.StrategyDirectBatch,
		"groupby": exec.StrategyGroupBy, "replicating": exec.StrategyReplicating,
	} {
		if got := render(runStrat(strat)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s result differs from nested-loops direct result", name)
		}
	}
}

func TestTable(t *testing.T) {
	db, err := SetupDB(128)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 50, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery(Query1Text)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunExperiment(db, q)
	if err != nil {
		t.Fatal(err)
	}
	s := Table(ms, StratDirectNaive)
	if !strings.Contains(s, StratGroupBy) || !strings.Contains(s, "1.00x") {
		t.Errorf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 {
		t.Errorf("table rows = %d", len(lines))
	}
}

func TestMeasureColdCache(t *testing.T) {
	db, err := SetupDB(128)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 100, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery(Query1Text)
	if err != nil {
		t.Fatal(err)
	}
	// Warm everything.
	if _, err := exec.Run(db, q.Spec, exec.Options{}); err != nil {
		t.Fatal(err)
	}
	m, err := Measure(db, "x", func() (*exec.Result, error) { return exec.Run(db, q.Spec, exec.Options{}) })
	if err != nil {
		t.Fatal(err)
	}
	if m.Pool.PhysicalReads == 0 {
		t.Error("Measure should start from a cold cache")
	}
	if m.Wall <= 0 {
		t.Error("no wall time recorded")
	}
}
