package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/storage"
)

// MeasureObs is Measure with per-operator tracing: the run starts from
// a cold pool and zeroed counters, executes under a fresh tracer, and
// the finished span tree is verified against the database's global
// counters before the measurement is returned — a benchmark run whose
// trace does not telescope to the global stats is an instrumentation
// bug, not a data point.
func MeasureObs(db *storage.DB, name string, fn func(tr *obs.Tracer) (*exec.Result, error)) (Measurement, error) {
	if err := db.DropCache(); err != nil {
		return Measurement{}, err
	}
	db.ResetStats()
	tr := db.NewTracer(name)
	start := time.Now()
	res, err := fn(tr)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	wall := time.Since(start)
	data := tr.Finish()
	if verr := data.Verify(db.TraceCounters()); verr != nil {
		return Measurement{}, fmt.Errorf("bench: %s: trace verification: %w", name, verr)
	}
	return Measurement{
		Name:   name,
		Wall:   wall,
		Pool:   db.Stats(),
		Exec:   res.Stats,
		Groups: res.Stats.Groups,
		Trace:  data,
	}, nil
}

// RunExperimentTraced is RunExperiment with every strategy executed
// under a verified tracer; each Measurement carries its span tree.
func RunExperimentTraced(db *storage.DB, q *Query) ([]Measurement, error) {
	var out []Measurement
	for _, s := range strategies {
		spec := q.Spec
		spec.Strategy = s.strat
		m, err := MeasureObs(db, s.name, func(tr *obs.Tracer) (*exec.Result, error) {
			return exec.Run(db, spec, exec.Options{Tracer: tr})
		})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// TraceEntry pairs one strategy's measurement with its span tree in
// the JSON trace report.
type TraceEntry struct {
	Experiment string        `json:"experiment"`
	Strategy   string        `json:"strategy"`
	WallNS     int64         `json:"wall_ns"`
	Groups     int           `json:"groups"`
	Trace      *obs.SpanData `json:"trace"`
}

// TraceReport is the JSON document cmd/experiments writes next to the
// BENCH_*.json files: per-operator breakdowns for every strategy of
// every experiment run.
type TraceReport struct {
	Articles int          `json:"articles,omitempty"`
	Entries  []TraceEntry `json:"entries"`
}

// AddMeasurements appends the traced measurements of one experiment.
func (r *TraceReport) AddMeasurements(experiment string, ms []Measurement) {
	for _, m := range ms {
		if m.Trace == nil {
			continue
		}
		r.Entries = append(r.Entries, TraceEntry{
			Experiment: experiment,
			Strategy:   m.Name,
			WallNS:     int64(m.Wall),
			Groups:     m.Groups,
			Trace:      m.Trace,
		})
	}
}

// WriteJSON writes the report to path, indented for diffing.
func (r *TraceReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
