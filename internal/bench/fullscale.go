package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"timber/internal/dblpgen"
	"timber/internal/exec"
	"timber/internal/pagestore"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// The full-scale ladder measures what the compressed on-disk formats
// (varint posting blocks, compact node records, page codec) buy at the
// paper's DBLP scale: for each article count it builds the same
// synthetic database twice — once with the compact+compressed default
// and once Uncompressed — and records bytes on disk, posting decode
// speed, and the GROUPBY experiments' wall time and pool fetches for
// both. Result hashes pin byte-identical query output across formats.

// FullScaleQuery is one timed GROUPBY run within a variant.
type FullScaleQuery struct {
	// ID is the experiment name: e1 (titles) or e2 (count).
	ID string `json:"id"`
	// WallNS is the cold-pool wall time of the streaming GROUPBY plan.
	WallNS int64 `json:"wall_ns"`
	// Fetches is the buffer-pool fetch count for the run.
	Fetches uint64 `json:"pool_fetches"`
	// Groups is the number of result trees.
	Groups int `json:"groups"`
	// ResultHash is the FNV-64a hash of the serialized result trees;
	// the two variants of a scale must agree on it.
	ResultHash string `json:"result_hash"`
}

// FullScaleVariant is one storage format's measurements at one scale.
type FullScaleVariant struct {
	Name string `json:"name"`
	// LoadMS is the generate-and-bulk-load wall time.
	LoadMS int64 `json:"load_ms"`
	// Size is the bytes-on-disk breakdown.
	Size storage.SizeInfo `json:"size"`
	// AuthorPostings is the author posting-list length, and
	// DecodeNSPerPosting the warm-pool cost of decoding one posting
	// from it (index traversal included).
	AuthorPostings     int              `json:"author_postings"`
	DecodeNSPerPosting float64          `json:"decode_ns_per_posting"`
	Queries            []FullScaleQuery `json:"queries"`
}

// FullScalePoint compares the two variants at one article count.
type FullScalePoint struct {
	Articles int `json:"articles"`
	Nodes    int `json:"nodes"`

	Compressed   FullScaleVariant `json:"compressed"`
	Uncompressed FullScaleVariant `json:"uncompressed"`

	// IndexReductionPct and TotalReductionPct are the compressed
	// variant's bytes-on-disk savings (100 * (1 - compressed/plain)).
	IndexReductionPct float64 `json:"index_reduction_pct"`
	TotalReductionPct float64 `json:"total_reduction_pct"`
	// GroupbyE1Speedup is uncompressed E1 wall over compressed E1 wall
	// (>= 1 means compression did not cost query time).
	GroupbyE1Speedup float64 `json:"groupby_e1_speedup"`
}

// FullScaleReport is the BENCH_fullscale.json document.
type FullScaleReport struct {
	PoolMB int              `json:"pool_mb"`
	Seed   int64            `json:"seed"`
	Scales []FullScalePoint `json:"scales"`
}

// fullScaleQueries are the two Sec. 6 experiments, run with the
// streaming GROUPBY plan only — the ladder measures storage formats,
// not plan choice.
var fullScaleQueries = []struct{ id, text string }{
	{"e1", Query1Text},
	{"e2", QueryCountText},
}

// RunFullScale builds and measures both variants at every scale. logf,
// when non-nil, receives progress lines (a full-paper-scale build
// takes minutes).
func RunFullScale(scales []int, poolMB int, seed int64, logf func(format string, args ...any)) (*FullScaleReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if poolMB <= 0 {
		poolMB = 32
	}
	poolPages := poolMB * 1024 * 1024 / pagestore.DefaultPageSize
	rep := &FullScaleReport{PoolMB: poolMB, Seed: seed}
	for _, articles := range scales {
		cfg := dblpgen.Config{Articles: articles, Seed: seed}
		pt := FullScalePoint{Articles: articles}
		var err error
		if pt.Compressed, pt.Nodes, err = measureFullVariant("compressed", cfg, poolPages, false, logf); err != nil {
			return nil, err
		}
		if pt.Uncompressed, _, err = measureFullVariant("uncompressed", cfg, poolPages, true, logf); err != nil {
			return nil, err
		}
		for i, q := range pt.Compressed.Queries {
			if u := pt.Uncompressed.Queries[i]; q.ResultHash != u.ResultHash {
				return nil, fmt.Errorf("bench: fullscale %d articles %s: compressed result hash %s != uncompressed %s",
					articles, q.ID, q.ResultHash, u.ResultHash)
			}
		}
		pt.IndexReductionPct = reductionPct(pt.Compressed.Size.IndexBytes, pt.Uncompressed.Size.IndexBytes)
		pt.TotalReductionPct = reductionPct(pt.Compressed.Size.TotalBytes, pt.Uncompressed.Size.TotalBytes)
		if cw := pt.Compressed.Queries[0].WallNS; cw > 0 {
			pt.GroupbyE1Speedup = float64(pt.Uncompressed.Queries[0].WallNS) / float64(cw)
		}
		logf("scale %d: index -%.1f%%, total -%.1f%%, E1 speedup %.2fx",
			articles, pt.IndexReductionPct, pt.TotalReductionPct, pt.GroupbyE1Speedup)
		rep.Scales = append(rep.Scales, pt)
	}
	return rep, nil
}

func reductionPct(compressed, plain uint64) float64 {
	if plain == 0 {
		return 0
	}
	return 100 * (1 - float64(compressed)/float64(plain))
}

func measureFullVariant(name string, cfg dblpgen.Config, poolPages int, uncompressed bool, logf func(string, ...any)) (v FullScaleVariant, nodes int, err error) {
	v.Name = name
	db, err := storage.CreateTemp(storage.Options{
		PageSize:     pagestore.DefaultPageSize,
		PoolPages:    poolPages,
		Uncompressed: uncompressed,
	})
	if err != nil {
		return v, 0, err
	}
	defer func() {
		if cerr := db.Close(); err == nil {
			err = cerr
		}
	}()

	start := time.Now()
	stats, err := dblpgen.GenerateToDB(db, cfg)
	if err != nil {
		return v, 0, err
	}
	v.LoadMS = time.Since(start).Milliseconds()
	nodes = stats.Nodes
	logf("%s %d articles: loaded %v in %v", name, cfg.Articles, stats, time.Since(start).Round(time.Millisecond))

	if v.Size, err = db.SizeInfo(); err != nil {
		return v, 0, err
	}

	// Posting decode cost: one warm-up pass faults the list in, the
	// timed pass measures traversal + decode alone.
	if _, err = db.TagPostings("author"); err != nil {
		return v, 0, err
	}
	t0 := time.Now()
	ps, err := db.TagPostings("author")
	if err != nil {
		return v, 0, err
	}
	decode := time.Since(t0)
	v.AuthorPostings = len(ps)
	if len(ps) > 0 {
		v.DecodeNSPerPosting = float64(decode.Nanoseconds()) / float64(len(ps))
	}

	for _, fq := range fullScaleQueries {
		q, err := BuildQuery(fq.text)
		if err != nil {
			return v, 0, err
		}
		spec := q.Spec
		spec.Strategy = exec.StrategyGroupBy
		var trees []*xmltree.Node
		m, err := Measure(db, fq.id, func() (*exec.Result, error) {
			res, err := exec.Run(db, spec, exec.Options{})
			if res != nil {
				trees = res.Trees
			}
			return res, err
		})
		if err != nil {
			return v, 0, err
		}
		v.Queries = append(v.Queries, FullScaleQuery{
			ID:         fq.id,
			WallNS:     m.Wall.Nanoseconds(),
			Fetches:    m.Pool.Fetches,
			Groups:     m.Groups,
			ResultHash: hashTrees(trees),
		})
		logf("%s %d articles %s: %v, %d fetches, %d groups",
			name, cfg.Articles, fq.id, m.Wall.Round(time.Millisecond), m.Pool.Fetches, m.Groups)
	}
	return v, nodes, nil
}

// hashTrees fingerprints result trees byte-exactly (serialized form,
// in order) for cross-format equality checks.
func hashTrees(trees []*xmltree.Node) string {
	h := fnv.New64a()
	for _, tr := range trees {
		if err := xmltree.Serialize(h, tr); err != nil {
			// The fnv writer never fails; a serialize error means a
			// malformed tree, which the hash mismatch will surface.
			fmt.Fprintf(h, "!%v", err)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// AssertIndexReduction fails unless every scale's index bytes-on-disk
// shrank by at least minPct — the acceptance floor the bench-check
// target enforces.
func (r *FullScaleReport) AssertIndexReduction(minPct float64) error {
	for _, pt := range r.Scales {
		if pt.IndexReductionPct < minPct {
			return fmt.Errorf("bench: fullscale %d articles: index reduction %.1f%% below the %.1f%% floor",
				pt.Articles, pt.IndexReductionPct, minPct)
		}
	}
	return nil
}

// FullScaleTable renders the report as an aligned text table.
func FullScaleTable(r *FullScaleReport) string {
	out := fmt.Sprintf("%-10s %-13s %12s %12s %10s %12s %12s %10s\n",
		"articles", "variant", "disk MB", "index MB", "ns/post", "e1 wall", "e1 fetches", "e2 wall")
	mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
	for _, pt := range r.Scales {
		for _, v := range []FullScaleVariant{pt.Compressed, pt.Uncompressed} {
			out += fmt.Sprintf("%-10d %-13s %12.2f %12.2f %10.1f %12v %12d %10v\n",
				pt.Articles, v.Name, mb(v.Size.TotalBytes), mb(v.Size.IndexBytes),
				v.DecodeNSPerPosting,
				time.Duration(v.Queries[0].WallNS).Round(time.Millisecond), v.Queries[0].Fetches,
				time.Duration(v.Queries[1].WallNS).Round(time.Millisecond))
		}
		out += fmt.Sprintf("%-10d reduction: index -%.1f%%, total -%.1f%%, E1 speedup %.2fx\n",
			pt.Articles, pt.IndexReductionPct, pt.TotalReductionPct, pt.GroupbyE1Speedup)
	}
	return out
}

// WriteJSON writes the report, indented, to path.
func (r *FullScaleReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
