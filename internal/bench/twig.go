package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"timber/internal/match"
	"timber/internal/pagestore"
	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// twigChainPattern is the deep-chain query: four levels, descendant
// steps between them. Only a minority of bench documents contain
// <section>, so the holistic matcher can skip whole documents at
// stream alignment while the binary cascade materializes the full
// article and author posting lists first.
const twigChainPattern = `$1 [tag=doc_root]
  ad $2 [tag=article]
    ad $3 [tag=section]
      pc $4 [tag=author]`

// twigBranchPattern is the branching query every document satisfies —
// the regime where the binary cascade's greedy join order is already
// near-optimal and the two matchers should be close.
const twigBranchPattern = `$1 [tag=article]
  pc $2 [tag=title]
  pc $3 [tag=author]`

// TwigMeasurement is one matcher's cost on one pattern: the access
// counters from match.DBStats plus repeated wall times.
type TwigMeasurement struct {
	Matcher string `json:"matcher"`
	// WallNS holds every timed repetition, in run order; MedianNS is
	// the headline.
	WallNS   []int64 `json:"wall_ns"`
	MedianNS int64   `json:"median_ns"`
	// Candidates counts postings that survived stream advancement:
	// materialized candidate-list entries for the binary cascade,
	// postings considered at stream alignment for the twig matcher.
	Candidates int64 `json:"candidates"`
	// PostingsScanned counts postings decoded from the tag/value
	// indexes — the paper-units cost the planner models.
	PostingsScanned int64 `json:"postings_scanned"`
	// IntermediateBindings counts rows the matcher held between steps:
	// binary join outputs for the cascade, path solutions plus merge
	// rows for the twig matcher.
	IntermediateBindings int64 `json:"intermediate_bindings"`
	// Witnesses is the (matcher-independent) result count.
	Witnesses int `json:"witnesses"`
}

// TwigPoint compares the matchers on one pattern.
type TwigPoint struct {
	Query   string `json:"query"`
	Pattern string `json:"pattern"`
	// DeepChain marks the sparse-chain regime where the holistic
	// matcher must win on access counters (AssertTwigWins enforces it).
	DeepChain bool            `json:"deep_chain"`
	Binary    TwigMeasurement `json:"binary"`
	Twig      TwigMeasurement `json:"twig"`
	// PostingsRatio is binary/twig postings scanned (>1: twig reads
	// less of the index).
	PostingsRatio float64 `json:"postings_ratio"`
}

// TwigReport is the BENCH_twig.json shape: binary cascade vs holistic
// twig join on chain and branch patterns over a corpus where most
// documents cannot satisfy the deep chain.
type TwigReport struct {
	Docs           int     `json:"docs"`
	ArticlesPerDoc int     `json:"articles_per_doc"`
	ChainDocShare  float64 `json:"chain_doc_share"`
	Reps           int     `json:"reps"`
	Seed           int64   `json:"seed"`
	PoolMB         int     `json:"pool_mb"`

	Points []TwigPoint `json:"points"`
}

// RunTwigComparison builds a multi-document corpus in which only one
// document in eight contains the deep <article>//<section>/<author>
// chain, then runs the chain and branch patterns under both matchers,
// checking witness counts agree and recording wall time plus the
// postings-scanned / intermediate-bindings counters the planner's cost
// model is calibrated against.
func RunTwigComparison(docs, articlesPerDoc, reps, poolMB int, seed int64, logf func(format string, args ...any)) (*TwigReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if docs <= 0 {
		docs = 16
	}
	if articlesPerDoc <= 0 {
		articlesPerDoc = 200
	}
	if reps <= 0 {
		reps = 3
	}
	if poolMB <= 0 {
		poolMB = 32
	}

	db, err := storage.CreateTemp(storage.Options{PoolPages: poolMB * 1024 * 1024 / pagestore.DefaultPageSize})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// One document in eight carries the deep chain; the rest contribute
	// article/title/author postings the chain query must not touch.
	const chainEvery = 8
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for d := 0; d < docs; d++ {
		root := xmltree.E("doc_root")
		for a := 0; a < articlesPerDoc; a++ {
			art := xmltree.E("article")
			art.Append(xmltree.Elem("title", fmt.Sprintf("T%d-%d", d, a)))
			for k := 0; k <= rng.Intn(3); k++ {
				art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", rng.Intn(97))))
			}
			if d%chainEvery == 0 && a%4 == 0 {
				art.Append(xmltree.E("section", xmltree.Elem("author", fmt.Sprintf("S%d", rng.Intn(13)))))
			}
			root.Append(art)
		}
		if _, err := db.LoadDocument(fmt.Sprintf("twig%d.xml", d), root); err != nil {
			return nil, err
		}
	}
	logf("corpus: %d docs x %d articles (chain in 1/%d docs) loaded in %v",
		docs, articlesPerDoc, chainEvery, time.Since(start).Round(time.Millisecond))

	rep := &TwigReport{
		Docs:           docs,
		ArticlesPerDoc: articlesPerDoc,
		ChainDocShare:  1.0 / chainEvery,
		Reps:           reps,
		Seed:           seed,
		PoolMB:         poolMB,
	}
	for _, q := range []struct {
		name, src string
		deep      bool
	}{
		{"deep-chain", twigChainPattern, true},
		{"branch", twigBranchPattern, false},
	} {
		pt, err := pattern.ParseTree(q.src)
		if err != nil {
			return nil, err
		}
		point := TwigPoint{Query: q.name, Pattern: q.src, DeepChain: q.deep}
		if point.Binary, err = measureTwig(db, pt, match.MatcherBinary, reps); err != nil {
			return nil, err
		}
		if point.Twig, err = measureTwig(db, pt, match.MatcherTwig, reps); err != nil {
			return nil, err
		}
		if point.Binary.Witnesses != point.Twig.Witnesses {
			return nil, fmt.Errorf("bench: twig: %s witness counts diverge: binary %d, twig %d",
				q.name, point.Binary.Witnesses, point.Twig.Witnesses)
		}
		if point.Twig.PostingsScanned > 0 {
			point.PostingsRatio = float64(point.Binary.PostingsScanned) / float64(point.Twig.PostingsScanned)
		}
		rep.Points = append(rep.Points, point)
		logf("%s: %d witnesses; postings binary %d vs twig %d (%.2fx); intermediates %d vs %d; wall %v vs %v",
			q.name, point.Binary.Witnesses,
			point.Binary.PostingsScanned, point.Twig.PostingsScanned, point.PostingsRatio,
			point.Binary.IntermediateBindings, point.Twig.IntermediateBindings,
			time.Duration(point.Binary.MedianNS).Round(time.Microsecond),
			time.Duration(point.Twig.MedianNS).Round(time.Microsecond))
	}
	return rep, nil
}

// measureTwig runs one matcher reps times (plus one warm-up) and keeps
// the stats from the final repetition — the counters are deterministic
// per run, only the wall times vary.
func measureTwig(db *storage.DB, pt *pattern.Tree, kind match.MatcherKind, reps int) (m TwigMeasurement, err error) {
	if _, _, err := match.MatchKindObs(nil, db, pt, kind, 0, nil); err != nil {
		return m, err
	}
	var stats *match.DBStats
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		_, st, err := match.MatchKindObs(nil, db, pt, kind, 0, nil)
		if err != nil {
			return m, err
		}
		m.WallNS = append(m.WallNS, time.Since(t0).Nanoseconds())
		stats = st
	}
	sorted := append([]int64(nil), m.WallNS...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	m.MedianNS = sorted[len(sorted)/2]
	m.Matcher = stats.Matcher
	m.Candidates = int64(stats.Candidates)
	m.PostingsScanned = int64(stats.PostingsScanned)
	m.IntermediateBindings = int64(stats.IntermediateBindings)
	m.Witnesses = stats.Witnesses
	return m, nil
}

// AssertTwigWins enforces the tentpole's headline claim on the report:
// on every deep-chain point the holistic matcher must have found the
// same witnesses while decoding strictly fewer postings and holding
// strictly fewer intermediate bindings than the binary cascade.
func (r *TwigReport) AssertTwigWins() error {
	checked := 0
	for _, p := range r.Points {
		if !p.DeepChain {
			continue
		}
		checked++
		if p.Twig.Witnesses == 0 {
			return fmt.Errorf("bench: twig: %s produced no witnesses — the comparison is vacuous", p.Query)
		}
		if p.Twig.PostingsScanned >= p.Binary.PostingsScanned {
			return fmt.Errorf("bench: twig: %s: twig scanned %d postings, binary %d — expected strictly fewer",
				p.Query, p.Twig.PostingsScanned, p.Binary.PostingsScanned)
		}
		if p.Twig.IntermediateBindings >= p.Binary.IntermediateBindings {
			return fmt.Errorf("bench: twig: %s: twig held %d intermediate bindings, binary %d — expected strictly fewer",
				p.Query, p.Twig.IntermediateBindings, p.Binary.IntermediateBindings)
		}
	}
	if checked == 0 {
		return fmt.Errorf("bench: twig: report has no deep-chain point to check")
	}
	return nil
}

// WriteJSON writes the report, indented, to path.
func (r *TwigReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
