// Package bench is the experiment harness for the Sec. 6 reproduction:
// it builds the paper's query plans, runs each physical evaluation
// strategy against a database with cold buffer-pool state, and reports
// wall-clock times, buffer behaviour and data-access counts in aligned
// tables — the rows EXPERIMENTS.md records against the paper's numbers.
package bench

import (
	"fmt"
	"strings"
	"time"

	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/opt"
	"timber/internal/pagestore"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xq"
)

// Query1Text is the paper's Query 1 (Sec. 1): for each author, the
// titles of that author's articles.
const Query1Text = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

// QueryCountText is the Sec. 6 variant returning only the count of
// titles per author.
const QueryCountText = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {count($t)}
</authorpubs>`

// Query carries one query through every stage of the pipeline.
type Query struct {
	Text      string
	Naive     plan.Op
	Rewritten plan.Op
	Spec      exec.Spec
}

// BuildQuery parses, translates and rewrites a query text.
func BuildQuery(text string) (*Query, error) {
	ast, err := xq.Parse(text)
	if err != nil {
		return nil, err
	}
	naive, err := plan.Translate(ast)
	if err != nil {
		return nil, err
	}
	rewritten, applied, err := opt.Rewrite(naive)
	if err != nil {
		return nil, err
	}
	if !applied {
		return nil, fmt.Errorf("bench: rewrite did not apply")
	}
	spec, err := exec.SpecFromPlan(rewritten)
	if err != nil {
		return nil, err
	}
	return &Query{Text: text, Naive: naive, Rewritten: rewritten, Spec: spec}, nil
}

// Measurement is one timed plan execution.
type Measurement struct {
	Name   string
	Wall   time.Duration
	Pool   pagestore.Stats // counter delta for this run
	Exec   exec.ExecStats
	Groups int
	// Trace is the per-operator span tree when the run was traced
	// (MeasureObs / RunExperimentTraced); nil otherwise.
	Trace *obs.SpanData
}

// Measure runs fn against the database with a cold buffer pool and
// zeroed counters, so runs are comparable regardless of what executed
// before (the paper's runs likewise charge each plan its own I/O).
func Measure(db *storage.DB, name string, fn func() (*exec.Result, error)) (Measurement, error) {
	if err := db.DropCache(); err != nil {
		return Measurement{}, err
	}
	db.ResetStats()
	start := time.Now()
	res, err := fn()
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	return Measurement{
		Name:   name,
		Wall:   time.Since(start),
		Pool:   db.Stats(),
		Exec:   res.Stats,
		Groups: res.Stats.Groups,
	}, nil
}

// Strategy names used in the report tables.
const (
	StratDirectNaive   = "direct (naive plan)"
	StratDirectNested  = "direct (nested loops)"
	StratDirectBatch   = "direct (batch join)"
	StratGroupBy       = "groupby (identifier)"
	StratGroupByReplic = "groupby (replicating)"
)

// strategies maps each report row to its exec.Strategy, in table
// order (the paper's two measured plans bracketed by the variants).
var strategies = []struct {
	name  string
	strat exec.Strategy
}{
	{StratDirectNaive, exec.StrategyDirect},
	{StratDirectNested, exec.StrategyDirectNested},
	{StratDirectBatch, exec.StrategyDirectBatch},
	{StratGroupBy, exec.StrategyGroupBy},
	{StratGroupByReplic, exec.StrategyReplicating},
}

// RunExperiment executes every strategy for one query. The paper's two
// measured plans are StratDirectNaive (the naive algebra plan with
// materialized intermediates — the "direct execution of the XQuery as
// written") and StratGroupBy (the TIMBER groupby plan with identifier
// processing). The other rows bracket them: a per-binding navigational
// direct plan, a modern batch direct plan, and the Sec. 5.3
// replicating-grouping strawman.
func RunExperiment(db *storage.DB, q *Query) ([]Measurement, error) {
	var out []Measurement
	for _, s := range strategies {
		spec := q.Spec
		spec.Strategy = s.strat
		m, err := Measure(db, s.name, func() (*exec.Result, error) {
			return exec.Run(db, spec, exec.Options{})
		})
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Table renders measurements as an aligned text table, with each row's
// wall time expressed as a speed-up relative to the named baseline row
// (1.00x for the baseline itself).
func Table(ms []Measurement, baseline string) string {
	var base time.Duration
	for _, m := range ms {
		if m.Name == baseline {
			base = m.Wall
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %10s %10s %10s %12s %8s\n",
		"plan", "wall", "vs base", "fetches", "reads", "hit%", "valueLooks", "groups")
	for _, m := range ms {
		ratio := "-"
		if base > 0 && m.Wall > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(base)/float64(m.Wall))
		}
		fmt.Fprintf(&b, "%-24s %12s %8s %10d %10d %9.1f%% %12d %8d\n",
			m.Name, m.Wall.Round(time.Microsecond), ratio,
			m.Pool.Fetches, m.Pool.PhysicalReads, 100*m.Pool.HitRate(),
			m.Exec.ValueLookups, m.Groups)
	}
	return b.String()
}

// SetupDB creates a temporary database with the paper's storage
// configuration scaled by poolPages (default: the paper's 32 MB at
// 8 KB pages).
func SetupDB(poolPages int) (*storage.DB, error) {
	if poolPages == 0 {
		poolPages = 4096
	}
	return storage.CreateTemp(storage.Options{
		PageSize:  pagestore.DefaultPageSize,
		PoolPages: poolPages,
	})
}
