package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"timber/internal/exec"
	"timber/internal/storage"
)

// ParallelPoint is one parallelism setting's measurement of the
// identifier-processing groupby plan.
type ParallelPoint struct {
	// Parallelism is the worker bound (exec.Options.Parallelism).
	Parallelism int `json:"parallelism"`
	// WallNS is the best-of-reps wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Speedup is p=1 wall over this point's wall.
	Speedup float64 `json:"speedup"`
	// Fetches is the buffer-pool fetch count of the measured run —
	// identical across parallelism settings, pinning counter exactness.
	Fetches uint64 `json:"fetches"`
	// Groups is the result group count, identical across settings.
	Groups int `json:"groups"`
}

// ParallelReport is the machine-readable scaling record the
// experiments binary writes (BENCH_parallel.json).
type ParallelReport struct {
	Benchmark  string          `json:"benchmark"`
	Articles   int             `json:"articles"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Reps       int             `json:"reps"`
	Points     []ParallelPoint `json:"points"`
	// Note records measurement caveats (e.g. the host's core count
	// bounding any possible wall-clock speedup).
	Note string `json:"note,omitempty"`
}

// RunParallelScaling measures the groupby plan at each parallelism
// setting, cold pool per run, taking the best of reps runs per point.
// Speedups are relative to the first setting (conventionally 1).
func RunParallelScaling(db *storage.DB, q *Query, settings []int, reps int) (*ParallelReport, error) {
	if reps <= 0 {
		reps = 3
	}
	rep := &ParallelReport{
		Benchmark:  "E1 groupby titles",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
	}
	var base time.Duration
	for _, p := range settings {
		spec := q.Spec
		spec.Strategy = exec.StrategyGroupBy
		var best Measurement
		for r := 0; r < reps; r++ {
			m, err := Measure(db, fmt.Sprintf("p=%d", p), func() (*exec.Result, error) {
				return exec.Run(db, spec, exec.Options{Parallelism: p})
			})
			if err != nil {
				return nil, err
			}
			if r == 0 || m.Wall < best.Wall {
				best = m
			}
		}
		if base == 0 {
			base = best.Wall
		}
		rep.Points = append(rep.Points, ParallelPoint{
			Parallelism: p,
			WallNS:      best.Wall.Nanoseconds(),
			Speedup:     float64(base) / float64(best.Wall),
			Fetches:     best.Pool.Fetches,
			Groups:      best.Groups,
		})
	}
	if rep.NumCPU == 1 {
		rep.Note = "single-CPU host: worker pools interleave on one core, so CPU-bound speedup cannot manifest; any gain above 1x comes from overlapping page-store I/O. See DESIGN.md Concurrency model"
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r *ParallelReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
