package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunTwigComparison exercises the BENCH_twig pipeline at test
// scale: both patterns measure under both matchers, the deep-chain
// point satisfies the strictly-fewer-accesses claim AssertTwigWins
// enforces, and the report round-trips through WriteJSON.
func TestRunTwigComparison(t *testing.T) {
	rep, err := RunTwigComparison(16, 60, 1, 8, 2002, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Binary.Matcher != "binary" || p.Twig.Matcher != "twig" {
			t.Errorf("%s: measurements ran %q/%q", p.Query, p.Binary.Matcher, p.Twig.Matcher)
		}
		if p.Binary.Witnesses != p.Twig.Witnesses || p.Twig.Witnesses == 0 {
			t.Errorf("%s: witnesses binary %d, twig %d", p.Query, p.Binary.Witnesses, p.Twig.Witnesses)
		}
	}
	if err := rep.AssertTwigWins(); err != nil {
		t.Error(err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_twig.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back TwigReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 2 || back.Points[0].Query != "deep-chain" {
		t.Errorf("report did not round-trip: %+v", back.Points)
	}
}
