package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"timber/internal/dblpgen"
	"timber/internal/engine"
	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/storage"
)

// EventsVariant is one side of the journal-overhead comparison: E1
// wall times with the event journal off or on, over identical data.
type EventsVariant struct {
	Name string `json:"name"`
	// WallNS holds every timed repetition, in run order.
	WallNS []int64 `json:"wall_ns"`
	// MedianNS is the repetition median — the headline number; medians
	// shrug off one-off scheduler noise better than means.
	MedianNS int64 `json:"median_ns"`
	// ResultHash fingerprints the serialized result trees; both
	// variants must agree (the journal never changes results).
	ResultHash string `json:"result_hash"`
	// Events and Flights report what the journaled variant actually
	// recorded — the comparison is meaningless if nothing was emitted.
	Events  uint64 `json:"events,omitempty"`
	Flights int    `json:"flights,omitempty"`
}

// EventsReport is the BENCH_events.json shape: the measured cost of
// leaving the event journal on during query execution.
type EventsReport struct {
	Articles int           `json:"articles"`
	PoolMB   int           `json:"pool_mb"`
	Reps     int           `json:"reps"`
	Seed     int64         `json:"seed"`
	Off      EventsVariant `json:"journal_off"`
	On       EventsVariant `json:"journal_on"`
	// OverheadPct is (on - off) / off in percent, by medians. Negative
	// values mean the difference drowned in run-to-run noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// RunEventsOverhead measures the journal's query-path cost: the same
// synthetic database is built twice — once with no journal, once with
// an event journal wired through storage and engine — and E1 runs
// reps times on each through the full engine path (planner decision,
// execution, completion event, flight-record hand-off). Results must
// hash identically; the report carries the wall-time delta.
func RunEventsOverhead(articles, reps, poolMB int, seed int64, logf func(format string, args ...any)) (*EventsReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if poolMB <= 0 {
		poolMB = 32
	}
	if reps <= 0 {
		reps = 5
	}
	poolPages := poolMB * 1024 * 1024 / pagestore.DefaultPageSize
	cfg := dblpgen.Config{Articles: articles, Seed: seed}
	rep := &EventsReport{Articles: articles, PoolMB: poolMB, Reps: reps, Seed: seed}

	var err error
	if rep.Off, err = measureEventsVariant("journal_off", cfg, poolPages, nil, reps, logf); err != nil {
		return nil, err
	}
	journal := obs.NewJournal(obs.DefaultJournalEvents)
	if rep.On, err = measureEventsVariant("journal_on", cfg, poolPages, journal, reps, logf); err != nil {
		return nil, err
	}
	rep.On.Events = journal.Seq()
	rep.On.Flights = len(journal.Flights())
	if rep.On.Events == 0 {
		return nil, fmt.Errorf("bench: events: journaled run emitted no events — overhead comparison is vacuous")
	}
	if rep.Off.ResultHash != rep.On.ResultHash {
		return nil, fmt.Errorf("bench: events: journal changed results: off %s != on %s",
			rep.Off.ResultHash, rep.On.ResultHash)
	}
	if rep.Off.MedianNS > 0 {
		rep.OverheadPct = 100 * float64(rep.On.MedianNS-rep.Off.MedianNS) / float64(rep.Off.MedianNS)
	}
	logf("E1 median: off %v, on %v (%+.2f%%), %d events, %d flight records",
		time.Duration(rep.Off.MedianNS).Round(time.Microsecond),
		time.Duration(rep.On.MedianNS).Round(time.Microsecond),
		rep.OverheadPct, rep.On.Events, rep.On.Flights)
	return rep, nil
}

func measureEventsVariant(name string, cfg dblpgen.Config, poolPages int, j *obs.Journal, reps int, logf func(string, ...any)) (v EventsVariant, err error) {
	v.Name = name
	db, err := storage.CreateTemp(storage.Options{
		PageSize:  pagestore.DefaultPageSize,
		PoolPages: poolPages,
		Journal:   j,
	})
	if err != nil {
		return v, err
	}
	defer func() {
		if cerr := db.Close(); err == nil {
			err = cerr
		}
	}()

	start := time.Now()
	if _, err := dblpgen.GenerateToDB(db, cfg); err != nil {
		return v, err
	}
	logf("%s: loaded %d articles in %v", name, cfg.Articles, time.Since(start).Round(time.Millisecond))

	eng := engine.New(db, engine.Options{})
	pq, err := eng.Prepare(Query1Text)
	if err != nil {
		return v, err
	}
	ctx := context.Background()
	o := engine.ExecOptions{Strategy: exec.StrategyGroupBy}

	// One warm-up pass faults the working set into the pool; the timed
	// passes then compare execution alone.
	if _, err := pq.Execute(ctx, o); err != nil {
		return v, err
	}
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		res, err := pq.Execute(ctx, o)
		if err != nil {
			return v, err
		}
		v.WallNS = append(v.WallNS, time.Since(t0).Nanoseconds())
		if i == reps-1 {
			v.ResultHash = hashTrees(res.Trees)
		}
	}
	sorted := append([]int64(nil), v.WallNS...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	v.MedianNS = sorted[len(sorted)/2]
	logf("%s: E1 median %v over %d reps", name, time.Duration(v.MedianNS).Round(time.Microsecond), reps)
	return v, nil
}

// WriteJSON writes the report, indented, to path.
func (r *EventsReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
