package storage

import (
	"errors"
	"fmt"

	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// SpillTrees materializes a collection of trees through the storage
// engine and reads it back: every node of every tree is written as a
// record to temporary pages (through the buffer pool), then the
// records are scanned to rebuild the trees, and the temporary pages
// are released. This models what TIMBER's naive evaluation plans do
// between operators — intermediate collections such as the witness
// trees of Figure 7 or the TAX_prod_root trees of Figure 8 exist as
// stored trees, and both the writing and the re-reading flow through
// the same buffer pool as the base data, competing for its capacity.
//
// The input trees are renumbered in place (documents 1..n) so the
// records carry rebuildable positions; the returned trees are fresh.
//
// Safe for concurrent use: the pages come from the store's allocator
// like any writer's, and are returned to it on every exit path —
// success or error — so a failed spill no longer strands its pages
// until shutdown.
func (db *DB) SpillTrees(trees []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(trees) == 0 {
		return nil, nil
	}
	heap, err := pagestore.NewHeap(db.st)
	if err != nil {
		return nil, err
	}
	// Spill pages are written once and read back once; compressing them
	// would cost a decompress on the read-back for no disk saving.
	heap.SetRaw()
	heap.Track()
	release := func() {
		pages := append([]pagestore.PageID{heap.FirstPage()}, heap.TakeTracked()...)
		if db.st.FreePages(pages) == nil {
			db.ing.spoolPagesFreed.Add(uint64(len(pages)))
		}
	}

	// Write.
	for i, tr := range trees {
		xmltree.Number(tr, xmltree.DocID(i+1))
		var werr error
		tr.Walk(func(n *xmltree.Node) bool {
			rec := &NodeRecord{
				Interval: n.Interval,
				Tag:      n.Tag,
				Content:  n.Content,
				Attrs:    n.Attrs,
			}
			if n.Parent != nil {
				rec.ParentStart = n.Parent.Interval.Start
			}
			if _, err := heap.Insert(db.encodeNodeRecord(rec)); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			release()
			return nil, fmt.Errorf("storage: spill: %w", werr)
		}
	}

	// Read back: records arrive in write order — tree by tree, each in
	// document order — so a level stack per tree rebuilds them.
	out := make([]*xmltree.Node, 0, len(trees))
	var stack []*xmltree.Node
	err = heap.Scan(func(_ pagestore.RID, b []byte) error {
		rec, err := db.decodeNodeRecord(b)
		if err != nil {
			return err
		}
		n := &xmltree.Node{
			Tag:      rec.Tag,
			Content:  rec.Content,
			Attrs:    rec.Attrs,
			Interval: rec.Interval,
		}
		if rec.ParentStart == 0 {
			out = append(out, n)
			stack = stack[:0]
			stack = append(stack, n)
			return nil
		}
		for len(stack) > 0 && stack[len(stack)-1].Interval.End < n.Interval.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return errors.New("storage: spill scan lost its ancestor stack")
		}
		stack[len(stack)-1].Append(n)
		stack = append(stack, n)
		return nil
	})
	if err != nil {
		release()
		return nil, fmt.Errorf("storage: spill read-back: %w", err)
	}
	if len(out) != len(trees) {
		release()
		return nil, fmt.Errorf("storage: spill rebuilt %d trees, wrote %d", len(out), len(trees))
	}

	// Release the temporary pages.
	release()
	return out, nil
}

// SpillTrees on a snapshot delegates to the database: spilled pages
// are scratch space, not part of any published state.
func (sn *Snapshot) SpillTrees(trees []*xmltree.Node) ([]*xmltree.Node, error) {
	return sn.db.SpillTrees(trees)
}

// NumPages exposes the store's allocated page count (used by tools to
// report database size).
func (db *DB) NumPages() uint32 { return db.st.NumPages() }
