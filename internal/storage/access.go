package storage

import (
	"bytes"
	"errors"
	"fmt"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// ErrNoSuchNode is returned when a node ID does not resolve.
var ErrNoSuchNode = errors.New("storage: no such node")

// The read path. Every access primitive is a method on Snapshot — a
// pinned immutable view — and DB carries a pin-per-call wrapper for
// each, so single-shot callers keep the old convenience while
// long-running readers (the streaming executor, exchange fragments)
// pin once and read consistently across many calls.

// GetNode fetches the record for a node by identifier. It costs one
// locator descent plus one heap page fetch — the "data value look-up"
// whose count separates the paper's two evaluation plans.
func (sn *Snapshot) GetNode(id xmltree.NodeID) (*NodeRecord, error) {
	v, err := sn.locator.Get(locatorKey(id))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, id)
		}
		return nil, err
	}
	rid, err := decodeRID(v)
	if err != nil {
		return nil, err
	}
	return sn.GetNodeAt(rid)
}

// GetNode is the pin-per-call form of Snapshot.GetNode.
func (db *DB) GetNode(id xmltree.NodeID) (*NodeRecord, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.GetNode(id)
}

// LocateRID resolves a node identifier to its physical record location
// through the locator index, without fetching the record itself.
func (sn *Snapshot) LocateRID(id xmltree.NodeID) (pagestore.RID, error) {
	v, err := sn.locator.Get(locatorKey(id))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return pagestore.RID{}, fmt.Errorf("%w: %v", ErrNoSuchNode, id)
		}
		return pagestore.RID{}, err
	}
	return decodeRID(v)
}

// LocateRID is the pin-per-call form of Snapshot.LocateRID.
func (db *DB) LocateRID(id xmltree.NodeID) (pagestore.RID, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.LocateRID(id)
}

// GetNodeAt fetches a node record directly by its physical RID, skipping
// the locator. Postings carry RIDs so matched nodes can be populated
// this way.
func (sn *Snapshot) GetNodeAt(rid pagestore.RID) (*NodeRecord, error) {
	var rec *NodeRecord
	err := sn.heap.View(rid, func(b []byte) error {
		var err error
		rec, err = sn.db.decodeNodeRecord(b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// GetNodeAt is the pin-per-call form of Snapshot.GetNodeAt.
func (db *DB) GetNodeAt(rid pagestore.RID) (*NodeRecord, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.GetNodeAt(rid)
}

// Content returns the stored content of a node identified by posting,
// using its RID. This is the narrow "populate only the grouping (and
// sorting) list values" access path of Sec. 5.3.
func (sn *Snapshot) Content(p Posting) (string, error) {
	rec, err := sn.GetNodeAt(p.RID)
	if err != nil {
		return "", err
	}
	return rec.Content, nil
}

// Content is the pin-per-call form of Snapshot.Content.
func (db *DB) Content(p Posting) (string, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.Content(p)
}

// TagPostings returns the postings of every node with the given tag, in
// document order (doc, then start). This is the tag-name index access
// the paper's experiments use ("given a tag, we could efficiently list
// (by node identifier) all nodes with that tag").
func (sn *Snapshot) TagPostings(tag string) ([]Posting, error) {
	prefix := tagPrefix(tag)
	var out []Posting
	var inner error
	err := sn.tagIdx.ScanPrefix(prefix, func(k, v []byte) bool {
		if sn.db.compact {
			out, inner = appendBlockPostings(out, k[len(k)-8:], v)
			return inner == nil
		}
		p, perr := decodePosting(k[len(prefix):], v)
		if perr != nil {
			inner = perr
			return false
		}
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return out, nil
}

// TagPostings is the pin-per-call form of Snapshot.TagPostings.
func (db *DB) TagPostings(tag string) ([]Posting, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.TagPostings(tag)
}

// ValuePostings returns the postings of nodes with the given tag whose
// content equals content exactly, using the value index. It returns an
// error if the database was created without a value index or the content
// exceeds the indexable length.
func (sn *Snapshot) ValuePostings(tag, content string) ([]Posting, error) {
	if sn.valIdx == nil {
		return nil, errors.New("storage: no value index")
	}
	if len(content) > maxIndexedContent {
		return nil, fmt.Errorf("storage: content of %d bytes exceeds indexable length %d", len(content), maxIndexedContent)
	}
	prefix := valuePrefix(tag, content)
	var out []Posting
	var inner error
	err := sn.valIdx.ScanPrefix(prefix, func(k, v []byte) bool {
		if sn.db.compact {
			out, inner = appendBlockPostings(out, k[len(k)-8:], v)
			return inner == nil
		}
		p, perr := decodePosting(k[len(prefix):], v)
		if perr != nil {
			inner = perr
			return false
		}
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return out, nil
}

// ValuePostings is the pin-per-call form of Snapshot.ValuePostings.
func (db *DB) ValuePostings(tag, content string) ([]Posting, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.ValuePostings(tag, content)
}

// DocRootPosting returns the posting for a document's root node.
func (sn *Snapshot) DocRootPosting(doc xmltree.DocID) (Posting, error) {
	for _, d := range sn.s.docs {
		if d.ID != doc {
			continue
		}
		id := xmltree.NodeID{Doc: doc, Start: d.RootStart}
		v, err := sn.locator.Get(locatorKey(id))
		if err != nil {
			return Posting{}, err
		}
		rid, err := decodeRID(v)
		if err != nil {
			return Posting{}, err
		}
		rec, err := sn.GetNodeAt(rid)
		if err != nil {
			return Posting{}, err
		}
		return Posting{Interval: rec.Interval, RID: rid}, nil
	}
	return Posting{}, fmt.Errorf("storage: unknown document %d", doc)
}

// DocRootPosting is the pin-per-call form of Snapshot.DocRootPosting.
func (db *DB) DocRootPosting(doc xmltree.DocID) (Posting, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.DocRootPosting(doc)
}

// ScanRange calls fn for every node of doc whose start number lies in
// [lo, hi), in document order. fn receives the decoded record. This is
// the subtree-scan primitive: a node's subtree is exactly the start
// range (n.Start, n.End).
func (sn *Snapshot) ScanRange(doc xmltree.DocID, lo, hi uint32, fn func(*NodeRecord) error) error {
	loKey := locatorKey(xmltree.NodeID{Doc: doc, Start: lo})
	hiKey := locatorKey(xmltree.NodeID{Doc: doc, Start: hi})
	var inner error
	err := sn.locator.ScanRange(loKey, hiKey, func(_, v []byte) bool {
		rid, err := decodeRID(v)
		if err != nil {
			inner = err
			return false
		}
		rec, err := sn.GetNodeAt(rid)
		if err != nil {
			inner = err
			return false
		}
		if err := fn(rec); err != nil {
			inner = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return inner
}

// ScanRange is the pin-per-call form of Snapshot.ScanRange.
func (db *DB) ScanRange(doc xmltree.DocID, lo, hi uint32, fn func(*NodeRecord) error) error {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.ScanRange(doc, lo, hi, fn)
}

// GetSubtree materializes the full subtree rooted at id as an xmltree,
// reading every descendant record. Interval numbers on the returned
// nodes are the stored ones.
func (sn *Snapshot) GetSubtree(id xmltree.NodeID) (*xmltree.Node, error) {
	rootRec, err := sn.GetNode(id)
	if err != nil {
		return nil, err
	}
	root := &xmltree.Node{
		Tag:      rootRec.Tag,
		Content:  rootRec.Content,
		Attrs:    rootRec.Attrs,
		Interval: rootRec.Interval,
	}
	// Descendants have start numbers in (Start, End), appearing in
	// document order; rebuild with a level stack.
	stack := []*xmltree.Node{root}
	err = sn.ScanRange(id.Doc, rootRec.Interval.Start+1, rootRec.Interval.End, func(rec *NodeRecord) error {
		n := &xmltree.Node{
			Tag:      rec.Tag,
			Content:  rec.Content,
			Attrs:    rec.Attrs,
			Interval: rec.Interval,
		}
		for len(stack) > 0 && stack[len(stack)-1].Interval.End < n.Interval.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return errors.New("storage: subtree scan lost its ancestor stack")
		}
		stack[len(stack)-1].Append(n)
		stack = append(stack, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}

// GetSubtree is the pin-per-call form of Snapshot.GetSubtree.
func (db *DB) GetSubtree(id xmltree.NodeID) (*xmltree.Node, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.GetSubtree(id)
}

// ScanDocument calls fn for every node of the document in document
// order. It is the full-scan access path (the paper's "simplest way to
// find matches for a pattern tree is to scan the entire database").
func (sn *Snapshot) ScanDocument(doc xmltree.DocID, fn func(*NodeRecord) error) error {
	return sn.ScanRange(doc, 0, ^uint32(0), fn)
}

// ScanDocument is the pin-per-call form of Snapshot.ScanDocument.
func (db *DB) ScanDocument(doc xmltree.DocID, fn func(*NodeRecord) error) error {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.ScanDocument(doc, fn)
}

// Tags returns every distinct tag present in the tag index, in
// lexicographic order.
func (sn *Snapshot) Tags() ([]string, error) {
	var tags []string
	var last []byte
	err := sn.tagIdx.ScanPrefix(nil, func(k, _ []byte) bool {
		i := bytes.IndexByte(k, 0)
		if i < 0 {
			return true
		}
		tag := k[:i]
		if last == nil || !bytes.Equal(tag, last) {
			tags = append(tags, string(tag))
			last = append(last[:0], tag...)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return tags, nil
}

// Tags is the pin-per-call form of Snapshot.Tags.
func (db *DB) Tags() ([]string, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.Tags()
}
