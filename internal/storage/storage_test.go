package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"timber/internal/paperdata"
	"timber/internal/xmltree"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.PageSize == 0 {
		opts.PageSize = 512
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 128
	}
	db, err := CreateTemp(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return db
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*NodeRecord{
		{
			Interval:    xmltree.Interval{Doc: 1, Start: 3, End: 8, Level: 2},
			ParentStart: 2,
			Tag:         "article",
			Content:     "some content",
			Attrs:       []xmltree.Attr{{Name: "id", Value: "a1"}, {Name: "lang", Value: "en"}},
		},
		{Interval: xmltree.Interval{Doc: 9, Start: 1, End: 2}, Tag: "r"},
		{Interval: xmltree.Interval{Doc: 1, Start: 1, End: 100}, Tag: "x", Content: strings.Repeat("y", 300)},
	}
	for i, r := range recs {
		got, err := decodeRecord(encodeRecord(r))
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("rec %d round trip:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestRecordDecodeCorrupt(t *testing.T) {
	good := encodeRecord(&NodeRecord{Tag: "a", Content: "b", Attrs: []xmltree.Attr{{Name: "n", Value: "v"}}})
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeRecord(good[:cut]); err == nil {
			t.Errorf("decode of %d-byte prefix should fail", cut)
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	prop := func(doc uint32, start, end uint32, level uint16, tag, content string, an, av string) bool {
		r := &NodeRecord{
			Interval: xmltree.Interval{Doc: xmltree.DocID(doc), Start: start, End: end, Level: level},
			Tag:      tag, Content: content,
		}
		if an != "" {
			r.Attrs = []xmltree.Attr{{Name: an, Value: av}}
		}
		if len(tag) > 1000 || len(content) > 5000 {
			return true // outside record bounds by construction elsewhere
		}
		got, err := decodeRecord(encodeRecord(r))
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadAndGetNode(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	doc, err := db.LoadDocument("bib.xml", root)
	if err != nil {
		t.Fatal(err)
	}
	if doc != 1 {
		t.Errorf("first doc ID = %d, want 1", doc)
	}
	// Every node in the in-memory tree must be retrievable by ID with
	// identical fields.
	var checked int
	root.Walk(func(n *xmltree.Node) bool {
		rec, err := db.GetNode(n.Interval.ID())
		if err != nil {
			t.Fatalf("GetNode(%v): %v", n.Interval.ID(), err)
		}
		if rec.Tag != n.Tag || rec.Content != n.Content || rec.Interval != n.Interval {
			t.Errorf("node %v: got %+v", n.Interval.ID(), rec)
		}
		if n.Parent != nil && rec.ParentStart != n.Parent.Interval.Start {
			t.Errorf("node %v parent = %d, want %d", n.Interval.ID(), rec.ParentStart, n.Parent.Interval.Start)
		}
		checked++
		return true
	})
	if checked != root.Size() {
		t.Errorf("checked %d nodes, tree has %d", checked, root.Size())
	}
	if _, err := db.GetNode(xmltree.NodeID{Doc: 1, Start: 9999}); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("bogus GetNode err = %v", err)
	}
}

func TestTagPostingsSortedAndComplete(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("author")
	if err != nil {
		t.Fatal(err)
	}
	want := root.Find("author")
	if len(posts) != len(want) {
		t.Fatalf("got %d author postings, want %d", len(posts), len(want))
	}
	for i, p := range posts {
		if p.Interval != want[i].Interval {
			t.Errorf("posting %d interval = %+v, want %+v", i, p.Interval, want[i].Interval)
		}
		if i > 0 && !posts[i-1].Interval.Before(p.Interval) {
			t.Errorf("postings not in document order at %d", i)
		}
	}
	empty, err := db.TagPostings("nonexistent")
	if err != nil || len(empty) != 0 {
		t.Errorf("nonexistent tag: %v, %v", empty, err)
	}
}

func TestTagPostingsNoPrefixBleed(t *testing.T) {
	db := testDB(t, Options{})
	root := xmltree.E("r", xmltree.Elem("auth", "x"), xmltree.Elem("author", "y"), xmltree.Elem("authors", "z"))
	if _, err := db.LoadDocument("d", root); err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("author")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 1 {
		t.Errorf("author postings = %d, want 1 (prefix bleed from auth/authors?)", len(posts))
	}
}

func TestValuePostings(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	posts, err := db.ValuePostings("author", "Jack")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("Jack postings = %d, want 2", len(posts))
	}
	for _, p := range posts {
		rec, err := db.GetNodeAt(p.RID)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Tag != "author" || rec.Content != "Jack" {
			t.Errorf("posting resolves to %+v", rec)
		}
	}
	if got, _ := db.ValuePostings("author", "Nobody"); len(got) != 0 {
		t.Errorf("Nobody postings = %d", len(got))
	}
	if _, err := db.ValuePostings("author", strings.Repeat("x", maxIndexedContent+1)); err == nil {
		t.Error("overlong content should be rejected")
	}
}

func TestNoValueIndex(t *testing.T) {
	db := testDB(t, Options{NoValueIndex: true})
	if _, err := db.LoadDocument("d", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	if db.HasValueIndex() {
		t.Error("HasValueIndex should be false")
	}
	if _, err := db.ValuePostings("author", "Jack"); err == nil {
		t.Error("ValuePostings without index should fail")
	}
	// Tag postings still work.
	posts, err := db.TagPostings("author")
	if err != nil || len(posts) != 5 {
		t.Errorf("TagPostings = %d, %v", len(posts), err)
	}
}

func TestContent(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("d", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("title")
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	for _, p := range posts {
		c, err := db.Content(p)
		if err != nil {
			t.Fatal(err)
		}
		titles = append(titles, c)
	}
	want := []string{"Querying XML", "XML and the Web", "Hack HTML"}
	if !reflect.DeepEqual(titles, want) {
		t.Errorf("titles = %v, want %v", titles, want)
	}
}

func TestGetSubtree(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	// Whole document round trip.
	got, err := db.GetSubtree(root.Interval.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, root) {
		t.Errorf("document round trip mismatch:\n got %s\nwant %s", got, root)
	}
	// Single article subtree.
	art := root.Children[1]
	sub, err := db.GetSubtree(art.Interval.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(sub, art) {
		t.Errorf("article subtree mismatch: %s", sub)
	}
	// Leaf subtree.
	leaf := art.Children[0]
	lsub, err := db.GetSubtree(leaf.Interval.ID())
	if err != nil || !xmltree.Equal(lsub, leaf) {
		t.Errorf("leaf subtree: %v %v", lsub, err)
	}
}

func TestGetSubtreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := CreateTemp(Options{PageSize: 512, PoolPages: 64})
		if err != nil {
			return false
		}
		defer db.Close()
		root := randomLabeledTree(rng, 40)
		if _, err := db.LoadDocument("d", root); err != nil {
			return false
		}
		// Every subtree must round trip.
		ok := true
		root.Walk(func(n *xmltree.Node) bool {
			got, err := db.GetSubtree(n.Interval.ID())
			if err != nil || !xmltree.Equal(got, n) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func randomLabeledTree(rng *rand.Rand, n int) *xmltree.Node {
	tags := []string{"a", "b", "c", "d"}
	root := xmltree.E("root")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		child := xmltree.Elem(tags[rng.Intn(len(tags))], fmt.Sprintf("v%d", rng.Intn(10)))
		parent.Append(child)
		nodes = append(nodes, child)
	}
	return root
}

func TestScanDocument(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	var count int
	var prev uint32
	err := db.ScanDocument(1, func(rec *NodeRecord) error {
		if rec.Interval.Start <= prev {
			t.Error("scan out of document order")
		}
		prev = rec.Interval.Start
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != root.Size() {
		t.Errorf("scanned %d nodes, want %d", count, root.Size())
	}
	// Error propagation from fn.
	sentinel := errors.New("stop")
	err = db.ScanDocument(1, func(*NodeRecord) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("scan error = %v, want sentinel", err)
	}
}

func TestMultipleDocuments(t *testing.T) {
	db := testDB(t, Options{})
	d1, err := db.LoadDocument("one", paperdata.SampleDatabase())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := db.LoadDocument("two", paperdata.TransactionArticles())
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("duplicate doc IDs")
	}
	docs := db.Documents()
	if len(docs) != 2 || docs[0].Name != "one" || docs[1].Name != "two" {
		t.Errorf("catalog = %+v", docs)
	}
	if docs[0].NodeCount == 0 || docs[1].NodeCount == 0 {
		t.Error("node counts missing")
	}
	if _, ok := db.DocumentByName("two"); !ok {
		t.Error("DocumentByName(two) missing")
	}
	if _, ok := db.DocumentByName("none"); ok {
		t.Error("DocumentByName(none) should miss")
	}
	// Postings stay per-document-disjoint but are returned merged by tag.
	posts, err := db.TagPostings("article")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 7 { // 3 in sample + 4 in transactions
		t.Errorf("article postings = %d, want 7", len(posts))
	}
	root2, err := db.DocRootPosting(d2)
	if err != nil {
		t.Fatal(err)
	}
	if root2.Interval.Doc != d2 || root2.Interval.Start != 1 {
		t.Errorf("root posting = %+v", root2)
	}
	if _, err := db.DocRootPosting(99); err == nil {
		t.Error("bogus doc root should fail")
	}
}

func TestLoadXML(t *testing.T) {
	db := testDB(t, Options{})
	doc, err := db.LoadXML("x", strings.NewReader("<r><a>1</a><a>2</a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("a")
	if err != nil || len(posts) != 2 {
		t.Fatalf("a postings = %d, %v", len(posts), err)
	}
	if posts[0].Interval.Doc != doc {
		t.Error("posting in wrong document")
	}
	if _, err := db.LoadXML("bad", strings.NewReader("<r>")); err == nil {
		t.Error("bad XML should fail to load")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bib.db")
	db, err := Create(path, Options{PageSize: 512, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{PageSize: 512, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	docs := db2.Documents()
	if len(docs) != 1 || docs[0].Name != "bib.xml" {
		t.Fatalf("catalog after reopen = %+v", docs)
	}
	got, err := db2.GetSubtree(xmltree.NodeID{Doc: 1, Start: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, root) {
		t.Error("document differs after reopen")
	}
	posts, err := db2.TagPostings("author")
	if err != nil || len(posts) != 5 {
		t.Errorf("author postings after reopen = %d, %v", len(posts), err)
	}
	if !db2.HasValueIndex() {
		t.Error("value index flag lost on reopen")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.db")
	// A file of zeroed pages has no metadata magic.
	if err := os.WriteFile(path, make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{PageSize: 512}); err == nil {
		t.Error("garbage file should be rejected")
	}
	if _, err := Open(filepath.Join(dir, "missing"), Options{PageSize: 512}); err == nil {
		t.Error("missing file should be rejected")
	}
}

func TestOpenRejectsWrongPageSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ps.db")
	db, err := Create(path, Options{PageSize: 1024, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// 1024 divides 2048, so the pagestore opens — the metadata check
	// must still catch the mismatch.
	if _, err := Open(path, Options{PageSize: 512, PoolPages: 64}); err == nil {
		t.Error("page size mismatch should be rejected")
	}
	db2, err := Open(path, Options{PageSize: 1024, PoolPages: 64})
	if err != nil {
		t.Fatalf("matching page size: %v", err)
	}
	db2.Close()
}

func TestTags(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("d", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	tags, err := db.Tags()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"article", "author", "doc_root", "publisher", "title", "year"}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("tags = %v, want %v", tags, want)
	}
}

// TestConcurrentReaders exercises the read-only access paths from
// several goroutines at once: index scans, record fetches and subtree
// reconstruction are all safe concurrently (writes and temp-page use
// are not, by design).
func TestConcurrentReaders(t *testing.T) {
	db := testDB(t, Options{})
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 6)
	for g := 0; g < 6; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				switch (g + i) % 3 {
				case 0:
					posts, err := db.TagPostings("author")
					if err != nil || len(posts) != 5 {
						errc <- fmt.Errorf("postings: %d, %v", len(posts), err)
						return
					}
				case 1:
					rec, err := db.GetNode(xmltree.NodeID{Doc: 1, Start: 1})
					if err != nil || rec.Tag != "doc_root" {
						errc <- fmt.Errorf("get node: %v, %v", rec, err)
						return
					}
				default:
					sub, err := db.GetSubtree(xmltree.NodeID{Doc: 1, Start: 2})
					if err != nil || sub.Tag != "article" {
						errc <- fmt.Errorf("subtree: %v, %v", sub, err)
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 6; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

func TestStatsCountLookups(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("d", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if _, err := db.GetNode(xmltree.NodeID{Doc: 1, Start: 1}); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Fetches == 0 {
		t.Error("GetNode should cost buffer fetches")
	}
}
