package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// Options configures a database.
type Options struct {
	// PageSize and PoolPages configure the underlying page store; see
	// pagestore.Options. The defaults reproduce the paper's experiment
	// configuration (8 KB pages, 32 MB pool).
	PageSize  int
	PoolPages int
	// NoValueIndex disables the (tag, content) value index, halving
	// index build cost for workloads that never use value predicates.
	NoValueIndex bool
	// Uncompressed disables the compact on-disk formats: varint posting
	// blocks and node records, and the page-level codec. The default
	// (compressed) is what production databases should use; the
	// uncompressed form exists for equivalence testing and A/B
	// measurement. Open ignores this field — an existing file declares
	// its own format.
	Uncompressed bool
}

// psOptions maps storage options onto the page store's, attaching the
// built-in LZ page codec unless the database is uncompressed.
func (o Options) psOptions() pagestore.Options {
	ps := pagestore.Options{PageSize: o.PageSize, PoolPages: o.PoolPages}
	if !o.Uncompressed {
		ps.Codec = pagestore.LZ()
	}
	return ps
}

// DocInfo describes one loaded document in the catalog.
type DocInfo struct {
	ID        xmltree.DocID
	Name      string
	RootStart uint32
	NodeCount uint64
}

// DB is a TIMBER-style native XML database: a page store holding node
// records (Data Manager), B+tree indices (Index Manager) and a catalog
// (Metadata Manager).
//
// Concurrency: the read paths — GetNode, GetNodeAt, GetSubtree,
// Content, TagPostings, ValuePostings, LocateRID, DocRootPosting,
// ScanRange, ScanDocument, Tags, Documents, Stats — are safe for
// concurrent use from multiple goroutines. They only fetch pages
// through the sharded buffer pool (pin, copy out, unpin) and never
// mutate DB state: the B+tree root/height fields and the docs catalog
// are written at load time only. SpillTrees allocates and truncates a
// temporary page region past the loaded data; spillMu serializes
// spills against each other, making SpillTrees safe to call
// concurrently with the read paths (and hence whole queries safe to
// run concurrently — the engine facade relies on this). The remaining
// mutating operations — LoadDocument, LoadXML, DropCache, ResetStats,
// Flush, Close — still require exclusive access: no reader, spiller or
// other writer may run concurrently with them.
type DB struct {
	st      *pagestore.Store
	heap    *pagestore.Heap
	catalog *pagestore.Heap
	locator *btree.Tree
	tagIdx  *btree.Tree
	valIdx  *btree.Tree // nil when NoValueIndex
	docs    []DocInfo
	opts    Options
	// compact selects the format-v2 codecs: varint posting blocks in
	// the tag/value indices and varint node records in the heap. Fixed
	// at creation (persisted in the meta flags byte), never per-call.
	compact bool
	// idxMetrics counts B+tree traversal work across all three indices;
	// the observability layer snapshots it at span boundaries.
	idxMetrics btree.Metrics
	// spillMu serializes SpillTrees calls: each spill assumes exclusive
	// ownership of the page region past its NumPages mark between the
	// allocation and the Truncate that releases it, so two interleaved
	// spills would free each other's live pages.
	spillMu sync.Mutex
}

const (
	metaMagic   = "TIMBERGO"
	metaVersion = 2

	// Meta flags byte (offset 35): which format-v2 features the file
	// uses. flagCompact covers the posting-block and varint-record
	// codecs; flagPageCodec records that pages are written through the
	// store's compression codec (also detectable by sniffing, which
	// Open cross-checks).
	metaFlagCompact   = 1 << 0
	metaFlagPageCodec = 1 << 1
)

// ErrNeedsRebuild is returned by Open for a database written in an
// older on-disk format. There is no in-place migration: rebuild the
// database by reloading its source documents (timber-load, or the
// generator that produced it).
var ErrNeedsRebuild = errors.New("storage: database uses an old on-disk format; rebuild it from the source documents")

// Create creates a new database file at path.
func Create(path string, opts Options) (*DB, error) {
	st, err := pagestore.Create(path, opts.psOptions())
	if err != nil {
		return nil, err
	}
	return initDB(st, opts)
}

// CreateTemp creates a database backed by a temporary file that
// disappears on Close. Tests and benches use this.
func CreateTemp(opts Options) (*DB, error) {
	st, err := pagestore.CreateTemp(opts.psOptions())
	if err != nil {
		return nil, err
	}
	return initDB(st, opts)
}

func initDB(st *pagestore.Store, opts Options) (*DB, error) {
	// Page 0 is reserved for metadata; allocate it first.
	meta, err := st.Allocate()
	if err != nil {
		st.Close()
		return nil, err
	}
	if meta.ID() != 0 {
		st.Unpin(meta, false)
		st.Close()
		return nil, errors.New("storage: metadata page is not page 0")
	}
	st.Unpin(meta, true)

	db := &DB{st: st, opts: opts, compact: !opts.Uncompressed}
	if db.heap, err = pagestore.NewHeap(st); err != nil {
		st.Close()
		return nil, err
	}
	// Record pages carry varint-compact payloads and serve random point
	// reads (late materialization); only the index trees go through the
	// page codec.
	db.heap.SetRaw()
	if db.catalog, err = pagestore.NewHeap(st); err != nil {
		st.Close()
		return nil, err
	}
	if db.locator, err = btree.New(st); err != nil {
		st.Close()
		return nil, err
	}
	if db.tagIdx, err = btree.New(st); err != nil {
		st.Close()
		return nil, err
	}
	if !opts.NoValueIndex {
		if db.valIdx, err = btree.New(st); err != nil {
			st.Close()
			return nil, err
		}
	}
	if err := db.writeMeta(); err != nil {
		st.Close()
		return nil, err
	}
	db.attachMetrics()
	return db, nil
}

// attachMetrics points every index tree at the DB's shared traversal
// counters.
func (db *DB) attachMetrics() {
	db.locator.SetMetrics(&db.idxMetrics)
	db.tagIdx.SetMetrics(&db.idxMetrics)
	if db.valIdx != nil {
		db.valIdx.SetMetrics(&db.idxMetrics)
	}
}

// sniffPageCodec inspects the first bytes of a database file to decide
// whether its pages are codec-framed. An uncompressed file starts with
// the meta magic at offset 0; a codec file's slot 0 starts with the
// slot flag byte (0 or 1), which no magic byte matches.
func sniffPageCodec(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("storage: open: %w", err)
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false, fmt.Errorf("storage: open: not a timber database (%d-byte file)", len(hdr))
	}
	return string(hdr[:]) != metaMagic, nil
}

// Open reopens an existing database file. The page size must match the
// one used at creation; whether the file is compressed is detected from
// the file itself (opts.Uncompressed is ignored). Databases written by
// older versions of this package return ErrNeedsRebuild.
func Open(path string, opts Options) (*DB, error) {
	codec, err := sniffPageCodec(path)
	if err != nil {
		return nil, err
	}
	psOpts := pagestore.Options{PageSize: opts.PageSize, PoolPages: opts.PoolPages}
	if codec {
		psOpts.Codec = pagestore.LZ()
	}
	st, err := pagestore.Open(path, psOpts)
	if err != nil {
		return nil, err
	}
	db := &DB{st: st, opts: opts}
	if err := db.readMeta(); err != nil {
		st.Close()
		return nil, err
	}
	if err := db.readCatalog(); err != nil {
		st.Close()
		return nil, err
	}
	db.attachMetrics()
	return db, nil
}

// writeMeta persists the storage roots to page 0. Layout (little
// endian): magic(8), version u16, heapFirst u32, catalogFirst u32,
// locatorRoot u32, tagRoot u32, hasValIdx u8, valRoot u32,
// pageSize u32, flags u8.
func (db *DB) writeMeta() error {
	p, err := db.st.Fetch(0)
	if err != nil {
		return err
	}
	b := p.Data()
	copy(b[0:8], metaMagic)
	binary.LittleEndian.PutUint16(b[8:], metaVersion)
	binary.LittleEndian.PutUint32(b[10:], uint32(db.heap.FirstPage()))
	binary.LittleEndian.PutUint32(b[14:], uint32(db.catalog.FirstPage()))
	binary.LittleEndian.PutUint32(b[18:], uint32(db.locator.Root()))
	binary.LittleEndian.PutUint32(b[22:], uint32(db.tagIdx.Root()))
	if db.valIdx != nil {
		b[26] = 1
		binary.LittleEndian.PutUint32(b[27:], uint32(db.valIdx.Root()))
	} else {
		b[26] = 0
	}
	binary.LittleEndian.PutUint32(b[31:], uint32(db.st.PageSize()))
	var flags byte
	if db.compact {
		flags |= metaFlagCompact
	}
	if db.st.CodecName() != "" {
		flags |= metaFlagPageCodec
	}
	b[35] = flags
	db.st.Unpin(p, true)
	return nil
}

func (db *DB) readMeta() error {
	p, err := db.st.Fetch(0)
	if err != nil {
		return err
	}
	defer db.st.Unpin(p, false)
	b := p.Data()
	if string(b[0:8]) != metaMagic {
		return errors.New("storage: not a timber database (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(b[8:]); v != metaVersion {
		if v < metaVersion {
			return fmt.Errorf("%w (file is format v%d, this build reads v%d)", ErrNeedsRebuild, v, metaVersion)
		}
		return fmt.Errorf("storage: unsupported version %d", v)
	}
	if ps := binary.LittleEndian.Uint32(b[31:]); ps != uint32(db.st.PageSize()) {
		return fmt.Errorf("storage: database uses %d-byte pages, opened with %d (pass the matching PageSize)", ps, db.st.PageSize())
	}
	flags := b[35]
	db.compact = flags&metaFlagCompact != 0
	if hasCodec := flags&metaFlagPageCodec != 0; hasCodec != (db.st.CodecName() != "") {
		return fmt.Errorf("storage: meta flags disagree with the file's page framing (flags 0x%02x, codec %q)", flags, db.st.CodecName())
	}
	heapFirst := pagestore.PageID(binary.LittleEndian.Uint32(b[10:]))
	catalogFirst := pagestore.PageID(binary.LittleEndian.Uint32(b[14:]))
	if db.heap, err = pagestore.OpenHeap(db.st, heapFirst); err != nil {
		return err
	}
	// Keep appended record pages codec-exempt, matching initDB.
	db.heap.SetRaw()
	if db.catalog, err = pagestore.OpenHeap(db.st, catalogFirst); err != nil {
		return err
	}
	db.locator = btree.Open(db.st, pagestore.PageID(binary.LittleEndian.Uint32(b[18:])))
	db.tagIdx = btree.Open(db.st, pagestore.PageID(binary.LittleEndian.Uint32(b[22:])))
	if b[26] == 1 {
		db.valIdx = btree.Open(db.st, pagestore.PageID(binary.LittleEndian.Uint32(b[27:])))
	}
	return nil
}

// catalog records: docID u32, rootStart u32, nodeCount u64, nameLen u16, name.
func encodeDocInfo(d DocInfo) []byte {
	b := make([]byte, 18+len(d.Name))
	binary.LittleEndian.PutUint32(b[0:], uint32(d.ID))
	binary.LittleEndian.PutUint32(b[4:], d.RootStart)
	binary.LittleEndian.PutUint64(b[8:], d.NodeCount)
	binary.LittleEndian.PutUint16(b[16:], uint16(len(d.Name)))
	copy(b[18:], d.Name)
	return b
}

func decodeDocInfo(b []byte) (DocInfo, error) {
	if len(b) < 18 {
		return DocInfo{}, errors.New("storage: corrupt catalog record")
	}
	d := DocInfo{
		ID:        xmltree.DocID(binary.LittleEndian.Uint32(b[0:])),
		RootStart: binary.LittleEndian.Uint32(b[4:]),
		NodeCount: binary.LittleEndian.Uint64(b[8:]),
	}
	n := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) < 18+n {
		return DocInfo{}, errors.New("storage: corrupt catalog record name")
	}
	d.Name = string(b[18 : 18+n])
	return d, nil
}

func (db *DB) readCatalog() error {
	db.docs = nil
	return db.catalog.Scan(func(_ pagestore.RID, rec []byte) error {
		d, err := decodeDocInfo(rec)
		if err != nil {
			return err
		}
		db.docs = append(db.docs, d)
		return nil
	})
}

// Documents returns the catalog of loaded documents in load order.
func (db *DB) Documents() []DocInfo {
	out := make([]DocInfo, len(db.docs))
	copy(out, db.docs)
	return out
}

// DocumentByName returns the catalog entry with the given name.
func (db *DB) DocumentByName(name string) (DocInfo, bool) {
	for _, d := range db.docs {
		if d.Name == name {
			return d, true
		}
	}
	return DocInfo{}, false
}

// HasValueIndex reports whether the (tag, content) value index exists.
func (db *DB) HasValueIndex() bool { return db.valIdx != nil }

// Stats returns the underlying buffer pool counters.
func (db *DB) Stats() pagestore.Stats { return db.st.Stats() }

// IndexMetrics returns the B+tree traversal counters shared by the
// locator, tag and value indices.
func (db *DB) IndexMetrics() btree.MetricsSnapshot { return db.idxMetrics.Snapshot() }

// TraceCounters snapshots the combined pool and index counters in the
// form the observability layer consumes. Reading it is a handful of
// atomic loads — no pages are touched, so it never perturbs what it
// measures.
func (db *DB) TraceCounters() obs.Counters {
	st := db.st.Stats()
	im := db.idxMetrics.Snapshot()
	return obs.Counters{
		Fetches:        st.Fetches,
		Hits:           st.Hits,
		PhysicalReads:  st.PhysicalReads,
		PhysicalWrites: st.PhysicalWrites,
		NodeVisits:     im.NodeVisits,
		LeafScans:      im.LeafScans,
	}
}

// NewTracer builds an enabled query tracer wired to this database's
// counters. The caller typically ResetStats first, attaches the tracer
// to an exec.Spec, and verifies the finished trace against
// TraceCounters — the exactness invariant of DESIGN.md "Observability".
func (db *DB) NewTracer(name string) *obs.Tracer {
	return obs.New(name, db.TraceCounters)
}

// RegisterMetrics exports the database's storage health into r as
// scrape-time callback families: the pool's cumulative I/O counters,
// derived hit-ratio and occupancy gauges, and the B+tree traversal
// counters. Callbacks read the same atomic counters Stats does, so
// registration adds no per-operation cost; re-registration (a second
// engine over the same DB and registry) is a no-op. Nil-safe.
func (db *DB) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	st := db.st
	r.CounterFunc("pool_fetches", "Logical page reads (buffer pool fetch calls).",
		func() float64 { return float64(st.Stats().Fetches) })
	r.CounterFunc("pool_hits", "Fetches served from the buffer pool.",
		func() float64 { return float64(st.Stats().Hits) })
	r.CounterFunc("pool_physical_reads", "Pages read from disk.",
		func() float64 { return float64(st.Stats().PhysicalReads) })
	r.CounterFunc("pool_physical_writes", "Pages written to disk.",
		func() float64 { return float64(st.Stats().PhysicalWrites) })
	r.CounterFunc("pool_evictions", "Pages evicted from the buffer pool.",
		func() float64 { return float64(st.Stats().Evictions) })
	r.GaugeFunc("pool_hit_ratio", "Fraction of fetches served from the pool (1 when idle).",
		func() float64 { return st.Stats().HitRate() })
	r.GaugeFunc("pool_occupancy_pages", "Pages currently resident in the buffer pool.",
		func() float64 { return float64(st.Occupancy()) })
	r.GaugeFunc("pool_capacity_pages", "Buffer pool capacity in pages.",
		func() float64 { return float64(st.PoolPages()) })
	r.CounterFunc("index_node_visits", "B+tree interior/leaf nodes visited across all indices.",
		func() float64 { return float64(db.idxMetrics.Snapshot().NodeVisits) })
	r.CounterFunc("index_leaf_scans", "B+tree leaf records scanned across all indices.",
		func() float64 { return float64(db.idxMetrics.Snapshot().LeafScans) })
	if st.CodecName() != "" {
		r.CounterFunc("page_codec_uncompressed_bytes", "Uncompressed size of pages written through the page codec.",
			func() float64 { return float64(st.Stats().UncompressedBytes) })
		r.CounterFunc("page_codec_compressed_bytes", "On-disk payload written through the page codec.",
			func() float64 { return float64(st.Stats().CompressedBytes) })
		r.GaugeFunc("page_codec_ratio", "Compressed/uncompressed byte ratio of page writes (1 when idle).",
			func() float64 { return st.Stats().CompressionRatio() })
	}
}

// Compact reports whether the database uses the format-v2 compact
// codecs (posting blocks and varint records).
func (db *DB) Compact() bool { return db.compact }

// encodeNodeRecord serializes a record in the database's format.
func (db *DB) encodeNodeRecord(r *NodeRecord) []byte {
	if db.compact {
		return encodeRecordCompact(r)
	}
	return encodeRecord(r)
}

// decodeNodeRecord parses a stored record in the database's format.
func (db *DB) decodeNodeRecord(b []byte) (*NodeRecord, error) {
	if db.compact {
		return decodeRecordCompact(b)
	}
	return decodeRecord(b)
}

// nodeContent extracts just the content field of a stored record —
// what ContentsBatch materializes per output row.
func (db *DB) nodeContent(b []byte) (string, error) {
	if db.compact {
		return recordContentCompact(b)
	}
	rec, err := decodeRecord(b)
	if err != nil {
		return "", err
	}
	return rec.Content, nil
}

// ResetStats zeroes the buffer pool and index-traversal counters.
func (db *DB) ResetStats() {
	db.st.ResetStats()
	db.idxMetrics.Reset()
}

// DropCache empties the buffer pool so subsequent measurements start
// cold, after persisting the metadata.
func (db *DB) DropCache() error {
	if err := db.writeMeta(); err != nil {
		return err
	}
	return db.st.DropCache()
}

// Flush persists metadata and all dirty pages.
func (db *DB) Flush() error {
	if err := db.writeMeta(); err != nil {
		return err
	}
	return db.st.Flush()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if err := db.writeMeta(); err != nil {
		return err
	}
	return db.st.Close()
}
