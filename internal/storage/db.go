package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/wal"
	"timber/internal/xmltree"
)

// SyncPolicy selects when a durable write (InsertDocument,
// DeleteDocument) forces its WAL records to disk.
type SyncPolicy int

const (
	// SyncDefault defers to the database's Options.SyncPolicy (and to
	// SyncGroup if that is also unset).
	SyncDefault SyncPolicy = iota
	// SyncAlways fsyncs the WAL before the call returns: an
	// acknowledged write survives any crash.
	SyncAlways
	// SyncGroup also fsyncs before returning, but concurrent commits
	// share one flush (group commit): the first goroutine into the sync
	// path fsyncs on behalf of every commit appended so far.
	SyncGroup
	// SyncNone acknowledges without fsyncing. The write is applied and
	// ordered, becomes durable at the next sync or checkpoint, and may
	// be lost in a crash before then. Recovery still never sees a torn
	// or reordered state — just a shorter committed prefix.
	SyncNone
)

// ParseSyncPolicy maps the wire/flag spelling of a sync policy to its
// value; the empty string means SyncDefault.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "default":
		return SyncDefault, nil
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("storage: unknown sync policy %q (want always, group or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNone:
		return "none"
	}
	return "default"
}

// DefaultCheckpointBytes is the WAL size beyond which a commit
// triggers a checkpoint (flush data pages, write the meta page, reset
// the log).
const DefaultCheckpointBytes = 8 << 20

// Options configures a database.
type Options struct {
	// PageSize and PoolPages configure the underlying page store; see
	// pagestore.Options. The defaults reproduce the paper's experiment
	// configuration (8 KB pages, 32 MB pool). Open ignores a zero
	// PageSize and adopts the file's own; a non-zero PageSize that
	// disagrees with the file is an error.
	PageSize  int
	PoolPages int
	// NoValueIndex disables the (tag, content) value index, halving
	// index build cost for workloads that never use value predicates.
	NoValueIndex bool
	// Uncompressed disables the compact on-disk formats: varint posting
	// blocks and node records, and the page-level codec. The default
	// (compressed) is what production databases should use; the
	// uncompressed form exists for equivalence testing and A/B
	// measurement. Open ignores this field — an existing file declares
	// its own format.
	Uncompressed bool
	// SyncPolicy is the default durability of InsertDocument and
	// DeleteDocument calls that pass SyncDefault. Unset means SyncGroup.
	SyncPolicy SyncPolicy
	// CheckpointBytes is the WAL size that triggers a checkpoint after
	// a commit; zero means DefaultCheckpointBytes.
	CheckpointBytes int64
	// Journal receives the write path's structured events (commits,
	// fsyncs, checkpoints, recovery, retirement). Nil disables emission
	// entirely — every site reduces to a nil check.
	Journal *obs.Journal
}

// psOptions maps storage options onto the page store's, attaching the
// built-in LZ page codec unless the database is uncompressed.
func (o Options) psOptions() pagestore.Options {
	ps := pagestore.Options{PageSize: o.PageSize, PoolPages: o.PoolPages}
	if !o.Uncompressed {
		ps.Codec = pagestore.LZ()
	}
	return ps
}

// DocInfo describes one loaded document in the catalog.
type DocInfo struct {
	ID        xmltree.DocID
	Name      string
	RootStart uint32
	NodeCount uint64
}

// DB is a TIMBER-style native XML database: a page store holding node
// records (Data Manager), B+tree indices (Index Manager) and a catalog
// (Metadata Manager), fronted by a write-ahead log for durable online
// ingest.
//
// Concurrency model. The database publishes immutable snapState
// values: every committed transaction builds a fresh state whose new
// pages are copies (copy-on-write trees, freshly cut heap tails), so a
// reader that pins a state sees byte-stable pages until it unpins.
// Readers obtain a pin with Snapshot (every read method on DB itself
// is a pin-per-call wrapper); writers serialize on writeMu and chain
// off tip, the newest committed state, which may be slightly ahead of
// the reader-visible head while its WAL fsync is in flight. Pages
// superseded by a commit are retired and only reclaimed for reuse once
// (a) no snapshot pinned an older epoch and (b) the commit that freed
// them is WAL-durable — so a crash can never have reused a page the
// last durable metadata still references.
//
// The offline bulk path (LoadDocument, LoadXML) mutates index pages in
// place and still requires exclusive access: no reader, spool or other
// writer may run concurrently with it, and a crash while it runs can
// corrupt the file (rebuild from sources). InsertDocument and
// DeleteDocument are the online, crash-safe counterparts and may run
// concurrently with any number of readers.
type DB struct {
	st   *pagestore.Store
	wal  *wal.Log // nil: no log (CreateOnFiles with a nil WAL file); ingest is non-durable
	opts Options
	// compact selects the compact codecs: varint posting blocks in the
	// tag/value indices and varint node records in the heap. Fixed at
	// creation (persisted in the meta flags byte), never per-call.
	compact bool
	// idxMetrics counts B+tree traversal work across all indices; the
	// observability layer snapshots it at span boundaries.
	idxMetrics btree.Metrics

	// writeMu serializes writers: ingest transactions, offline loads
	// and checkpoints. tip and seq are guarded by it.
	writeMu sync.Mutex
	tip     *snapState // newest committed state (writers chain off it)
	seq     uint64     // newest committed transaction sequence

	// head is the newest published state — what new snapshots read.
	// Under SyncAlways/SyncGroup a state is published only after the
	// fsync covering its commit; under SyncNone immediately.
	head atomic.Pointer[snapState]

	// pinMu guards the snapshot pin counts and the retired-page sets.
	// Lock order: pinMu before the store's allocator (reclaim calls
	// FreePages while holding it); nothing takes pinMu while holding a
	// store lock.
	pinMu   sync.Mutex
	pins    map[uint64]int // epoch → open snapshots
	retired []retiredSet

	// journal is the structured event sink (nil = disabled); commitSeq
	// mirrors seq so readers can snapshot the committed sequence without
	// writeMu — the server's slow-query correlation reads it per request.
	journal   *obs.Journal
	commitSeq atomic.Uint64

	ing ingestStats
}

// Journal returns the database's event journal (nil when disabled) —
// the single wiring point the engine and server hang off.
func (db *DB) Journal() *obs.Journal { return db.journal }

// CommitSeq returns the newest committed transaction sequence without
// taking the write lock. With events on, a query's overlapping WAL
// commits are exactly those with CommitSeq-before < seq <=
// CommitSeq-after.
func (db *DB) CommitSeq() uint64 { return db.commitSeq.Load() }

// ingestStats counts write-path activity for the metrics registry.
type ingestStats struct {
	inserted        atomic.Uint64
	deleted         atomic.Uint64
	txnPages        atomic.Uint64
	checkpoints     atomic.Uint64
	pagesRetired    atomic.Uint64
	pagesReclaimed  atomic.Uint64
	spoolRuns       atomic.Uint64
	spoolRunsLeaked atomic.Uint64
	spoolPagesFreed atomic.Uint64
	snapshotsPinned atomic.Int64
}

// metaFlags encodes the database's format bits for the meta blob.
func (db *DB) metaFlags() byte {
	var flags byte
	if db.compact {
		flags |= metaFlagCompact
	}
	if db.st.CodecName() != "" {
		flags |= metaFlagPageCodec
	}
	return flags
}

// tree opens a read handle over a persisted root, wired to the shared
// traversal counters.
func (db *DB) tree(root pagestore.PageID) *btree.Tree {
	t := btree.Open(db.st, root)
	t.SetMetrics(&db.idxMetrics)
	return t
}

// policy resolves a per-call sync policy against the database default.
func (db *DB) policy(p SyncPolicy) SyncPolicy {
	if p == SyncDefault {
		p = db.opts.SyncPolicy
	}
	if p == SyncDefault {
		p = SyncGroup
	}
	return p
}

// DefaultSyncPolicy reports the policy a SyncDefault write resolves to
// on this database.
func (db *DB) DefaultSyncPolicy() SyncPolicy { return db.policy(SyncDefault) }

func (db *DB) checkpointBytes() int64 {
	if db.opts.CheckpointBytes > 0 {
		return db.opts.CheckpointBytes
	}
	return DefaultCheckpointBytes
}

// Create creates a new database file at path, plus its write-ahead log
// at path+".wal"; both directory entries are fsynced.
func Create(path string, opts Options) (*DB, error) {
	st, err := pagestore.Create(path, opts.psOptions())
	if err != nil {
		return nil, err
	}
	wf, err := os.OpenFile(walPath(path), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("storage: create wal: %w", err), st.Close())
	}
	if err := pagestore.FsyncDir(filepath.Dir(path)); err != nil {
		return nil, errors.Join(err, wf.Close(), st.Close())
	}
	return initDB(st, pagestore.OSFile(wf), opts)
}

// walPath returns the write-ahead log path for a database path.
func walPath(dbPath string) string { return dbPath + ".wal" }

// CreateTemp creates a database backed by temporary files (data and
// WAL) that are unlinked immediately and disappear on Close. Tests and
// benches use this; the WAL is real, so the durable ingest path runs
// exactly as in production.
func CreateTemp(opts Options) (*DB, error) {
	st, err := pagestore.CreateTemp(opts.psOptions())
	if err != nil {
		return nil, err
	}
	wf, err := os.CreateTemp("", "timber-wal-*")
	if err != nil {
		return nil, errors.Join(fmt.Errorf("storage: create temp wal: %w", err), st.Close())
	}
	// Unlink now: the fd keeps the log alive until Close, and a crash
	// leaves no orphan.
	if err := os.Remove(wf.Name()); err != nil {
		return nil, errors.Join(fmt.Errorf("storage: create temp wal: %w", err), wf.Close(), st.Close())
	}
	return initDB(st, pagestore.OSFile(wf), opts)
}

// CreateOnFiles creates a database over caller-supplied files —
// fault-injection and crash-recovery harnesses run the full stack over
// modeled disks this way. A nil walFile disables logging: ingest still
// works but is only durable at checkpoints.
func CreateOnFiles(dbFile, walFile pagestore.File, opts Options) (*DB, error) {
	st, err := pagestore.CreateOn(dbFile, opts.psOptions())
	if err != nil {
		if walFile != nil {
			walFile.Close()
		}
		return nil, err
	}
	return initDB(st, walFile, opts)
}

func initDB(st *pagestore.Store, walFile pagestore.File, opts Options) (*DB, error) {
	db := &DB{st: st, opts: opts, compact: !opts.Uncompressed, pins: make(map[uint64]int), journal: opts.Journal}
	if walFile != nil {
		db.wal = wal.Open(walFile, 0, 0)
		db.wal.SetJournal(opts.Journal)
	}
	fail := func(err error) (*DB, error) {
		if db.wal != nil {
			_ = db.wal.Close()
		} else if walFile != nil {
			_ = walFile.Close()
		}
		return nil, errors.Join(err, st.Close())
	}

	// Page 0 is reserved for metadata; allocate it first. It is always
	// written raw so the open path can sniff the blob at fixed offsets
	// before it knows the file's codec.
	meta, err := st.Allocate()
	if err != nil {
		return fail(err)
	}
	if meta.ID() != 0 {
		st.Unpin(meta, false)
		return fail(errors.New("storage: metadata page is not page 0"))
	}
	st.Unpin(meta, true)
	st.SetRawPage(0)

	// Record pages carry varint-compact payloads and serve random point
	// reads (late materialization); only the index trees go through the
	// page codec.
	heap, err := pagestore.NewHeap(st)
	if err != nil {
		return fail(err)
	}
	heap.SetRaw()
	catalog, err := btree.New(st)
	if err != nil {
		return fail(err)
	}
	locator, err := btree.New(st)
	if err != nil {
		return fail(err)
	}
	tagIdx, err := btree.New(st)
	if err != nil {
		return fail(err)
	}
	var valIdx *btree.Tree
	if !opts.NoValueIndex {
		if valIdx, err = btree.New(st); err != nil {
			return fail(err)
		}
	}

	state := &snapState{
		epoch:     1,
		heapFirst: heap.FirstPage(),
		heapLast:  heap.LastPage(),
		catalog:   catalog.Root(),
		locator:   locator.Root(),
		tag:       tagIdx.Root(),
		hasVal:    valIdx != nil,
		nextDocID: 1,
	}
	if valIdx != nil {
		state.val = valIdx.Root()
	}
	db.tip = state
	db.head.Store(state)

	db.writeMu.Lock()
	err = db.checkpointLocked()
	db.writeMu.Unlock()
	if err != nil {
		return fail(err)
	}
	return db, nil
}

// Open reopens an existing database, replaying its write-ahead log:
// every transaction with a durable commit record is reapplied, any
// torn tail is discarded, and the store's page count is rolled back to
// the committed state. The page size and codec are read from the file
// itself. Databases written by older versions return ErrNeedsRebuild.
func Open(path string, opts Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open: %w", err)
	}
	wf, err := os.OpenFile(walPath(path), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return OpenOnFiles(pagestore.OSFile(f), pagestore.OSFile(wf), opts)
}

// OpenOnFiles reopens a database over caller-supplied files, running
// full crash recovery (see Open). A nil walFile skips replay and
// disables logging. Both files are closed on error.
func OpenOnFiles(dbFile, walFile pagestore.File, opts Options) (*DB, error) {
	closeAll := func(err error) (*DB, error) {
		if walFile != nil {
			_ = walFile.Close()
		}
		return nil, errors.Join(err, dbFile.Close())
	}

	var metaFallback bool
	m, err := sniffMeta(dbFile)
	if err != nil {
		if !errors.Is(err, errMetaTorn) || walFile == nil {
			return closeAll(err)
		}
		// The checkpointed copy is torn (a crash can interrupt the
		// checkpoint's meta write); the WAL holds the authoritative
		// state in that window.
		wm, ok, werr := lastWALMeta(walFile)
		if werr != nil {
			return closeAll(fmt.Errorf("%w (and WAL fallback failed: %v)", err, werr))
		}
		if !ok {
			return closeAll(err)
		}
		m = wm
		metaFallback = true
	}
	if opts.PageSize != 0 && opts.PageSize != int(m.pageSize) {
		return closeAll(fmt.Errorf("storage: database uses %d-byte pages, opened with %d", m.pageSize, opts.PageSize))
	}
	psOpts := pagestore.Options{PageSize: int(m.pageSize), PoolPages: opts.PoolPages}
	if m.flags&metaFlagPageCodec != 0 {
		psOpts.Codec = pagestore.LZ()
	}
	st, err := pagestore.OpenOn(dbFile, psOpts) // closes dbFile on error
	if err != nil {
		if walFile != nil {
			_ = walFile.Close()
		}
		return nil, err
	}
	st.SetRawPage(0)

	db := &DB{st: st, opts: opts, compact: m.flags&metaFlagCompact != 0, pins: make(map[uint64]int), journal: opts.Journal}
	state := m.s
	numPages := m.numPages
	var committedLen int64
	var lastSeq uint64
	var rec recoveryCounts
	var walSize int64
	if walFile != nil {
		if walSize, err = walFile.Size(); err != nil {
			_ = walFile.Close()
			return nil, errors.Join(fmt.Errorf("storage: open: %w", err), st.Close())
		}
		committedLen, lastSeq, err = db.replayWAL(walFile, &state, &numPages, &rec)
		if err != nil {
			_ = walFile.Close()
			return nil, errors.Join(err, st.Close())
		}
	}
	failOpen := func(err error) (*DB, error) {
		if walFile != nil {
			_ = walFile.Close()
		}
		return nil, errors.Join(err, st.Close())
	}
	// Roll the page count back to the committed state: pages allocated
	// by transactions that never committed (and any torn final slot)
	// are trimmed away.
	if err := st.SetNumPages(numPages); err != nil {
		return failOpen(err)
	}
	// A crashed transaction can have applied its heap chain link
	// in-pool and had the sealed page flushed before its commit became
	// durable; the committed insertion page must end the chain again.
	if err := db.clearTailLink(state.heapLast); err != nil {
		return failOpen(err)
	}
	docs, err := db.loadCatalog(state.catalog)
	if err != nil {
		return failOpen(err)
	}
	state.docs = docs
	state.epoch = 1
	db.seq = lastSeq
	db.commitSeq.Store(lastSeq)
	db.tip = &state
	db.head.Store(&state)
	if walFile != nil {
		// Drop clean-but-uncommitted tail frames before appending: a
		// later commit record must not seal orphans into itself.
		if err := walFile.Truncate(committedLen); err != nil {
			return failOpen(fmt.Errorf("storage: open: truncate wal: %w", err))
		}
		db.wal = wal.Open(walFile, committedLen, lastSeq)
		db.wal.SetJournal(opts.Journal)

		// One recovery event per open, with the timeline compressed into
		// the labels: whether the tail was truncated (torn frames or
		// clean-but-uncommitted orphans), and whether the meta page was
		// repaired from the WAL.
		label := "clean"
		if committedLen < walSize {
			label = "torn_tail"
		}
		if metaFallback {
			label += ",meta_fallback"
		}
		db.journal.Emit(obs.Event{
			Type:   obs.EvRecovery,
			WALSeq: lastSeq,
			Bytes:  committedLen,
			Count:  rec.records,
			Aux:    rec.pages,
			Label:  label,
		})
	}
	// Checkpoint the recovered state: restored pages and the meta page
	// become durable in the data file and the log empties, so the next
	// open needs no replay.
	db.writeMu.Lock()
	err = db.checkpointLocked()
	db.writeMu.Unlock()
	if err != nil {
		if db.wal != nil {
			_ = db.wal.Close()
		}
		return nil, errors.Join(err, st.Close())
	}
	return db, nil
}

// recoveryCounts tallies what replay actually applied, for the
// recovery event.
type recoveryCounts struct {
	records int64 // committed records applied (pages + links)
	pages   int64 // page images restored
}

// replayWAL reapplies every committed transaction in the log. Records
// are buffered per transaction and applied only when its commit record
// is reached, so an uncommitted tail (torn or simply unacknowledged)
// has no effect. Memory is bounded by one transaction's page images.
func (db *DB) replayWAL(f pagestore.File, state *snapState, numPages *uint32, rc *recoveryCounts) (committedLen int64, lastSeq uint64, err error) {
	type walOp struct {
		link     bool
		page, to pagestore.PageID
		img      []byte
	}
	var pending []walOp
	var pendingMeta, lastMeta []byte
	apply := func() error {
		for _, op := range pending {
			rc.records++
			if op.link {
				p, err := db.st.Fetch(op.page)
				if err != nil {
					return err
				}
				pagestore.ViewSlotted(p).SetNext(op.to)
				db.st.Unpin(p, true)
				continue
			}
			if err := db.st.RestoreSlot(op.page, op.img); err != nil {
				return err
			}
			rc.pages++
		}
		pending = pending[:0]
		return nil
	}
	committedLen, lastSeq, err = wal.Replay(f, func(r wal.Record) error {
		switch r.Type {
		case wal.RecPage:
			id, img, err := r.Page()
			if err != nil {
				return err
			}
			pending = append(pending, walOp{page: id, img: append([]byte(nil), img...)})
		case wal.RecLink:
			from, to, err := r.Link()
			if err != nil {
				return err
			}
			pending = append(pending, walOp{link: true, page: from, to: to})
		case wal.RecMeta:
			pendingMeta = append(pendingMeta[:0], r.Payload...)
		case wal.RecCommit:
			if err := apply(); err != nil {
				return err
			}
			if pendingMeta != nil {
				lastMeta = append(lastMeta[:0], pendingMeta...)
				pendingMeta = nil
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("storage: recovery: %w", err)
	}
	if lastMeta != nil {
		lm, err := decodeMeta(lastMeta)
		if err != nil {
			return 0, 0, fmt.Errorf("storage: recovery: %w", err)
		}
		*state = lm.s
		*numPages = lm.numPages
	}
	return committedLen, lastSeq, nil
}

// clearTailLink resets the committed heap insertion page's next link,
// which recovery may find pointing at a truncated uncommitted page.
func (db *DB) clearTailLink(last pagestore.PageID) error {
	// The insertion page is a record-heap page: keep it codec-exempt if
	// this repair dirties it.
	db.st.SetRawPage(last)
	p, err := db.st.Fetch(last)
	if err != nil {
		return fmt.Errorf("storage: recovery: heap tail: %w", err)
	}
	sp := pagestore.ViewSlotted(p)
	if sp.Next() != pagestore.InvalidPage {
		sp.SetNext(pagestore.InvalidPage)
		db.st.Unpin(p, true)
		return nil
	}
	db.st.Unpin(p, false)
	return nil
}

// loadCatalog decodes the document catalog from its B+tree root.
// Catalog keys are big-endian document IDs, so the scan yields docs in
// ID order.
func (db *DB) loadCatalog(root pagestore.PageID) ([]DocInfo, error) {
	t := db.tree(root)
	var docs []DocInfo
	var inner error
	err := t.ScanPrefix(nil, func(k, v []byte) bool {
		if isStatsKey(k) {
			return true
		}
		d, err := decodeDocInfo(v)
		if err != nil {
			inner = err
			return false
		}
		docs = append(docs, d)
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return docs, nil
}

// writeMeta0 copies the encoded metadata for state into page 0
// (in-pool; the caller decides when it reaches disk).
func (db *DB) writeMeta0(s *snapState) error {
	blob := encodeMeta(s, db.st.SlotSize(), db.metaFlags(), db.st.NumPages())
	p, err := db.st.Fetch(0)
	if err != nil {
		return err
	}
	copy(p.Data(), blob)
	db.st.Unpin(p, true)
	return nil
}

// publish makes s the reader-visible head unless a newer state already
// is.
func (db *DB) publish(s *snapState) {
	for {
		cur := db.head.Load()
		if cur != nil && cur.epoch >= s.epoch {
			return
		}
		if db.head.CompareAndSwap(cur, s) {
			return
		}
	}
}

// checkpointLocked makes the current tip fully durable in the data
// file and empties the WAL. Caller holds writeMu. Crash safety: the
// log is reset only after the data pages and the meta page are synced,
// and until the reset the log alone can reproduce the same state — a
// torn meta-page write is repaired from the log on the next open.
func (db *DB) checkpointLocked() error {
	start := time.Now()
	var walLen int64
	if db.wal != nil {
		walLen = db.wal.Size()
		if err := db.wal.Sync(db.seq); err != nil {
			return err
		}
	}
	db.publish(db.tip)
	if err := db.writeMeta0(db.tip); err != nil {
		return err
	}
	if err := db.st.Flush(); err != nil {
		return err
	}
	if err := db.st.Sync(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Reset(); err != nil {
			return err
		}
	}
	db.ing.checkpoints.Add(1)
	db.journal.Emit(obs.Event{
		Type:   obs.EvCheckpoint,
		WALSeq: db.seq,
		Epoch:  db.tip.epoch,
		Bytes:  walLen,
		DurNS:  time.Since(start).Nanoseconds(),
	})
	db.reclaim()
	return nil
}

// Checkpoint forces a checkpoint: all committed state becomes durable
// in the data file and the WAL empties.
func (db *DB) Checkpoint() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.checkpointLocked()
}

// catalog records: docID u32, rootStart u32, nodeCount u64, nameLen u16, name.
func encodeDocInfo(d DocInfo) []byte {
	b := make([]byte, 18+len(d.Name))
	binary.LittleEndian.PutUint32(b[0:], uint32(d.ID))
	binary.LittleEndian.PutUint32(b[4:], d.RootStart)
	binary.LittleEndian.PutUint64(b[8:], d.NodeCount)
	binary.LittleEndian.PutUint16(b[16:], uint16(len(d.Name)))
	copy(b[18:], d.Name)
	return b
}

func decodeDocInfo(b []byte) (DocInfo, error) {
	if len(b) < 18 {
		return DocInfo{}, errors.New("storage: corrupt catalog record")
	}
	d := DocInfo{
		ID:        xmltree.DocID(binary.LittleEndian.Uint32(b[0:])),
		RootStart: binary.LittleEndian.Uint32(b[4:]),
		NodeCount: binary.LittleEndian.Uint64(b[8:]),
	}
	n := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) < 18+n {
		return DocInfo{}, errors.New("storage: corrupt catalog record name")
	}
	d.Name = string(b[18 : 18+n])
	return d, nil
}

// catalogKey is the catalog B+tree key for a document: the big-endian
// ID, so catalog scans run in ID order.
func catalogKey(doc xmltree.DocID) []byte { return be32(uint32(doc)) }

// Documents returns the catalog of loaded documents in ID order, as of
// the current head.
func (db *DB) Documents() []DocInfo {
	docs := db.head.Load().docs
	out := make([]DocInfo, len(docs))
	copy(out, docs)
	return out
}

// DocumentByName returns the catalog entry with the given name.
func (db *DB) DocumentByName(name string) (DocInfo, bool) {
	return findDoc(db.head.Load().docs, name)
}

func findDoc(docs []DocInfo, name string) (DocInfo, bool) {
	for _, d := range docs {
		if d.Name == name {
			return d, true
		}
	}
	return DocInfo{}, false
}

// HasValueIndex reports whether the (tag, content) value index exists.
func (db *DB) HasValueIndex() bool { return db.head.Load().hasVal }

// Epoch returns the epoch of the reader-visible head state; it
// advances by one per committed write.
func (db *DB) Epoch() uint64 { return db.head.Load().epoch }

// Stats returns the underlying buffer pool counters.
func (db *DB) Stats() pagestore.Stats { return db.st.Stats() }

// WALStats returns the write-ahead log's activity counters (zero
// without a log).
func (db *DB) WALStats() wal.Stats {
	if db.wal == nil {
		return wal.Stats{}
	}
	return db.wal.Stats()
}

// WALSize returns the log's current length in bytes (0 without a log).
func (db *DB) WALSize() int64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// IngestCounters is a point-in-time snapshot of the write-path and
// snapshot-lifecycle counters (also exported as ingest_*/spool_*
// metric families via RegisterMetrics).
type IngestCounters struct {
	DocumentsInserted uint64
	DocumentsDeleted  uint64
	TxnPages          uint64
	Checkpoints       uint64
	PagesRetired      uint64
	PagesReclaimed    uint64
	SpoolRuns         uint64
	SpoolRunsLeaked   uint64
	SpoolPagesFreed   uint64
	SnapshotsPinned   int64
}

// IngestCounters snapshots the database's write-path counters.
func (db *DB) IngestCounters() IngestCounters {
	return IngestCounters{
		DocumentsInserted: db.ing.inserted.Load(),
		DocumentsDeleted:  db.ing.deleted.Load(),
		TxnPages:          db.ing.txnPages.Load(),
		Checkpoints:       db.ing.checkpoints.Load(),
		PagesRetired:      db.ing.pagesRetired.Load(),
		PagesReclaimed:    db.ing.pagesReclaimed.Load(),
		SpoolRuns:         db.ing.spoolRuns.Load(),
		SpoolRunsLeaked:   db.ing.spoolRunsLeaked.Load(),
		SpoolPagesFreed:   db.ing.spoolPagesFreed.Load(),
		SnapshotsPinned:   db.ing.snapshotsPinned.Load(),
	}
}

// IndexMetrics returns the B+tree traversal counters shared by the
// locator, tag and value indices.
func (db *DB) IndexMetrics() btree.MetricsSnapshot { return db.idxMetrics.Snapshot() }

// TraceCounters snapshots the combined pool and index counters in the
// form the observability layer consumes. Reading it is a handful of
// atomic loads — no pages are touched, so it never perturbs what it
// measures.
func (db *DB) TraceCounters() obs.Counters {
	st := db.st.Stats()
	im := db.idxMetrics.Snapshot()
	return obs.Counters{
		Fetches:        st.Fetches,
		Hits:           st.Hits,
		PhysicalReads:  st.PhysicalReads,
		PhysicalWrites: st.PhysicalWrites,
		NodeVisits:     im.NodeVisits,
		LeafScans:      im.LeafScans,
	}
}

// NewTracer builds an enabled query tracer wired to this database's
// counters. The caller typically ResetStats first, attaches the tracer
// to an exec.Spec, and verifies the finished trace against
// TraceCounters — the exactness invariant of DESIGN.md "Observability".
func (db *DB) NewTracer(name string) *obs.Tracer {
	return obs.New(name, db.TraceCounters)
}

// RegisterMetrics exports the database's storage health into r as
// scrape-time callback families: the pool's cumulative I/O counters,
// derived hit-ratio and occupancy gauges, the B+tree traversal
// counters, and the write path's WAL/ingest/snapshot counters.
// Callbacks read the same atomic counters Stats does, so registration
// adds no per-operation cost; re-registration (a second engine over
// the same DB and registry) is a no-op. Nil-safe.
func (db *DB) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	st := db.st
	r.CounterFunc("pool_fetches", "Logical page reads (buffer pool fetch calls).",
		func() float64 { return float64(st.Stats().Fetches) })
	r.CounterFunc("pool_hits", "Fetches served from the buffer pool.",
		func() float64 { return float64(st.Stats().Hits) })
	r.CounterFunc("pool_physical_reads", "Pages read from disk.",
		func() float64 { return float64(st.Stats().PhysicalReads) })
	r.CounterFunc("pool_physical_writes", "Pages written to disk.",
		func() float64 { return float64(st.Stats().PhysicalWrites) })
	r.CounterFunc("pool_evictions", "Pages evicted from the buffer pool.",
		func() float64 { return float64(st.Stats().Evictions) })
	r.CounterFunc("pool_freed_pages", "Pages returned to the allocator for reuse.",
		func() float64 { return float64(st.Stats().FreedPages) })
	r.CounterFunc("pool_checksum_errors", "Page reads rejected by the slot checksum.",
		func() float64 { return float64(st.Stats().ChecksumErrors) })
	r.GaugeFunc("pool_hit_ratio", "Fraction of fetches served from the pool (1 when idle).",
		func() float64 { return st.Stats().HitRate() })
	r.GaugeFunc("pool_occupancy_pages", "Pages currently resident in the buffer pool.",
		func() float64 { return float64(st.Occupancy()) })
	r.GaugeFunc("pool_capacity_pages", "Buffer pool capacity in pages.",
		func() float64 { return float64(st.PoolPages()) })
	r.CounterFunc("index_node_visits", "B+tree interior/leaf nodes visited across all indices.",
		func() float64 { return float64(db.idxMetrics.Snapshot().NodeVisits) })
	r.CounterFunc("index_leaf_scans", "B+tree leaf records scanned across all indices.",
		func() float64 { return float64(db.idxMetrics.Snapshot().LeafScans) })
	if st.CodecName() != "" {
		r.CounterFunc("page_codec_uncompressed_bytes", "Uncompressed size of pages written through the page codec.",
			func() float64 { return float64(st.Stats().UncompressedBytes) })
		r.CounterFunc("page_codec_compressed_bytes", "On-disk payload written through the page codec.",
			func() float64 { return float64(st.Stats().CompressedBytes) })
		r.GaugeFunc("page_codec_ratio", "Compressed/uncompressed byte ratio of page writes (1 when idle).",
			func() float64 { return st.Stats().CompressionRatio() })
	}
	if db.wal != nil {
		wl := db.wal
		r.CounterFunc("wal_appends", "WAL records appended (all types).",
			func() float64 { return float64(wl.Stats().Appends) })
		r.CounterFunc("wal_appended_bytes", "Framed bytes appended to the WAL.",
			func() float64 { return float64(wl.Stats().AppendedBytes) })
		r.CounterFunc("wal_commits", "Transactions committed to the WAL.",
			func() float64 { return float64(wl.Stats().Commits) })
		r.CounterFunc("wal_fsyncs", "WAL fsyncs issued (group commit keeps this below commits).",
			func() float64 { return float64(wl.Stats().Fsyncs) })
		r.CounterFunc("wal_sync_waits", "WAL sync calls satisfied by another goroutine's fsync.",
			func() float64 { return float64(wl.Stats().SyncWaits) })
		r.GaugeFunc("wal_size_bytes", "Current WAL length in bytes (resets at checkpoints).",
			func() float64 { return float64(wl.Size()) })
	}
	r.CounterFunc("ingest_documents_inserted", "Documents added through the durable ingest path.",
		func() float64 { return float64(db.ing.inserted.Load()) })
	r.CounterFunc("ingest_documents_deleted", "Documents removed through the durable ingest path.",
		func() float64 { return float64(db.ing.deleted.Load()) })
	r.CounterFunc("ingest_txn_pages", "Fresh pages written by ingest transactions.",
		func() float64 { return float64(db.ing.txnPages.Load()) })
	r.CounterFunc("ingest_checkpoints", "Checkpoints taken (WAL resets).",
		func() float64 { return float64(db.ing.checkpoints.Load()) })
	r.CounterFunc("pages_retired", "Superseded pages queued for epoch-gated reclamation.",
		func() float64 { return float64(db.ing.pagesRetired.Load()) })
	r.CounterFunc("pages_reclaimed", "Retired pages returned to the allocator.",
		func() float64 { return float64(db.ing.pagesReclaimed.Load()) })
	r.GaugeFunc("storage_epoch", "Epoch of the reader-visible head state.",
		func() float64 { return float64(db.head.Load().epoch) })
	r.GaugeFunc("snapshots_pinned", "Currently open snapshots.",
		func() float64 { return float64(db.ing.snapshotsPinned.Load()) })
	r.CounterFunc("spool_runs", "Spill runs started by blocking operators.",
		func() float64 { return float64(db.ing.spoolRuns.Load()) })
	r.CounterFunc("spool_runs_leaked", "Spools reclaimed by the garbage collector instead of Close.",
		func() float64 { return float64(db.ing.spoolRunsLeaked.Load()) })
	r.CounterFunc("spool_pages_freed", "Scratch pages released by spools and tree spills.",
		func() float64 { return float64(db.ing.spoolPagesFreed.Load()) })
}

// DebugStatus is a point-in-time picture of the storage engine's
// runtime state — what /debug/storage serves. Unlike IngestCounters
// (cumulative activity), this is the *current* state: which epochs are
// pinned, how much WAL is unsynced, what reclamation is waiting on.
type DebugStatus struct {
	// Epoch is the reader-visible head epoch; CommitSeq the newest
	// committed transaction sequence (the writer tip may briefly lead
	// the head while an fsync is in flight).
	Epoch     uint64 `json:"epoch"`
	CommitSeq uint64 `json:"commit_seq"`
	// WALSyncedSeq is the checkpoint/durability watermark: the highest
	// sequence covered by an fsync. WALSizeBytes is the log's current
	// length (resets to 0 at each checkpoint).
	WALSyncedSeq uint64 `json:"wal_synced_seq"`
	WALSizeBytes int64  `json:"wal_size_bytes"`
	// Checkpoints is the cumulative checkpoint count (the correlation
	// counter slow queries diff across their window).
	Checkpoints uint64 `json:"checkpoints"`
	// SnapshotsPinned is the number of open snapshots; PinnedEpochs
	// lists the distinct epochs they hold (ascending) — the oldest one
	// gates reclamation.
	SnapshotsPinned int64    `json:"snapshots_pinned"`
	PinnedEpochs    []uint64 `json:"pinned_epochs,omitempty"`
	// ReclaimSets/ReclaimPages describe the retirement backlog: page
	// batches freed by commits but not yet reusable (snapshot- or
	// durability-gated).
	ReclaimSets  int   `json:"reclaim_sets"`
	ReclaimPages int64 `json:"reclaim_pages"`
	// NumPages is the store's allocated page count.
	NumPages uint32 `json:"num_pages"`
	// JournalSeq/JournalCapacity describe the event journal itself
	// (zero when disabled).
	JournalSeq      uint64 `json:"journal_seq"`
	JournalCapacity int    `json:"journal_capacity"`
}

// DebugStatus snapshots the engine's runtime state for /debug/storage.
// It takes pinMu briefly (to list pins and the reclaim backlog) and
// otherwise reads atomics.
func (db *DB) DebugStatus() DebugStatus {
	ds := DebugStatus{
		Epoch:           db.head.Load().epoch,
		CommitSeq:       db.commitSeq.Load(),
		Checkpoints:     db.ing.checkpoints.Load(),
		SnapshotsPinned: db.ing.snapshotsPinned.Load(),
		NumPages:        db.st.NumPages(),
		JournalSeq:      db.journal.Seq(),
		JournalCapacity: db.journal.Capacity(),
	}
	if db.wal != nil {
		ds.WALSyncedSeq = db.wal.Synced()
		ds.WALSizeBytes = db.wal.Size()
	}
	db.pinMu.Lock()
	for e := range db.pins {
		ds.PinnedEpochs = append(ds.PinnedEpochs, e)
	}
	ds.ReclaimSets = len(db.retired)
	for _, set := range db.retired {
		ds.ReclaimPages += int64(len(set.pages))
	}
	db.pinMu.Unlock()
	sort.Slice(ds.PinnedEpochs, func(i, j int) bool { return ds.PinnedEpochs[i] < ds.PinnedEpochs[j] })
	return ds
}

// Compact reports whether the database uses the compact codecs
// (posting blocks and varint records).
func (db *DB) Compact() bool { return db.compact }

// encodeNodeRecord serializes a record in the database's format.
func (db *DB) encodeNodeRecord(r *NodeRecord) []byte {
	if db.compact {
		return encodeRecordCompact(r)
	}
	return encodeRecord(r)
}

// decodeNodeRecord parses a stored record in the database's format.
func (db *DB) decodeNodeRecord(b []byte) (*NodeRecord, error) {
	if db.compact {
		return decodeRecordCompact(b)
	}
	return decodeRecord(b)
}

// nodeContent extracts just the content field of a stored record —
// what ContentsBatch materializes per output row.
func (db *DB) nodeContent(b []byte) (string, error) {
	if db.compact {
		return recordContentCompact(b)
	}
	rec, err := decodeRecord(b)
	if err != nil {
		return "", err
	}
	return rec.Content, nil
}

// ResetStats zeroes the buffer pool and index-traversal counters.
func (db *DB) ResetStats() {
	db.st.ResetStats()
	db.idxMetrics.Reset()
}

// DropCache empties the buffer pool so subsequent measurements start
// cold, after persisting the metadata.
func (db *DB) DropCache() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeMeta0(db.tip); err != nil {
		return err
	}
	return db.st.DropCache()
}

// Flush persists metadata and all dirty pages (without fsync or WAL
// reset; use Checkpoint for the durable form).
func (db *DB) Flush() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.writeMeta0(db.tip); err != nil {
		return err
	}
	return db.st.Flush()
}

// Close checkpoints and closes the database. After a clean Close the
// WAL is empty and the next Open replays nothing.
func (db *DB) Close() error {
	db.writeMu.Lock()
	err := db.checkpointLocked()
	db.writeMu.Unlock()
	var werr error
	if db.wal != nil {
		werr = db.wal.Close()
	}
	return errors.Join(err, werr, db.st.Close())
}
