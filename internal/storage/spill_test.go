package storage

import (
	"testing"

	"timber/internal/paperdata"
	"timber/internal/xmltree"
)

func TestSpillTreesRoundTrip(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("base", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	before := db.NumPages()

	trees := []*xmltree.Node{
		paperdata.SampleDatabase(),
		xmltree.E("TAX_prod_root",
			xmltree.E("doc_root", xmltree.Elem("author", "Jack")),
			xmltree.E("article", xmltree.Elem("title", "T")).WithAttr("k", "v"),
		),
		xmltree.Elem("leaf", "x"),
	}
	want := make([]*xmltree.Node, len(trees))
	for i, tr := range trees {
		want[i] = tr.Clone()
	}
	got, err := db.SpillTrees(trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trees) {
		t.Fatalf("rebuilt %d trees", len(got))
	}
	for i := range got {
		if !xmltree.Equal(got[i], want[i]) {
			t.Errorf("tree %d mismatch:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if db.NumPages() != before {
		t.Errorf("temporary pages not released: %d -> %d", before, db.NumPages())
	}
	// The base data is untouched.
	posts, err := db.TagPostings("author")
	if err != nil || len(posts) != 5 {
		t.Errorf("base data damaged: %d postings, %v", len(posts), err)
	}
}

func TestSpillTreesEmpty(t *testing.T) {
	db := testDB(t, Options{})
	got, err := db.SpillTrees(nil)
	if err != nil || got != nil {
		t.Errorf("empty spill = %v, %v", got, err)
	}
}

func TestSpillChargesBufferPool(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("base", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if _, err := db.SpillTrees([]*xmltree.Node{paperdata.SampleDatabase()}); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Fetches == 0 {
		t.Error("spill should flow through the buffer pool")
	}
}

func TestBulkVsIncrementalLoadEquivalent(t *testing.T) {
	// Document 1 bulk-loads, document 2 inserts incrementally; both
	// must be fully queryable.
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("one", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument("two", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("author")
	if err != nil || len(posts) != 10 {
		t.Fatalf("authors across bulk+incremental = %d, %v", len(posts), err)
	}
	vj, err := db.ValuePostings("author", "Jack")
	if err != nil || len(vj) != 4 {
		t.Fatalf("Jack postings = %d, %v", len(vj), err)
	}
	for _, doc := range []xmltree.DocID{1, 2} {
		sub, err := db.GetSubtree(xmltree.NodeID{Doc: doc, Start: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(sub, paperdata.SampleDatabase()) {
			t.Errorf("doc %d round trip failed", doc)
		}
	}
}
