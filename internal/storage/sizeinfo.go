package storage

// SizeInfo is a bytes-on-disk breakdown of a database, computed by
// walking the heap chains and index trees. Byte figures are page counts
// times the on-disk slot size, so they sum (with the meta page, the
// catalog and any free or transient pages) to the file size.
type SizeInfo struct {
	// PageSize is the on-disk slot size in bytes.
	PageSize int `json:"page_size"`
	// Codec names the page compression codec, or "" when uncompressed.
	Codec string `json:"codec,omitempty"`
	// Compact reports whether the compact record and posting codecs are
	// in use.
	Compact bool `json:"compact"`
	// TotalPages and TotalBytes cover the whole file.
	TotalPages uint32 `json:"total_pages"`
	TotalBytes uint64 `json:"total_bytes"`
	// HeapPages/HeapBytes cover the node-record heap.
	HeapPages uint32 `json:"heap_pages"`
	HeapBytes uint64 `json:"heap_bytes"`
	// Index figures cover the three B+trees; IndexPages/IndexBytes are
	// their sum.
	LocatorPages uint32 `json:"locator_pages"`
	TagPages     uint32 `json:"tag_pages"`
	ValuePages   uint32 `json:"value_pages"`
	IndexPages   uint32 `json:"index_pages"`
	IndexBytes   uint64 `json:"index_bytes"`
	// TagCells/ValueCells are leaf cell counts: per-posting in v1
	// databases, per-block in compact ones.
	TagCells   uint64 `json:"tag_cells"`
	ValueCells uint64 `json:"value_cells"`
}

// SizeInfo measures the snapshot's on-disk footprint. It fetches every
// heap and index page through the buffer pool, so it is a reporting
// call, not a hot-path one; run it before ResetStats if the subsequent
// measurement should start from zero counters.
func (sn *Snapshot) SizeInfo() (SizeInfo, error) {
	st := sn.db.st
	slot := uint64(st.SlotSize())
	info := SizeInfo{
		PageSize:   st.SlotSize(),
		Codec:      st.CodecName(),
		Compact:    sn.db.compact,
		TotalPages: st.NumPages(),
	}
	info.TotalBytes = uint64(info.TotalPages) * slot

	var err error
	if info.HeapPages, err = sn.heap.Pages(); err != nil {
		return info, err
	}
	info.HeapBytes = uint64(info.HeapPages) * slot

	loc, err := sn.locator.PageStats()
	if err != nil {
		return info, err
	}
	tag, err := sn.tagIdx.PageStats()
	if err != nil {
		return info, err
	}
	info.LocatorPages = loc.Pages
	info.TagPages = tag.Pages
	info.TagCells = tag.Cells
	if sn.valIdx != nil {
		val, err := sn.valIdx.PageStats()
		if err != nil {
			return info, err
		}
		info.ValuePages = val.Pages
		info.ValueCells = val.Cells
	}
	info.IndexPages = info.LocatorPages + info.TagPages + info.ValuePages
	info.IndexBytes = uint64(info.IndexPages) * slot
	return info, nil
}

// SizeInfo is the pin-per-call form of Snapshot.SizeInfo.
func (db *DB) SizeInfo() (SizeInfo, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.SizeInfo()
}
