package storage

import (
	"math/rand"
	"testing"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

func randPostings(rng *rand.Rand, n int, doc xmltree.DocID) []Posting {
	ps := make([]Posting, n)
	start := uint32(rng.Intn(100) + 1)
	for i := range ps {
		extent := uint32(rng.Intn(5000))
		ps[i] = Posting{
			Interval: xmltree.Interval{
				Doc:   doc,
				Start: start,
				End:   start + extent,
				Level: uint16(rng.Intn(30)),
			},
			RID: pagestore.RID{
				Page: pagestore.PageID(rng.Intn(1 << 20)),
				Slot: pagestore.Slot(rng.Intn(200)),
			},
		}
		start += uint32(rng.Intn(1000) + 1) // strictly increasing
	}
	return ps
}

// encodeTestBlock packs ps (shared doc, ascending starts) exactly as
// blockKVs does, returning the key suffix and value.
func encodeTestBlock(t *testing.T, ps []Posting) (keySuffix, value []byte) {
	t.Helper()
	kvs := make([]btree.KV, len(ps))
	for i, p := range ps {
		kvs[i] = btree.KV{Key: tagKey("t", p.ID()), Value: postingValue(p.Interval, p.RID)}
	}
	out, err := blockKVs(kvs, 1<<20) // huge cell budget: one block
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("expected 1 block, got %d", len(out))
	}
	k := out[0].Key
	return k[len(k)-8:], out[0].Value
}

func TestPostingBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, blockMaxPostings} {
		ps := randPostings(rng, n, 3)
		suffix, val := encodeTestBlock(t, ps)
		got, err := appendBlockPostings(nil, suffix, val)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d postings", n, len(got))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Errorf("n=%d posting %d: got %+v want %+v", n, i, got[i], ps[i])
			}
		}
	}
}

func TestPostingBlockTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := randPostings(rng, 20, 1)
	suffix, val := encodeTestBlock(t, ps)
	for cut := 0; cut < len(val); cut++ {
		if _, err := appendBlockPostings(nil, suffix, val[:cut]); err == nil {
			t.Errorf("truncated block (%d/%d bytes) decoded cleanly", cut, len(val))
		}
	}
	if _, err := appendBlockPostings(nil, suffix[:4], val); err == nil {
		t.Error("short key suffix decoded cleanly")
	}
	// Trailing garbage must be rejected too (exact consumption).
	if _, err := appendBlockPostings(nil, suffix, append(append([]byte(nil), val...), 0)); err == nil {
		t.Error("block with trailing byte decoded cleanly")
	}
}

// TestBlockKVsSplits verifies blocks break on document boundaries, the
// posting-count cap, and the cell budget — and that the concatenated
// decode reproduces the original run in order.
func TestBlockKVsSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var kvs []btree.KV
	var want []Posting
	for doc := xmltree.DocID(1); doc <= 3; doc++ {
		ps := randPostings(rng, 200, doc)
		for _, p := range ps {
			kvs = append(kvs, btree.KV{Key: tagKey("article", p.ID()), Value: postingValue(p.Interval, p.RID)})
			want = append(want, p)
		}
	}
	maxCell := btree.MaxCellFor(507) // the 512-page test configuration
	blocks, err := blockKVs(kvs, maxCell)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) >= len(kvs) {
		t.Fatalf("blocking did not shrink the run: %d blocks from %d postings", len(blocks), len(kvs))
	}
	var got []Posting
	for _, kv := range blocks {
		if len(kv.Key)+len(kv.Value) > maxCell {
			t.Fatalf("block cell %d bytes exceeds budget %d", len(kv.Key)+len(kv.Value), maxCell)
		}
		got, err = appendBlockPostings(got, kv.Key[len(kv.Key)-8:], kv.Value)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("posting %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBlockValue1(t *testing.T) {
	iv := xmltree.Interval{Doc: 2, Start: 99, End: 105, Level: 4}
	rid := pagestore.RID{Page: 7, Slot: 3}
	key := tagKey("x", iv.ID())
	got, err := appendBlockPostings(nil, key[len(key)-8:], blockValue1(iv, rid))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Interval != iv || got[0].RID != rid {
		t.Fatalf("got %+v", got)
	}
}

func TestRecordCompactRoundTrip(t *testing.T) {
	recs := []*NodeRecord{
		{},
		{
			Interval:    xmltree.Interval{Doc: 1, Start: 5, End: 9, Level: 2},
			ParentStart: 4,
			Tag:         "author",
			Content:     "E. F. Codd",
		},
		{
			Interval: xmltree.Interval{Doc: 3, Start: 1 << 30, End: 1<<30 + 12, Level: 600},
			Tag:      "x",
			Attrs: []xmltree.Attr{
				{Name: "key", Value: "conf/edbt/2002"},
				{Name: "empty", Value: ""},
			},
		},
	}
	for i, r := range recs {
		got, err := decodeRecordCompact(encodeRecordCompact(r))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Interval != r.Interval || got.ParentStart != r.ParentStart ||
			got.Tag != r.Tag || got.Content != r.Content || len(got.Attrs) != len(r.Attrs) {
			t.Errorf("record %d: got %+v want %+v", i, got, r)
		}
		content, err := recordContentCompact(encodeRecordCompact(r))
		if err != nil || content != r.Content {
			t.Errorf("record %d content fast path: %q, %v", i, content, err)
		}
	}
	// Truncations must error.
	full := encodeRecordCompact(recs[2])
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeRecordCompact(full[:cut]); err == nil {
			t.Errorf("truncated record (%d/%d) decoded cleanly", cut, len(full))
		}
	}
}
