package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// Posting blocks: the compact (format v2) layout of the tag and value
// indices. Instead of one B+tree cell per posting — an 8-byte key
// suffix plus a fixed 12-byte value — key-adjacent postings that share
// everything but their start number (same tag/content prefix, same
// document) are packed into one cell, delta-encoded against their
// predecessor. Postings come out of the tree already sorted by
// (doc, start), so the deltas are small and varints shrink them to a
// byte or two each.
//
// Block cell layout:
//
//	key:   the full v1 key of the block's FIRST posting
//	       (…prefix…, doc be32, start be32) — prefix scans and seeks
//	       work unchanged, and doc/start₀ are recovered from the key's
//	       8-byte suffix instead of being stored again
//	value: count uvarint, then per posting:
//	       posting 0:  extent uvarint, level uvarint,
//	                   page uvarint, slot uvarint
//	       posting i>0: startDelta uvarint (start_i − start_{i−1}),
//	                   extent uvarint, level uvarint,
//	                   pageDelta varint (signed), slot uvarint
//
// where extent = end − start. Blocks never span documents or distinct
// prefixes: the per-document cursor prefix (tag, 0x00, doc) relies on
// every posting in a matching block belonging to that document.
const (
	// blockMaxPostings caps postings per block so one cell decode stays
	// a bounded unit of work.
	blockMaxPostings = 128
	// blockCountLen is the reserved encoding size of the count varint
	// (blockMaxPostings fits in two varint bytes).
	blockCountLen = 2
	// blockMaxPostingEnc is the worst-case encoded size of one non-first
	// posting: startDelta(5) + extent(5) + level(3) + pageDelta(5) +
	// slot(3).
	blockMaxPostingEnc = 21
)

var errCorruptBlock = errors.New("storage: corrupt posting block")

// appendFirstPosting encodes a block's leading posting (doc and start
// live in the block key).
func appendFirstPosting(dst []byte, p Posting) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Interval.End-p.Interval.Start))
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Level))
	dst = binary.AppendUvarint(dst, uint64(p.RID.Page))
	dst = binary.AppendUvarint(dst, uint64(p.RID.Slot))
	return dst
}

// appendNextPosting encodes a follow-on posting as deltas against prev.
// prev and p share a document and prev.Start <= p.Start.
func appendNextPosting(dst []byte, prev, p Posting) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Start-prev.Interval.Start))
	dst = binary.AppendUvarint(dst, uint64(p.Interval.End-p.Interval.Start))
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Level))
	dst = binary.AppendVarint(dst, int64(p.RID.Page)-int64(prev.RID.Page))
	dst = binary.AppendUvarint(dst, uint64(p.RID.Slot))
	return dst
}

// blockValue1 encodes a single-posting block — the incremental-insert
// path (documents after the bulk-loaded first one insert one key at a
// time).
func blockValue1(iv xmltree.Interval, rid pagestore.RID) []byte {
	b := make([]byte, 0, 16)
	b = binary.AppendUvarint(b, 1)
	return appendFirstPosting(b, Posting{Interval: iv, RID: rid})
}

// appendBlockPostings decodes a block into dst and returns the extended
// slice. keySuffix is the block key's trailing 8 bytes (doc, start₀,
// big endian). The decoder is total: any malformed input returns
// errCorruptBlock, and the whole value must be consumed exactly.
func appendBlockPostings(dst []Posting, keySuffix, value []byte) ([]Posting, error) {
	if len(keySuffix) != 8 {
		return dst, fmt.Errorf("%w: key suffix %d bytes", errCorruptBlock, len(keySuffix))
	}
	doc := xmltree.DocID(binary.BigEndian.Uint32(keySuffix[0:]))
	start := uint64(binary.BigEndian.Uint32(keySuffix[4:]))
	off := 0
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(value[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	count, ok := next()
	if !ok || count < 1 || count > blockMaxPostings {
		return dst, errCorruptBlock
	}
	var prevPage int64
	for i := uint64(0); i < count; i++ {
		if i > 0 {
			delta, ok := next()
			if !ok {
				return dst, errCorruptBlock
			}
			start += delta
		}
		extent, ok1 := next()
		level, ok2 := next()
		if !ok1 || !ok2 {
			return dst, errCorruptBlock
		}
		var page int64
		if i == 0 {
			p, ok := next()
			if !ok {
				return dst, errCorruptBlock
			}
			page = int64(p)
		} else {
			d, n := binary.Varint(value[off:])
			if n <= 0 {
				return dst, errCorruptBlock
			}
			off += n
			page = prevPage + d
		}
		slot, ok := next()
		if !ok {
			return dst, errCorruptBlock
		}
		if start > 0xffffffff || start+extent > 0xffffffff ||
			level > 0xffff || slot > 0xffff ||
			page < 0 || page > 0xffffffff {
			return dst, errCorruptBlock
		}
		dst = append(dst, Posting{
			Interval: xmltree.Interval{
				Doc:   doc,
				Start: uint32(start),
				End:   uint32(start + extent),
				Level: uint16(level),
			},
			RID: pagestore.RID{
				Page: pagestore.PageID(page),
				Slot: pagestore.Slot(slot),
			},
		})
		prevPage = page
	}
	if off != len(value) {
		return dst, fmt.Errorf("%w: %d trailing bytes", errCorruptBlock, len(value)-off)
	}
	return dst, nil
}

// blockKVs converts sorted v1 index pairs (one 12-byte value per
// posting) into block pairs, greedily packing key-adjacent postings up
// to blockMaxPostings or the tree's cell budget. The input stays
// untouched; bulkBuildIndexes feeds the result straight to BulkLoad.
func blockKVs(kvs []btree.KV, maxCell int) ([]btree.KV, error) {
	out := make([]btree.KV, 0, len(kvs)/8+1)
	i := 0
	for i < len(kvs) {
		blockKey := kvs[i].Key
		if len(blockKey) < 8 {
			return nil, fmt.Errorf("storage: block build: short key %q", blockKey)
		}
		prev, err := decodePosting(blockKey[len(blockKey)-8:], kvs[i].Value)
		if err != nil {
			return nil, err
		}
		body := appendFirstPosting(make([]byte, 0, 64), prev)
		n := 1
		j := i + 1
		for j < len(kvs) && n < blockMaxPostings {
			k := kvs[j].Key
			if len(k) != len(blockKey) || !bytes.Equal(k[:len(k)-4], blockKey[:len(blockKey)-4]) {
				break // different prefix or document
			}
			if len(blockKey)+blockCountLen+len(body)+blockMaxPostingEnc > maxCell {
				break // cell budget
			}
			p, err := decodePosting(k[len(k)-8:], kvs[j].Value)
			if err != nil {
				return nil, err
			}
			body = appendNextPosting(body, prev, p)
			prev = p
			n++
			j++
		}
		val := binary.AppendUvarint(make([]byte, 0, blockCountLen+len(body)), uint64(n))
		val = append(val, body...)
		out = append(out, btree.KV{Key: blockKey, Value: val})
		i = j
	}
	return out, nil
}
