package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"timber/internal/crashfs"
	"timber/internal/xmltree"
)

// crashDoc builds a small distinct document for ingest i.
func crashDoc(t *testing.T, i int) *xmltree.Node {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, `<bib seq="%d">`, i)
	for j := 0; j <= i%3; j++ {
		fmt.Fprintf(&b, `<article><author>author %d-%d</author><title>title %d-%d</title><year>%d</year></article>`,
			i, j, i, j, 1990+i)
	}
	b.WriteString(`</bib>`)
	root, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// serializeDoc renders one stored document back to XML bytes.
func serializeDoc(t *testing.T, db *DB, d DocInfo) string {
	t.Helper()
	root, err := db.GetSubtree(xmltree.NodeID{Doc: d.ID, Start: d.RootStart})
	if err != nil {
		t.Fatalf("doc %s: %v", d.Name, err)
	}
	var out strings.Builder
	if err := xmltree.Serialize(&out, root); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// ingestHistory runs a SyncAlways ingest workload over a crashfs disk
// and records, after each acknowledged commit, the disk watermarks a
// later crash must respect.
type ingestHistory struct {
	disk *crashfs.Disk
	// ackBytes[k] / ackOps[k]: disk position right after insert k was
	// acknowledged; want[name]: reference serialization of each doc.
	ackBytes []int64
	ackOps   []uint64
	names    []string
	want     map[string]string
}

func runIngestHistory(t *testing.T, docs int) *ingestHistory {
	t.Helper()
	h := &ingestHistory{disk: crashfs.New(), want: map[string]string{}}
	dbf, err := h.disk.Create("db")
	if err != nil {
		t.Fatal(err)
	}
	wf, err := h.disk.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateOnFiles(dbf, wf, Options{PageSize: 1024, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		name := fmt.Sprintf("doc-%02d.xml", i)
		root := crashDoc(t, i)
		if _, err := db.InsertDocument(name, root, SyncAlways); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
		h.names = append(h.names, name)
		h.ackBytes = append(h.ackBytes, h.disk.Bytes())
		h.ackOps = append(h.ackOps, h.disk.Ops())
		var out strings.Builder
		if err := xmltree.Serialize(&out, root); err != nil {
			t.Fatal(err)
		}
		h.want[name] = out.String()
	}
	// Leave the database un-closed: the crash images below are cuts of
	// the journaled history, so a clean shutdown must not be required.
	return h
}

// ackedBefore returns how many inserts were acknowledged at or before
// the given byte watermark.
func (h *ingestHistory) ackedBefore(bytes int64) int {
	n := 0
	for _, w := range h.ackBytes {
		if w <= bytes {
			n++
		}
	}
	return n
}

// checkRecovered opens a crash image and asserts the recovered catalog
// is a committed prefix of the ingest history containing at least
// minDocs documents, every surviving document byte-identical to its
// reference serialization. It returns the prefix length.
func checkRecovered(t *testing.T, h *ingestHistory, img *crashfs.Disk, minDocs int, label string) int {
	t.Helper()
	dbf, err := img.Open("db")
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	wf, err := img.Open("wal")
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	db, err := OpenOnFiles(dbf, wf, Options{PoolPages: 64})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer db.Close()

	docs := db.Documents()
	k := len(docs)
	if k < minDocs {
		t.Fatalf("%s: recovered %d documents, but %d commits were acknowledged durable", label, k, minDocs)
	}
	if k > len(h.names) {
		t.Fatalf("%s: recovered %d documents, only %d were ever inserted", label, k, len(h.names))
	}
	for i, d := range docs {
		if d.Name != h.names[i] {
			t.Fatalf("%s: recovered catalog %v is not a prefix of the ingest order", label, docNames(docs))
		}
		if got := serializeDoc(t, db, d); got != h.want[d.Name] {
			t.Fatalf("%s: %s recovered with different bytes:\n got %q\nwant %q", label, d.Name, got, h.want[d.Name])
		}
	}
	// The recovered database accepts new commits: the write path came
	// back, not just the catalog.
	if _, err := db.InsertDocument("post-crash.xml", crashDoc(t, 99), SyncAlways); err != nil {
		t.Fatalf("%s: post-recovery insert: %v", label, err)
	}
	return k
}

func docNames(docs []DocInfo) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Name
	}
	return out
}

// TestCrashRecoveryTornWrites cuts the journaled disk history at byte
// offsets spanning the whole ingest run — including mid-write, tearing
// a WAL frame or a data page — and asserts every image recovers to a
// committed prefix no shorter than the acknowledged watermark
// (SyncAlways: an acknowledged commit is on disk before the cut).
func TestCrashRecoveryTornWrites(t *testing.T) {
	const docs = 10
	h := runIngestHistory(t, docs)
	total := h.disk.Bytes()
	base := h.ackBytes[0] // image must contain at least one full commit

	budgets := map[int64]bool{total: true}
	for _, w := range h.ackBytes {
		budgets[w] = true   // exactly at an ack
		budgets[w+7] = true // shortly after: tears the next txn's frames
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 32; i++ {
		budgets[base+rng.Int63n(total-base+1)] = true
	}
	points := 0
	for b := range budgets {
		if b < base || b > total {
			continue
		}
		points++
		img := h.disk.CrashDiskAtBytes(b)
		k := checkRecovered(t, h, img, h.ackedBefore(b), fmt.Sprintf("cut@%dB", b))
		if testing.Verbose() {
			t.Logf("cut@%dB: recovered %d/%d documents", b, k, docs)
		}
	}
	if points < docs {
		t.Fatalf("only %d crash points exercised", points)
	}
}

// TestCrashRecoveryDropUnsynced replays the harshest POSIX crash:
// every write not covered by an fsync barrier is lost. SyncAlways
// acknowledgements must still hold — this is the test that catches a
// commit acknowledged before its fsync actually happened.
func TestCrashRecoveryDropUnsynced(t *testing.T) {
	const docs = 8
	h := runIngestHistory(t, docs)

	for k, ops := range h.ackOps {
		img := h.disk.CrashDiskDropUnsynced(ops)
		checkRecovered(t, h, img, k+1, fmt.Sprintf("drop-unsynced@op%d", ops))
	}
	// Random cut points between acks: no prefix guarantee beyond the
	// last ack, but recovery must still produce a consistent prefix.
	rng := rand.New(rand.NewSource(7))
	last := h.ackOps[len(h.ackOps)-1]
	first := h.ackOps[0]
	for i := 0; i < 16; i++ {
		cut := first + uint64(rng.Int63n(int64(last-first+1)))
		img := h.disk.CrashDiskDropUnsynced(cut)
		checkRecovered(t, h, img, h.ackedAtOp(cut), fmt.Sprintf("drop-unsynced@op%d", cut))
	}
}

func (h *ingestHistory) ackedAtOp(op uint64) int {
	n := 0
	for _, w := range h.ackOps {
		if w <= op {
			n++
		}
	}
	return n
}

// TestCrashRecoveryIdempotent recovers the same image twice: recovery
// itself must leave a state that recovers to the identical catalog (a
// crash during recovery's own checkpoint is just another crash).
func TestCrashRecoveryIdempotent(t *testing.T) {
	h := runIngestHistory(t, 6)
	cut := h.ackBytes[3] + 5
	img := h.disk.CrashDiskAtBytes(cut)

	first := checkRecovered(t, h, img, h.ackedBefore(cut), "first recovery")
	// checkRecovered inserted post-crash.xml and closed cleanly; the
	// image now holds first+1 documents and must reopen to exactly that.
	dbf, _ := img.Open("db")
	wf, _ := img.Open("wal")
	db, err := OpenOnFiles(dbf, wf, Options{PoolPages: 64})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer db.Close()
	if got := len(db.Documents()); got != first+1 {
		t.Fatalf("second recovery found %d documents, want %d", got, first+1)
	}
}

// TestCrashRecoveryDeletes mixes deletes into the history and checks a
// full-history crash image recovers the exact final catalog.
func TestCrashRecoveryDeletes(t *testing.T) {
	disk := crashfs.New()
	dbf, _ := disk.Create("db")
	wf, _ := disk.Create("wal")
	db, err := CreateOnFiles(dbf, wf, Options{PageSize: 1024, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("doc-%d.xml", i)
		root := crashDoc(t, i)
		if _, err := db.InsertDocument(name, root, SyncAlways); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := xmltree.Serialize(&out, root); err != nil {
			t.Fatal(err)
		}
		want[name] = out.String()
	}
	for _, name := range []string{"doc-1.xml", "doc-4.xml"} {
		if err := db.DeleteDocument(name, SyncAlways); err != nil {
			t.Fatal(err)
		}
		delete(want, name)
	}

	img := disk.CrashDiskAtBytes(disk.Bytes())
	rdbf, _ := img.Open("db")
	rwf, _ := img.Open("wal")
	rdb, err := OpenOnFiles(rdbf, rwf, Options{PoolPages: 64})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rdb.Close()
	if got := len(rdb.Documents()); got != len(want) {
		t.Fatalf("recovered %d documents, want %d (%v)", got, len(want), docNames(rdb.Documents()))
	}
	for _, d := range rdb.Documents() {
		ref, ok := want[d.Name]
		if !ok {
			t.Fatalf("deleted document %s came back", d.Name)
		}
		if got := serializeDoc(t, rdb, d); got != ref {
			t.Fatalf("%s: recovered bytes differ", d.Name)
		}
	}
}

// TestIngestWriteFaults injects clean and short write failures into
// the WAL mid-commit and asserts the failed transaction aborts without
// poisoning the database: the catalog is unchanged and later commits
// (after the fault clears) succeed and survive a crash.
func TestIngestWriteFaults(t *testing.T) {
	for _, tc := range []struct {
		name  string
		short bool
	}{
		{"clean-fail", false},
		{"short-write", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			disk := crashfs.New()
			dbf, _ := disk.Create("db")
			wf, _ := disk.Create("wal")
			db, err := CreateOnFiles(dbf, wf, Options{PageSize: 1024, PoolPages: 64})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.InsertDocument("keep.xml", crashDoc(t, 0), SyncAlways); err != nil {
				t.Fatal(err)
			}

			wf.SetWriteLimit(64, tc.short)
			if _, err := db.InsertDocument("doomed.xml", crashDoc(t, 1), SyncAlways); err == nil {
				t.Fatal("insert succeeded with a failing WAL")
			}
			wf.ClearWriteLimit()

			if got := len(db.Documents()); got != 1 {
				t.Fatalf("catalog has %d documents after aborted insert, want 1", got)
			}
			if _, err := db.InsertDocument("after.xml", crashDoc(t, 2), SyncAlways); err != nil {
				t.Fatalf("insert after cleared fault: %v", err)
			}

			img := disk.CrashDiskAtBytes(disk.Bytes())
			rdbf, _ := img.Open("db")
			rwf, _ := img.Open("wal")
			rdb, err := OpenOnFiles(rdbf, rwf, Options{PoolPages: 64})
			if err != nil {
				t.Fatalf("recovery after fault: %v", err)
			}
			defer rdb.Close()
			if got := docNames(rdb.Documents()); len(got) != 2 || got[0] != "keep.xml" || got[1] != "after.xml" {
				t.Fatalf("recovered catalog %v, want [keep.xml after.xml]", got)
			}
		})
	}
}
