package storage

import (
	"testing"

	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// FuzzPostingBlock asserts the block decoder's total-function contract:
// arbitrary (keySuffix, value) bytes either decode to 1..128 postings
// or return an error — never a panic, an out-of-range field, or a read
// past the input.
func FuzzPostingBlock(f *testing.F) {
	iv := xmltree.Interval{Doc: 1, Start: 10, End: 20, Level: 3}
	key := tagKey("seed", iv.ID())
	f.Add(key[len(key)-8:], blockValue1(iv, pagestore.RID{Page: 5, Slot: 2}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 9}, []byte{1, 4, 2, 9, 1})
	f.Add([]byte{}, []byte{})
	f.Add(key[len(key)-8:], []byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, keySuffix, value []byte) {
		ps, err := appendBlockPostings(nil, keySuffix, value)
		if err != nil {
			return
		}
		if len(ps) < 1 || len(ps) > blockMaxPostings {
			t.Fatalf("decoded %d postings without error", len(ps))
		}
		for _, p := range ps {
			if p.Interval.End < p.Interval.Start {
				t.Fatalf("inverted interval %+v", p.Interval)
			}
		}
	})
}

// FuzzRecordCompact asserts the varint record decoder (and its content
// fast path) never panics, and that the fast path agrees with the full
// decode whenever both succeed.
func FuzzRecordCompact(f *testing.F) {
	f.Add(encodeRecordCompact(&NodeRecord{
		Interval:    xmltree.Interval{Doc: 1, Start: 2, End: 8, Level: 1},
		ParentStart: 1,
		Tag:         "article",
		Content:     "Grouping in XML",
		Attrs:       []xmltree.Attr{{Name: "key", Value: "v"}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeRecordCompact(b)
		content, cerr := recordContentCompact(b)
		if err == nil && cerr == nil && content != rec.Content {
			t.Fatalf("content fast path %q disagrees with decode %q", content, rec.Content)
		}
		if err == nil {
			// Re-encode must round-trip: the decoder accepts only
			// canonical field values.
			got, err2 := decodeRecordCompact(encodeRecordCompact(rec))
			if err2 != nil {
				t.Fatalf("re-decode failed: %v", err2)
			}
			if got.Interval != rec.Interval || got.Tag != rec.Tag || got.Content != rec.Content {
				t.Fatal("re-encode round trip mismatch")
			}
		}
	})
}
