package storage

import (
	"bytes"
	"encoding/binary"
	"sort"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// TagCursor streams the postings of one tag (optionally restricted to
// one document) in document order, one at a time, instead of
// materializing the whole posting list the way TagPostings does. The
// streaming executor's scan operators are built on it: a pipeline pulls
// postings as its batches demand them and an early-terminating query
// never reads the tail of the list.
type TagCursor struct {
	it     *btree.Iterator
	prefix []byte
	err    error
	done   bool

	// pin is the snapshot a DB-level open took for this cursor; Close
	// releases it. Cursors opened on a caller-owned Snapshot leave it
	// nil — the caller's pin outlives the cursor.
	pin *Snapshot

	// compact cursors decode a whole posting block per index cell and
	// serve it from buf; plain cursors decode one posting per cell.
	compact bool
	buf     []Posting
	bufPos  int

	// decoded counts postings decoded from index cells (whole blocks
	// count in full); skippedBlocks counts compact blocks Seek jumped
	// over without decoding. Together they quantify how much index the
	// cursor actually touched — the holistic matcher's cost unit.
	decoded       int
	skippedBlocks int
}

// OpenTagCursor positions a cursor at the first posting of tag across
// all documents.
func (sn *Snapshot) OpenTagCursor(tag string) *TagCursor {
	prefix := tagPrefix(tag)
	return &TagCursor{it: sn.tagIdx.Seek(prefix), prefix: prefix, compact: sn.db.compact}
}

// OpenTagCursor pins a snapshot for the cursor's lifetime; the pin is
// released by the cursor's Close.
func (db *DB) OpenTagCursor(tag string) *TagCursor {
	sn := db.Snapshot()
	c := sn.OpenTagCursor(tag)
	c.pin = sn
	return c
}

// OpenTagDocCursor positions a cursor at the first posting of tag
// within one document. Per-document cursors are what the exchange
// operator hands each fragment: the key layout (tag, 0x00, doc, start)
// makes a document a contiguous key range, so restricting the scan is
// one longer prefix, not a filter.
func (sn *Snapshot) OpenTagDocCursor(tag string, doc xmltree.DocID) *TagCursor {
	prefix := tagPrefix(tag)
	prefix = append(prefix, be32(uint32(doc))...)
	return &TagCursor{it: sn.tagIdx.Seek(prefix), prefix: prefix, compact: sn.db.compact}
}

// OpenTagDocCursor pins a snapshot for the cursor's lifetime; the pin
// is released by the cursor's Close.
func (db *DB) OpenTagDocCursor(tag string, doc xmltree.DocID) *TagCursor {
	sn := db.Snapshot()
	c := sn.OpenTagDocCursor(tag, doc)
	c.pin = sn
	return c
}

// Next returns the next posting, or ok=false at the end of the range
// (or on error — check Err).
func (c *TagCursor) Next() (Posting, bool) {
	if c.bufPos < len(c.buf) {
		p := c.buf[c.bufPos]
		c.bufPos++
		return p, true
	}
	if c.done || c.err != nil {
		return Posting{}, false
	}
	if !c.it.Valid() {
		c.done = true
		c.err = c.it.Err()
		return Posting{}, false
	}
	k := c.it.Key()
	if !bytes.HasPrefix(k, c.prefix) {
		c.done = true
		return Posting{}, false
	}
	// Keys end in the fixed-width (doc, start) pair regardless of how
	// long the prefix was (tags cannot contain NUL).
	if c.compact {
		// One cell is a whole block; blocks never span documents, so a
		// per-document prefix match covers every posting inside.
		buf, err := appendBlockPostings(c.buf[:0], k[len(k)-8:], c.it.Value())
		if err != nil || len(buf) == 0 {
			c.err = err
			c.done = true
			return Posting{}, false
		}
		c.decoded += len(buf)
		c.buf = buf
		c.bufPos = 1
		c.it.Next()
		return buf[0], true
	}
	p, err := decodePosting(k[len(k)-8:], c.it.Value())
	if err != nil {
		c.err = err
		c.done = true
		return Posting{}, false
	}
	c.decoded++
	c.it.Next()
	return p, true
}

// Seek fast-forwards the cursor so the next Next returns the first
// remaining posting at or after (doc, start) in (doc, start) order; it
// never moves backward. Compact posting blocks are bounded by their
// header key and never span documents, so whole blocks strictly below
// the target are skipped without decoding — one-cell lookahead inside
// the leaf decides whether the current block can straddle the target.
// This is the non-overlap skip the holistic twig matcher relies on.
func (c *TagCursor) Seek(doc xmltree.DocID, start uint32) {
	var suffix [8]byte
	copy(suffix[0:], be32(uint32(doc)))
	copy(suffix[4:], be32(start))
	// Serve from the decoded block first: if the target lies at or
	// before its last posting the answer is a buffer reposition.
	if c.bufPos < len(c.buf) {
		i := c.bufPos + postingSearch(c.buf[c.bufPos:], doc, start)
		if i < len(c.buf) {
			c.bufPos = i
			return
		}
		c.buf = c.buf[:0]
		c.bufPos = 0
	}
	if c.done || c.err != nil {
		return
	}
	if !c.compact {
		// One cell per posting: the target key is exact, so the B+tree
		// forward seek lands on it (or the first key past it) directly.
		if c.it.Valid() {
			k := c.it.Key()
			target := make([]byte, 0, len(k))
			target = append(target, k[:len(k)-8]...)
			target = append(target, suffix[:]...)
			c.it.SeekForward(target)
		}
		return
	}
	for c.it.Valid() {
		k := c.it.Key()
		if !bytes.HasPrefix(k, c.prefix) {
			c.done = true
			return
		}
		if bytes.Compare(k[len(k)-8:], suffix[:]) >= 0 {
			return // block starts at/after the target; Next serves it
		}
		// Block starts before the target. It cannot contain the target
		// if it belongs to an earlier document (blocks never span docs)
		// or if the next block starts at or before the target.
		if xmltree.DocID(binary.BigEndian.Uint32(k[len(k)-8:])) < doc {
			c.skippedBlocks++
			c.it.Next()
			continue
		}
		if nk, ok := c.it.PeekNextKey(); ok && bytes.HasPrefix(nk, c.prefix) &&
			bytes.Compare(nk[len(nk)-8:], suffix[:]) <= 0 {
			c.skippedBlocks++
			c.it.Next()
			continue
		}
		// The block may straddle the target: decode and search it.
		buf, err := appendBlockPostings(c.buf[:0], k[len(k)-8:], c.it.Value())
		if err != nil {
			c.err = err
			c.done = true
			return
		}
		c.decoded += len(buf)
		c.it.Next()
		if i := postingSearch(buf, doc, start); i < len(buf) {
			c.buf = buf
			c.bufPos = i
			return
		}
		c.buf = buf[:0]
	}
	c.done = true
	c.err = c.it.Err()
}

// postingSearch returns the index of the first posting in ps at or
// after (doc, start); ps is sorted by (doc, start).
func postingSearch(ps []Posting, doc xmltree.DocID, start uint32) int {
	return sort.Search(len(ps), func(i int) bool {
		iv := ps[i].Interval
		return iv.Doc > doc || (iv.Doc == doc && iv.Start >= start)
	})
}

// PostingsDecoded reports how many postings the cursor has decoded from
// the index, including postings decoded while seeking and block
// remainders the caller never consumed.
func (c *TagCursor) PostingsDecoded() int { return c.decoded }

// BlocksSkipped reports how many compact posting blocks Seek jumped
// over without decoding.
func (c *TagCursor) BlocksSkipped() int { return c.skippedBlocks }

// Err reports the first error the cursor hit, if any.
func (c *TagCursor) Err() error { return c.err }

// Close releases the cursor's pinned index page (and its snapshot pin,
// if the cursor owns one) and returns its first error — a scan fault
// or a pin-release fault. Idempotent.
func (c *TagCursor) Close() error {
	cerr := c.it.Close()
	c.done = true
	if c.pin != nil {
		c.pin.Close()
		c.pin = nil
	}
	if c.err == nil {
		c.err = cerr
	}
	return c.err
}

// ContentsBatch populates out[i] with the stored content of ps[i] for a
// whole batch of postings in one call — the late-materialization access
// path of the streaming executor. Consecutive postings on the same heap
// page share a single buffer-pool fetch (the page stays pinned across
// them), so a batch of output rows clustered in document order costs
// far fewer fetches than len(ps) individual Content calls. out must
// have len(ps) slots.
func (sn *Snapshot) ContentsBatch(ps []Posting, out []string) error {
	st := sn.db.st
	for i := 0; i < len(ps); {
		j := i + 1
		for j < len(ps) && ps[j].RID.Page == ps[i].RID.Page {
			j++
		}
		p, err := st.Fetch(ps[i].RID.Page)
		if err != nil {
			return err
		}
		sp := pagestore.ViewSlotted(p)
		for k := i; k < j; k++ {
			b, rerr := sp.Read(ps[k].RID.Slot)
			if rerr != nil {
				st.Unpin(p, false)
				return rerr
			}
			content, derr := sn.db.nodeContent(b)
			if derr != nil {
				st.Unpin(p, false)
				return derr
			}
			out[k] = content
		}
		st.Unpin(p, false)
		i = j
	}
	return nil
}

// ContentsBatch is the pin-per-call form of Snapshot.ContentsBatch.
func (db *DB) ContentsBatch(ps []Posting, out []string) error {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.ContentsBatch(ps, out)
}
