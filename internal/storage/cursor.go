package storage

import (
	"bytes"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// TagCursor streams the postings of one tag (optionally restricted to
// one document) in document order, one at a time, instead of
// materializing the whole posting list the way TagPostings does. The
// streaming executor's scan operators are built on it: a pipeline pulls
// postings as its batches demand them and an early-terminating query
// never reads the tail of the list.
type TagCursor struct {
	it     *btree.Iterator
	prefix []byte
	err    error
	done   bool

	// pin is the snapshot a DB-level open took for this cursor; Close
	// releases it. Cursors opened on a caller-owned Snapshot leave it
	// nil — the caller's pin outlives the cursor.
	pin *Snapshot

	// compact cursors decode a whole posting block per index cell and
	// serve it from buf; plain cursors decode one posting per cell.
	compact bool
	buf     []Posting
	bufPos  int
}

// OpenTagCursor positions a cursor at the first posting of tag across
// all documents.
func (sn *Snapshot) OpenTagCursor(tag string) *TagCursor {
	prefix := tagPrefix(tag)
	return &TagCursor{it: sn.tagIdx.Seek(prefix), prefix: prefix, compact: sn.db.compact}
}

// OpenTagCursor pins a snapshot for the cursor's lifetime; the pin is
// released by the cursor's Close.
func (db *DB) OpenTagCursor(tag string) *TagCursor {
	sn := db.Snapshot()
	c := sn.OpenTagCursor(tag)
	c.pin = sn
	return c
}

// OpenTagDocCursor positions a cursor at the first posting of tag
// within one document. Per-document cursors are what the exchange
// operator hands each fragment: the key layout (tag, 0x00, doc, start)
// makes a document a contiguous key range, so restricting the scan is
// one longer prefix, not a filter.
func (sn *Snapshot) OpenTagDocCursor(tag string, doc xmltree.DocID) *TagCursor {
	prefix := tagPrefix(tag)
	prefix = append(prefix, be32(uint32(doc))...)
	return &TagCursor{it: sn.tagIdx.Seek(prefix), prefix: prefix, compact: sn.db.compact}
}

// OpenTagDocCursor pins a snapshot for the cursor's lifetime; the pin
// is released by the cursor's Close.
func (db *DB) OpenTagDocCursor(tag string, doc xmltree.DocID) *TagCursor {
	sn := db.Snapshot()
	c := sn.OpenTagDocCursor(tag, doc)
	c.pin = sn
	return c
}

// Next returns the next posting, or ok=false at the end of the range
// (or on error — check Err).
func (c *TagCursor) Next() (Posting, bool) {
	if c.bufPos < len(c.buf) {
		p := c.buf[c.bufPos]
		c.bufPos++
		return p, true
	}
	if c.done || c.err != nil {
		return Posting{}, false
	}
	if !c.it.Valid() {
		c.done = true
		c.err = c.it.Err()
		return Posting{}, false
	}
	k := c.it.Key()
	if !bytes.HasPrefix(k, c.prefix) {
		c.done = true
		return Posting{}, false
	}
	// Keys end in the fixed-width (doc, start) pair regardless of how
	// long the prefix was (tags cannot contain NUL).
	if c.compact {
		// One cell is a whole block; blocks never span documents, so a
		// per-document prefix match covers every posting inside.
		buf, err := appendBlockPostings(c.buf[:0], k[len(k)-8:], c.it.Value())
		if err != nil || len(buf) == 0 {
			c.err = err
			c.done = true
			return Posting{}, false
		}
		c.buf = buf
		c.bufPos = 1
		c.it.Next()
		return buf[0], true
	}
	p, err := decodePosting(k[len(k)-8:], c.it.Value())
	if err != nil {
		c.err = err
		c.done = true
		return Posting{}, false
	}
	c.it.Next()
	return p, true
}

// Err reports the first error the cursor hit, if any.
func (c *TagCursor) Err() error { return c.err }

// Close releases the cursor's pinned index page (and its snapshot pin,
// if the cursor owns one) and returns its first error — a scan fault
// or a pin-release fault. Idempotent.
func (c *TagCursor) Close() error {
	cerr := c.it.Close()
	c.done = true
	if c.pin != nil {
		c.pin.Close()
		c.pin = nil
	}
	if c.err == nil {
		c.err = cerr
	}
	return c.err
}

// ContentsBatch populates out[i] with the stored content of ps[i] for a
// whole batch of postings in one call — the late-materialization access
// path of the streaming executor. Consecutive postings on the same heap
// page share a single buffer-pool fetch (the page stays pinned across
// them), so a batch of output rows clustered in document order costs
// far fewer fetches than len(ps) individual Content calls. out must
// have len(ps) slots.
func (sn *Snapshot) ContentsBatch(ps []Posting, out []string) error {
	st := sn.db.st
	for i := 0; i < len(ps); {
		j := i + 1
		for j < len(ps) && ps[j].RID.Page == ps[i].RID.Page {
			j++
		}
		p, err := st.Fetch(ps[i].RID.Page)
		if err != nil {
			return err
		}
		sp := pagestore.ViewSlotted(p)
		for k := i; k < j; k++ {
			b, rerr := sp.Read(ps[k].RID.Slot)
			if rerr != nil {
				st.Unpin(p, false)
				return rerr
			}
			content, derr := sn.db.nodeContent(b)
			if derr != nil {
				st.Unpin(p, false)
				return derr
			}
			out[k] = content
		}
		st.Unpin(p, false)
		i = j
	}
	return nil
}

// ContentsBatch is the pin-per-call form of Snapshot.ContentsBatch.
func (db *DB) ContentsBatch(ps []Posting, out []string) error {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.ContentsBatch(ps, out)
}
