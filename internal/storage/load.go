package storage

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"timber/internal/btree"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// LoadDocument numbers the tree rooted at root and stores every node:
// a record in the data heap, a locator entry, a tag-index entry, and
// (unless disabled) a value-index entry. It returns the new document's
// ID. Document IDs are assigned sequentially starting at 1. The tree is
// numbered in place, so the caller can continue to use it with interval
// operations; the database itself keeps no reference to it.
//
// LoadDocument is the OFFLINE bulk path: it mutates index pages in
// place (the first document bulk-loads the trees bottom-up, orders of
// magnitude faster than per-node inserts) and therefore requires
// exclusive access — no snapshot, spool or concurrent writer — and is
// not crash-safe while running (a crash mid-load means rebuilding the
// database from sources). It checkpoints on entry and exit, so it
// composes correctly with durable ingest before and after. For online,
// crash-safe, concurrent-reader-safe ingest use InsertDocument.
func (db *DB) LoadDocument(name string, root *xmltree.Node) (xmltree.DocID, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	// Flush any WAL-resident state first: the load mutates pages in
	// place without logging, which would invalidate replaying earlier
	// transactions on top of them.
	if db.wal != nil && db.wal.Size() > 0 {
		if err := db.checkpointLocked(); err != nil {
			return 0, fmt.Errorf("storage: load %q: pre-checkpoint: %w", name, err)
		}
	}
	base := db.tip
	doc := xmltree.DocID(base.nextDocID)
	xmltree.Number(root, doc)

	heap := pagestore.OpenHeapAt(db.st, base.heapFirst, base.heapLast)
	heap.SetRaw()
	catalog := db.tree(base.catalog)
	locator := db.tree(base.locator)
	tagIdx := db.tree(base.tag)
	var valIdx *btree.Tree
	if base.hasVal {
		valIdx = db.tree(base.val)
	}
	h := &loadHandles{heap: heap, locator: locator, tagIdx: tagIdx, valIdx: valIdx}

	bulk := len(base.docs) == 0
	var entries *indexEntries
	if bulk {
		entries = &indexEntries{}
	}

	var count uint64
	var loadErr error
	root.Walk(func(n *xmltree.Node) bool {
		if loadErr != nil {
			return false
		}
		rec := &NodeRecord{
			Interval: n.Interval,
			Tag:      n.Tag,
			Content:  n.Content,
			Attrs:    n.Attrs,
		}
		if n.Parent != nil {
			rec.ParentStart = n.Parent.Interval.Start
		}
		if err := db.storeNode(h, rec, entries); err != nil {
			loadErr = err
			return false
		}
		count++
		return true
	})
	if loadErr != nil {
		return 0, fmt.Errorf("storage: load %q: %w", name, loadErr)
	}
	if bulk {
		if err := db.bulkBuildIndexes(h, entries); err != nil {
			return 0, fmt.Errorf("storage: load %q: %w", name, err)
		}
	}

	info := DocInfo{ID: doc, Name: name, RootStart: root.Interval.Start, NodeCount: count}
	if err := catalog.Insert(catalogKey(doc), encodeDocInfo(info)); err != nil {
		return 0, fmt.Errorf("storage: load %q: catalog: %w", name, err)
	}

	ns := &snapState{
		epoch:     base.epoch + 1,
		heapFirst: h.heap.FirstPage(),
		heapLast:  h.heap.LastPage(),
		catalog:   catalog.Root(),
		locator:   h.locator.Root(),
		tag:       h.tagIdx.Root(),
		hasVal:    base.hasVal,
		nextDocID: base.nextDocID + 1,
	}
	if h.valIdx != nil {
		ns.val = h.valIdx.Root()
	}
	ns.docs = make([]DocInfo, 0, len(base.docs)+1)
	ns.docs = append(ns.docs, base.docs...)
	ns.docs = append(ns.docs, info)
	db.tip = ns
	// Make the load durable before anything references it: a later WAL
	// transaction must never depend on unflushed, unlogged load pages.
	if err := db.checkpointLocked(); err != nil {
		return 0, fmt.Errorf("storage: load %q: checkpoint: %w", name, err)
	}
	return doc, nil
}

// LoadXML parses an XML document from r and loads it.
func (db *DB) LoadXML(name string, r io.Reader) (xmltree.DocID, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return db.LoadDocument(name, root)
}

// loadHandles carries one load's in-place write handles.
type loadHandles struct {
	heap    *pagestore.Heap
	locator *btree.Tree
	tagIdx  *btree.Tree
	valIdx  *btree.Tree
}

// indexEntries accumulates the index pairs of one bulk load.
type indexEntries struct {
	loc, tag, val []btree.KV
}

// storeNode writes the record to the heap and either queues (bulk) or
// inserts (incremental) its index entries.
func (db *DB) storeNode(h *loadHandles, rec *NodeRecord, bulk *indexEntries) error {
	rid, err := h.heap.Insert(db.encodeNodeRecord(rec))
	if err != nil {
		return err
	}
	id := rec.ID()
	// Bulk loads always queue the fixed-width v1 value; bulkBuildIndexes
	// converts the sorted run into posting blocks in one pass. Only the
	// incremental path writes the final form directly.
	indexValue := postingValue(rec.Interval, rid)
	if bulk == nil && db.compact {
		indexValue = blockValue1(rec.Interval, rid)
	}
	if bulk != nil {
		bulk.loc = append(bulk.loc, btree.KV{Key: locatorKey(id), Value: ridValue(rid)})
		bulk.tag = append(bulk.tag, btree.KV{Key: tagKey(rec.Tag, id), Value: indexValue})
		if h.valIdx != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
			bulk.val = append(bulk.val, btree.KV{Key: valueKey(rec.Tag, rec.Content, id), Value: indexValue})
		}
		return nil
	}
	if err := h.locator.Insert(locatorKey(id), ridValue(rid)); err != nil {
		return fmt.Errorf("locator: %w", err)
	}
	if err := h.tagIdx.Insert(tagKey(rec.Tag, id), indexValue); err != nil {
		return fmt.Errorf("tag index: %w", err)
	}
	if h.valIdx != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
		if err := h.valIdx.Insert(valueKey(rec.Tag, rec.Content, id), indexValue); err != nil {
			return fmt.Errorf("value index: %w", err)
		}
	}
	return nil
}

// bulkBuildIndexes replaces the (empty) index trees with bulk-loaded
// ones. Locator keys are generated in document order and hence already
// sorted; tag and value keys are sorted here. The abandoned empty
// roots are a few dead pages, reclaimed at the next rebuild.
func (db *DB) bulkBuildIndexes(h *loadHandles, e *indexEntries) error {
	sortKVs(e.tag)
	sortKVs(e.val)
	tag, val := e.tag, e.val
	var err error
	if db.compact {
		// Pack the sorted posting runs into delta/varint blocks. The
		// locator keeps per-node cells: its values are bare RIDs and its
		// range scans address individual keys.
		maxCell := btree.MaxCellFor(db.st.PageSize())
		if tag, err = blockKVs(tag, maxCell); err != nil {
			return fmt.Errorf("tag index blocks: %w", err)
		}
		if val, err = blockKVs(val, maxCell); err != nil {
			return fmt.Errorf("value index blocks: %w", err)
		}
	}
	if h.locator, err = btree.BulkLoad(db.st, e.loc); err != nil {
		return fmt.Errorf("locator bulk load: %w", err)
	}
	h.locator.SetMetrics(&db.idxMetrics)
	if h.tagIdx, err = btree.BulkLoad(db.st, tag); err != nil {
		return fmt.Errorf("tag index bulk load: %w", err)
	}
	h.tagIdx.SetMetrics(&db.idxMetrics)
	if h.valIdx != nil {
		if h.valIdx, err = btree.BulkLoad(db.st, val); err != nil {
			return fmt.Errorf("value index bulk load: %w", err)
		}
		h.valIdx.SetMetrics(&db.idxMetrics)
	}
	return nil
}

func sortKVs(kvs []btree.KV) {
	sort.Slice(kvs, func(i, j int) bool { return bytes.Compare(kvs[i].Key, kvs[j].Key) < 0 })
}
