package storage

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"timber/internal/btree"
	"timber/internal/xmltree"
)

// LoadDocument numbers the tree rooted at root and stores every node:
// a record in the data heap, a locator entry, a tag-index entry, and
// (unless disabled) a value-index entry. It returns the new document's
// ID. Document IDs are assigned sequentially starting at 1. The tree is
// numbered in place, so the caller can continue to use it with interval
// operations; the database itself keeps no reference to it.
func (db *DB) LoadDocument(name string, root *xmltree.Node) (xmltree.DocID, error) {
	doc := xmltree.DocID(len(db.docs) + 1)
	xmltree.Number(root, doc)

	// The first document bulk-loads the indices bottom-up (orders of
	// magnitude faster than root-to-leaf inserts); later documents
	// insert incrementally, which keeps multi-document databases
	// correct at the usual B+tree insert cost.
	bulk := len(db.docs) == 0
	var entries *indexEntries
	if bulk {
		entries = &indexEntries{}
	}

	var count uint64
	var loadErr error
	root.Walk(func(n *xmltree.Node) bool {
		if loadErr != nil {
			return false
		}
		rec := &NodeRecord{
			Interval: n.Interval,
			Tag:      n.Tag,
			Content:  n.Content,
			Attrs:    n.Attrs,
		}
		if n.Parent != nil {
			rec.ParentStart = n.Parent.Interval.Start
		}
		if err := db.storeNode(rec, entries); err != nil {
			loadErr = err
			return false
		}
		count++
		return true
	})
	if loadErr != nil {
		return 0, fmt.Errorf("storage: load %q: %w", name, loadErr)
	}
	if bulk {
		if err := db.bulkBuildIndexes(entries); err != nil {
			return 0, fmt.Errorf("storage: load %q: %w", name, err)
		}
	}

	info := DocInfo{ID: doc, Name: name, RootStart: root.Interval.Start, NodeCount: count}
	if _, err := db.catalog.Insert(encodeDocInfo(info)); err != nil {
		return 0, fmt.Errorf("storage: load %q: catalog: %w", name, err)
	}
	db.docs = append(db.docs, info)
	if err := db.writeMeta(); err != nil {
		return 0, err
	}
	return doc, nil
}

// LoadXML parses an XML document from r and loads it.
func (db *DB) LoadXML(name string, r io.Reader) (xmltree.DocID, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return db.LoadDocument(name, root)
}

// indexEntries accumulates the index pairs of one bulk load.
type indexEntries struct {
	loc, tag, val []btree.KV
}

// storeNode writes the record to the heap and either queues (bulk) or
// inserts (incremental) its index entries.
func (db *DB) storeNode(rec *NodeRecord, bulk *indexEntries) error {
	rid, err := db.heap.Insert(db.encodeNodeRecord(rec))
	if err != nil {
		return err
	}
	id := rec.ID()
	// Bulk loads always queue the fixed-width v1 value; bulkBuildIndexes
	// converts the sorted run into posting blocks in one pass. Only the
	// incremental path writes the final form directly.
	indexValue := postingValue(rec.Interval, rid)
	if bulk == nil && db.compact {
		indexValue = blockValue1(rec.Interval, rid)
	}
	if bulk != nil {
		bulk.loc = append(bulk.loc, btree.KV{Key: locatorKey(id), Value: ridValue(rid)})
		bulk.tag = append(bulk.tag, btree.KV{Key: tagKey(rec.Tag, id), Value: indexValue})
		if db.valIdx != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
			bulk.val = append(bulk.val, btree.KV{Key: valueKey(rec.Tag, rec.Content, id), Value: indexValue})
		}
		return nil
	}
	if err := db.locator.Insert(locatorKey(id), ridValue(rid)); err != nil {
		return fmt.Errorf("locator: %w", err)
	}
	if err := db.tagIdx.Insert(tagKey(rec.Tag, id), indexValue); err != nil {
		return fmt.Errorf("tag index: %w", err)
	}
	if db.valIdx != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
		if err := db.valIdx.Insert(valueKey(rec.Tag, rec.Content, id), indexValue); err != nil {
			return fmt.Errorf("value index: %w", err)
		}
	}
	return nil
}

// bulkBuildIndexes replaces the (empty) index trees with bulk-loaded
// ones. Locator keys are generated in document order and hence already
// sorted; tag and value keys are sorted here.
func (db *DB) bulkBuildIndexes(e *indexEntries) error {
	sortKVs(e.tag)
	sortKVs(e.val)
	tag, val := e.tag, e.val
	var err error
	if db.compact {
		// Pack the sorted posting runs into delta/varint blocks. The
		// locator keeps per-node cells: its values are bare RIDs and its
		// range scans address individual keys.
		maxCell := btree.MaxCellFor(db.st.PageSize())
		if tag, err = blockKVs(tag, maxCell); err != nil {
			return fmt.Errorf("tag index blocks: %w", err)
		}
		if val, err = blockKVs(val, maxCell); err != nil {
			return fmt.Errorf("value index blocks: %w", err)
		}
	}
	if db.locator, err = btree.BulkLoad(db.st, e.loc); err != nil {
		return fmt.Errorf("locator bulk load: %w", err)
	}
	if db.tagIdx, err = btree.BulkLoad(db.st, tag); err != nil {
		return fmt.Errorf("tag index bulk load: %w", err)
	}
	if db.valIdx != nil {
		if db.valIdx, err = btree.BulkLoad(db.st, val); err != nil {
			return fmt.Errorf("value index bulk load: %w", err)
		}
	}
	return nil
}

func sortKVs(kvs []btree.KV) {
	sort.Slice(kvs, func(i, j int) bool { return bytes.Compare(kvs[i].Key, kvs[j].Key) < 0 })
}
