package storage

import (
	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/stats"
	"timber/internal/xmltree"
)

// Reader is the read surface shared by DB and Snapshot. Query code is
// written against it: handed a *Snapshot every call sees one pinned
// epoch (what the executor's entry points do — pin once, evaluate,
// unpin), while a *DB degrades gracefully to pin-per-call semantics.
// Executors and tools that need a consistent multi-call view should
// pin explicitly:
//
//	sn := db.Snapshot()
//	defer sn.Close()
//	... use sn as a Reader ...
type Reader interface {
	// Point and range access to stored records.
	GetNode(id xmltree.NodeID) (*NodeRecord, error)
	GetNodeAt(rid pagestore.RID) (*NodeRecord, error)
	LocateRID(id xmltree.NodeID) (pagestore.RID, error)
	Content(p Posting) (string, error)
	ContentsBatch(ps []Posting, out []string) error
	GetSubtree(id xmltree.NodeID) (*xmltree.Node, error)
	ScanRange(doc xmltree.DocID, lo, hi uint32, fn func(*NodeRecord) error) error
	ScanDocument(doc xmltree.DocID, fn func(*NodeRecord) error) error

	// Index access.
	TagPostings(tag string) ([]Posting, error)
	ValuePostings(tag, content string) ([]Posting, error)
	DocRootPosting(doc xmltree.DocID) (Posting, error)
	OpenTagCursor(tag string) *TagCursor
	OpenTagDocCursor(tag string, doc xmltree.DocID) *TagCursor
	Tags() ([]string, error)

	// Catalog and configuration.
	Documents() []DocInfo
	DocumentByName(name string) (DocInfo, bool)
	CardStats() (*stats.Catalog, error)
	HasValueIndex() bool
	Compact() bool
	Epoch() uint64

	// Scratch space for blocking operators.
	NewSpool() *Spool
	SpillTrees(trees []*xmltree.Node) ([]*xmltree.Node, error)

	// Reporting (counters are global to the database, not per-view).
	Stats() pagestore.Stats
	IndexMetrics() btree.MetricsSnapshot
	ResetStats()
	NumPages() uint32
	SizeInfo() (SizeInfo, error)
	TraceCounters() obs.Counters
	NewTracer(name string) *obs.Tracer
}

var (
	_ Reader = (*DB)(nil)
	_ Reader = (*Snapshot)(nil)
)

// Pin resolves a Reader to a consistent single-epoch view: a *DB is
// pinned into a fresh Snapshot (release frees it), anything else is
// assumed already consistent and returned as-is with a no-op release.
func Pin(r Reader) (Reader, func()) {
	if db, ok := r.(*DB); ok {
		sn := db.Snapshot()
		return sn, func() { sn.Close() }
	}
	return r, func() {}
}
