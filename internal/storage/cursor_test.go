package storage

import (
	"reflect"
	"testing"

	"timber/internal/paperdata"
	"timber/internal/xmltree"
)

// TestTagCursorMatchesTagPostings pins the streaming scan against the
// materializing one: pulling a TagCursor to exhaustion yields exactly
// the TagPostings slice, and the per-document variant yields exactly
// that document's contiguous segment.
func TestTagCursorMatchesTagPostings(t *testing.T) {
	db := testDB(t, Options{})
	docs := []*xmltree.Node{paperdata.SampleDatabase(), paperdata.TransactionArticles()}
	for i, root := range docs {
		if _, err := db.LoadDocument(roots(i), root); err != nil {
			t.Fatal(err)
		}
	}
	for _, tag := range []string{"author", "article", "title", "nonexistent"} {
		want, err := db.TagPostings(tag)
		if err != nil {
			t.Fatal(err)
		}
		c := db.OpenTagCursor(tag)
		var got []Posting
		for {
			p, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("cursor close (%s): %v", tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tag %q: cursor yielded %d postings, TagPostings %d", tag, len(got), len(want))
		}

		// Per-document segments concatenate back to the full list.
		var byDoc []Posting
		for d := 1; d <= len(docs); d++ {
			dc := db.OpenTagDocCursor(tag, xmltree.DocID(d))
			for {
				p, ok := dc.Next()
				if !ok {
					break
				}
				if p.Interval.Doc != xmltree.DocID(d) {
					t.Fatalf("doc cursor for %d yielded posting of doc %d", d, p.Interval.Doc)
				}
				byDoc = append(byDoc, p)
			}
			if err := dc.Close(); err != nil {
				t.Fatalf("doc cursor close: %v", err)
			}
		}
		if !reflect.DeepEqual(byDoc, want) {
			t.Errorf("tag %q: per-doc cursors yielded %d postings, want %d", tag, len(byDoc), len(want))
		}
	}
}

func roots(i int) string {
	return []string{"bib.xml", "tods.xml"}[i]
}

// TestTagCursorEarlyClose verifies an abandoned cursor releases its pin
// (DropCache would fail otherwise).
func TestTagCursorEarlyClose(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	c := db.OpenTagCursor("author")
	if _, ok := c.Next(); !ok {
		t.Fatal("no first posting")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := db.DropCache(); err != nil {
		t.Fatalf("drop cache after cursor close: %v", err)
	}
}

// TestContentsBatch checks the batched late-materialization path
// returns the same values as per-posting Content, including when a
// batch crosses heap pages, and that same-page clustering reduces
// fetches.
func TestContentsBatch(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	ps, err := db.TagPostings("title")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no title postings")
	}
	want := make([]string, len(ps))
	for i, p := range ps {
		if want[i], err = db.Content(p); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats().Fetches
	got := make([]string, len(ps))
	if err := db.ContentsBatch(ps, got); err != nil {
		t.Fatal(err)
	}
	batchFetches := db.Stats().Fetches - before
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentsBatch = %v, want %v", got, want)
	}
	if batchFetches > uint64(len(ps)) {
		t.Errorf("batched fetches = %d, more than %d per-posting fetches", batchFetches, len(ps))
	}
}

// TestSpoolRoundTrip writes runs through the spill region, reads them
// back with cursors, and verifies the region is reclaimed.
func TestSpoolRoundTrip(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pagesBefore := db.NumPages()
	sp := db.NewSpool()
	var runs []*SpoolRun
	for r := 0; r < 3; r++ {
		run, err := sp.NewRun()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			rec := []byte{byte(r), byte(i), byte(i >> 8), 'x', 'y'}
			if err := run.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		runs = append(runs, run)
	}
	for r, run := range runs {
		c := run.Open()
		n := 0
		for {
			rec, ok := c.Next()
			if !ok {
				break
			}
			if len(rec) != 5 || rec[0] != byte(r) || rec[1] != byte(n) {
				t.Fatalf("run %d rec %d corrupt: %v", r, n, rec)
			}
			n++
		}
		if err := c.Close(); err != nil {
			t.Fatalf("run %d cursor: %v", r, err)
		}
		if n != 200 {
			t.Fatalf("run %d yielded %d records, want 200", r, n)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("spool close: %v", err)
	}
	if got := db.NumPages(); got != pagesBefore {
		t.Errorf("pages after spool = %d, want %d (region not reclaimed)", got, pagesBefore)
	}
	// Region free again: a result spill must work immediately after.
	trees, err := db.SpillTrees([]*xmltree.Node{xmltree.Elem("t", "v")})
	if err != nil || len(trees) != 1 {
		t.Fatalf("spill after spool: %v, %v", trees, err)
	}
}
