package storage

import (
	"math"
	"sync/atomic"

	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
)

// Snapshot is a pinned, immutable view of the database: the state that
// was the published head when Snapshot() was called. Every read method
// on it sees exactly that state no matter how many documents are
// inserted or deleted concurrently — commits build fresh pages and the
// pin blocks reclamation of the old ones — so a streaming query that
// runs for seconds returns byte-identical results to one run against a
// quiesced database.
//
// Snapshots are cheap (a map increment and four tree handles; no I/O)
// but must be Closed: an open snapshot holds every page of its epoch
// on disk. Close is idempotent and safe to call from any goroutine,
// though the Snapshot's read methods themselves are not synchronized —
// use one per goroutine, or one per exchange fragment, exactly like a
// *DB handle before durable ingest existed.
type Snapshot struct {
	db       *DB
	s        *snapState
	heap     *pagestore.Heap
	catalogT *btree.Tree
	locator  *btree.Tree
	tagIdx   *btree.Tree
	valIdx   *btree.Tree // nil without a value index
	closed   atomic.Bool
}

// Snapshot pins the current head state and returns a read view of it.
func (db *DB) Snapshot() *Snapshot {
	// The head load must happen inside pinMu: commit publishes a new
	// head before retiring the old state's pages and reclaim takes
	// pinMu, so either this pin lands first (blocking reclamation of
	// the state it read) or it observes the new head.
	db.pinMu.Lock()
	s := db.head.Load()
	db.pins[s.epoch]++
	db.pinMu.Unlock()
	db.ing.snapshotsPinned.Add(1)

	sn := &Snapshot{db: db, s: s}
	sn.heap = pagestore.OpenHeapAt(db.st, s.heapFirst, s.heapLast)
	sn.heap.SetRaw()
	sn.catalogT = db.tree(s.catalog)
	sn.locator = db.tree(s.locator)
	sn.tagIdx = db.tree(s.tag)
	if s.hasVal {
		sn.valIdx = db.tree(s.val)
	}
	return sn
}

// Close releases the pin. Pages superseded while the snapshot was open
// become reclaimable once every snapshot of its epoch (and older) is
// closed.
func (sn *Snapshot) Close() error {
	if !sn.closed.CompareAndSwap(false, true) {
		return nil
	}
	db := sn.db
	db.ing.snapshotsPinned.Add(-1)
	db.pinMu.Lock()
	if n := db.pins[sn.s.epoch] - 1; n > 0 {
		db.pins[sn.s.epoch] = n
	} else {
		delete(db.pins, sn.s.epoch)
	}
	db.reclaimLocked()
	db.pinMu.Unlock()
	return nil
}

// Epoch identifies the committed state this snapshot reads.
func (sn *Snapshot) Epoch() uint64 { return sn.s.epoch }

// Documents returns the snapshot's catalog in ID order.
func (sn *Snapshot) Documents() []DocInfo {
	out := make([]DocInfo, len(sn.s.docs))
	copy(out, sn.s.docs)
	return out
}

// DocumentByName returns the catalog entry with the given name.
func (sn *Snapshot) DocumentByName(name string) (DocInfo, bool) {
	return findDoc(sn.s.docs, name)
}

// HasValueIndex reports whether the (tag, content) value index exists.
func (sn *Snapshot) HasValueIndex() bool { return sn.valIdx != nil }

// Compact reports whether the database uses the compact codecs.
func (sn *Snapshot) Compact() bool { return sn.db.compact }

// NumPages exposes the store's allocated page count.
func (sn *Snapshot) NumPages() uint32 { return sn.db.st.NumPages() }

// Stats returns the underlying buffer pool counters (shared with the
// DB — pool activity is global, not per-snapshot).
func (sn *Snapshot) Stats() pagestore.Stats { return sn.db.Stats() }

// IndexMetrics returns the shared B+tree traversal counters.
func (sn *Snapshot) IndexMetrics() btree.MetricsSnapshot { return sn.db.IndexMetrics() }

// NewSpool delegates to the database: spools are scratch space, not
// part of the snapshot's state.
func (sn *Snapshot) NewSpool() *Spool { return sn.db.NewSpool() }

// ResetStats zeroes the shared pool and index counters.
func (sn *Snapshot) ResetStats() { sn.db.ResetStats() }

// TraceCounters snapshots the shared pool and index counters.
func (sn *Snapshot) TraceCounters() obs.Counters { return sn.db.TraceCounters() }

// NewTracer builds a tracer wired to the shared counters.
func (sn *Snapshot) NewTracer(name string) *obs.Tracer { return sn.db.NewTracer(name) }

// retiredSet is a batch of pages superseded by one commit, waiting for
// reclamation.
type retiredSet struct {
	// epoch of the state whose commit freed the pages: any snapshot
	// pinning an OLDER epoch may still read them. A zero epoch/seq set
	// is a retry batch from a failed FreePages — immediately eligible.
	epoch uint64
	// seq of the committing transaction: the pages must not be reused
	// before this commit is WAL-durable, or a crash could recover to the
	// freeing state with its pages overwritten.
	seq   uint64
	pages []pagestore.PageID
}

// retire queues pages superseded by the commit that produced epoch
// (WAL sequence seq) and reclaims whatever has become eligible.
func (db *DB) retire(epoch, seq uint64, pages []pagestore.PageID) {
	if len(pages) == 0 {
		return
	}
	db.ing.pagesRetired.Add(uint64(len(pages)))
	db.journal.Emit(obs.Event{Type: obs.EvPagesRetired, Epoch: epoch, WALSeq: seq, Count: int64(len(pages))})
	db.pinMu.Lock()
	db.retired = append(db.retired, retiredSet{epoch: epoch, seq: seq, pages: pages})
	db.reclaimLocked()
	db.pinMu.Unlock()
}

// reclaim runs a reclamation pass.
func (db *DB) reclaim() {
	db.pinMu.Lock()
	db.reclaimLocked()
	db.pinMu.Unlock()
}

// reclaimLocked frees every retired set that (a) no open snapshot can
// still read — its epoch is at or below the oldest pinned epoch — and
// (b) is durability-safe to overwrite — the WAL fsync has covered the
// commit that freed it. Caller holds pinMu; FreePages takes the
// store's allocator lock inside it (that order is fixed — nothing
// takes pinMu while holding a store lock).
func (db *DB) reclaimLocked() {
	if len(db.retired) == 0 {
		return
	}
	minEpoch := uint64(math.MaxUint64)
	for e := range db.pins {
		if e < minEpoch {
			minEpoch = e
		}
	}
	var synced uint64 = math.MaxUint64
	if db.wal != nil {
		synced = db.wal.Synced()
	}
	keep := db.retired[:0]
	var freed int64
	for _, set := range db.retired {
		if set.epoch > minEpoch || set.seq > synced {
			keep = append(keep, set)
			continue
		}
		if err := db.st.FreePages(set.pages); err != nil {
			// A transiently pinned page (a still-draining cursor) makes
			// FreePages refuse the whole batch; retry on the next pass with
			// no epoch/seq gate, since both conditions were already met.
			keep = append(keep, retiredSet{pages: set.pages})
			continue
		}
		db.ing.pagesReclaimed.Add(uint64(len(set.pages)))
		freed += int64(len(set.pages))
	}
	db.retired = keep
	if freed > 0 {
		// One aggregate event per pass, not one per set — reclamation can
		// drain dozens of sets after a long-pinned snapshot closes.
		db.journal.Emit(obs.Event{Type: obs.EvPagesReclaimed, Count: freed})
	}
}
