package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/stats"
)

// Cardinality statistics. The catalog B+tree doubles as the statistics
// store: document records live under 4-byte big-endian ID keys, and
// statistics records live under a reserved prefix that is longer than
// any document key, so document scans and statistics scans never
// collide. Riding the catalog tree means statistics updates join
// ingest transactions' COW + WAL protocol for free: they are
// crash-safe, snapshot-isolated and epoch-consistent with the data
// they describe.
//
// Freshness is decided by a version token derived from durable catalog
// state — nextDocID (never reused) and the document count — captured
// in the header record. InsertDocument and DeleteDocument maintain the
// statistics incrementally in the same transaction, so the token keeps
// matching; the offline bulk path (LoadDocument) bypasses maintenance
// and leaves the token behind, marking the statistics stale until the
// next BuildCardStats.

// statsKeyPrefix reserves the statistics key space inside the catalog
// tree. Document keys are exactly 4 bytes; these are 6+.
var statsKeyPrefix = []byte{0xff, 0xff, 0xff, 0xff, 0xfe}

// statsHeaderKey stores the catalog-level record.
func statsHeaderKey() []byte { return append(append([]byte(nil), statsKeyPrefix...), 'H') }

// statsTagKey stores one tag's record.
func statsTagKey(tag string) []byte {
	k := make([]byte, 0, len(statsKeyPrefix)+1+len(tag))
	k = append(k, statsKeyPrefix...)
	k = append(k, 'T')
	return append(k, tag...)
}

// isStatsKey reports whether a catalog key belongs to the statistics
// key space (document keys are exactly 4 bytes).
func isStatsKey(k []byte) bool { return len(k) != 4 }

// ErrNoStats is returned by CardStats when the database carries no
// persisted statistics (run BuildCardStats, or let the engine's
// planner build them on first use).
var ErrNoStats = errors.New("storage: no cardinality statistics")

// statsVersion derives the freshness token from durable catalog state.
// nextDocID advances on every insert and is never reused, and the
// document count drops on every delete, so any data change moves the
// token; it is identical across reopen (unlike epochs, which restart
// at 1).
func statsVersion(s *snapState) uint64 {
	return statsVersionFor(s.nextDocID, len(s.docs))
}

// statsVersionFor builds the token from its components — used by
// ingest builds to stamp the successor state before it exists.
func statsVersionFor(nextDocID uint32, docCount int) uint64 {
	return uint64(nextDocID)<<32 | uint64(docCount)
}

// CardStats reads the persisted cardinality statistics of this
// snapshot's state. Fresh is set when the statistics describe exactly
// this state; stale statistics (offline loads bypass maintenance) are
// still returned — estimates beat nothing — with Fresh false.
func (sn *Snapshot) CardStats() (*stats.Catalog, error) {
	cat, err := readCardStats(sn.catalogT)
	if err != nil {
		return nil, err
	}
	cat.Fresh = cat.Version == statsVersion(sn.s)
	return cat, nil
}

// CardStats is the pin-per-call form of Snapshot.CardStats.
func (db *DB) CardStats() (*stats.Catalog, error) {
	sn := db.Snapshot()
	defer sn.Close()
	return sn.CardStats()
}

// readCardStats decodes the statistics records out of a catalog tree.
func readCardStats(t *btree.Tree) (*stats.Catalog, error) {
	hv, err := t.Get(statsHeaderKey())
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil, ErrNoStats
		}
		return nil, err
	}
	cat, err := stats.DecodeHeader(hv)
	if err != nil {
		return nil, err
	}
	tagPrefix := statsTagKey("")
	var inner error
	err = t.ScanPrefix(tagPrefix, func(k, v []byte) bool {
		ts, terr := stats.DecodeTag(v)
		if terr != nil {
			inner = terr
			return false
		}
		cat.Tags[string(k[len(tagPrefix):])] = ts
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return cat, nil
}

// collectCardStats aggregates a full statistics catalog from the tag
// and value indices of one state — the ANALYZE scan. Tag-index keys
// are (tag, 0x00, doc be32, start be32) and sorted, so per-tag posting
// and distinct-document counts fall out of one sequential pass; the
// value index adds per-tag value postings and distinct (tag, content)
// counts the same way.
func (db *DB) collectCardStats(s *snapState) (*stats.Catalog, error) {
	cat := stats.New()
	cat.Epoch = s.epoch
	cat.Version = statsVersion(s)
	cat.Documents = uint64(len(s.docs))

	countPostings := func(v []byte) (uint64, error) {
		if !db.compact {
			return 1, nil
		}
		n, w := binary.Uvarint(v)
		if w <= 0 || n < 1 {
			return 0, errCorruptBlock
		}
		return n, nil
	}

	var curTag, curDoc []byte
	var cur stats.TagStat
	flush := func() {
		if curTag != nil {
			cat.Tags[string(curTag)] = cur
			cat.TotalNodes += cur.Postings
		}
		cur = stats.TagStat{}
		curDoc = nil
	}
	var inner error
	err := db.tree(s.tag).ScanPrefix(nil, func(k, v []byte) bool {
		sep := bytes.IndexByte(k, 0)
		if sep < 0 || len(k) < sep+9 {
			inner = fmt.Errorf("storage: malformed tag-index key %q", k)
			return false
		}
		tag, doc := k[:sep], k[sep+1:sep+5]
		if !bytes.Equal(tag, curTag) {
			flush()
			curTag = append(curTag[:0], tag...)
		}
		n, cerr := countPostings(v)
		if cerr != nil {
			inner = cerr
			return false
		}
		cur.Postings += n
		if !bytes.Equal(doc, curDoc) {
			cur.Docs++
			curDoc = append(curDoc[:0], doc...)
		}
		return true
	})
	if err == nil {
		err = inner
	}
	if err != nil {
		return nil, err
	}
	flush()

	if s.hasVal {
		var vTag, vPair []byte
		err = db.tree(s.val).ScanPrefix(nil, func(k, v []byte) bool {
			sep := bytes.IndexByte(k, 0)
			if sep < 0 || len(k) < sep+9 {
				inner = fmt.Errorf("storage: malformed value-index key %q", k)
				return false
			}
			// The pair prefix (tag, 0x00, content, 0x00) is everything
			// before the 8-byte (doc, start) suffix.
			tag, pair := k[:sep], k[:len(k)-8]
			n, cerr := countPostings(v)
			if cerr != nil {
				inner = cerr
				return false
			}
			if !bytes.Equal(tag, vTag) {
				vTag = append(vTag[:0], tag...)
			}
			ts := cat.Tags[string(vTag)]
			ts.ValuePostings += n
			if !bytes.Equal(pair, vPair) {
				ts.DistinctValues++
				vPair = append(vPair[:0], pair...)
			}
			cat.Tags[string(vTag)] = ts
			return true
		})
		if err == nil {
			err = inner
		}
		if err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// BuildCardStats scans the tag and value indices and persists a full
// statistics catalog — the ANALYZE operation. It commits like any
// ingest transaction (COW catalog pages, WAL, per-policy fsync) and
// may run concurrently with readers; the returned catalog is stamped
// with the committed state's epoch and version, so it reads back Fresh
// until the next offline load.
func (db *DB) BuildCardStats(policy SyncPolicy) (*stats.Catalog, error) {
	pol := db.policy(policy)
	start := time.Now()
	db.writeMu.Lock()
	cat, t, err := db.buildStatsTxn()
	if err == nil {
		err = db.commitLocked(t)
	}
	if err != nil {
		db.abortLocked(t)
		db.writeMu.Unlock()
		db.journal.Emit(obs.Event{Type: obs.EvStatsRebuild, Err: err.Error()})
		return nil, fmt.Errorf("storage: build stats: %w", err)
	}
	seq := db.seq
	db.writeMu.Unlock()
	if err := db.finishCommit(t.state, seq, pol, t.freed); err != nil {
		db.journal.Emit(obs.Event{Type: obs.EvStatsRebuild, WALSeq: seq, Err: err.Error()})
		return nil, fmt.Errorf("storage: build stats: %w", err)
	}
	db.journal.Emit(obs.Event{
		Type:   obs.EvStatsRebuild,
		WALSeq: seq,
		Epoch:  t.state.epoch,
		Count:  int64(len(cat.Tags)),
		DurNS:  time.Since(start).Nanoseconds(),
	})
	return cat, nil
}

// buildStatsTxn collects and writes the statistics records into fresh
// catalog pages. Caller holds writeMu.
func (db *DB) buildStatsTxn() (*stats.Catalog, *txn, error) {
	base := db.tip
	cat, err := db.collectCardStats(base)
	if err != nil {
		return nil, nil, err
	}
	// The statistics describe the data of base, which the commit
	// republishes untouched under the next epoch; stamp them with the
	// state they will live in.
	cat.Epoch = base.epoch + 1
	cat.Fresh = true

	// Tag records that vanished since the last build must go.
	var dead [][]byte
	tagPrefix := statsTagKey("")
	err = db.tree(base.catalog).ScanPrefix(tagPrefix, func(k, _ []byte) bool {
		if _, ok := cat.Tags[string(k[len(tagPrefix):])]; !ok {
			dead = append(dead, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}

	h, err := db.beginTxn()
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*stats.Catalog, *txn, error) {
		return nil, db.finishTxn(h, func(*snapState) {}), err
	}
	for _, k := range dead {
		if err := h.catalog.Delete(k); err != nil {
			return fail(err)
		}
	}
	if err := cowUpsert(h.catalog, statsHeaderKey(), stats.EncodeHeader(cat)); err != nil {
		return fail(err)
	}
	for tag, ts := range cat.Tags {
		if err := cowUpsert(h.catalog, statsTagKey(tag), stats.EncodeTag(ts)); err != nil {
			return fail(err)
		}
	}
	t := db.finishTxn(h, func(s *snapState) { s.docs = base.docs })
	return cat, t, nil
}

// cowUpsert replaces the value under key (the B+trees reject duplicate
// inserts, so an update is delete + insert).
func cowUpsert(c *btree.COW, key, value []byte) error {
	if err := c.Delete(key); err != nil && !errors.Is(err, btree.ErrNotFound) {
		return err
	}
	return c.Insert(key, value)
}

// statsDelta is one document's contribution to the statistics, counted
// by the ingest build phase: per-tag posting and value-posting counts,
// per-tag distinct (tag, content) pairs that appear or vanish with the
// document, and the node total.
type statsDelta struct {
	nodes uint64
	tags  map[string]stats.TagStat // Postings/ValuePostings/DistinctValues as per-doc deltas; Docs unused
}

func newStatsDelta() *statsDelta {
	return &statsDelta{tags: map[string]stats.TagStat{}}
}

// loadStatsHeader reads the header record from a catalog root,
// reporting absent statistics as (nil, nil).
func (db *DB) loadStatsHeader(root pagestore.PageID) (*stats.Catalog, error) {
	hv, err := db.tree(root).Get(statsHeaderKey())
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	return stats.DecodeHeader(hv)
}

// statsMaintained reports whether the base state carries fresh
// statistics worth maintaining incrementally. Absent or stale
// statistics stay as they are (BuildCardStats repairs both).
func (db *DB) statsMaintained(base *snapState) (bool, error) {
	hdr, err := db.loadStatsHeader(base.catalog)
	if err != nil || hdr == nil {
		return false, err
	}
	return hdr.Version == statsVersion(base), nil
}

// applyStatsDelta folds one document's delta into the persisted
// statistics inside the same COW transaction. sign is +1 for insert,
// -1 for delete; epoch, version and docCount describe the successor
// state the transaction will commit (it does not exist yet — finishTxn
// builds it after the COW writes). Caller holds writeMu and has
// verified statsMaintained.
func (db *DB) applyStatsDelta(h *writeHandles, base *snapState, d *statsDelta, sign int, epoch, version, docCount uint64) error {
	hdr, err := db.loadStatsHeader(base.catalog)
	if err != nil {
		return err
	}
	if hdr == nil {
		return nil
	}
	baseT := db.tree(base.catalog)
	for tag, delta := range d.tags {
		ts, err := loadTagStat(baseT, tag)
		if err != nil {
			return err
		}
		if sign > 0 {
			ts.Postings += delta.Postings
			ts.Docs++ // the document is new: every tag it contains gains one doc
			ts.ValuePostings += delta.ValuePostings
			ts.DistinctValues += delta.DistinctValues
		} else {
			ts.Postings = subFloor(ts.Postings, delta.Postings)
			ts.Docs = subFloor(ts.Docs, 1)
			ts.ValuePostings = subFloor(ts.ValuePostings, delta.ValuePostings)
			ts.DistinctValues = subFloor(ts.DistinctValues, delta.DistinctValues)
		}
		if ts == (stats.TagStat{}) {
			if err := h.catalog.Delete(statsTagKey(tag)); err != nil && !errors.Is(err, btree.ErrNotFound) {
				return err
			}
			continue
		}
		if err := cowUpsert(h.catalog, statsTagKey(tag), stats.EncodeTag(ts)); err != nil {
			return err
		}
	}
	if sign > 0 {
		hdr.TotalNodes += d.nodes
	} else {
		hdr.TotalNodes = subFloor(hdr.TotalNodes, d.nodes)
	}
	hdr.Documents = docCount
	hdr.Epoch = epoch
	hdr.Version = version
	return cowUpsert(h.catalog, statsHeaderKey(), stats.EncodeHeader(hdr))
}

// loadTagStat reads one tag's persisted statistics (zero when absent).
func loadTagStat(t *btree.Tree, tag string) (stats.TagStat, error) {
	v, err := t.Get(statsTagKey(tag))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return stats.TagStat{}, nil
		}
		return stats.TagStat{}, err
	}
	return stats.DecodeTag(v)
}

func subFloor(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// treeHasPrefix reports whether any key under prefix exists — the
// novelty probe for distinct (tag, content) pairs on insert.
func treeHasPrefix(t *btree.Tree, prefix []byte) (bool, error) {
	found := false
	err := t.ScanPrefix(prefix, func(_, _ []byte) bool {
		found = true
		return false
	})
	return found, err
}

// treeHasPrefixOutsideDoc reports whether any key under prefix belongs
// to a document other than doc — the extinction probe for distinct
// (tag, content) pairs on delete. The doc ID sits immediately after
// the prefix in both index key layouts.
func treeHasPrefixOutsideDoc(t *btree.Tree, prefix, doc []byte) (bool, error) {
	found := false
	err := t.ScanPrefix(prefix, func(k, _ []byte) bool {
		if len(k) >= len(prefix)+4 && !bytes.Equal(k[len(prefix):len(prefix)+4], doc) {
			found = true
			return false
		}
		return true
	})
	return found, err
}
