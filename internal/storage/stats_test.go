package storage

import (
	"errors"
	"path/filepath"
	"testing"

	"timber/internal/paperdata"
	"timber/internal/stats"
)

// collectFresh runs the ANALYZE scan on the current tip — the ground
// truth incremental maintenance must reproduce.
func collectFresh(t *testing.T, db *DB) *stats.Catalog {
	t.Helper()
	db.writeMu.Lock()
	cat, err := db.collectCardStats(db.tip)
	db.writeMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCardStatsAbsent(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.CardStats(); !errors.Is(err, ErrNoStats) {
		t.Fatalf("CardStats on empty database: got %v, want ErrNoStats", err)
	}
}

func TestCardStatsBuildAndRead(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	built, err := db.BuildCardStats(SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fresh {
		t.Error("statistics just built should read back Fresh")
	}
	if !got.Equal(built) {
		t.Errorf("read-back mismatch:\n got %+v\nwant %+v", got, built)
	}

	// Spot-check against the known Figure 6 shape: 3 articles, 5
	// authors, 3 titles under one doc_root.
	if n := got.Tag("article").Postings; n != 3 {
		t.Errorf("article postings = %d, want 3", n)
	}
	if n := got.Tag("author").Postings; n != 5 {
		t.Errorf("author postings = %d, want 5", n)
	}
	if n := got.Tag("author").DistinctValues; n != 3 {
		t.Errorf("author distinct values = %d, want 3 (Jack, Jill, John)", n)
	}
	if got.Documents != 1 {
		t.Errorf("documents = %d, want 1", got.Documents)
	}
}

func TestCardStatsRoundTripReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.timber")
	db, err := Create(path, Options{PageSize: 512, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertDocument("dblp.xml", paperdata.TransactionArticles(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}
	before, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{PageSize: 512, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	after, err := db2.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !after.Fresh {
		t.Error("statistics should stay fresh across reopen (no data changed)")
	}
	// Epoch restarts on reopen by design; the data statistics and the
	// version token must survive byte-identically.
	after.Epoch = before.Epoch
	if !after.Equal(before) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", after, before)
	}
	if len(db2.Documents()) != 2 {
		t.Errorf("documents after reopen = %d, want 2 (stats records must not pollute the catalog)", len(db2.Documents()))
	}
}

func TestCardStatsIncrementalInsertDelete(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}

	// Insert under maintenance: the incremental statistics must match a
	// from-scratch ANALYZE of the new state exactly.
	if _, err := db.InsertDocument("dblp.xml", paperdata.TransactionArticles(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	got, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fresh {
		t.Fatal("statistics should stay fresh across InsertDocument")
	}
	want := collectFresh(t, db)
	want.Epoch = got.Epoch
	if !got.Equal(want) {
		t.Errorf("after insert:\n got %+v\nwant %+v", got, want)
	}

	// Delete likewise — including distinct-value extinction (the
	// Transaction articles' contents vanish with the document, shared
	// tags like author keep their surviving values).
	if err := db.DeleteDocument("dblp.xml", SyncAlways); err != nil {
		t.Fatal(err)
	}
	got, err = db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fresh {
		t.Fatal("statistics should stay fresh across DeleteDocument")
	}
	want = collectFresh(t, db)
	want.Epoch = got.Epoch
	if !got.Equal(want) {
		t.Errorf("after delete:\n got %+v\nwant %+v", got, want)
	}

	// Deleting the last document must leave an empty-but-fresh catalog.
	if err := db.DeleteDocument("bib.xml", SyncAlways); err != nil {
		t.Fatal(err)
	}
	got, err = db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fresh || got.TotalNodes != 0 || got.Documents != 0 || len(got.Tags) != 0 {
		t.Errorf("after deleting everything: %+v, want fresh empty catalog", got)
	}
}

func TestCardStatsStaleAfterOfflineLoad(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}
	// The offline bulk path bypasses incremental maintenance: the
	// persisted statistics survive but must read back stale.
	if _, err := db.LoadDocument("bulk.xml", paperdata.TransactionArticles()); err != nil {
		t.Fatal(err)
	}
	got, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Fresh {
		t.Fatal("statistics must be stale after an offline LoadDocument")
	}
	// ANALYZE repairs them.
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}
	got, err = db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fresh {
		t.Fatal("BuildCardStats must restore freshness")
	}
	want := collectFresh(t, db)
	want.Epoch = got.Epoch
	if !got.Equal(want) {
		t.Errorf("after repair:\n got %+v\nwant %+v", got, want)
	}
}

func TestCardStatsNoMaintenanceWithoutStats(t *testing.T) {
	db := testDB(t, Options{})
	// Ingest without ever building statistics: nothing to maintain, and
	// nothing must appear.
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CardStats(); !errors.Is(err, ErrNoStats) {
		t.Fatalf("CardStats: got %v, want ErrNoStats", err)
	}
}

func TestCardStatsUncompressedFormat(t *testing.T) {
	// The v2 (uncompressed) posting format stores one posting per cell;
	// the ANALYZE scan and incremental path must agree there too.
	db := testDB(t, Options{Uncompressed: true})
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertDocument("dblp.xml", paperdata.TransactionArticles(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	got, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	want := collectFresh(t, db)
	want.Epoch = got.Epoch
	if !got.Fresh || !got.Equal(want) {
		t.Errorf("uncompressed maintenance:\n got %+v (fresh=%v)\nwant %+v", got, got.Fresh, want)
	}
}

// statsSnapshotView checks the Reader interface path: a pinned snapshot
// sees the statistics of its own epoch, not later ones.
func TestCardStatsSnapshotIsolation(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.InsertDocument("bib.xml", paperdata.SampleDatabase(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildCardStats(SyncAlways); err != nil {
		t.Fatal(err)
	}
	sn := db.Snapshot()
	defer sn.Close()
	before, err := sn.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertDocument("dblp.xml", paperdata.TransactionArticles(), SyncAlways); err != nil {
		t.Fatal(err)
	}
	again, err := sn.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(before) {
		t.Errorf("pinned snapshot statistics changed under concurrent ingest:\n got %+v\nwant %+v", again, before)
	}
	tip, err := db.CardStats()
	if err != nil {
		t.Fatal(err)
	}
	if tip.Equal(before) {
		t.Error("tip statistics should differ from the pinned snapshot's after ingest")
	}
}
