package storage

import (
	"errors"
	"fmt"
	"time"

	"timber/internal/btree"
	"timber/internal/obs"
	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// The online ingest path. InsertDocument and DeleteDocument are
// crash-safe whole-document transactions that run concurrently with
// any number of snapshot readers:
//
//  1. Build (writeMu held): every mutation lands in FRESH pages. The
//     heap tail is cut — the current insertion page is sealed and a new
//     one allocated, unlinked — and the four B+trees are updated
//     copy-on-write, so no page any published state references is
//     touched.
//  2. Log (writeMu held): each fresh page's image, the single
//     seal→fresh heap link, and the new metadata are appended to the
//     WAL, followed by a commit record. The in-pool link is applied and
//     the writer-visible tip advances.
//  3. Finish (writeMu released): the WAL is fsynced per the sync
//     policy, the state is published to readers, and the superseded
//     pages are retired for epoch- and durability-gated reuse.
//
// Because step 1 only creates pages and step 2's link touches one word
// of a sealed page, a crash at any byte leaves every committed state
// intact: recovery replays complete WAL transactions and discards the
// torn tail.

// txn accumulates one ingest transaction's page effects.
type txn struct {
	state *snapState         // the state being built
	pages []pagestore.PageID // fresh pages to log (heap + COW trees)
	freed []pagestore.PageID // superseded pages to retire after commit
	link  *[2]pagestore.PageID
	// committed flips once the WAL commit record is appended: from then
	// on the fresh pages are owned by the log and must never be freed by
	// an abort.
	committed bool
}

// ErrDuplicateDocument is returned by InsertDocument for a name the
// catalog already holds.
var ErrDuplicateDocument = errors.New("storage: document name already exists")

// InsertDocument durably adds a document: the tree is numbered with the
// next document ID, every node is stored (heap record, locator entry,
// tag posting, value posting), and the commit is made durable per
// policy before the call returns. The tree is numbered in place, as
// with LoadDocument. Concurrent snapshots are unaffected; the document
// is visible to snapshots taken after the call returns.
func (db *DB) InsertDocument(name string, root *xmltree.Node, policy SyncPolicy) (DocInfo, error) {
	pol := db.policy(policy)
	start := time.Now()
	walBase := db.WALStats().AppendedBytes
	db.writeMu.Lock()
	db.journal.Emit(obs.Event{Type: obs.EvTxnBegin, Epoch: db.tip.epoch, Label: "insert:" + name})
	t, info, err := db.buildInsert(name, root)
	if err == nil {
		err = db.commitLocked(t)
	}
	if err != nil {
		db.abortLocked(t)
		db.writeMu.Unlock()
		db.journal.Emit(obs.Event{Type: obs.EvTxnAbort, Label: "insert:" + name, Err: err.Error()})
		return DocInfo{}, fmt.Errorf("storage: insert %q: %w", name, err)
	}
	seq := db.seq
	db.writeMu.Unlock()
	if err := db.finishCommit(t.state, seq, pol, t.freed); err != nil {
		db.journal.Emit(obs.Event{Type: obs.EvTxnAbort, WALSeq: seq, Label: "insert:" + name, Err: err.Error()})
		return DocInfo{}, fmt.Errorf("storage: insert %q: %w", name, err)
	}
	db.ing.inserted.Add(1)
	db.journal.Emit(obs.Event{
		Type:   obs.EvTxnCommit,
		WALSeq: seq,
		Epoch:  t.state.epoch,
		Count:  int64(len(t.pages)),
		Bytes:  int64(db.WALStats().AppendedBytes - walBase),
		DurNS:  time.Since(start).Nanoseconds(),
		Label:  "insert:" + name,
	})
	return info, nil
}

// DeleteDocument durably removes the named document from the catalog
// and every index. Heap records become unreferenced but their pages are
// not rewritten (reclaiming record space needs a vacuum, which the
// format supports but this build does not implement); the dominant
// index space is reclaimed through the COW deletes. Document IDs are
// never reused.
func (db *DB) DeleteDocument(name string, policy SyncPolicy) error {
	pol := db.policy(policy)
	start := time.Now()
	walBase := db.WALStats().AppendedBytes
	db.writeMu.Lock()
	db.journal.Emit(obs.Event{Type: obs.EvTxnBegin, Epoch: db.tip.epoch, Label: "delete:" + name})
	t, err := db.buildDelete(name)
	if err == nil {
		err = db.commitLocked(t)
	}
	if err != nil {
		db.abortLocked(t)
		db.writeMu.Unlock()
		db.journal.Emit(obs.Event{Type: obs.EvTxnAbort, Label: "delete:" + name, Err: err.Error()})
		return fmt.Errorf("storage: delete %q: %w", name, err)
	}
	seq := db.seq
	db.writeMu.Unlock()
	if err := db.finishCommit(t.state, seq, pol, t.freed); err != nil {
		db.journal.Emit(obs.Event{Type: obs.EvTxnAbort, WALSeq: seq, Label: "delete:" + name, Err: err.Error()})
		return fmt.Errorf("storage: delete %q: %w", name, err)
	}
	db.ing.deleted.Add(1)
	db.journal.Emit(obs.Event{
		Type:   obs.EvTxnCommit,
		WALSeq: seq,
		Epoch:  t.state.epoch,
		Count:  int64(len(t.pages)),
		Bytes:  int64(db.WALStats().AppendedBytes - walBase),
		DurNS:  time.Since(start).Nanoseconds(),
		Label:  "delete:" + name,
	})
	return nil
}

// writeHandles is the set of COW/heap handles one transaction builds
// into.
type writeHandles struct {
	heap    *pagestore.Heap
	catalog *btree.COW
	locator *btree.COW
	tagIdx  *btree.COW
	valIdx  *btree.COW // nil without a value index
	sealed  pagestore.PageID
	fresh   pagestore.PageID
}

// beginTxn opens fresh-page handles over the tip state. The heap tail
// is cut immediately: the old insertion page is sealed (still linked
// from its predecessor, unchanged) and appends go to a fresh unlinked
// page, so a crash before commit leaves the committed chain ending at
// the sealed page exactly as before.
func (db *DB) beginTxn() (*writeHandles, error) {
	base := db.tip
	h := &writeHandles{}
	heap := pagestore.OpenHeapAt(db.st, base.heapFirst, base.heapLast)
	heap.SetRaw()
	heap.Track()
	sealed, fresh, err := heap.CutTail()
	if err != nil {
		return nil, err
	}
	h.heap, h.sealed, h.fresh = heap, sealed, fresh
	h.catalog = db.tree(base.catalog).BeginCOW()
	h.locator = db.tree(base.locator).BeginCOW()
	h.tagIdx = db.tree(base.tag).BeginCOW()
	if base.hasVal {
		h.valIdx = db.tree(base.val).BeginCOW()
	}
	return h, nil
}

// finishTxn assembles the txn record: the successor state, the fresh
// pages to log, the superseded pages to retire.
func (db *DB) finishTxn(h *writeHandles, mutate func(s *snapState)) *txn {
	base := db.tip
	ns := &snapState{
		epoch:     base.epoch + 1,
		heapFirst: h.heap.FirstPage(),
		heapLast:  h.heap.LastPage(),
		catalog:   h.catalog.Root(),
		locator:   h.locator.Root(),
		tag:       h.tagIdx.Root(),
		hasVal:    base.hasVal,
		nextDocID: base.nextDocID,
	}
	if h.valIdx != nil {
		ns.val = h.valIdx.Root()
	}
	mutate(ns)

	t := &txn{state: ns}
	t.pages = append(t.pages, h.heap.TakeTracked()...)
	t.pages = append(t.pages, h.catalog.Allocated()...)
	t.pages = append(t.pages, h.locator.Allocated()...)
	t.pages = append(t.pages, h.tagIdx.Allocated()...)
	t.freed = append(t.freed, h.catalog.Freed()...)
	t.freed = append(t.freed, h.locator.Freed()...)
	t.freed = append(t.freed, h.tagIdx.Freed()...)
	if h.valIdx != nil {
		t.pages = append(t.pages, h.valIdx.Allocated()...)
		t.freed = append(t.freed, h.valIdx.Freed()...)
	}
	t.link = &[2]pagestore.PageID{h.sealed, h.fresh}
	return t
}

// buildInsert stores the document into fresh pages and returns the
// prepared transaction. Caller holds writeMu.
func (db *DB) buildInsert(name string, root *xmltree.Node) (*txn, DocInfo, error) {
	base := db.tip
	if _, dup := findDoc(base.docs, name); dup {
		return nil, DocInfo{}, ErrDuplicateDocument
	}
	h, err := db.beginTxn()
	if err != nil {
		return nil, DocInfo{}, err
	}
	// Even a failed build must surface its allocated pages for abort.
	fail := func(err error) (*txn, DocInfo, error) {
		return db.finishTxn(h, func(*snapState) {}), DocInfo{}, err
	}

	doc := xmltree.DocID(base.nextDocID)
	xmltree.Number(root, doc)

	// With fresh statistics on the base state, count this document's
	// contribution during the same walk and fold it in below — the
	// statistics stay exact across online ingest.
	maintain, err := db.statsMaintained(base)
	if err != nil {
		return fail(err)
	}
	delta := newStatsDelta()
	pairSeen := map[[2]string]bool{}
	baseVal := (*btree.Tree)(nil)
	if base.hasVal {
		baseVal = db.tree(base.val)
	}

	var count uint64
	var walkErr error
	root.Walk(func(n *xmltree.Node) bool {
		rec := &NodeRecord{
			Interval: n.Interval,
			Tag:      n.Tag,
			Content:  n.Content,
			Attrs:    n.Attrs,
		}
		if n.Parent != nil {
			rec.ParentStart = n.Parent.Interval.Start
		}
		if err := db.storeNodeCOW(h, rec); err != nil {
			walkErr = err
			return false
		}
		count++
		if maintain {
			ts := delta.tags[rec.Tag]
			ts.Postings++
			if baseVal != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
				ts.ValuePostings++
				pair := [2]string{rec.Tag, rec.Content}
				if !pairSeen[pair] {
					pairSeen[pair] = true
					// The pair adds a distinct value iff no prior document
					// indexed it (the document itself is new, so the base
					// tree decides).
					exists, perr := treeHasPrefix(baseVal, valuePrefix(pair[0], pair[1]))
					if perr != nil {
						walkErr = perr
						return false
					}
					if !exists {
						ts.DistinctValues++
					}
				}
			}
			delta.tags[rec.Tag] = ts
		}
		return true
	})
	if walkErr != nil {
		return fail(walkErr)
	}
	delta.nodes = count

	info := DocInfo{ID: doc, Name: name, RootStart: root.Interval.Start, NodeCount: count}
	if err := h.catalog.Insert(catalogKey(doc), encodeDocInfo(info)); err != nil {
		return fail(fmt.Errorf("catalog: %w", err))
	}
	if maintain {
		version := statsVersionFor(base.nextDocID+1, len(base.docs)+1)
		if err := db.applyStatsDelta(h, base, delta, +1, base.epoch+1, version, uint64(len(base.docs)+1)); err != nil {
			return fail(fmt.Errorf("stats: %w", err))
		}
	}
	t := db.finishTxn(h, func(s *snapState) {
		s.nextDocID = base.nextDocID + 1
		s.docs = make([]DocInfo, 0, len(base.docs)+1)
		s.docs = append(s.docs, base.docs...)
		s.docs = append(s.docs, info)
	})
	return t, info, nil
}

// storeNodeCOW writes one node through the transaction's handles —
// the incremental counterpart of storeNode.
func (db *DB) storeNodeCOW(h *writeHandles, rec *NodeRecord) error {
	rid, err := h.heap.Insert(db.encodeNodeRecord(rec))
	if err != nil {
		return err
	}
	id := rec.ID()
	indexValue := postingValue(rec.Interval, rid)
	if db.compact {
		indexValue = blockValue1(rec.Interval, rid)
	}
	if err := h.locator.Insert(locatorKey(id), ridValue(rid)); err != nil {
		return fmt.Errorf("locator: %w", err)
	}
	if err := h.tagIdx.Insert(tagKey(rec.Tag, id), indexValue); err != nil {
		return fmt.Errorf("tag index: %w", err)
	}
	if h.valIdx != nil && rec.Content != "" && len(rec.Content) <= maxIndexedContent {
		if err := h.valIdx.Insert(valueKey(rec.Tag, rec.Content, id), indexValue); err != nil {
			return fmt.Errorf("value index: %w", err)
		}
	}
	return nil
}

// buildDelete removes every index entry of the named document into
// fresh pages. Caller holds writeMu.
func (db *DB) buildDelete(name string) (*txn, error) {
	base := db.tip
	info, ok := findDoc(base.docs, name)
	if !ok {
		return nil, fmt.Errorf("storage: unknown document %q", name)
	}
	doc := uint32(info.ID)

	// Collect the document's locator keys and the distinct (tag) and
	// (tag, content) pairs its records index under, reading from the
	// base state before any COW begins.
	locatorT := db.tree(base.locator)
	heap := pagestore.OpenHeapAt(db.st, base.heapFirst, base.heapLast)
	var locKeys [][]byte
	tags := map[string]uint64{}
	values := map[[2]string]uint64{}
	var inner error
	lo := locatorKey(xmltree.NodeID{Doc: info.ID, Start: 0})
	hi := locatorKey(xmltree.NodeID{Doc: info.ID + 1, Start: 0})
	err := locatorT.ScanRange(lo, hi, func(k, v []byte) bool {
		locKeys = append(locKeys, append([]byte(nil), k...))
		rid, err := decodeRID(v)
		if err != nil {
			inner = err
			return false
		}
		if err := heap.View(rid, func(b []byte) error {
			rec, err := db.decodeNodeRecord(b)
			if err != nil {
				return err
			}
			tags[rec.Tag]++
			if rec.Content != "" && len(rec.Content) <= maxIndexedContent {
				values[[2]string{rec.Tag, rec.Content}]++
			}
			return nil
		}); err != nil {
			inner = err
			return false
		}
		return true
	})
	if err == nil {
		err = inner
	}
	if err != nil {
		return nil, err
	}

	// Resolve the exact tag/value index keys. Posting blocks never span
	// documents, so every cell under (prefix, doc) belongs wholly to
	// this document.
	tagT, valT := db.tree(base.tag), (*btree.Tree)(nil)
	if base.hasVal {
		valT = db.tree(base.val)
	}
	var tagKeys, valKeys [][]byte
	for tag := range tags {
		p := append(tagPrefix(tag), be32(doc)...)
		if err := tagT.ScanPrefix(p, func(k, _ []byte) bool {
			tagKeys = append(tagKeys, append([]byte(nil), k...))
			return true
		}); err != nil {
			return nil, err
		}
	}
	if valT != nil {
		for tv := range values {
			p := append(valuePrefix(tv[0], tv[1]), be32(doc)...)
			if err := valT.ScanPrefix(p, func(k, _ []byte) bool {
				valKeys = append(valKeys, append([]byte(nil), k...))
				return true
			}); err != nil {
				return nil, err
			}
		}
	}

	// With fresh statistics on the base state, count the document's
	// departure so the statistics stay exact. Distinct-value extinction
	// probes look for the (tag, content) pair in documents other than
	// this one.
	maintain, err := db.statsMaintained(base)
	if err != nil {
		return nil, err
	}
	delta := newStatsDelta()
	if maintain {
		delta.nodes = uint64(len(locKeys))
		for tag, n := range tags {
			ts := delta.tags[tag]
			ts.Postings += n
			delta.tags[tag] = ts
		}
		for tv, n := range values {
			ts := delta.tags[tv[0]]
			ts.ValuePostings += n
			if valT != nil {
				elsewhere, perr := treeHasPrefixOutsideDoc(valT, valuePrefix(tv[0], tv[1]), be32(doc))
				if perr != nil {
					return nil, perr
				}
				if !elsewhere {
					ts.DistinctValues++
				}
			}
			delta.tags[tv[0]] = ts
		}
	}

	h, err := db.beginTxn()
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*txn, error) {
		return db.finishTxn(h, func(*snapState) {}), err
	}
	for _, k := range locKeys {
		if err := h.locator.Delete(k); err != nil {
			return fail(fmt.Errorf("locator: %w", err))
		}
	}
	for _, k := range tagKeys {
		if err := h.tagIdx.Delete(k); err != nil {
			return fail(fmt.Errorf("tag index: %w", err))
		}
	}
	for _, k := range valKeys {
		if err := h.valIdx.Delete(k); err != nil {
			return fail(fmt.Errorf("value index: %w", err))
		}
	}
	if err := h.catalog.Delete(catalogKey(info.ID)); err != nil {
		return fail(fmt.Errorf("catalog: %w", err))
	}
	if maintain {
		version := statsVersionFor(base.nextDocID, len(base.docs)-1)
		if err := db.applyStatsDelta(h, base, delta, -1, base.epoch+1, version, uint64(len(base.docs)-1)); err != nil {
			return fail(fmt.Errorf("stats: %w", err))
		}
	}
	t := db.finishTxn(h, func(s *snapState) {
		s.docs = make([]DocInfo, 0, len(base.docs)-1)
		for _, d := range base.docs {
			if d.ID != info.ID {
				s.docs = append(s.docs, d)
			}
		}
	})
	return t, nil
}

// commitLocked logs the transaction and advances the writer tip.
// Caller holds writeMu. On return with nil error the transaction is
// committed in the WAL (not yet necessarily fsynced) and tip/seq point
// at the new state.
func (db *DB) commitLocked(t *txn) error {
	seq := db.seq + 1
	if db.wal != nil {
		for _, id := range t.pages {
			img, err := db.st.SlotImage(id)
			if err != nil {
				return err
			}
			if err := db.wal.AppendPage(id, img); err != nil {
				return err
			}
		}
		if t.link != nil {
			if err := db.wal.AppendLink(t.link[0], t.link[1]); err != nil {
				return err
			}
		}
		// The logged metadata's numPages must cover every logged page so
		// recovery's SetNumPages keeps them.
		blob := encodeMeta(t.state, db.st.SlotSize(), db.metaFlags(), db.st.NumPages())
		if err := db.wal.AppendMeta(blob); err != nil {
			return err
		}
		if err := db.wal.Commit(seq); err != nil {
			return err
		}
	}
	t.committed = true
	// Apply the heap link in the pool. This is the one committed-state
	// mutation of a shared page; it happens after the commit record, so
	// a failure here cannot be rolled back — the pool and the log would
	// disagree. Treat it as fatal: the tip does not advance and the
	// database needs a reopen (which replays the same link from the
	// WAL).
	if t.link != nil {
		p, err := db.st.Fetch(t.link[0])
		if err != nil {
			return fmt.Errorf("commit link apply (database needs reopen): %w", err)
		}
		pagestore.ViewSlotted(p).SetNext(t.link[1])
		db.st.Unpin(p, true)
	}
	db.seq = seq
	db.commitSeq.Store(seq)
	db.tip = t.state
	db.ing.txnPages.Add(uint64(len(t.pages)))
	return nil
}

// abortLocked releases a failed transaction's fresh pages. Caller
// holds writeMu. Once the WAL commit record is written the pages
// belong to the log and are never freed here; orphan WAL frames from
// aborted (uncommitted) transactions are skipped by recovery.
func (db *DB) abortLocked(t *txn) {
	if t == nil || t.committed || len(t.pages) == 0 {
		return
	}
	// Best-effort: a page still pinned (mid-build failure) keeps the
	// whole batch allocated; it is dead space until the next reopen.
	_ = db.st.FreePages(t.pages)
}

// finishCommit completes a commit after writeMu is released: per-policy
// WAL fsync, publication to readers, retirement of superseded pages,
// and a checkpoint when the log has grown past the configured bound.
func (db *DB) finishCommit(ns *snapState, seq uint64, pol SyncPolicy, freed []pagestore.PageID) error {
	if db.wal != nil && pol != SyncNone {
		if err := db.wal.Sync(seq); err != nil {
			return err
		}
	}
	db.publish(ns)
	db.retire(ns.epoch, seq, freed)
	if db.wal != nil && db.wal.Size() >= db.checkpointBytes() {
		db.writeMu.Lock()
		// Re-check under the lock: a concurrent commit may have
		// checkpointed already.
		var err error
		if db.wal.Size() >= db.checkpointBytes() {
			err = db.checkpointLocked()
		}
		db.writeMu.Unlock()
		return err
	}
	return nil
}
