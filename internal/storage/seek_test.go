package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"timber/internal/xmltree"
)

// seekTestDoc builds a synthetic document with enough same-tag nodes to
// span many compact posting blocks (blockMaxPostings is 128).
func seekTestDoc(items int) string {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, "<item><leaf>v%d</leaf></item>", i)
	}
	b.WriteString("</root>")
	return b.String()
}

// seekDB loads docs documents of items nodes each and returns the DB.
func seekDB(t *testing.T, opts Options, docs, items int) *DB {
	t.Helper()
	db := testDB(t, opts)
	for d := 0; d < docs; d++ {
		root, err := xmltree.ParseString(seekTestDoc(items))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.LoadDocument(fmt.Sprintf("doc%d.xml", d), root); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestTagCursorSeekMatchesScan: seeking to any (doc, start) target
// yields exactly the suffix a full scan would produce from that point,
// in both the compact and uncompressed formats, whether the cursor is
// fresh or mid-stream.
func TestTagCursorSeekMatchesScan(t *testing.T) {
	for _, opts := range []Options{{}, {Uncompressed: true}} {
		name := "compact"
		if opts.Uncompressed {
			name = "uncompressed"
		}
		t.Run(name, func(t *testing.T) {
			db := seekDB(t, opts, 3, 400)
			all, err := db.TagPostings("item")
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != 1200 {
				t.Fatalf("have %d item postings, want 1200", len(all))
			}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 60; trial++ {
				c := db.OpenTagCursor("item")
				// Optionally consume a few postings first so the seek
				// starts mid-buffer / mid-stream.
				burn := rng.Intn(3) * rng.Intn(200)
				for i := 0; i < burn; i++ {
					c.Next()
				}
				var doc xmltree.DocID
				var start uint32
				wantFrom := len(all)
				if trial%10 == 9 {
					doc, start = 99, 0 // past every document
				} else {
					target := rng.Intn(len(all))
					doc, start = all[target].Interval.Doc, all[target].Interval.Start
					if trial%2 == 1 {
						start++ // between-posting target
					}
					for i, p := range all {
						iv := p.Interval
						if iv.Doc > doc || (iv.Doc == doc && iv.Start >= start) {
							wantFrom = i
							break
						}
					}
				}
				if wantFrom < burn {
					wantFrom = burn // Seek never rewinds past consumed postings
				}
				c.Seek(doc, start)
				var got []Posting
				for {
					p, ok := c.Next()
					if !ok {
						break
					}
					got = append(got, p)
				}
				if err := c.Close(); err != nil {
					t.Fatal(err)
				}
				want := all[wantFrom:]
				if len(got) != len(want) {
					t.Fatalf("trial %d (burn %d, target %d/%d): got %d postings after seek, want %d",
						trial, burn, doc, start, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: posting %d = %+v, want %+v", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestTagCursorSeekSkipsBlocks: a document-level jump over a long
// posting list must skip whole compact blocks undecoded — the
// PostingsDecoded account stays far below the full list.
func TestTagCursorSeekSkipsBlocks(t *testing.T) {
	db := seekDB(t, Options{}, 4, 500)
	c := db.OpenTagCursor("item")
	defer c.Close()
	if _, ok := c.Next(); !ok { // position in doc 1
		t.Fatal("no postings")
	}
	c.Seek(4, 0) // jump over docs 1-3 (~1500 postings, ~12 blocks)
	p, ok := c.Next()
	if !ok || p.Interval.Doc != 4 {
		t.Fatalf("after Seek(4,0): posting %+v ok=%v, want doc 4", p, ok)
	}
	if c.BlocksSkipped() == 0 {
		t.Error("document-level seek decoded every block (BlocksSkipped = 0)")
	}
	if c.PostingsDecoded() > 500 {
		t.Errorf("seek decoded %d postings for a 2000-posting list, want <= 500", c.PostingsDecoded())
	}
}
