package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"timber/internal/pagestore"
	"timber/internal/wal"
)

// On-disk metadata, format v3. The same 48-byte blob appears in two
// places: the start of page 0's slot (the checkpointed copy) and
// RecMeta records in the write-ahead log (the authoritative copy for
// transactions committed since the last checkpoint). Layout, little
// endian except the magic:
//
//	[0:8)   magic "TIMBERGO"
//	[8:10)  version (3)
//	[10:14) heap first page
//	[14:18) heap last (insertion) page
//	[18:22) catalog B+tree root
//	[22:26) locator B+tree root
//	[26:30) tag-index B+tree root
//	[30]    1 if the value index exists
//	[31:35) value-index B+tree root
//	[35:39) page size
//	[39]    flags
//	[40:44) allocated page count
//	[44:48) next document ID
//
// Page 0 is always written raw (never through the page codec), so the
// sniffing open path can read the blob with plain offsets before any
// store exists — the blob itself then says which codec the rest of the
// file uses.
const (
	metaMagic   = "TIMBERGO"
	metaVersion = 3
	metaLen     = 48

	// Meta flags: which optional codecs the file uses. flagCompact
	// covers the posting-block and varint-record formats; flagPageCodec
	// records that pages (other than page 0 and raw heaps) are written
	// through the store's compression codec.
	metaFlagCompact   = 1 << 0
	metaFlagPageCodec = 1 << 1
)

// ErrNeedsRebuild is returned by Open for a database written in an
// older on-disk format. There is no in-place migration: rebuild the
// database by reloading its source documents (timber-load, or the
// generator that produced it).
var ErrNeedsRebuild = errors.New("storage: database uses an old on-disk format; rebuild it from the source documents")

// snapState is one immutable published state of the database: the tree
// roots, heap bounds and catalog a snapshot reads from. Writers build
// a fresh snapState per transaction; readers pin one and everything it
// references stays untouched until the pin is released.
type snapState struct {
	epoch     uint64
	heapFirst pagestore.PageID
	heapLast  pagestore.PageID
	catalog   pagestore.PageID
	locator   pagestore.PageID
	tag       pagestore.PageID
	hasVal    bool
	val       pagestore.PageID
	nextDocID uint32
	// docs caches the decoded catalog, sorted by document ID.
	docs []DocInfo
}

// metaBlob is a decoded v3 metadata record.
type metaBlob struct {
	s        snapState // epoch and docs are not persisted
	pageSize uint32
	flags    byte
	numPages uint32
}

func encodeMeta(s *snapState, pageSize int, flags byte, numPages uint32) []byte {
	b := make([]byte, metaLen)
	copy(b[0:8], metaMagic)
	binary.LittleEndian.PutUint16(b[8:], metaVersion)
	binary.LittleEndian.PutUint32(b[10:], uint32(s.heapFirst))
	binary.LittleEndian.PutUint32(b[14:], uint32(s.heapLast))
	binary.LittleEndian.PutUint32(b[18:], uint32(s.catalog))
	binary.LittleEndian.PutUint32(b[22:], uint32(s.locator))
	binary.LittleEndian.PutUint32(b[26:], uint32(s.tag))
	if s.hasVal {
		b[30] = 1
	}
	binary.LittleEndian.PutUint32(b[31:], uint32(s.val))
	binary.LittleEndian.PutUint32(b[35:], uint32(pageSize))
	b[39] = flags
	binary.LittleEndian.PutUint32(b[40:], numPages)
	binary.LittleEndian.PutUint32(b[44:], s.nextDocID)
	return b
}

func decodeMeta(b []byte) (metaBlob, error) {
	var m metaBlob
	if len(b) < metaLen {
		return m, fmt.Errorf("storage: short metadata (%d bytes)", len(b))
	}
	if string(b[0:8]) != metaMagic {
		return m, errors.New("storage: not a timber database (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(b[8:]); v != metaVersion {
		if v < metaVersion {
			return m, fmt.Errorf("%w (file is format v%d, this build reads v%d)", ErrNeedsRebuild, v, metaVersion)
		}
		return m, fmt.Errorf("storage: unsupported version %d", v)
	}
	m.s.heapFirst = pagestore.PageID(binary.LittleEndian.Uint32(b[10:]))
	m.s.heapLast = pagestore.PageID(binary.LittleEndian.Uint32(b[14:]))
	m.s.catalog = pagestore.PageID(binary.LittleEndian.Uint32(b[18:]))
	m.s.locator = pagestore.PageID(binary.LittleEndian.Uint32(b[22:]))
	m.s.tag = pagestore.PageID(binary.LittleEndian.Uint32(b[26:]))
	m.s.hasVal = b[30] == 1
	m.s.val = pagestore.PageID(binary.LittleEndian.Uint32(b[31:]))
	m.pageSize = binary.LittleEndian.Uint32(b[35:])
	m.flags = b[39]
	m.numPages = binary.LittleEndian.Uint32(b[40:])
	m.s.nextDocID = binary.LittleEndian.Uint32(b[44:])
	if m.pageSize < 64 || m.pageSize > 1<<24 {
		return m, fmt.Errorf("storage: implausible page size %d in metadata", m.pageSize)
	}
	return m, nil
}

var metaCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// errMetaTorn marks a slot-0 read that failed its checksum — the file
// may still be recoverable from the write-ahead log's RecMeta records.
var errMetaTorn = errors.New("storage: metadata page checksum mismatch")

// sniffMeta reads the checkpointed metadata directly from the file,
// before any page store exists. Page 0 is written raw with the v3
// universal slot framing ([flag][clen u32][crc u32][payload]), so the
// blob is at a fixed offset and self-describes the page size and codec
// for the store open that follows. Older formats are recognized and
// reported as ErrNeedsRebuild.
func sniffMeta(f pagestore.File) (metaBlob, error) {
	var hdr [13]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil && n < len(hdr) {
		return metaBlob{}, fmt.Errorf("storage: open: not a timber database (%d readable bytes)", n)
	}
	// Legacy format v2, uncompressed: the magic sat at file offset 0.
	if string(hdr[0:8]) == metaMagic {
		return metaBlob{}, fmt.Errorf("%w (file is format v2)", ErrNeedsRebuild)
	}
	flag, clen := hdr[0], binary.LittleEndian.Uint32(hdr[1:5])
	// Legacy format v2 behind the old 5-byte codec framing: raw slots
	// had a zero length field and the payload (starting with the magic)
	// at offset 5; compressed slots had flag 1 with the magic hidden
	// inside the compressed image. v3 never writes either shape at slot
	// 0 (the meta page is raw, with clen == usable).
	if flag == 0 && clen == 0 && string(hdr[5:13]) == metaMagic {
		return metaBlob{}, fmt.Errorf("%w (file is format v2, page codec)", ErrNeedsRebuild)
	}
	if flag == 1 {
		return metaBlob{}, fmt.Errorf("%w (file is format v2, page codec)", ErrNeedsRebuild)
	}
	if flag != 0 || clen == 0 || clen > 1<<24 {
		return metaBlob{}, errors.New("storage: open: not a timber database")
	}
	payload := make([]byte, clen)
	if n, err := f.ReadAt(payload, 9); err != nil && n < len(payload) {
		return metaBlob{}, errMetaTorn
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
	if crc32.Checksum(payload, metaCastagnoli) != wantCRC {
		return metaBlob{}, errMetaTorn
	}
	m, err := decodeMeta(payload)
	if err != nil {
		return metaBlob{}, err
	}
	// The raw slot's length is the page's usable size; cross-check it
	// against the page size the blob claims.
	if m.pageSize != clen+pagestore.SlotHeaderLen {
		return metaBlob{}, fmt.Errorf("storage: metadata page size %d disagrees with slot framing %d", m.pageSize, clen+pagestore.SlotHeaderLen)
	}
	return m, nil
}

// lastWALMeta replays the write-ahead log and returns the metadata of
// the last committed transaction, if any. It is the fallback source of
// truth when page 0 is torn (a crash can interrupt the checkpoint's
// meta write — but only after the WAL already holds the same state).
func lastWALMeta(f pagestore.File) (metaBlob, bool, error) {
	var pendingMeta []byte
	var lastMeta []byte
	_, _, err := wal.Replay(f, func(r wal.Record) error {
		switch r.Type {
		case wal.RecMeta:
			pendingMeta = append(pendingMeta[:0], r.Payload...)
		case wal.RecCommit:
			if pendingMeta != nil {
				lastMeta = append(lastMeta[:0], pendingMeta...)
			}
		}
		return nil
	})
	if err != nil {
		return metaBlob{}, false, err
	}
	if lastMeta == nil {
		return metaBlob{}, false, nil
	}
	m, err := decodeMeta(lastMeta)
	if err != nil {
		return metaBlob{}, false, err
	}
	return m, true, nil
}
