package storage

import (
	"errors"
	"os"
	"strings"
	"testing"

	"timber/internal/xmltree"
)

const formatTestDoc = `<bib>
  <article key="a1"><author>A</author><title>T1</title><year>2000</year></article>
  <article key="a2"><author>B</author><author>A</author><title>T2</title><year>2001</year></article>
</bib>`

func buildFormatDB(t *testing.T, path string, opts Options) {
	t.Helper()
	db, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXML("bib.xml", strings.NewReader(formatTestDoc)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSniffsFormat loads the same document into a compressed and an
// uncompressed database and reopens both with plain options: Open must
// detect each file's framing and produce identical query-visible data.
func TestOpenSniffsFormat(t *testing.T) {
	for _, tc := range []struct {
		name         string
		uncompressed bool
	}{
		{"compressed", false},
		{"uncompressed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/db"
			buildFormatDB(t, path, Options{Uncompressed: tc.uncompressed})
			db, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if db.Compact() == tc.uncompressed {
				t.Errorf("Compact() = %v for %s file", db.Compact(), tc.name)
			}
			ps, err := db.TagPostings("author")
			if err != nil {
				t.Fatal(err)
			}
			if len(ps) != 3 {
				t.Fatalf("got %d author postings, want 3", len(ps))
			}
			content, err := db.Content(ps[0])
			if err != nil || content != "A" {
				t.Fatalf("Content = %q, %v", content, err)
			}
			vp, err := db.ValuePostings("author", "A")
			if err != nil {
				t.Fatal(err)
			}
			if len(vp) != 2 {
				t.Fatalf("got %d value postings for author=A, want 2", len(vp))
			}
		})
	}
}

// TestOpenOldFormat crafts files in the v2 layouts — magic at offset 0
// (uncompressed) and the old 5-byte codec framing with the magic at
// offset 5 — and expects ErrNeedsRebuild from both: the
// detect-and-rebuild contract of the format bump.
func TestOpenOldFormat(t *testing.T) {
	for _, tc := range []struct {
		name string
		head []byte
	}{
		{"uncompressed", []byte("TIMBERGO\x02\x00")},
		{"page-codec", append([]byte{0, 0, 0, 0, 0}, []byte("TIMBERGO\x02\x00")...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := t.TempDir() + "/old.db"
			blob := make([]byte, 8192)
			copy(blob, tc.head)
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(path, Options{})
			if !errors.Is(err, ErrNeedsRebuild) {
				t.Fatalf("Open of v2 file: %v, want ErrNeedsRebuild", err)
			}
		})
	}
}

// TestIncrementalSecondDocument exercises the singleton-block insert
// path: a second document goes through per-key inserts, and its
// postings must interleave correctly with the bulk-loaded first.
func TestIncrementalSecondDocument(t *testing.T) {
	db, err := CreateTemp(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadXML("one.xml", strings.NewReader(formatTestDoc)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXML("two.xml", strings.NewReader(formatTestDoc)); err != nil {
		t.Fatal(err)
	}
	ps, err := db.TagPostings("author")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 6 {
		t.Fatalf("got %d author postings, want 6", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if a.Interval.Doc > b.Interval.Doc ||
			(a.Interval.Doc == b.Interval.Doc && a.Interval.Start >= b.Interval.Start) {
			t.Fatalf("postings out of document order at %d: %+v then %+v", i, a, b)
		}
	}
	// Per-document cursor sees only its document.
	c := db.OpenTagDocCursor("author", xmltree.DocID(2))
	n := 0
	for {
		p, ok := c.Next()
		if !ok {
			break
		}
		if p.Interval.Doc != 2 {
			t.Fatalf("doc cursor returned doc %d", p.Interval.Doc)
		}
		n++
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("doc cursor saw %d postings, want 3", n)
	}
}

// TestSizeInfo sanity-checks the bytes-on-disk breakdown.
func TestSizeInfo(t *testing.T) {
	db, err := CreateTemp(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadXML("bib.xml", strings.NewReader(formatTestDoc)); err != nil {
		t.Fatal(err)
	}
	info, err := db.SizeInfo()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compact || info.Codec != "lz" {
		t.Errorf("default DB should be compact+lz, got %+v", info)
	}
	if info.HeapPages == 0 || info.IndexPages == 0 || info.TagCells == 0 {
		t.Errorf("zero components: %+v", info)
	}
	if got := info.HeapPages + info.IndexPages; got > info.TotalPages {
		t.Errorf("components (%d pages) exceed total %d", got, info.TotalPages)
	}
	if info.TotalBytes != uint64(info.TotalPages)*uint64(info.PageSize) {
		t.Errorf("TotalBytes %d != pages %d * slot %d", info.TotalBytes, info.TotalPages, info.PageSize)
	}
}
