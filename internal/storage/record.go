// Package storage implements the TIMBER-style storage layer of the
// paper's Figure 12 on top of the page store: a Data Manager that keeps
// one record per XML node in a heap file, an Index Manager that
// maintains a node locator, a tag-name index and a (tag, content) value
// index as B+trees, and a Metadata Manager that persists the catalog.
//
// The experiments in Sec. 6 rely on two properties this layer provides:
//
//   - Pattern-tree node bindings can be computed from indices alone,
//     without touching node records: tag-index postings carry the full
//     interval (start, end, level) of each node.
//   - Value look-ups ("populating" content during grouping or output)
//     cost buffer-pool page fetches, so plans that defer or avoid them
//     are measurably cheaper.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"timber/internal/pagestore"
	"timber/internal/xmltree"
)

// NodeRecord is the stored form of one XML node.
type NodeRecord struct {
	// Interval is the node's position: document, start/end, level.
	Interval xmltree.Interval
	// ParentStart is the start number of the parent node, or 0 for a
	// document root.
	ParentStart uint32
	// Tag is the element name.
	Tag string
	// Content is the element's direct text content.
	Content string
	// Attrs are the element attributes in document order.
	Attrs []xmltree.Attr
}

// ID returns the record's node identifier.
func (r *NodeRecord) ID() xmltree.NodeID { return r.Interval.ID() }

// encodeRecord serializes a node record. Layout (little endian):
//
//	doc u32, start u32, end u32, level u16, parentStart u32,
//	tagLen u16, tag, contentLen u32, content,
//	nattrs u16, { nameLen u16, name, valLen u32, value }*
func encodeRecord(r *NodeRecord) []byte {
	size := 4 + 4 + 4 + 2 + 4 + 2 + len(r.Tag) + 4 + len(r.Content) + 2
	for _, a := range r.Attrs {
		size += 2 + len(a.Name) + 4 + len(a.Value)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:4]...)
	}
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32(uint32(r.Interval.Doc))
	put32(r.Interval.Start)
	put32(r.Interval.End)
	put16(r.Interval.Level)
	put32(r.ParentStart)
	put16(uint16(len(r.Tag)))
	buf = append(buf, r.Tag...)
	put32(uint32(len(r.Content)))
	buf = append(buf, r.Content...)
	put16(uint16(len(r.Attrs)))
	for _, a := range r.Attrs {
		put16(uint16(len(a.Name)))
		buf = append(buf, a.Name...)
		put32(uint32(len(a.Value)))
		buf = append(buf, a.Value...)
	}
	return buf
}

var errCorruptRecord = errors.New("storage: corrupt node record")

// decodeRecord parses a stored node record.
func decodeRecord(b []byte) (*NodeRecord, error) {
	r := &NodeRecord{}
	off := 0
	need := func(n int) bool { return off+n <= len(b) }
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v
	}
	get16 := func() uint16 {
		v := binary.LittleEndian.Uint16(b[off:])
		off += 2
		return v
	}
	if !need(20) { // fixed header (18 bytes) + tag length (2 bytes)
		return nil, errCorruptRecord
	}
	r.Interval.Doc = xmltree.DocID(get32())
	r.Interval.Start = get32()
	r.Interval.End = get32()
	r.Interval.Level = get16()
	r.ParentStart = get32()
	tagLen := int(get16())
	if !need(tagLen + 4) {
		return nil, errCorruptRecord
	}
	r.Tag = string(b[off : off+tagLen])
	off += tagLen
	contentLen := int(get32())
	if !need(contentLen + 2) {
		return nil, errCorruptRecord
	}
	r.Content = string(b[off : off+contentLen])
	off += contentLen
	nattrs := int(get16())
	for i := 0; i < nattrs; i++ {
		if !need(2) {
			return nil, errCorruptRecord
		}
		nameLen := int(get16())
		if !need(nameLen + 4) {
			return nil, errCorruptRecord
		}
		name := string(b[off : off+nameLen])
		off += nameLen
		valLen := int(get32())
		if !need(valLen) {
			return nil, errCorruptRecord
		}
		val := string(b[off : off+valLen])
		off += valLen
		r.Attrs = append(r.Attrs, xmltree.Attr{Name: name, Value: val})
	}
	return r, nil
}

// encodeRecordCompact is the format-v2 record layout: the same fields
// as encodeRecord, but every integer is a varint and the end number is
// stored as an extent (end − start). Small nodes — the vast majority at
// DBLP scale, where most elements hold a short string — shrink from an
// 18-byte fixed header to 5-8 bytes.
//
//	doc, start, extent, level, parentStart,
//	tagLen, tag, contentLen, content,
//	nattrs, { nameLen, name, valLen, value }*   (all lengths uvarint)
func encodeRecordCompact(r *NodeRecord) []byte {
	size := 16 + len(r.Tag) + len(r.Content)
	for _, a := range r.Attrs {
		size += 6 + len(a.Name) + len(a.Value)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(r.Interval.Doc))
	buf = binary.AppendUvarint(buf, uint64(r.Interval.Start))
	buf = binary.AppendUvarint(buf, uint64(r.Interval.End-r.Interval.Start))
	buf = binary.AppendUvarint(buf, uint64(r.Interval.Level))
	buf = binary.AppendUvarint(buf, uint64(r.ParentStart))
	buf = binary.AppendUvarint(buf, uint64(len(r.Tag)))
	buf = append(buf, r.Tag...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Content)))
	buf = append(buf, r.Content...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Attrs)))
	for _, a := range r.Attrs {
		buf = binary.AppendUvarint(buf, uint64(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(a.Value)))
		buf = append(buf, a.Value...)
	}
	return buf
}

// decodeRecordCompact parses a format-v2 record. Total on arbitrary
// input: every varint and length is bounds-checked against the
// remaining bytes before use.
func decodeRecordCompact(b []byte) (*NodeRecord, error) {
	r := &NodeRecord{}
	off := 0
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	str := func() (string, bool) {
		l, ok := u()
		if !ok || l > uint64(len(b)-off) {
			return "", false
		}
		s := string(b[off : off+int(l)])
		off += int(l)
		return s, true
	}
	doc, ok1 := u()
	start, ok2 := u()
	extent, ok3 := u()
	level, ok4 := u()
	parent, ok5 := u()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 ||
		doc > 0xffffffff || start > 0xffffffff || start+extent > 0xffffffff ||
		level > 0xffff || parent > 0xffffffff {
		return nil, errCorruptRecord
	}
	r.Interval.Doc = xmltree.DocID(doc)
	r.Interval.Start = uint32(start)
	r.Interval.End = uint32(start + extent)
	r.Interval.Level = uint16(level)
	r.ParentStart = uint32(parent)
	if r.Tag, ok1 = str(); !ok1 {
		return nil, errCorruptRecord
	}
	if r.Content, ok1 = str(); !ok1 {
		return nil, errCorruptRecord
	}
	nattrs, ok1 := u()
	if !ok1 || nattrs > uint64(len(b)-off) { // each attr costs ≥ 2 bytes
		return nil, errCorruptRecord
	}
	for i := uint64(0); i < nattrs; i++ {
		name, ok := str()
		if !ok {
			return nil, errCorruptRecord
		}
		val, ok := str()
		if !ok {
			return nil, errCorruptRecord
		}
		r.Attrs = append(r.Attrs, xmltree.Attr{Name: name, Value: val})
	}
	return r, nil
}

// recordContentCompact extracts just the content string from a
// format-v2 record, skipping the header and tag without materializing
// them — the late-materialization fast path ContentsBatch runs per row.
func recordContentCompact(b []byte) (string, error) {
	off := 0
	skip := func() bool {
		_, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return false
		}
		off += n
		return true
	}
	for i := 0; i < 5; i++ { // doc, start, extent, level, parentStart
		if !skip() {
			return "", errCorruptRecord
		}
	}
	tagLen, n := binary.Uvarint(b[off:])
	if n <= 0 || tagLen > uint64(len(b)-off-n) {
		return "", errCorruptRecord
	}
	off += n + int(tagLen)
	contentLen, n := binary.Uvarint(b[off:])
	if n <= 0 || contentLen > uint64(len(b)-off-n) {
		return "", errCorruptRecord
	}
	off += n
	return string(b[off : off+int(contentLen)]), nil
}

// Posting is one index entry for a node: its interval plus the record's
// physical location. Postings are what pattern matching operates on —
// bindings "in terms of node identifiers, obtained from the index look
// up" (Sec. 5.2) — and the RID is what a later value population uses to
// reach the record without another locator probe.
type Posting struct {
	Interval xmltree.Interval
	RID      pagestore.RID
}

// ID returns the posting's node identifier.
func (p Posting) ID() xmltree.NodeID { return p.Interval.ID() }

// Index key layouts. All multi-byte integers in keys are big endian so
// that lexicographic byte order equals numeric order; postings therefore
// come out of prefix scans already sorted by (doc, start), which is
// exactly the input order the structural join algorithms need. Tags and
// contents cannot contain NUL in well-formed XML, so 0x00 separates
// variable-length components.

func be32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// locatorKey is the node-locator key: doc, start.
func locatorKey(id xmltree.NodeID) []byte {
	k := make([]byte, 0, 8)
	k = append(k, be32(uint32(id.Doc))...)
	k = append(k, be32(id.Start)...)
	return k
}

// tagKey is the tag-index key: tag, 0x00, doc, start.
func tagKey(tag string, id xmltree.NodeID) []byte {
	k := make([]byte, 0, len(tag)+9)
	k = append(k, tag...)
	k = append(k, 0)
	k = append(k, be32(uint32(id.Doc))...)
	k = append(k, be32(id.Start)...)
	return k
}

// tagPrefix is the scan prefix for every node with the given tag.
func tagPrefix(tag string) []byte {
	k := make([]byte, 0, len(tag)+1)
	k = append(k, tag...)
	k = append(k, 0)
	return k
}

// valueKey is the value-index key: tag, 0x00, content, 0x00, doc, start.
// Contents longer than maxIndexedContent are not indexed (callers fall
// back to tag postings plus a record check).
func valueKey(tag, content string, id xmltree.NodeID) []byte {
	k := make([]byte, 0, len(tag)+len(content)+10)
	k = append(k, tag...)
	k = append(k, 0)
	k = append(k, content...)
	k = append(k, 0)
	k = append(k, be32(uint32(id.Doc))...)
	k = append(k, be32(id.Start)...)
	return k
}

func valuePrefix(tag, content string) []byte {
	k := make([]byte, 0, len(tag)+len(content)+2)
	k = append(k, tag...)
	k = append(k, 0)
	k = append(k, content...)
	k = append(k, 0)
	return k
}

// maxIndexedContent bounds the content portion of value-index keys.
const maxIndexedContent = 512

// postingValue encodes the non-key part of an index posting:
// end u32, level u16, rid.page u32, rid.slot u16 (little endian).
func postingValue(iv xmltree.Interval, rid pagestore.RID) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], iv.End)
	binary.LittleEndian.PutUint16(b[4:], iv.Level)
	binary.LittleEndian.PutUint32(b[6:], uint32(rid.Page))
	binary.LittleEndian.PutUint16(b[10:], uint16(rid.Slot))
	return b
}

// decodePosting reassembles a posting from an index key's (doc, start)
// suffix and the stored value.
func decodePosting(keySuffix, value []byte) (Posting, error) {
	if len(keySuffix) != 8 || len(value) != 12 {
		return Posting{}, fmt.Errorf("storage: corrupt index posting (key %d, value %d bytes)", len(keySuffix), len(value))
	}
	var p Posting
	p.Interval.Doc = xmltree.DocID(binary.BigEndian.Uint32(keySuffix[0:]))
	p.Interval.Start = binary.BigEndian.Uint32(keySuffix[4:])
	p.Interval.End = binary.LittleEndian.Uint32(value[0:])
	p.Interval.Level = binary.LittleEndian.Uint16(value[4:])
	p.RID.Page = pagestore.PageID(binary.LittleEndian.Uint32(value[6:]))
	p.RID.Slot = pagestore.Slot(binary.LittleEndian.Uint16(value[10:]))
	return p, nil
}

// ridValue encodes a bare RID (locator value).
func ridValue(rid pagestore.RID) []byte {
	b := make([]byte, 6)
	binary.LittleEndian.PutUint32(b[0:], uint32(rid.Page))
	binary.LittleEndian.PutUint16(b[4:], uint16(rid.Slot))
	return b
}

func decodeRID(b []byte) (pagestore.RID, error) {
	if len(b) != 6 {
		return pagestore.RID{}, fmt.Errorf("storage: corrupt RID value (%d bytes)", len(b))
	}
	return pagestore.RID{
		Page: pagestore.PageID(binary.LittleEndian.Uint32(b[0:])),
		Slot: pagestore.Slot(binary.LittleEndian.Uint16(b[4:])),
	}, nil
}
