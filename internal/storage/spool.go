package storage

import (
	"fmt"
	"runtime"

	"timber/internal/pagestore"
)

// Spool is a temporary page region for operator spill: a blocking
// operator (the streaming executor's sort-based GROUPBY, duplicate
// elimination over huge inputs) that exceeds its memory budget writes
// sorted runs of encoded rows through the buffer pool and merges them
// back with cursors. The spilled pages compete with the base data for
// buffer-pool capacity — that is the TIMBER cost model.
//
// Spools allocate from the store's free list like any writer, so any
// number of spools, ingest transactions and readers can be active at
// once; Close returns every run's pages to the allocator. Close every
// run cursor first — freeing pinned pages fails and leaves the batch
// for the next reclamation pass. A spool that is garbage-collected
// without Close is self-healing: a finalizer frees its pages and
// counts the leak in spool_runs_leaked, so a cancellation path that
// drops its spool shows up in metrics instead of as unbounded file
// growth.
type Spool struct {
	db     *DB
	closed bool
	runs   []*SpoolRun
}

// NewSpool starts a spill region.
func (db *DB) NewSpool() *Spool {
	sp := &Spool{db: db}
	runtime.SetFinalizer(sp, func(leaked *Spool) {
		if !leaked.closed {
			db.ing.spoolRunsLeaked.Add(1)
			leaked.Close()
		}
	})
	return sp
}

// SpoolRun is one append-only run of records inside a spool.
type SpoolRun struct {
	sp   *Spool
	heap *pagestore.Heap
}

// NewRun starts a fresh run.
func (s *Spool) NewRun() (*SpoolRun, error) {
	if s.closed {
		return nil, fmt.Errorf("storage: spool is closed")
	}
	h, err := pagestore.NewHeap(s.db.st)
	if err != nil {
		return nil, err
	}
	// Sort runs hold varint-encoded rows, written once and merged once —
	// codec-exempt for the same reason as the record heap.
	h.SetRaw()
	h.Track()
	s.db.ing.spoolRuns.Add(1)
	r := &SpoolRun{sp: s, heap: h}
	s.runs = append(s.runs, r)
	return r, nil
}

// Append writes one record to the run.
func (r *SpoolRun) Append(rec []byte) error {
	_, err := r.heap.Insert(rec)
	return err
}

// Open returns a cursor over the run's records in write order, holding
// one pinned page at a time. Close every cursor before closing the
// spool.
func (r *SpoolRun) Open() *pagestore.HeapCursor {
	return pagestore.NewHeapCursor(r.sp.db.st, r.heap.FirstPage())
}

// Close returns every run's pages to the allocator. Idempotent.
func (s *Spool) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	runtime.SetFinalizer(s, nil)
	var pages []pagestore.PageID
	for _, r := range s.runs {
		pages = append(pages, r.heap.FirstPage())
		pages = append(pages, r.heap.TakeTracked()...)
	}
	s.runs = nil
	if len(pages) == 0 {
		return nil
	}
	if err := s.db.st.FreePages(pages); err != nil {
		return fmt.Errorf("storage: spool release: %w", err)
	}
	s.db.ing.spoolPagesFreed.Add(uint64(len(pages)))
	return nil
}
