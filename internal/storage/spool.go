package storage

import (
	"fmt"

	"timber/internal/pagestore"
)

// Spool is a temporary page region for operator spill: a blocking
// operator (the streaming executor's sort-based GROUPBY, duplicate
// elimination over huge inputs) that exceeds its memory budget writes
// sorted runs of encoded rows through the buffer pool and merges them
// back with cursors. Like SpillTrees, the spilled pages compete with
// the base data for buffer-pool capacity — that is the TIMBER cost
// model — and the region past the creation mark is truncated when the
// spool closes.
//
// A Spool owns the database's spill region exclusively from NewSpool
// until Close (the same spillMu that serializes SpillTrees), so only
// one spilling operator or result spill can be active at a time.
// Callers must therefore Close the spool before the executor's result
// spill runs, and must close every run cursor first — Close truncates
// the region, which fails while spilled pages are pinned.
type Spool struct {
	db     *DB
	mark   uint32
	closed bool
}

// NewSpool claims the spill region and records the truncation mark.
func (db *DB) NewSpool() *Spool {
	db.spillMu.Lock()
	return &Spool{db: db, mark: db.st.NumPages()}
}

// SpoolRun is one append-only run of records inside a spool.
type SpoolRun struct {
	sp   *Spool
	heap *pagestore.Heap
}

// NewRun starts a fresh run.
func (s *Spool) NewRun() (*SpoolRun, error) {
	if s.closed {
		return nil, fmt.Errorf("storage: spool is closed")
	}
	h, err := pagestore.NewHeap(s.db.st)
	if err != nil {
		return nil, err
	}
	// Sort runs hold varint-encoded rows, written once and merged once —
	// codec-exempt for the same reason as the record heap.
	h.SetRaw()
	return &SpoolRun{sp: s, heap: h}, nil
}

// Append writes one record to the run.
func (r *SpoolRun) Append(rec []byte) error {
	_, err := r.heap.Insert(rec)
	return err
}

// Open returns a cursor over the run's records in write order, holding
// one pinned page at a time. Close every cursor before closing the
// spool.
func (r *SpoolRun) Open() *pagestore.HeapCursor {
	return pagestore.NewHeapCursor(r.sp.db.st, r.heap.FirstPage())
}

// Close releases the spilled pages and the spill region. Idempotent.
func (s *Spool) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.db.st.Truncate(s.mark)
	s.db.spillMu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: spool release: %w", err)
	}
	return nil
}
