package pagestore

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// stampPage writes a recognizable pattern derived from the page ID so
// readers can verify they got the right bytes.
func stampPage(data []byte, id PageID) {
	binary.LittleEndian.PutUint32(data[0:], uint32(id))
	binary.LittleEndian.PutUint32(data[4:], ^uint32(id))
}

func checkStamp(data []byte, id PageID) bool {
	return binary.LittleEndian.Uint32(data[0:]) == uint32(id) &&
		binary.LittleEndian.Uint32(data[4:]) == ^uint32(id)
}

// TestShardedOracle drives a sharded store and a single-lock (Shards:1)
// store through the same randomized operation sequence and checks they
// behave identically where the policy is shared: same page contents at
// every fetch, same logical counters (fetches, allocations), and sane
// eviction accounting (hits + physical reads = fetches; every evicted
// page is recoverable from disk).
func TestShardedOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sharded, err := CreateTemp(Options{PageSize: 128, PoolPages: 6, Shards: 3})
		if err != nil {
			return false
		}
		defer sharded.Close()
		single, err := CreateTemp(Options{PageSize: 128, PoolPages: 6, Shards: 1})
		if err != nil {
			return false
		}
		defer single.Close()

		stores := []*Store{sharded, single}
		content := map[PageID]byte{} // shared oracle of page payloads
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 3 || len(content) == 0: // allocate on both
				v := byte(rng.Intn(256))
				var id PageID
				for i, st := range stores {
					p, err := st.Allocate()
					if err != nil {
						return false
					}
					stampPage(p.Data(), p.ID())
					p.Data()[100] = v
					if i == 0 {
						id = p.ID()
					} else if p.ID() != id {
						return false // diverging page IDs
					}
					st.Unpin(p, true)
				}
				content[id] = v
			case r < 8: // fetch and verify on both, maybe rewrite
				id := PageID(rng.Intn(int(sharded.NumPages())))
				rewrite := rng.Intn(2) == 0
				v := byte(rng.Intn(256))
				for _, st := range stores {
					p, err := st.Fetch(id)
					if err != nil {
						return false
					}
					if !checkStamp(p.Data(), id) || p.Data()[100] != content[id] {
						st.Unpin(p, false)
						return false
					}
					if rewrite {
						p.Data()[100] = v
					}
					st.Unpin(p, rewrite)
				}
				if rewrite {
					content[id] = v
				}
			case r == 8:
				for _, st := range stores {
					if err := st.DropCache(); err != nil {
						return false
					}
				}
			default:
				for _, st := range stores {
					if err := st.Flush(); err != nil {
						return false
					}
				}
			}
		}
		// Logical counters must be identical; physical behaviour must
		// satisfy the accounting identities on both stores.
		a, b := sharded.Stats(), single.Stats()
		if a.Fetches != b.Fetches || a.Allocations != b.Allocations {
			return false
		}
		for _, s := range []Stats{a, b} {
			if s.Hits+s.PhysicalReads != s.Fetches {
				return false
			}
			if s.Evictions > s.Fetches+s.Allocations {
				return false
			}
		}
		// Final contents identical.
		for id, v := range content {
			for _, st := range stores {
				p, err := st.Fetch(id)
				if err != nil {
					return false
				}
				ok := checkStamp(p.Data(), id) && p.Data()[100] == v
				st.Unpin(p, false)
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestShardCapacityPartition checks that shard capacities sum to
// PoolPages and match the dense-ID distribution, for awkward shard
// counts.
func TestShardCapacityPartition(t *testing.T) {
	for _, tc := range []struct{ pool, shards int }{
		{1, 16}, {2, 16}, {7, 3}, {16, 16}, {4096, 16}, {5, 4},
	} {
		st := tempStore(t, Options{PageSize: 128, PoolPages: tc.pool, Shards: tc.shards})
		sum := 0
		for i := range st.shards {
			if st.shards[i].cap < 1 {
				t.Errorf("pool=%d shards=%d: shard %d has zero capacity", tc.pool, tc.shards, i)
			}
			sum += st.shards[i].cap
		}
		if sum != tc.pool {
			t.Errorf("pool=%d shards=%d: capacities sum to %d", tc.pool, tc.shards, sum)
		}
		if st.Shards() > tc.pool {
			t.Errorf("pool=%d: %d shards exceed pool", tc.pool, st.Shards())
		}
	}
}

// TestConcurrentReadersStress hammers a small sharded pool from many
// goroutines (run under -race by the Makefile's check target): every
// fetch must observe the page's stamped contents even while other
// goroutines force evictions, and the counters must balance afterwards.
func TestConcurrentReadersStress(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8, Shards: 4})
	const npages = 64
	for i := 0; i < npages; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		stampPage(p.Data(), p.ID())
		st.Unpin(p, true)
	}

	const goroutines = 8
	const opsPer = 2000
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPer; i++ {
				id := PageID(rng.Intn(npages))
				p, err := st.Fetch(id)
				if err != nil {
					errc <- err
					return
				}
				if !checkStamp(p.Data(), id) {
					errc <- fmt.Errorf("goroutine %d: page %d contents corrupted", g, id)
					st.Unpin(p, false)
					return
				}
				st.Unpin(p, false)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	s := st.Stats()
	if s.Fetches != goroutines*opsPer {
		t.Errorf("fetches = %d, want %d", s.Fetches, goroutines*opsPer)
	}
	if s.Hits+s.PhysicalReads != s.Fetches {
		t.Errorf("hits %d + reads %d != fetches %d", s.Hits, s.PhysicalReads, s.Fetches)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions with a pool smaller than the working set")
	}
}

// TestConcurrentFetchCountersExact verifies the no-eviction guarantee
// the executors' counter test relies on: with a pool that holds the
// whole working set, hit/miss totals are schedule-independent — each
// page misses exactly once no matter how many goroutines race for it.
func TestConcurrentFetchCountersExact(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 64, Shards: 8})
	const npages = 32
	for i := 0; i < npages; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		stampPage(p.Data(), p.ID())
		st.Unpin(p, true)
	}
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < npages; i++ {
					p, err := st.Fetch(PageID(i))
					if err != nil {
						t.Error(err)
						return
					}
					st.Unpin(p, false)
				}
			}
		}()
	}
	wg.Wait()

	s := st.Stats()
	want := uint64(goroutines * rounds * npages)
	if s.Fetches != want {
		t.Errorf("fetches = %d, want %d", s.Fetches, want)
	}
	if s.PhysicalReads != npages {
		t.Errorf("physical reads = %d, want exactly %d (one per page)", s.PhysicalReads, npages)
	}
	if s.Hits != want-npages {
		t.Errorf("hits = %d, want %d", s.Hits, want-npages)
	}
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", s.Evictions)
	}
}
