package pagestore

import (
	"bytes"
	"math/rand"
	"testing"
)

// lzRoundTrip compresses src and decompresses it back, failing the test
// on any mismatch. Returns the compressed length.
func lzRoundTrip(t *testing.T, c Codec, src []byte) int {
	t.Helper()
	comp := c.Compress(nil, src)
	got := make([]byte, len(src))
	if err := c.Decompress(got, comp); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d compressed", len(src), len(comp))
	}
	return len(comp)
}

func TestLZRoundTrip(t *testing.T) {
	c := LZ()
	rng := rand.New(rand.NewSource(42))

	t.Run("empty", func(t *testing.T) {
		if n := lzRoundTrip(t, c, nil); n != 0 {
			t.Errorf("empty input compressed to %d bytes", n)
		}
	})
	t.Run("zeros", func(t *testing.T) {
		src := make([]byte, 8192)
		n := lzRoundTrip(t, c, src)
		if n > len(src)/10 {
			t.Errorf("zero page compressed to %d bytes, want < %d", n, len(src)/10)
		}
	})
	t.Run("structured", func(t *testing.T) {
		// B+tree-leaf-like data: repeated key prefixes with small
		// varying suffixes — the shape real pages have.
		var src []byte
		for i := 0; src == nil || len(src) < 8000; i++ {
			src = append(src, []byte("article/author/0000")...)
			src = append(src, byte(i), byte(i>>8), 0, 0)
		}
		n := lzRoundTrip(t, c, src)
		if n > len(src)/2 {
			t.Errorf("structured page compressed to %d/%d bytes, want < half", n, len(src))
		}
	})
	t.Run("random", func(t *testing.T) {
		src := make([]byte, 8192)
		rng.Read(src)
		lzRoundTrip(t, c, src) // incompressible, but must round-trip
	})
	t.Run("short", func(t *testing.T) {
		for n := 1; n < 16; n++ {
			src := make([]byte, n)
			rng.Read(src)
			lzRoundTrip(t, c, src)
		}
	})
	t.Run("runs", func(t *testing.T) {
		// Overlapping matches: long single-byte and two-byte runs.
		src := append(bytes.Repeat([]byte{7}, 4096), bytes.Repeat([]byte{1, 2}, 2048)...)
		lzRoundTrip(t, c, src)
	})
	t.Run("sizes", func(t *testing.T) {
		for _, n := range []int{127, 128, 129, 255, 256, 257, 511, 4095, 8187} {
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(i % 97)
			}
			lzRoundTrip(t, c, src)
		}
	})
}

func TestLZDecompressCorrupt(t *testing.T) {
	c := LZ()
	src := []byte("the quick brown fox jumps over the quick brown dog")
	comp := c.Compress(nil, src)
	dst := make([]byte, len(src))

	// Truncations at every point must error, never panic.
	for i := 0; i < len(comp); i++ {
		if err := c.Decompress(dst, comp[:i]); err == nil {
			t.Errorf("truncated stream (%d/%d bytes) decompressed cleanly", i, len(comp))
		}
	}
	// Wrong output sizes.
	if err := c.Decompress(make([]byte, len(src)-1), comp); err == nil {
		t.Error("short dst decompressed cleanly")
	}
	if err := c.Decompress(make([]byte, len(src)+1), comp); err == nil {
		t.Error("long dst decompressed cleanly")
	}
	// Invalid match offsets: a match token before any output exists.
	bad := []byte{0x80, 1, 0}
	if err := c.Decompress(make([]byte, 4), bad); err == nil {
		t.Error("match before output decompressed cleanly")
	}
	// Zero offset.
	bad = []byte{0x00, 'x', 0x80, 0, 0}
	if err := c.Decompress(make([]byte, 5), bad); err == nil {
		t.Error("zero-offset match decompressed cleanly")
	}
}

func FuzzLZDecompress(f *testing.F) {
	c := LZ()
	f.Add([]byte{}, 16)
	f.Add([]byte{0x00, 'x'}, 1)
	f.Add([]byte{0x80, 1, 0}, 8)
	f.Add(c.Compress(nil, bytes.Repeat([]byte("ab"), 64)), 128)
	f.Fuzz(func(t *testing.T, comp []byte, size int) {
		if size < 0 || size > 1<<16 {
			return
		}
		dst := make([]byte, size)
		_ = c.Decompress(dst, comp) // must not panic or write out of bounds
	})
}

func FuzzLZRoundTrip(f *testing.F) {
	c := LZ()
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 512))
	f.Fuzz(func(t *testing.T, src []byte) {
		comp := c.Compress(nil, src)
		got := make([]byte, len(src))
		if err := c.Decompress(got, comp); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// TestStoreWithCodec exercises the compressed slot path end to end:
// write pages through the pool, evict, flush, and read them back.
func TestStoreWithCodec(t *testing.T) {
	st, err := CreateTemp(Options{PageSize: 512, PoolPages: 4, Shards: 1, Codec: LZ()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if got, want := st.PageSize(), 512-codecHeaderLen; got != want {
		t.Fatalf("PageSize() = %d, want %d", got, want)
	}
	if st.CodecName() != "lz" {
		t.Fatalf("CodecName() = %q, want lz", st.CodecName())
	}

	// Page images: compressible, incompressible, zero.
	rng := rand.New(rand.NewSource(7))
	images := make([][]byte, 16)
	for i := range images {
		img := make([]byte, st.PageSize())
		switch i % 3 {
		case 0:
			for j := range img {
				img[j] = byte(i)
			}
		case 1:
			rng.Read(img)
		}
		images[i] = img
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), img)
		st.Unpin(p, true)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	for i, img := range images {
		p, err := st.Fetch(PageID(i))
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !bytes.Equal(p.Data(), img) {
			t.Errorf("page %d differs after codec round trip", i)
		}
		st.Unpin(p, false)
	}
	stats := st.Stats()
	if stats.UncompressedBytes == 0 || stats.CompressedBytes == 0 {
		t.Errorf("codec counters not recorded: %+v", stats)
	}
	if stats.CompressionRatio() >= 1 {
		t.Errorf("mixed workload ratio %.2f, want < 1", stats.CompressionRatio())
	}
}

// TestStoreCodecReopen validates the on-disk layout: the file is a
// multiple of the slot size and survives a close/open cycle.
func TestStoreCodecReopen(t *testing.T) {
	path := t.TempDir() + "/codec.db"
	opts := Options{PageSize: 512, PoolPages: 8, Codec: LZ()}
	st, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte("posting"), 80)[:st.PageSize()]
	for i := 0; i < 5; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), img)
		st.Unpin(p, true)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", st.NumPages())
	}
	for i := 0; i < 5; i++ {
		p, err := st.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data(), img) {
			t.Errorf("page %d differs after reopen", i)
		}
		st.Unpin(p, false)
	}
}
