package pagestore

// HeapCursor is a pull-style reader over a heap's record chain: where
// Heap.Scan pushes every record through a callback in one call, a
// cursor yields records one at a time, holding only the current page
// pinned. Blocking operators that merge several spilled runs need this
// shape — k cursors advance independently, one pinned page each.
type HeapCursor struct {
	st   *Store
	page *Page
	sp   SlottedPage
	slot int
	next PageID
	err  error
	done bool
}

// NewHeapCursor opens a cursor at the start of the heap rooted at
// first (Heap.FirstPage).
func NewHeapCursor(st *Store, first PageID) *HeapCursor {
	return &HeapCursor{st: st, next: first, slot: -1}
}

// Next returns the next live record, or ok=false at the end of the
// chain (or on error — check Err). The returned slice aliases the
// pinned page and is valid only until the following Next or Close.
func (c *HeapCursor) Next() (rec []byte, ok bool) {
	if c.done || c.err != nil {
		return nil, false
	}
	for {
		if c.page == nil {
			if c.next == InvalidPage {
				c.done = true
				return nil, false
			}
			p, err := c.st.Fetch(c.next)
			if err != nil {
				c.err = err
				c.done = true
				return nil, false
			}
			c.page = p
			c.sp = ViewSlotted(p)
			c.slot = -1
			c.next = c.sp.Next()
		}
		c.slot++
		if c.slot >= c.sp.NumSlots() {
			if err := c.st.Release(c.page, false); err != nil && c.err == nil {
				c.err = err
			}
			c.page = nil
			continue
		}
		if !c.sp.Live(Slot(c.slot)) {
			continue
		}
		rec, err := c.sp.Read(Slot(c.slot))
		if err != nil {
			c.err = err
			c.done = true
			return nil, false
		}
		return rec, true
	}
}

// Err reports the first error the cursor hit, if any.
func (c *HeapCursor) Err() error { return c.err }

// Close releases the cursor's pinned page and returns the cursor's
// first error, including a pin-release fault. Idempotent.
func (c *HeapCursor) Close() error {
	if c.page != nil {
		if err := c.st.Release(c.page, false); err != nil && c.err == nil {
			c.err = err
		}
		c.page = nil
	}
	c.done = true
	return c.err
}
