package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tempStore(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := CreateTemp(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !st.closed.Load() {
			if err := st.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	})
	return st
}

func TestOptionsDefaults(t *testing.T) {
	st := tempStore(t, Options{})
	// The usable page is the slot minus the checksummed framing header.
	if st.PageSize() != DefaultPageSize-slotHeaderLen {
		t.Errorf("PageSize = %d, want %d", st.PageSize(), DefaultPageSize-slotHeaderLen)
	}
	if st.SlotSize() != DefaultPageSize {
		t.Errorf("SlotSize = %d, want %d", st.SlotSize(), DefaultPageSize)
	}
	if st.PoolPages() != 4096 {
		t.Errorf("PoolPages = %d, want 4096", st.PoolPages())
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := CreateTemp(Options{PageSize: 64}); err == nil {
		t.Error("page size 64 should be rejected")
	}
	if _, err := CreateTemp(Options{PoolPages: -1}); err == nil {
		t.Error("negative pool should be rejected")
	}
}

func TestAllocateFetchRoundTrip(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 4})
	p, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data(), []byte("hello world"))
	st.Unpin(p, true)

	q, err := st.Fetch(p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Data(), []byte("hello world")) {
		t.Error("fetched page lost data")
	}
	st.Unpin(q, false)
}

func TestFetchOutOfRange(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256})
	if _, err := st.Fetch(0); err == nil {
		t.Error("fetch of unallocated page should fail")
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 2})
	const n = 10
	ids := make([]PageID, n)
	for i := 0; i < n; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i + 1)
		ids[i] = p.ID()
		st.Unpin(p, true)
	}
	// With a 2-page pool, most pages were evicted. Read them all back.
	for i, id := range ids {
		p, err := st.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data()[0] != byte(i+1) {
			t.Errorf("page %d byte = %d, want %d", id, p.Data()[0], i+1)
		}
		st.Unpin(p, false)
	}
	s := st.Stats()
	if s.Evictions == 0 {
		t.Error("expected evictions with tiny pool")
	}
	if s.PhysicalReads == 0 {
		t.Error("expected physical reads after eviction")
	}
}

func TestPoolExhausted(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 2})
	p1, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Allocate(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("third pinned allocate: err = %v, want ErrPoolExhausted", err)
	}
	st.Unpin(p1, false)
	p3, err := st.Allocate()
	if err != nil {
		t.Errorf("allocate after unpin failed: %v", err)
	} else {
		st.Unpin(p3, false)
	}
	st.Unpin(p2, false)
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256})
	p, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	st.Unpin(p, false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin should panic")
		}
	}()
	st.Unpin(p, false)
}

func TestLRUOrder(t *testing.T) {
	// One shard = one global LRU, so eviction order is exact.
	st := tempStore(t, Options{PageSize: 256, PoolPages: 2, Shards: 1})
	a, _ := st.Allocate()
	st.Unpin(a, true)
	b, _ := st.Allocate()
	st.Unpin(b, true)
	// Touch a so that b is the LRU victim.
	p, err := st.Fetch(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	st.Unpin(p, false)
	c, _ := st.Allocate() // must evict b, not a
	st.Unpin(c, true)
	if !st.cached(a.ID()) {
		t.Error("recently used page a was evicted")
	}
	if st.cached(b.ID()) {
		t.Error("LRU page b was not evicted")
	}
}

func TestStatsHitRate(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	p, _ := st.Allocate()
	id := p.ID()
	st.Unpin(p, true)
	for i := 0; i < 9; i++ {
		q, err := st.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		st.Unpin(q, false)
	}
	s := st.Stats()
	if s.Fetches != 9 || s.Hits != 9 {
		t.Errorf("stats = %+v, want 9 fetches, 9 hits", s)
	}
	if s.HitRate() != 1 {
		t.Errorf("hit rate = %f", s.HitRate())
	}
	st.ResetStats()
	if st.Stats().Fetches != 0 {
		t.Error("ResetStats did not zero counters")
	}
	if (Stats{}).HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
	if got := s.String(); got == "" {
		t.Error("Stats.String empty")
	}
}

func TestDropCacheForcesPhysicalReads(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	p, _ := st.Allocate()
	p.Data()[3] = 42
	id := p.ID()
	st.Unpin(p, true)
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	q, err := st.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if q.Data()[3] != 42 {
		t.Error("data lost across DropCache")
	}
	st.Unpin(q, false)
	if st.Stats().PhysicalReads != 1 {
		t.Errorf("reads = %d, want 1", st.Stats().PhysicalReads)
	}
}

func TestDropCacheRefusesPinned(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256})
	p, _ := st.Allocate()
	if err := st.DropCache(); err == nil {
		t.Error("DropCache with pinned page should fail")
	}
	st.Unpin(p, false)
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	st, err := Create(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := st.Allocate()
	copy(p.Data(), []byte("persist me"))
	st.Unpin(p, true)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", st2.NumPages())
	}
	q, err := st2.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(q.Data(), []byte("persist me")) {
		t.Error("data lost across reopen")
	}
	st2.Unpin(q, false)
}

// TestOpenToleratesPartialTail: a crash can leave a torn partial slot
// at the end of the file; Open rounds the page count down to whole
// slots instead of refusing (recovery then discards the fragment).
func TestOpenToleratesPartialTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "odd")
	if err := writeFile(path, make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, Options{PageSize: 256})
	if err != nil {
		t.Fatalf("open with partial tail: %v", err)
	}
	if st.NumPages() != 1 {
		t.Errorf("NumPages = %d, want 1 (partial slot discarded)", st.NumPages())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Error("missing file should be rejected")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func TestClosedStoreErrors(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("Allocate on closed store: %v", err)
	}
	if _, err := st.Fetch(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Fetch on closed store: %v", err)
	}
	if err := st.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush on closed store: %v", err)
	}
	if err := st.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close: %v", err)
	}
}

func TestCloseRefusesPinned(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256})
	p, _ := st.Allocate()
	if err := st.Close(); err == nil {
		t.Error("Close with pinned page should fail")
	}
	st.Unpin(p, false)
}

// TestPoolProperty verifies, against an in-memory oracle, that an
// arbitrary interleaving of allocate/write/fetch/drop operations through
// a tiny pool never loses data.
func TestPoolProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := CreateTemp(Options{PageSize: 128, PoolPages: 3})
		if err != nil {
			return false
		}
		defer st.Close()
		oracle := map[PageID]byte{}
		for op := 0; op < 200; op++ {
			switch r := rng.Intn(10); {
			case r < 3 || len(oracle) == 0: // allocate
				p, err := st.Allocate()
				if err != nil {
					return false
				}
				v := byte(rng.Intn(256))
				p.Data()[5] = v
				oracle[p.ID()] = v
				st.Unpin(p, true)
			case r < 8: // fetch and verify, maybe rewrite
				id := PageID(rng.Intn(int(st.NumPages())))
				p, err := st.Fetch(id)
				if err != nil {
					return false
				}
				if p.Data()[5] != oracle[id] {
					st.Unpin(p, false)
					return false
				}
				dirty := false
				if rng.Intn(2) == 0 {
					v := byte(rng.Intn(256))
					p.Data()[5] = v
					oracle[id] = v
					dirty = true
				}
				st.Unpin(p, dirty)
			case r == 8:
				if err := st.DropCache(); err != nil {
					return false
				}
			default:
				if err := st.Flush(); err != nil {
					return false
				}
			}
		}
		for id, v := range oracle {
			p, err := st.Fetch(id)
			if err != nil {
				return false
			}
			ok := p.Data()[5] == v
			st.Unpin(p, false)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentFetches(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 4})
	const n = 8
	ids := make([]PageID, n)
	for i := range ids {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i)
		ids[i] = p.ID()
		st.Unpin(p, true)
	}
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := ids[rng.Intn(n)]
				p, err := st.Fetch(id)
				if err != nil {
					errc <- err
					return
				}
				if p.Data()[0] != byte(id) {
					errc <- fmt.Errorf("page %d holds %d", id, p.Data()[0])
					st.Unpin(p, false)
					return
				}
				st.Unpin(p, false)
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}
