package pagestore

import (
	"encoding/binary"
	"fmt"
)

// This file implements the slotted-page record layout used by heap files
// and the B+tree. A slotted page has a fixed header, a slot directory
// growing upward after the header, and record bodies growing downward
// from the end of the page:
//
//	+-----------+-----------------+......... free .........+---------+
//	| header    | slot0 slot1 ... |                        | recs... |
//	+-----------+-----------------+........................+---------+
//
// Header layout (10 bytes):
//
//	[0:2)  numSlots   uint16
//	[2:4)  freeStart  uint16  (first byte past the slot directory)
//	[4:6)  freeEnd    uint16  (first byte of the lowest record)
//	[6:10) next       PageID  (chain link for heap files; InvalidPage if none)
//
// Each slot is 4 bytes: record offset uint16, record length uint16. A
// tombstoned slot has offset 0xFFFF.

const (
	slottedHeaderSize = 10
	slotSize          = 4
	tombstoneOff      = 0xFFFF
)

// Slot is a record index within a slotted page.
type Slot uint16

// RID is a record identifier: a page plus a slot within it.
type RID struct {
	Page PageID
	Slot Slot
}

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// SlottedPage is a view over a pinned page's bytes interpreted with the
// slotted layout. It performs no pinning itself; the caller must hold
// the page pinned for the lifetime of the view and mark it dirty after
// mutating calls.
type SlottedPage struct {
	data []byte
}

// ViewSlotted interprets the page's bytes as a slotted page. The page
// must previously have been initialized with InitSlotted.
func ViewSlotted(p *Page) SlottedPage { return SlottedPage{data: p.Data()} }

// InitSlotted formats the page as an empty slotted page with no chain
// link and returns the view.
func InitSlotted(p *Page) SlottedPage {
	sp := SlottedPage{data: p.Data()}
	sp.setNumSlots(0)
	sp.setFreeStart(slottedHeaderSize)
	sp.setFreeEnd(uint16(len(sp.data)))
	sp.SetNext(InvalidPage)
	return sp
}

func (sp SlottedPage) numSlots() uint16      { return binary.LittleEndian.Uint16(sp.data[0:2]) }
func (sp SlottedPage) setNumSlots(v uint16)  { binary.LittleEndian.PutUint16(sp.data[0:2], v) }
func (sp SlottedPage) freeStart() uint16     { return binary.LittleEndian.Uint16(sp.data[2:4]) }
func (sp SlottedPage) setFreeStart(v uint16) { binary.LittleEndian.PutUint16(sp.data[2:4], v) }
func (sp SlottedPage) freeEnd() uint16       { return binary.LittleEndian.Uint16(sp.data[4:6]) }
func (sp SlottedPage) setFreeEnd(v uint16)   { binary.LittleEndian.PutUint16(sp.data[4:6], v) }

// Next returns the chained next page, or InvalidPage.
func (sp SlottedPage) Next() PageID { return PageID(binary.LittleEndian.Uint32(sp.data[6:10])) }

// SetNext sets the chained next page.
func (sp SlottedPage) SetNext(id PageID) { binary.LittleEndian.PutUint32(sp.data[6:10], uint32(id)) }

// NumSlots returns the number of slots in the directory, including
// tombstones.
func (sp SlottedPage) NumSlots() int { return int(sp.numSlots()) }

// FreeSpace returns the number of bytes available for a new record,
// accounting for the slot directory entry it would need.
func (sp SlottedPage) FreeSpace() int {
	free := int(sp.freeEnd()) - int(sp.freeStart()) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecord returns the largest record insertable into an empty slotted
// page of the given page size.
func MaxRecord(pageSize int) int { return pageSize - slottedHeaderSize - slotSize }

// Insert appends a record to the page, returning its slot. ok is false
// if the page lacks space. Records of length 0 are allowed.
func (sp SlottedPage) Insert(rec []byte) (Slot, bool) {
	// Check the raw gap, not FreeSpace: FreeSpace clamps to 0 when the
	// gap is smaller than a slot entry, which would let a zero-length
	// record pass the check and write its directory entry over the
	// lowest record's bytes.
	if len(rec)+slotSize > int(sp.freeEnd())-int(sp.freeStart()) {
		return 0, false
	}
	n := sp.numSlots()
	newEnd := sp.freeEnd() - uint16(len(rec))
	copy(sp.data[newEnd:], rec)
	slotOff := slottedHeaderSize + int(n)*slotSize
	binary.LittleEndian.PutUint16(sp.data[slotOff:], newEnd)
	binary.LittleEndian.PutUint16(sp.data[slotOff+2:], uint16(len(rec)))
	sp.setNumSlots(n + 1)
	sp.setFreeStart(uint16(slotOff + slotSize))
	sp.setFreeEnd(newEnd)
	return Slot(n), true
}

// Read returns the record stored in the slot. The returned slice aliases
// the page buffer; callers that retain it past the pin must copy.
func (sp SlottedPage) Read(s Slot) ([]byte, error) {
	if int(s) >= int(sp.numSlots()) {
		return nil, fmt.Errorf("pagestore: slot %d out of range (%d slots)", s, sp.numSlots())
	}
	slotOff := slottedHeaderSize + int(s)*slotSize
	off := binary.LittleEndian.Uint16(sp.data[slotOff:])
	length := binary.LittleEndian.Uint16(sp.data[slotOff+2:])
	if off == tombstoneOff {
		return nil, fmt.Errorf("pagestore: slot %d is deleted", s)
	}
	return sp.data[off : off+length], nil
}

// Delete tombstones the slot. The record's bytes are not compacted; slot
// numbers of other records are stable.
func (sp SlottedPage) Delete(s Slot) error {
	if int(s) >= int(sp.numSlots()) {
		return fmt.Errorf("pagestore: slot %d out of range (%d slots)", s, sp.numSlots())
	}
	slotOff := slottedHeaderSize + int(s)*slotSize
	binary.LittleEndian.PutUint16(sp.data[slotOff:], tombstoneOff)
	return nil
}

// Live reports whether the slot holds a record (false for tombstones and
// out-of-range slots).
func (sp SlottedPage) Live(s Slot) bool {
	if int(s) >= int(sp.numSlots()) {
		return false
	}
	slotOff := slottedHeaderSize + int(s)*slotSize
	return binary.LittleEndian.Uint16(sp.data[slotOff:]) != tombstoneOff
}
