package pagestore

import (
	"errors"
	"sync"
)

// lz is the built-in page codec: a byte-oriented LZ77 compressor in the
// lz4/snappy family, implemented in-repo so the store has a compression
// fallback without any dependency. The format is a token stream:
//
//	control c in 0x00..0x7f: a literal run of c+1 bytes follows
//	control c in 0x80..0xff: a match of length (c & 0x7f) + 4, copied
//	    from offset (u16 little endian, 1..65535 bytes back in the
//	    output); the two offset bytes follow the control byte
//
// Matches need at least lzMinMatch bytes, so a match token (3 bytes)
// never loses to the literals it replaces. The compressor is a greedy
// single-pass hash-table matcher — the standard fast-LZ shape: good
// ratios on the page images it sees (B+tree nodes full of shared key
// prefixes, slotted pages of similar records), speed bounded by one
// table probe per input byte.
const (
	lzMinMatch  = 4
	lzMaxMatch  = 0x7f + lzMinMatch // 131: what one control byte can say
	lzMaxOffset = 1<<16 - 1
	lzTableBits = 12
	lzTableSize = 1 << lzTableBits
)

var errLZCorrupt = errors.New("pagestore: corrupt lz stream")

type lzCodec struct {
	tables sync.Pool // of *[lzTableSize]int32
}

// LZ returns the built-in LZ77 page codec. The returned codec is safe
// for concurrent use and may be shared between stores.
func LZ() Codec {
	c := &lzCodec{}
	c.tables.New = func() any { return new([lzTableSize]int32) }
	return c
}

func (c *lzCodec) Name() string { return "lz" }

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func lzHash(v uint32) uint32 { return (v * 2654435761) >> (32 - lzTableBits) }

// appendLiterals emits src as literal runs of at most 128 bytes each.
func appendLiterals(dst, src []byte) []byte {
	for len(src) > 0 {
		n := len(src)
		if n > 128 {
			n = 128
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, src[:n]...)
		src = src[n:]
	}
	return dst
}

func (c *lzCodec) Compress(dst, src []byte) []byte {
	table := c.tables.Get().(*[lzTableSize]int32)
	clear(table[:])
	// Table entries store position+1 so the zeroed table means "empty".
	lit := 0
	i := 0
	limit := len(src) - lzMinMatch
	for i <= limit {
		v := lzLoad32(src, i)
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > lzMaxOffset || lzLoad32(src, cand) != v {
			i++
			continue
		}
		mlen := lzMinMatch
		for i+mlen < len(src) && mlen < lzMaxMatch && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst = appendLiterals(dst, src[lit:i])
		off := i - cand
		dst = append(dst, 0x80|byte(mlen-lzMinMatch), byte(off), byte(off>>8))
		// Index the matched region so the next match can start inside it
		// (runs and periodic data chain from match to match).
		end := i + mlen
		for j := i + 1; j < end && j <= limit; j++ {
			table[lzHash(lzLoad32(src, j))] = int32(j + 1)
		}
		i = end
		lit = end
	}
	dst = appendLiterals(dst, src[lit:])
	c.tables.Put(table)
	return dst
}

func (c *lzCodec) Decompress(dst, src []byte) error {
	d, s := 0, 0
	for s < len(src) {
		ctrl := src[s]
		s++
		if ctrl < 0x80 {
			n := int(ctrl) + 1
			if s+n > len(src) || d+n > len(dst) {
				return errLZCorrupt
			}
			copy(dst[d:], src[s:s+n])
			s += n
			d += n
			continue
		}
		if s+2 > len(src) {
			return errLZCorrupt
		}
		mlen := int(ctrl&0x7f) + lzMinMatch
		off := int(src[s]) | int(src[s+1])<<8
		s += 2
		if off == 0 || off > d || d+mlen > len(dst) {
			return errLZCorrupt
		}
		if off >= mlen {
			// Disjoint source: one memmove. This is the hot path — a
			// byte loop here dominates page-fault cost under a cold pool.
			copy(dst[d:d+mlen], dst[d-off:])
			d += mlen
			continue
		}
		// Overlapping match (off < mlen encodes a repeating run): the
		// readable source grows as output is produced, so copy in
		// geometrically widening chunks (off, 2·off, 4·off, ...).
		pos := d - off
		n := copy(dst[d:d+mlen], dst[pos:d])
		for n < mlen {
			n += copy(dst[d+n:d+mlen], dst[pos:d+n])
		}
		d += mlen
	}
	if d != len(dst) {
		return errLZCorrupt
	}
	return nil
}
