package pagestore

// Per-page compression. A store created with Options.Codec writes each
// page through the codec: the on-disk slot keeps the configured
// PageSize (so page offsets stay a multiplication), but its payload is
// the compressed page image behind a small header, and the in-memory
// page the layers above see is codecHeaderLen bytes narrower. The
// fixed slot means compression never moves a page — it shrinks the
// bytes that cross the disk boundary (and the counters expose by how
// much), not the file's address math.
//
// Slot layout with a codec:
//
//	[0]    flag: 0 = raw page image, 1 = compressed
//	[1:5)  compressed payload length (little endian; 0 when raw)
//	[5:]   payload — the compressed image, or the raw page when the
//	       codec failed to shrink it (incompressible data never
//	       expands on disk)
//
// A hole in the file (a slot allocated but never written) reads back
// as zeros: flag 0, a zero raw page — exactly what an uncompressed
// store returns for a never-written page.

// codecHeaderLen is the per-slot framing overhead when a codec is set:
// one flag byte plus the u32 compressed length.
const codecHeaderLen = 5

const (
	slotFlagRaw        = 0
	slotFlagCompressed = 1
)

// Codec is a byte-oriented page compressor. Compress appends the
// compressed form of src to dst and returns the extended slice;
// Decompress fills dst exactly from the compressed src. A codec must
// round-trip any input (including incompressible data, where Compress
// may return something longer than src — the store falls back to a raw
// slot in that case). Implementations must be safe for concurrent use:
// the sharded buffer pool compresses evicted pages from multiple
// goroutines.
type Codec interface {
	// Name identifies the codec in metadata and metrics.
	Name() string
	// Compress appends the compressed src to dst.
	Compress(dst, src []byte) []byte
	// Decompress decodes src into dst, which must have exactly the
	// original length. Any framing violation returns an error.
	Decompress(dst, src []byte) error
}

// CodecName returns the configured codec's name, or "" when the store
// is uncompressed.
func (s *Store) CodecName() string {
	if s.codec == nil {
		return ""
	}
	return s.codec.Name()
}
