package pagestore

import "hash/crc32"

// Slot framing and per-page compression. Every on-disk page is a
// fixed-size slot of the configured PageSize: offsets stay a
// multiplication, compression shrinks the bytes that cross the disk
// boundary, never the file's address math. Since format v3 each slot
// carries a checksummed header whether or not a codec is configured,
// so a torn or bit-rotted page is detected at read time instead of
// being silently decoded into corrupt records:
//
//	[0]    flag: 0 = raw page image, 1 = compressed
//	[1:5)  payload length (little endian). Raw slots store the full
//	       usable page size — always nonzero — so an all-zero header
//	       is unambiguously a hole (a slot allocated but never
//	       written), which reads as a zero page with no checksum.
//	[5:9)  CRC-32C (Castagnoli) of the payload — the compressed bytes
//	       for compressed slots, the raw page image for raw slots.
//	[9:]   payload
//
// The usable in-memory page the layers above see is therefore always
// slotHeaderLen bytes narrower than the on-disk slot.

// slotHeaderLen is the per-slot framing overhead: flag byte, u32
// payload length, u32 CRC-32C.
const slotHeaderLen = 9

// SlotHeaderLen exports the per-slot framing overhead for layers that
// read slots directly from the file (the storage metadata sniff).
const SlotHeaderLen = slotHeaderLen

// codecHeaderLen is kept as an alias for the framing overhead; v2
// files used a 5-byte header with no checksum and are detected by the
// storage layer's format sniff, not here.
const codecHeaderLen = slotHeaderLen

const (
	slotFlagRaw        = 0
	slotFlagCompressed = 1
)

// castagnoli is the CRC-32C table used for every slot checksum
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func slotCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// putSlotHeader stamps flag, payload length and checksum into the
// first slotHeaderLen bytes of slot.
func putSlotHeader(slot []byte, flag byte, clen int, crc uint32) {
	slot[0] = flag
	slot[1] = byte(clen)
	slot[2] = byte(clen >> 8)
	slot[3] = byte(clen >> 16)
	slot[4] = byte(clen >> 24)
	slot[5] = byte(crc)
	slot[6] = byte(crc >> 8)
	slot[7] = byte(crc >> 16)
	slot[8] = byte(crc >> 24)
}

// slotHeader decodes the slot framing header.
func slotHeader(slot []byte) (flag byte, clen int, crc uint32) {
	flag = slot[0]
	clen = int(uint32(slot[1]) | uint32(slot[2])<<8 | uint32(slot[3])<<16 | uint32(slot[4])<<24)
	crc = uint32(slot[5]) | uint32(slot[6])<<8 | uint32(slot[7])<<16 | uint32(slot[8])<<24
	return flag, clen, crc
}

// Codec is a byte-oriented page compressor. Compress appends the
// compressed form of src to dst and returns the extended slice;
// Decompress fills dst exactly from the compressed src. A codec must
// round-trip any input (including incompressible data, where Compress
// may return something longer than src — the store falls back to a raw
// slot in that case). Implementations must be safe for concurrent use:
// the sharded buffer pool compresses evicted pages from multiple
// goroutines.
type Codec interface {
	// Name identifies the codec in metadata and metrics.
	Name() string
	// Compress appends the compressed src to dst.
	Compress(dst, src []byte) []byte
	// Decompress decodes src into dst, which must have exactly the
	// original length. Any framing violation returns an error.
	Decompress(dst, src []byte) error
}

// CodecName returns the configured codec's name, or "" when the store
// is uncompressed.
func (s *Store) CodecName() string {
	if s.codec == nil {
		return ""
	}
	return s.codec.Name()
}
