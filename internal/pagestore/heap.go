package pagestore

import "fmt"

// Heap is an append-oriented record file over a chain of slotted pages.
// The data manager stores node records in heaps; record identifiers
// (RIDs) are stable for the life of the heap. A heap is identified by
// its first page, which the metadata manager persists.
type Heap struct {
	st    *Store
	first PageID
	last  PageID
	raw   bool
	// tracked, when tracking is on, accumulates every page the heap
	// allocates (chained tail pages, cut tails) so a transaction can
	// log their images and reclaim them on abort.
	tracking bool
	tracked  []PageID
}

// SetRaw excludes the heap's pages from the store's page codec: the
// insertion page and every page chained from now on are written raw.
// Record heaps hold payloads the upper layers already varint-encode,
// and their access pattern (random point reads during late
// materialization) makes per-fetch decompression the dominant cost —
// while fixed-size slots mean compressing them saves no disk space.
// Call it right after NewHeap/OpenHeap, before inserts.
func (h *Heap) SetRaw() {
	h.raw = true
	h.st.SetRawPage(h.last)
}

// NewHeap allocates a fresh heap in the store.
func NewHeap(st *Store) (*Heap, error) {
	p, err := st.Allocate()
	if err != nil {
		return nil, fmt.Errorf("pagestore: new heap: %w", err)
	}
	InitSlotted(p)
	st.Unpin(p, true)
	return &Heap{st: st, first: p.ID(), last: p.ID()}, nil
}

// OpenHeap reopens a heap whose first page is known, walking the chain
// to find the insertion point.
func OpenHeap(st *Store, first PageID) (*Heap, error) {
	last := first
	for {
		p, err := st.Fetch(last)
		if err != nil {
			return nil, fmt.Errorf("pagestore: open heap: %w", err)
		}
		next := ViewSlotted(p).Next()
		st.Unpin(p, false)
		if next == InvalidPage {
			break
		}
		last = next
	}
	return &Heap{st: st, first: first, last: last}, nil
}

// OpenHeapAt reopens a heap whose first and last pages are both known
// (from committed metadata), skipping OpenHeap's chain walk. The
// durable open path uses it: after a crash the chain's tail links may
// run past the committed state, so walking them would resurrect
// uncommitted pages.
func OpenHeapAt(st *Store, first, last PageID) *Heap {
	return &Heap{st: st, first: first, last: last}
}

// FirstPage returns the identifier of the heap's first page.
func (h *Heap) FirstPage() PageID { return h.first }

// LastPage returns the identifier of the heap's current insertion page.
func (h *Heap) LastPage() PageID { return h.last }

// Track makes the heap record every page it allocates from now on;
// TakeTracked drains the record. Ingest transactions use the pair to
// learn which pages need logging.
func (h *Heap) Track() {
	h.tracking = true
	h.tracked = h.tracked[:0]
}

// TakeTracked returns the pages allocated since Track and stops
// tracking.
func (h *Heap) TakeTracked() []PageID {
	h.tracking = false
	out := h.tracked
	h.tracked = nil
	return out
}

// CutTail seals the heap's current insertion page and starts a fresh
// one, returning the sealed page and the new tail. Unlike Insert's
// chaining, CutTail does NOT link the sealed page to the new one — the
// caller owns that link (an ingest transaction defers it until its WAL
// records are durable, so concurrent readers walking the committed
// chain never see uncommitted pages, and no committed page's bytes are
// touched while unpinned readers may hold it).
func (h *Heap) CutTail() (sealed, fresh PageID, err error) {
	np, err := h.st.Allocate()
	if err != nil {
		return InvalidPage, InvalidPage, fmt.Errorf("pagestore: cut tail: %w", err)
	}
	if h.raw {
		h.st.SetRawPage(np.ID())
	}
	InitSlotted(np)
	h.st.Unpin(np, true)
	sealed = h.last
	h.last = np.ID()
	if h.tracking {
		h.tracked = append(h.tracked, np.ID())
	}
	return sealed, h.last, nil
}

// Insert appends a record and returns its RID. Records larger than
// MaxRecord(pageSize) are rejected.
func (h *Heap) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxRecord(h.st.PageSize()) {
		return RID{}, fmt.Errorf("pagestore: record of %d bytes exceeds page capacity %d",
			len(rec), MaxRecord(h.st.PageSize()))
	}
	p, err := h.st.Fetch(h.last)
	if err != nil {
		return RID{}, err
	}
	sp := ViewSlotted(p)
	if slot, ok := sp.Insert(rec); ok {
		rid := RID{Page: p.ID(), Slot: slot}
		h.st.Unpin(p, true)
		return rid, nil
	}
	// Current tail is full: chain a new page.
	np, err := h.st.Allocate()
	if err != nil {
		h.st.Unpin(p, false)
		return RID{}, err
	}
	if h.raw {
		h.st.SetRawPage(np.ID())
	}
	if h.tracking {
		h.tracked = append(h.tracked, np.ID())
	}
	nsp := InitSlotted(np)
	sp.SetNext(np.ID())
	h.st.Unpin(p, true)
	slot, ok := nsp.Insert(rec)
	if !ok {
		h.st.Unpin(np, true)
		return RID{}, fmt.Errorf("pagestore: record of %d bytes does not fit an empty page", len(rec))
	}
	rid := RID{Page: np.ID(), Slot: slot}
	h.last = np.ID()
	h.st.Unpin(np, true)
	return rid, nil
}

// Get copies out the record stored at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	p, err := h.st.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.st.Unpin(p, false)
	rec, err := ViewSlotted(p).Read(rid.Slot)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// View calls fn with the record bytes at rid while the page is pinned.
// fn must not retain the slice. View avoids Get's copy on hot paths.
func (h *Heap) View(rid RID, fn func(rec []byte) error) error {
	p, err := h.st.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.st.Unpin(p, false)
	rec, err := ViewSlotted(p).Read(rid.Slot)
	if err != nil {
		return err
	}
	return fn(rec)
}

// Pages walks the heap's page chain and returns its length. Size
// reporting only — it fetches every page in the chain.
func (h *Heap) Pages() (uint32, error) {
	var n uint32
	id := h.first
	for id != InvalidPage {
		p, err := h.st.Fetch(id)
		if err != nil {
			return n, err
		}
		next := ViewSlotted(p).Next()
		h.st.Unpin(p, false)
		n++
		id = next
	}
	return n, nil
}

// Scan visits every live record in the heap in (page, slot) order. The
// record slice passed to fn is only valid during the call. If fn returns
// an error the scan stops and returns it.
func (h *Heap) Scan(fn func(rid RID, rec []byte) error) error {
	id := h.first
	for id != InvalidPage {
		p, err := h.st.Fetch(id)
		if err != nil {
			return err
		}
		sp := ViewSlotted(p)
		for s := 0; s < sp.NumSlots(); s++ {
			if !sp.Live(Slot(s)) {
				continue
			}
			rec, err := sp.Read(Slot(s))
			if err != nil {
				h.st.Unpin(p, false)
				return err
			}
			if err := fn(RID{Page: id, Slot: Slot(s)}, rec); err != nil {
				h.st.Unpin(p, false)
				return err
			}
		}
		next := sp.Next()
		h.st.Unpin(p, false)
		id = next
	}
	return nil
}
