// Package pagestore implements a paged, disk-backed storage manager with
// a pinned buffer pool. It plays the role that the Shore storage manager
// plays in TIMBER (Sec. 5.1 of the paper): disk and memory management
// for the data, index and metadata managers layered above it.
//
// The store reads and writes fixed-size pages (8 KB by default, the page
// size used in the paper's experiments) through a buffer pool of bounded
// capacity (32 MB in the paper) with LRU replacement. All physical and
// logical I/O is counted, so the experiment harness can report buffer
// behaviour alongside wall-clock time.
//
// The buffer pool is sharded for concurrency: pages hash to one of N
// shards, each with its own mutex, frame table and LRU list, so
// concurrent readers on different shards never contend. Counters are
// atomic. See DESIGN.md "Concurrency model".
//
// Every slot carries a CRC-32C checksum (codec.go), so torn writes from
// a crash surface as checksum errors instead of silently decoded
// garbage; SlotImage/RestoreSlot expose the framed page images a
// write-ahead log needs for redo.
//
// Two record-level abstractions are built on top of raw pages:
// slotted pages (slotted.go) and heap files (heap.go).
package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPageSize is the page size used by the paper's experiments.
const DefaultPageSize = 8192

// DefaultShards is the default buffer pool shard count (clamped so that
// every shard holds at least one frame).
const DefaultShards = 16

// PageID identifies a page within a store. Pages are numbered densely
// from 0 in allocation order.
type PageID uint32

// InvalidPage is a sentinel PageID that no allocated page ever has.
const InvalidPage = PageID(^uint32(0))

// File is the byte-addressed backing of a Store: the subset of
// *os.File behaviour the buffer pool needs, abstracted so
// crash-injection tests can substitute an implementation that models
// torn writes and lost unsynced data. ReadAt follows io.ReaderAt
// semantics (a short read at the tail returns io.EOF); WriteAt must
// extend the file when writing past its end.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// osFile adapts *os.File to the File interface.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// OSFile adapts an *os.File to the File interface, for callers (the
// WAL, recovery tooling) that layer on the same backing abstraction.
func OSFile(f *os.File) File { return osFile{f} }

// FsyncDir syncs a directory so a just-created, renamed or removed
// entry in it survives a crash. Creating a file and syncing its data
// is not enough — the directory entry itself lives in the parent and
// needs its own fsync before recovery can rely on seeing the file.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("pagestore: fsync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("pagestore: fsync dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("pagestore: fsync dir %s: %w", dir, cerr)
	}
	return nil
}

// Options configures a Store.
type Options struct {
	// PageSize is the size of each on-disk page slot in bytes. Defaults
	// to DefaultPageSize. Must be at least 128. The usable in-memory
	// page is slotHeaderLen bytes smaller (see PageSize()).
	PageSize int
	// PoolPages is the buffer pool capacity in pages. Defaults to 4096
	// pages (32 MB at the default page size, matching the paper).
	PoolPages int
	// Shards is the number of buffer pool shards. Defaults to
	// DefaultShards, clamped to PoolPages so each shard holds at least
	// one frame. Shards: 1 reproduces the single-lock pool exactly
	// (one global LRU).
	Shards int
	// Codec enables per-page compression (see codec.go). Every page
	// write records its compressed and uncompressed byte counts in
	// Stats. Must match the codec (or its absence) the file was
	// created with.
	Codec Codec
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = 4096
	}
	if o.Shards == 0 {
		o.Shards = DefaultShards
	}
	if o.Shards > o.PoolPages {
		o.Shards = o.PoolPages
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// Stats counts buffer pool and disk activity since the store was opened
// or since the last ResetStats.
type Stats struct {
	// Fetches is the number of FetchPage calls (logical reads).
	Fetches uint64
	// Hits is the number of fetches satisfied from the pool.
	Hits uint64
	// PhysicalReads is the number of pages read from disk.
	PhysicalReads uint64
	// PhysicalWrites is the number of pages written to disk.
	PhysicalWrites uint64
	// Evictions is the number of pages evicted from the pool.
	Evictions uint64
	// Allocations is the number of pages allocated.
	Allocations uint64
	// FreedPages is the number of pages returned to the allocator with
	// FreePages (whether recycled through the free list or truncated
	// off the file tail).
	FreedPages uint64
	// ChecksumErrors is the number of page reads rejected because the
	// slot checksum did not match its payload — each one is a torn or
	// corrupted page that would previously have decoded silently.
	ChecksumErrors uint64
	// CompressedBytes is the total payload written to disk by page
	// writes under a codec (header plus compressed image, or the full
	// slot for incompressible pages). Zero without a codec.
	CompressedBytes uint64
	// UncompressedBytes is the total uncompressed size of those same
	// page writes; CompressedBytes/UncompressedBytes is the effective
	// write-volume compression ratio.
	UncompressedBytes uint64
}

// HitRate returns the fraction of fetches served from the buffer pool,
// or 1 if there were no fetches.
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// CompressionRatio returns CompressedBytes/UncompressedBytes, or 1
// when no compressed writes happened.
func (s Stats) CompressionRatio() float64 {
	if s.UncompressedBytes == 0 {
		return 1
	}
	return float64(s.CompressedBytes) / float64(s.UncompressedBytes)
}

func (s Stats) String() string {
	out := fmt.Sprintf("fetches=%d hits=%d (%.1f%%) reads=%d writes=%d evictions=%d allocs=%d",
		s.Fetches, s.Hits, 100*s.HitRate(), s.PhysicalReads, s.PhysicalWrites, s.Evictions, s.Allocations)
	if s.UncompressedBytes > 0 {
		out += fmt.Sprintf(" codec=%d/%d (%.1f%%)", s.CompressedBytes, s.UncompressedBytes, 100*s.CompressionRatio())
	}
	if s.ChecksumErrors > 0 {
		out += fmt.Sprintf(" crc-errors=%d", s.ChecksumErrors)
	}
	return out
}

// counters is the atomic backing for Stats. Counters are updated with
// atomic adds on the fetch path, so concurrent readers never serialize
// on a stats lock; Stats() takes per-counter snapshots (individually
// exact, though two counters loaded mid-burst may be from instants a
// few operations apart).
type counters struct {
	fetches           atomic.Uint64
	hits              atomic.Uint64
	physicalReads     atomic.Uint64
	physicalWrites    atomic.Uint64
	evictions         atomic.Uint64
	allocations       atomic.Uint64
	freedPages        atomic.Uint64
	checksumErrors    atomic.Uint64
	compressedBytes   atomic.Uint64
	uncompressedBytes atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Fetches:           c.fetches.Load(),
		Hits:              c.hits.Load(),
		PhysicalReads:     c.physicalReads.Load(),
		PhysicalWrites:    c.physicalWrites.Load(),
		Evictions:         c.evictions.Load(),
		Allocations:       c.allocations.Load(),
		FreedPages:        c.freedPages.Load(),
		ChecksumErrors:    c.checksumErrors.Load(),
		CompressedBytes:   c.compressedBytes.Load(),
		UncompressedBytes: c.uncompressedBytes.Load(),
	}
}

func (c *counters) reset() {
	c.fetches.Store(0)
	c.hits.Store(0)
	c.physicalReads.Store(0)
	c.physicalWrites.Store(0)
	c.evictions.Store(0)
	c.allocations.Store(0)
	c.freedPages.Store(0)
	c.checksumErrors.Store(0)
	c.compressedBytes.Store(0)
	c.uncompressedBytes.Store(0)
}

// ErrPoolExhausted is returned when every frame in the buffer pool
// shard a page hashes to is pinned and the page must be brought in.
var ErrPoolExhausted = errors.New("pagestore: buffer pool exhausted (all frames pinned)")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("pagestore: store is closed")

// ErrChecksum is wrapped by page-read errors caused by a slot whose
// CRC does not match its payload (a torn or corrupted write).
var ErrChecksum = errors.New("pagestore: page checksum mismatch")

// Page is a pinned page in the buffer pool. The caller may read and
// write Data freely while the page is pinned and must call
// Store.Unpin when done, passing dirty=true if Data was modified.
type Page struct {
	id    PageID
	frame *frame
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Data returns the page's in-memory bytes. The slice is valid only while
// the page is pinned.
func (p *Page) Data() []byte { return p.frame.data }

type frame struct {
	id PageID
	// slot is the full on-disk slot image backing the frame; data
	// aliases slot past the slotHeaderLen framing header. Raw slots
	// read and write directly through the frame with no intermediate
	// copy; only actually-compressed slots touch scratch buffers.
	slot    []byte
	data    []byte
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil iff pins == 0 (frame is evictable)
}

// shard is one independently locked slice of the buffer pool. Pages
// hash to shards by ID, so a shard caches only pages with
// id % nshards == index, up to cap frames, evicting LRU within itself.
type shard struct {
	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of *frame; front = least recently used
	cap    int
}

// Store is a paged file with a sharded buffer pool. It is safe for
// concurrent use by multiple goroutines: each page operation takes only
// its shard's lock, disk I/O uses positioned reads/writes, and the
// counters are atomic. Whole-pool operations (DropCache, Truncate,
// Flush, Close) lock every shard and must not race with writers.
type Store struct {
	file     File
	opts     Options
	shards   []shard
	numPages atomic.Uint32
	allocMu  sync.Mutex // serializes page-ID assignment and the free list
	// freeList holds interior page IDs returned by FreePages, popped
	// LIFO by Allocate before the file is extended. In-memory only: a
	// crash forgets it and the pages become unreferenced garbage until
	// the next offline rebuild reclaims them.
	freeList []PageID
	stats    counters
	closed   atomic.Bool

	// codec, when non-nil, compresses page images on write and expands
	// them on read; usable is the in-memory page size the layers above
	// see (opts.PageSize minus the slot header). slotBufs pools
	// scratch buffers for compress output and staged compressed
	// payloads (raw slots move through the frame itself). rawPages
	// holds pages excluded from the codec (SetRawPage): their slots are
	// written with the raw flag, so reads — which dispatch on the slot's
	// own flag byte — need no marking.
	codec    Codec
	usable   int
	slotBufs sync.Pool
	rawMu    sync.RWMutex
	rawPages map[PageID]struct{}
}

// Create creates (or truncates) the file at path and opens a store over
// it with the given options. The parent directory is fsynced so the
// new file's directory entry is durable before the store is used.
func Create(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create: %w", err)
	}
	if err := FsyncDir(filepath.Dir(path)); err != nil {
		return nil, errors.Join(fmt.Errorf("pagestore: create: %w", err), f.Close())
	}
	return newStore(osFile{f}, opts, 0)
}

// CreateOn opens a store over a caller-supplied File, assuming an
// empty (freshly truncated) backing. Crash-injection tests use it to
// run the pool over a fault-modeling File.
func CreateOn(f File, opts Options) (*Store, error) {
	return newStore(f, opts, 0)
}

// Open opens an existing store file at path. The page size in opts must
// match the size used at creation. The page count is derived from the
// file length rounded down to whole slots: a crash can leave a partial
// slot at the tail (a torn append), which recovery discards rather
// than refusing to open.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open: %w", err)
	}
	return OpenOn(osFile{f}, opts)
}

// OpenOn opens a store over an existing caller-supplied File. Like
// newStore, it closes f on error.
func OpenOn(f File, opts Options) (*Store, error) {
	size, err := f.Size()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("pagestore: open: %w", err), f.Close())
	}
	o := opts.withDefaults()
	return newStore(f, opts, uint32(size/int64(o.PageSize)))
}

// CreateTemp creates a store backed by a temporary file in the system
// temp directory that is unlinked immediately, so a crash leaves no
// orphan behind. It is the usual way benches and tests obtain a store.
func CreateTemp(opts Options) (*Store, error) {
	return CreateTempIn(os.TempDir(), opts)
}

// CreateTempIn creates a store backed by a temporary file in dir —
// typically next to the database it spills for, so scratch I/O lands
// on the same filesystem. The file is unlinked as soon as it is open
// (the fd keeps it alive until Close) and the directory is fsynced
// afterwards, so recovery after a crash never sees a half-created or
// orphaned scratch file.
func CreateTempIn(dir string, opts Options) (*Store, error) {
	f, err := os.CreateTemp(dir, "timber-scratch-*.db")
	if err != nil {
		return nil, fmt.Errorf("pagestore: create temp: %w", err)
	}
	name := f.Name()
	if err := os.Remove(name); err != nil {
		return nil, errors.Join(fmt.Errorf("pagestore: create temp: %w", err), f.Close())
	}
	if err := FsyncDir(dir); err != nil {
		return nil, errors.Join(fmt.Errorf("pagestore: create temp: %w", err), f.Close())
	}
	return newStore(osFile{f}, opts, 0)
}

func newStore(f File, opts Options, numPages uint32) (*Store, error) {
	o := opts.withDefaults()
	if o.PageSize < 128 {
		return nil, errors.Join(fmt.Errorf("pagestore: page size %d too small (min 128)", o.PageSize), f.Close())
	}
	if o.PoolPages < 1 {
		return nil, errors.Join(errors.New("pagestore: pool must hold at least one page"), f.Close())
	}
	s := &Store{file: f, opts: o, shards: make([]shard, o.Shards), codec: o.Codec}
	s.usable = o.PageSize - slotHeaderLen
	// Compress output can exceed the input on incompressible data;
	// give the scratch buffers headroom so Compress rarely grows.
	scratch := o.PageSize + o.PageSize/8 + 64
	s.slotBufs.New = func() any {
		b := make([]byte, 0, scratch)
		return &b
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.frames = make(map[PageID]*frame)
		sh.lru = list.New()
		// Shard i caches pages with id % Shards == i; its capacity is
		// the number of such ids among any PoolPages consecutive dense
		// ids, so a fully pinned dense working set fills the pool
		// exactly as the single-lock pool did.
		sh.cap = o.PoolPages / o.Shards
		if i < o.PoolPages%o.Shards {
			sh.cap++
		}
	}
	s.numPages.Store(numPages)
	return s, nil
}

// PageSize returns the usable in-memory page size in bytes: the
// configured slot size minus the checksummed framing header.
func (s *Store) PageSize() int { return s.usable }

// SlotSize returns the on-disk bytes per page (the configured
// PageSize). It exceeds PageSize() by the slot header; file size is
// always NumPages * SlotSize.
func (s *Store) SlotSize() int { return s.opts.PageSize }

// SetRawPage excludes a page from the store's codec: future writes of
// it store the raw image (slot flag raw) instead of compressing. Slots
// are fixed-size, so the codec trims write I/O bytes, never the file —
// pages whose payloads are already tightly encoded (varint-packed
// records, spill runs) gain nothing from a second pass, while every
// cold fetch of them would pay the decompression. Reads need no
// marking: each slot self-describes via its flag byte. No-op without a
// codec.
func (s *Store) SetRawPage(id PageID) {
	if s.codec == nil {
		return
	}
	s.rawMu.Lock()
	if s.rawPages == nil {
		s.rawPages = make(map[PageID]struct{})
	}
	s.rawPages[id] = struct{}{}
	s.rawMu.Unlock()
}

// rawPage reports whether the page is codec-exempt.
func (s *Store) rawPage(id PageID) bool {
	if s.codec == nil {
		return false
	}
	s.rawMu.RLock()
	_, ok := s.rawPages[id]
	s.rawMu.RUnlock()
	return ok
}

// PoolPages returns the buffer pool capacity in pages.
func (s *Store) PoolPages() int { return s.opts.PoolPages }

// Shards returns the number of buffer pool shards.
func (s *Store) Shards() int { return len(s.shards) }

// NumPages returns the number of allocated pages.
func (s *Store) NumPages() uint32 { return s.numPages.Load() }

func (s *Store) shardFor(id PageID) *shard {
	return &s.shards[uint32(id)%uint32(len(s.shards))]
}

// lockAll acquires every shard lock in index order (the only multi-lock
// order used, so whole-pool operations cannot deadlock with each other;
// page operations hold a single shard lock at a time).
func (s *Store) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats { return s.stats.snapshot() }

// Occupancy returns the number of pages currently resident in the
// buffer pool. It takes each shard lock briefly in turn, so the result
// is a consistent per-shard sum but may straddle concurrent fetches —
// fine for the gauge it feeds, wrong for invariant checks.
func (s *Store) Occupancy() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}

// ResetStats zeroes the I/O counters. The buffer pool contents are left
// untouched; use DropCache to also empty the pool (cold-cache runs).
func (s *Store) ResetStats() { s.stats.reset() }

// DropCache flushes all dirty pages and empties the buffer pool, so the
// next fetches hit the disk. It fails if any page is still pinned.
func (s *Store) DropCache() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		for id, fr := range s.shards[i].frames {
			if fr.pins > 0 {
				return fmt.Errorf("pagestore: drop cache: page %d still pinned", id)
			}
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for id, fr := range sh.frames {
			if fr.dirty {
				if err := s.writeFrame(fr); err != nil {
					return err
				}
			}
			if fr.lruElem != nil {
				sh.lru.Remove(fr.lruElem)
			}
			delete(sh.frames, id)
		}
	}
	return nil
}

// Allocate returns a zeroed page, pinned. Page IDs come from the free
// list when FreePages has returned any, otherwise a fresh ID extends
// the file.
func (s *Store) Allocate() (*Page, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	var id PageID
	reused := false
	if n := len(s.freeList); n > 0 {
		id = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		reused = true
	} else {
		id = PageID(s.numPages.Load())
	}
	sh := s.shardFor(id)
	// Same transient-exhaustion retry as Fetch: concurrent fetchers may
	// briefly pin every frame in the new page's shard.
	for attempt := 0; ; attempt++ {
		p, err := s.allocShard(sh, id, reused)
		if err != ErrPoolExhausted || !pinWait(attempt) {
			if err != nil && reused {
				s.freeList = append(s.freeList, id)
			}
			return p, err
		}
	}
}

// allocShard is one attempt of Allocate under the shard lock; the
// caller holds allocMu.
func (s *Store) allocShard(sh *shard, id PageID, reused bool) (*Page, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr, err := s.freeFrame(sh, id)
	if err != nil {
		return nil, err
	}
	// A new page must read as zeros (reused victim buffers hold stale
	// images; fetchShard needs no such clear — readInto covers every
	// byte).
	clear(fr.data)
	clear(fr.slot[:slotHeaderLen])
	if !reused {
		s.numPages.Add(1)
	}
	s.stats.allocations.Add(1)
	fr.pins = 1
	fr.dirty = true // a new page must eventually reach disk
	sh.frames[id] = fr
	return &Page{id: id, frame: fr}, nil
}

// FreePages returns pages to the allocator: their frames are dropped
// from the pool without write-back, any codec exemption is cleared,
// and the IDs become available for reuse. IDs that form a contiguous
// run at the file tail (counting previously freed pages) shorten the
// file, so pure-scratch workloads release disk exactly as the old
// Truncate-based reclaim did; interior IDs go on the in-memory free
// list and are handed out again by Allocate. It fails without freeing
// anything if any of the pages is pinned.
func (s *Store) FreePages(ids []PageID) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(ids) == 0 {
		return nil
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	np := s.numPages.Load()
	for _, id := range ids {
		if uint32(id) >= np {
			return fmt.Errorf("pagestore: free: page %d out of range (have %d)", id, np)
		}
		sh := s.shardFor(id)
		if fr, ok := sh.frames[id]; ok && fr.pins > 0 {
			return fmt.Errorf("pagestore: free: page %d still pinned", id)
		}
	}
	for _, id := range ids {
		sh := s.shardFor(id)
		if fr, ok := sh.frames[id]; ok {
			if fr.lruElem != nil {
				sh.lru.Remove(fr.lruElem)
			}
			delete(sh.frames, id)
		}
	}
	s.rawMu.Lock()
	for _, id := range s.freeList {
		delete(s.rawPages, id)
	}
	for _, id := range ids {
		delete(s.rawPages, id)
	}
	s.rawMu.Unlock()
	s.stats.freedPages.Add(uint64(len(ids)))

	// Merge the new IDs with the existing free list and peel the
	// contiguous run at the file tail off the merged set.
	merged := append(slices.Clone(s.freeList), ids...)
	slices.Sort(merged)
	merged = slices.Compact(merged)
	cut := np
	for len(merged) > 0 && uint32(merged[len(merged)-1]) == cut-1 {
		merged = merged[:len(merged)-1]
		cut--
	}
	s.freeList = merged
	if cut < np {
		if err := s.file.Truncate(int64(cut) * int64(s.opts.PageSize)); err != nil {
			return fmt.Errorf("pagestore: free: %w", err)
		}
		s.numPages.Store(cut)
	}
	return nil
}

// Fetch returns the page with the given ID, pinned. The caller must
// Unpin it when finished. Fetch is safe for concurrent use; two
// goroutines fetching the same uncached page serialize on its shard, so
// the page is read from disk exactly once.
func (s *Store) Fetch(id PageID) (*Page, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if id >= PageID(s.numPages.Load()) {
		return nil, fmt.Errorf("pagestore: fetch: page %d out of range (have %d)", id, s.numPages.Load())
	}
	s.stats.fetches.Add(1)
	sh := s.shardFor(id)
	// A shard whose frames are all pinned is almost always a transient
	// state — concurrent fetchers hold pins only across a copy — so
	// yield and retry before surfacing ErrPoolExhausted. The counters
	// stay exact: the fetch is counted once above, and hit/read are
	// only counted on the attempt that acquires a frame.
	for attempt := 0; ; attempt++ {
		p, err := s.fetchShard(sh, id)
		if err != ErrPoolExhausted || !pinWait(attempt) {
			return p, err
		}
	}
}

// fetchShard is one attempt of Fetch under the shard lock.
func (s *Store) fetchShard(sh *shard, id PageID) (*Page, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr, ok := sh.frames[id]; ok {
		s.stats.hits.Add(1)
		if fr.lruElem != nil {
			sh.lru.Remove(fr.lruElem)
			fr.lruElem = nil
		}
		fr.pins++
		return &Page{id: id, frame: fr}, nil
	}
	fr, err := s.freeFrame(sh, id)
	if err != nil {
		return nil, err
	}
	if err := s.readInto(fr); err != nil {
		return nil, err
	}
	s.stats.physicalReads.Add(1)
	fr.pins = 1
	sh.frames[id] = fr
	return &Page{id: id, frame: fr}, nil
}

// pinWait paces retries after an all-frames-pinned attempt: mostly a
// scheduler yield so the pin holders can run (essential on a single
// CPU), a short sleep every 64th try. It reports false once the budget
// is spent — generous for pin churn, bounded so a genuine pin leak
// still fails with ErrPoolExhausted instead of spinning forever.
func pinWait(attempt int) bool {
	const maxAttempts = 4096
	if attempt >= maxAttempts {
		return false
	}
	if attempt%64 == 63 {
		time.Sleep(50 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
	return true
}

// Unpin releases one pin on the page. dirty records whether the caller
// modified the page's data; dirty pages are written back on eviction,
// flush or close. Unpinning an unpinned page panics: that is a
// use-after-release programming error, not a runtime condition.
func (s *Store) Unpin(p *Page, dirty bool) {
	if err := s.Release(p, dirty); err != nil {
		panic(err.Error())
	}
}

// Release is Unpin with an error return instead of a panic: releasing
// an unpinned page reports the fault to the caller. Long-lived cursors
// (B+tree iterators, heap readers) use Release so their Close methods
// can surface a pin-accounting fault to the query instead of tearing
// the process down mid-scan.
func (s *Store) Release(p *Page, dirty bool) error {
	sh := s.shardFor(p.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr := p.frame
	if fr.pins <= 0 {
		return fmt.Errorf("pagestore: unpin of unpinned page %d", p.id)
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.lruElem = sh.lru.PushBack(fr)
	}
	return nil
}

// freeFrame returns a frame for the given new page id, evicting the
// shard's least recently used unpinned page if the shard is full.
// Caller holds sh.mu.
func (s *Store) freeFrame(sh *shard, id PageID) (*frame, error) {
	if len(sh.frames) < sh.cap {
		fr := &frame{id: id}
		fr.slot = make([]byte, s.opts.PageSize)
		fr.data = fr.slot[slotHeaderLen : slotHeaderLen+s.usable]
		return fr, nil
	}
	el := sh.lru.Front()
	if el == nil {
		return nil, ErrPoolExhausted
	}
	victim := el.Value.(*frame)
	sh.lru.Remove(el)
	victim.lruElem = nil
	if victim.dirty {
		if err := s.writeFrame(victim); err != nil {
			return nil, err
		}
	}
	delete(sh.frames, victim.id)
	s.stats.evictions.Add(1)
	// The victim's buffer is reused as is: readInto overwrites (or
	// zero-fills) every byte, and allocShard clears it for fresh pages.
	victim.id = id
	victim.pins = 0
	victim.dirty = false
	return victim, nil
}

func (s *Store) readInto(fr *frame) error {
	off := int64(fr.id) * int64(s.opts.PageSize)
	// Read the whole slot straight into the frame's backing buffer. A
	// raw flag means the page data is already in place (data aliases the
	// slot payload) — the common case — which costs exactly one
	// positioned read. A hole (all-zero header, e.g. a short read past
	// the written tail) is a zero page with nothing to checksum.
	slot := fr.slot
	n, err := s.file.ReadAt(slot, off)
	if err != nil && err != io.EOF {
		return fmt.Errorf("pagestore: read page %d: %w", fr.id, err)
	}
	clear(slot[n:])
	flag, clen, crc := slotHeader(slot)
	if flag == slotFlagRaw && clen == 0 && crc == 0 {
		clear(fr.data)
		return nil
	}
	switch flag {
	case slotFlagRaw:
		if clen != s.usable {
			return fmt.Errorf("pagestore: read page %d: corrupt raw slot length %d (want %d)", fr.id, clen, s.usable)
		}
		if got := slotCRC(fr.data); got != crc {
			s.stats.checksumErrors.Add(1)
			return fmt.Errorf("pagestore: read page %d: %w (stored %08x, computed %08x)", fr.id, ErrChecksum, crc, got)
		}
		return nil
	case slotFlagCompressed:
		if s.codec == nil {
			return fmt.Errorf("pagestore: read page %d: compressed slot in a store with no codec", fr.id)
		}
		if clen <= 0 || clen > s.usable {
			return fmt.Errorf("pagestore: read page %d: corrupt compressed length %d", fr.id, clen)
		}
		payload := slot[slotHeaderLen : slotHeaderLen+clen]
		if got := slotCRC(payload); got != crc {
			s.stats.checksumErrors.Add(1)
			return fmt.Errorf("pagestore: read page %d: %w (stored %08x, computed %08x)", fr.id, ErrChecksum, crc, got)
		}
		// The compressed payload overlaps the decompress destination, so
		// stage it in a scratch buffer first.
		sp := s.slotBufs.Get().(*[]byte)
		scratch := append((*sp)[:0], payload...)
		derr := s.codec.Decompress(fr.data, scratch)
		*sp = scratch
		s.slotBufs.Put(sp)
		if derr != nil {
			return fmt.Errorf("pagestore: read page %d: %w", fr.id, derr)
		}
		return nil
	default:
		return fmt.Errorf("pagestore: read page %d: corrupt slot flag %d", fr.id, flag)
	}
}

func (s *Store) writeFrame(fr *frame) error {
	off := int64(fr.id) * int64(s.opts.PageSize)
	if s.codec != nil && !s.rawPage(fr.id) {
		sp := s.slotBufs.Get().(*[]byte)
		slot := append((*sp)[:0], make([]byte, slotHeaderLen)...)
		slot = s.codec.Compress(slot, fr.data)
		clen := len(slot) - slotHeaderLen
		if clen < s.usable {
			putSlotHeader(slot, slotFlagCompressed, clen, slotCRC(slot[slotHeaderLen:]))
			_, err := s.file.WriteAt(slot, off)
			written := len(slot)
			*sp = slot
			s.slotBufs.Put(sp)
			if err != nil {
				return fmt.Errorf("pagestore: write page %d: %w", fr.id, err)
			}
			s.stats.physicalWrites.Add(1)
			s.stats.compressedBytes.Add(uint64(written))
			s.stats.uncompressedBytes.Add(uint64(s.usable))
			fr.dirty = false
			return nil
		}
		// Incompressible: fall through to the raw write so a slot never
		// overflows. It still counts toward the codec's ratio — the codec
		// handled the page, the page just did not shrink.
		*sp = slot
		s.slotBufs.Put(sp)
		s.stats.compressedBytes.Add(uint64(s.opts.PageSize))
		s.stats.uncompressedBytes.Add(uint64(s.usable))
	}
	// Raw write: the frame's backing buffer IS the on-disk slot (data
	// aliases its payload), so stamp the header and write it out with no
	// copy. Codec-exempt pages skip the codec counters — the ratio
	// describes the pages the codec handles.
	putSlotHeader(fr.slot, slotFlagRaw, s.usable, slotCRC(fr.data))
	if _, err := s.file.WriteAt(fr.slot, off); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", fr.id, err)
	}
	s.stats.physicalWrites.Add(1)
	fr.dirty = false
	return nil
}

// SlotImage returns the framed on-disk image (header plus payload) the
// page's current in-memory contents would be written as — the byte
// string a physical redo log records so recovery can recreate the page
// with RestoreSlot. The image is freshly allocated and checksummed;
// compressible pages under a codec return the compressed form.
func (s *Store) SlotImage(id PageID) ([]byte, error) {
	p, err := s.Fetch(id)
	if err != nil {
		return nil, err
	}
	defer s.Unpin(p, false)
	fr := p.frame
	if s.codec != nil && !s.rawPage(id) {
		buf := make([]byte, slotHeaderLen, s.opts.PageSize+s.opts.PageSize/8+64)
		buf = s.codec.Compress(buf, fr.data)
		if clen := len(buf) - slotHeaderLen; clen < s.usable {
			putSlotHeader(buf, slotFlagCompressed, clen, slotCRC(buf[slotHeaderLen:]))
			return buf, nil
		}
	}
	out := make([]byte, slotHeaderLen+s.usable)
	copy(out[slotHeaderLen:], fr.data)
	putSlotHeader(out, slotFlagRaw, s.usable, slotCRC(out[slotHeaderLen:]))
	return out, nil
}

// ValidateSlotImage checks the framing and checksum of a slot image
// (as produced by SlotImage) against the given on-disk slot size. It
// does not touch any store.
func ValidateSlotImage(img []byte, slotSize int) error {
	if len(img) < slotHeaderLen {
		return fmt.Errorf("pagestore: slot image of %d bytes is shorter than its header", len(img))
	}
	flag, clen, crc := slotHeader(img)
	usable := slotSize - slotHeaderLen
	switch flag {
	case slotFlagRaw:
		if clen != usable || len(img) != slotHeaderLen+usable {
			return fmt.Errorf("pagestore: raw slot image length %d/%d (want %d)", clen, len(img), usable)
		}
	case slotFlagCompressed:
		if clen <= 0 || clen > usable || len(img) != slotHeaderLen+clen {
			return fmt.Errorf("pagestore: compressed slot image length %d/%d", clen, len(img))
		}
	default:
		return fmt.Errorf("pagestore: slot image has corrupt flag %d", flag)
	}
	if got := slotCRC(img[slotHeaderLen:]); got != crc {
		return fmt.Errorf("pagestore: slot image %w (stored %08x, computed %08x)", ErrChecksum, crc, got)
	}
	return nil
}

// RestoreSlot writes a framed slot image (validated first) directly to
// the page's on-disk slot, dropping any cached frame, and extends the
// page count if the image lands past the current tail. Recovery replay
// uses it to reapply logged page images; it must not race with queries
// on the same store.
func (s *Store) RestoreSlot(id PageID, img []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := ValidateSlotImage(img, s.opts.PageSize); err != nil {
		return fmt.Errorf("pagestore: restore page %d: %w", id, err)
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	sh := s.shardFor(id)
	sh.mu.Lock()
	if fr, ok := sh.frames[id]; ok {
		if fr.pins > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("pagestore: restore page %d: still pinned", id)
		}
		if fr.lruElem != nil {
			sh.lru.Remove(fr.lruElem)
		}
		delete(sh.frames, id)
	}
	sh.mu.Unlock()
	if _, err := s.file.WriteAt(img, int64(id)*int64(s.opts.PageSize)); err != nil {
		return fmt.Errorf("pagestore: restore page %d: %w", id, err)
	}
	s.stats.physicalWrites.Add(1)
	if uint32(id) >= s.numPages.Load() {
		s.numPages.Store(uint32(id) + 1)
	}
	if i := slices.Index(s.freeList, id); i >= 0 {
		s.freeList = slices.Delete(s.freeList, i, i+1)
	}
	return nil
}

// SetNumPages declares the authoritative allocated-page count, as
// recorded by committed metadata. Recovery calls it after replay: a
// crash can leave the file longer than the committed state (allocated
// but never-committed tail pages, or a torn final slot), which is
// trimmed away, or shorter (holes read as zero pages). Frames at or
// past the new count are dropped; it fails if any of them is pinned.
func (s *Store) SetNumPages(n uint32) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		for id, fr := range s.shards[i].frames {
			if uint32(id) >= n {
				if fr.pins > 0 {
					return fmt.Errorf("pagestore: set pages: page %d still pinned", id)
				}
			}
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for id, fr := range sh.frames {
			if uint32(id) < n {
				continue
			}
			if fr.lruElem != nil {
				sh.lru.Remove(fr.lruElem)
			}
			delete(sh.frames, id)
		}
	}
	size, err := s.file.Size()
	if err != nil {
		return fmt.Errorf("pagestore: set pages: %w", err)
	}
	if want := int64(n) * int64(s.opts.PageSize); size > want {
		if err := s.file.Truncate(want); err != nil {
			return fmt.Errorf("pagestore: set pages: %w", err)
		}
	}
	s.freeList = slices.DeleteFunc(s.freeList, func(id PageID) bool { return uint32(id) >= n })
	s.rawMu.Lock()
	for id := range s.rawPages {
		if uint32(id) >= n {
			delete(s.rawPages, id)
		}
	}
	s.rawMu.Unlock()
	s.numPages.Store(n)
	return nil
}

// extendFile pads the file out to the full slot of the last allocated
// page. Compressed writes cover only their payload, so without the pad
// a reopened file could read the final slot short. Raw writes always
// cover whole slots, so stores without a codec never need the pad.
func (s *Store) extendFile() error {
	if s.codec == nil {
		return nil
	}
	want := int64(s.numPages.Load()) * int64(s.opts.PageSize)
	size, err := s.file.Size()
	if err != nil {
		return fmt.Errorf("pagestore: extend: %w", err)
	}
	if size >= want {
		return nil
	}
	if err := s.file.Truncate(want); err != nil {
		return fmt.Errorf("pagestore: extend: %w", err)
	}
	return nil
}

// Truncate releases every page with ID >= keep: their frames are
// dropped from the pool without write-back and the file is shortened.
// It fails if any such page is pinned. Query evaluation uses it to
// reclaim temporary pages (materialized intermediate collections) after
// a run.
func (s *Store) Truncate(keep uint32) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	if keep > s.numPages.Load() {
		return fmt.Errorf("pagestore: truncate to %d beyond %d pages", keep, s.numPages.Load())
	}
	for i := range s.shards {
		for id, fr := range s.shards[i].frames {
			if uint32(id) < keep {
				continue
			}
			if fr.pins > 0 {
				return fmt.Errorf("pagestore: truncate: page %d still pinned", id)
			}
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		for id, fr := range sh.frames {
			if uint32(id) < keep {
				continue
			}
			if fr.lruElem != nil {
				sh.lru.Remove(fr.lruElem)
			}
			delete(sh.frames, id)
		}
	}
	if err := s.file.Truncate(int64(keep) * int64(s.opts.PageSize)); err != nil {
		return fmt.Errorf("pagestore: truncate: %w", err)
	}
	// Truncated ids may be reallocated for different purposes; drop any
	// codec exemptions so a reused id starts with the default policy,
	// and forget free-list entries past the cut.
	s.rawMu.Lock()
	for id := range s.rawPages {
		if uint32(id) >= keep {
			delete(s.rawPages, id)
		}
	}
	s.rawMu.Unlock()
	s.freeList = slices.DeleteFunc(s.freeList, func(id PageID) bool { return uint32(id) >= keep })
	s.numPages.Store(keep)
	return nil
}

// Flush writes every dirty page in the pool back to disk and syncs the
// file. Pages remain cached and pinned pages are flushed in place.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		for _, fr := range s.shards[i].frames {
			if fr.dirty {
				if err := s.writeFrame(fr); err != nil {
					return err
				}
			}
		}
	}
	if err := s.extendFile(); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("pagestore: flush: sync: %w", err)
	}
	return nil
}

// Close flushes dirty pages and closes the underlying file. It is an
// error to close a store with pinned pages.
func (s *Store) Close() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		for id, fr := range s.shards[i].frames {
			if fr.pins > 0 {
				return fmt.Errorf("pagestore: close: page %d still pinned", id)
			}
		}
	}
	for i := range s.shards {
		for _, fr := range s.shards[i].frames {
			if fr.dirty {
				if err := s.writeFrame(fr); err != nil {
					return err
				}
			}
		}
	}
	if err := s.extendFile(); err != nil {
		return err
	}
	// fsync before closing: without it a crash shortly after a
	// "successful" Close can lose the just-written pages (the writes
	// above only reach the kernel cache). Flush always synced; Close
	// must too — closing an fd does not flush the page cache.
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("pagestore: close: sync: %w", err)
	}
	s.closed.Store(true)
	if err := s.file.Close(); err != nil {
		return fmt.Errorf("pagestore: close: %w", err)
	}
	return nil
}

// Sync flushes the backing file's kernel buffers to stable storage
// without touching the pool (dirty frames stay dirty). Checkpoint
// sequencing uses it between write-back and metadata publication.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("pagestore: sync: %w", err)
	}
	return nil
}

// cached reports whether the page currently resides in the pool
// (test/diagnostic helper; racy by nature under concurrency).
func (s *Store) cached(id PageID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.frames[id]
	return ok
}
