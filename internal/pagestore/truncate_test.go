package pagestore

import "testing"

func TestTruncateReleasesPages(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	var ids []PageID
	for i := 0; i < 6; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i)
		ids = append(ids, p.ID())
		st.Unpin(p, true)
	}
	if err := st.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if st.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", st.NumPages())
	}
	// Pages below the cut survive.
	p, err := st.Fetch(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if p.Data()[0] != 2 {
		t.Errorf("page 2 byte = %d", p.Data()[0])
	}
	st.Unpin(p, false)
	// Pages above the cut are gone.
	if _, err := st.Fetch(ids[4]); err == nil {
		t.Error("fetch of truncated page should fail")
	}
	// New allocations reuse the freed ID space.
	np, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if np.ID() != PageID(3) {
		t.Errorf("new page ID = %d, want 3", np.ID())
	}
	// Freshly reallocated pages are zeroed even though an old frame may
	// have held data for the same ID.
	if np.Data()[0] != 0 {
		t.Error("reallocated page not zeroed")
	}
	st.Unpin(np, true)
}

func TestTruncateRefusesPinned(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	p, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Truncate(0); err == nil {
		t.Error("truncate of pinned page should fail")
	}
	st.Unpin(p, false)
	if err := st.Truncate(0); err != nil {
		t.Errorf("truncate after unpin: %v", err)
	}
}

func TestTruncateBounds(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	if err := st.Truncate(1); err == nil {
		t.Error("truncate beyond allocated pages should fail")
	}
	if err := st.Truncate(0); err != nil {
		t.Errorf("truncate to 0 on empty store: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Truncate(0); err == nil {
		t.Error("truncate on closed store should fail")
	}
}

func TestTruncateDirtyPagesNotWrittenBack(t *testing.T) {
	st := tempStore(t, Options{PageSize: 256, PoolPages: 8})
	keep, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	st.Unpin(keep, true)
	before := st.Stats().PhysicalWrites
	p, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.Data()[0] = 99
	st.Unpin(p, true)
	if err := st.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if st.Stats().PhysicalWrites != before {
		t.Error("truncate should drop dirty frames without writing them")
	}
}
