package pagestore

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCloseDurability covers the Close write-back path end to end:
// pages dirtied and never explicitly flushed must survive Close (which
// write-backs, fsyncs, then closes the fd) and be readable after a
// reopen. Before the fix, Close wrote dirty frames but skipped the
// fsync Flush performs, so a crash right after a "successful" Close
// could lose committed pages; the sync now sits on the Close path and
// this test exercises it on every run.
func TestCloseDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durability.db")
	st, err := Create(path, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Dirty more pages than the pool holds, so Close has to write back
	// a mix of evicted-then-refetched and still-dirty frames.
	const numPages = 20
	for i := 0; i < numPages; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Data() {
			p.Data()[j] = byte(i + j)
		}
		st.Unpin(p, true)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every byte must be on disk now, not just in a kernel cache we
	// could have lost: reopen through the store and verify contents.
	st2, err := Open(path, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if got := st2.NumPages(); got != numPages {
		t.Fatalf("reopened store has %d pages, want %d", got, numPages)
	}
	for i := 0; i < numPages; i++ {
		p, err := st2.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		for j, b := range p.Data() {
			if b != byte(i+j) {
				t.Fatalf("page %d byte %d = %d, want %d", i, j, b, byte(i+j))
			}
		}
		st2.Unpin(p, false)
	}

	// The file length must match too (a truncated tail would mean the
	// final pages never reached the file).
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(numPages * 256); fi.Size() != want {
		t.Fatalf("file size %d, want %d", fi.Size(), want)
	}
}

// TestCloseAfterCloseStillErrClosed pins the double-close contract now
// that Close gained a sync step.
func TestCloseAfterCloseStillErrClosed(t *testing.T) {
	st, err := CreateTemp(Options{PageSize: 256, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}
