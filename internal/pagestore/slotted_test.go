package pagestore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func slottedPage(t *testing.T, pageSize int) (*Store, *Page, SlottedPage) {
	t.Helper()
	st := tempStore(t, Options{PageSize: pageSize, PoolPages: 8})
	p, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Unpin(p, true) })
	return st, p, InitSlotted(p)
}

func TestSlottedInsertRead(t *testing.T) {
	_, _, sp := slottedPage(t, 256)
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma rays")}
	var slots []Slot
	for _, r := range recs {
		s, ok := sp.Insert(r)
		if !ok {
			t.Fatalf("insert %q failed", r)
		}
		slots = append(slots, s)
	}
	if sp.NumSlots() != 3 {
		t.Errorf("NumSlots = %d", sp.NumSlots())
	}
	for i, s := range slots {
		got, err := sp.Read(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
}

func TestSlottedFull(t *testing.T) {
	_, _, sp := slottedPage(t, 128)
	rec := bytes.Repeat([]byte("x"), 20)
	inserted := 0
	for {
		if _, ok := sp.Insert(rec); !ok {
			break
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("nothing fit in the page")
	}
	// (20+4) bytes per record, 118 usable: 4 records fit.
	if inserted != 4 {
		t.Errorf("inserted %d records, want 4", inserted)
	}
	if sp.FreeSpace() >= 20 {
		t.Errorf("FreeSpace = %d after filling", sp.FreeSpace())
	}
}

func TestSlottedMaxRecord(t *testing.T) {
	st, _, sp := slottedPage(t, 256)
	max := MaxRecord(st.PageSize())
	if _, ok := sp.Insert(bytes.Repeat([]byte("a"), max)); !ok {
		t.Error("record of exactly MaxRecord should fit an empty page")
	}
	_, _, sp2 := slottedPage(t, 256)
	if _, ok := sp2.Insert(bytes.Repeat([]byte("a"), max+1)); ok {
		t.Error("record above MaxRecord must not fit")
	}
}

func TestSlottedDelete(t *testing.T) {
	_, _, sp := slottedPage(t, 256)
	s0, _ := sp.Insert([]byte("keep"))
	s1, _ := sp.Insert([]byte("kill"))
	if err := sp.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if sp.Live(s1) {
		t.Error("deleted slot still live")
	}
	if !sp.Live(s0) {
		t.Error("sibling slot died")
	}
	if _, err := sp.Read(s1); err == nil {
		t.Error("read of deleted slot should fail")
	}
	if got, _ := sp.Read(s0); string(got) != "keep" {
		t.Errorf("slot 0 = %q", got)
	}
	if err := sp.Delete(Slot(99)); err == nil {
		t.Error("delete out of range should fail")
	}
	if sp.Live(Slot(99)) {
		t.Error("out-of-range slot should not be live")
	}
}

func TestSlottedReadOutOfRange(t *testing.T) {
	_, _, sp := slottedPage(t, 256)
	if _, err := sp.Read(Slot(0)); err == nil {
		t.Error("read from empty page should fail")
	}
}

func TestSlottedNextLink(t *testing.T) {
	_, _, sp := slottedPage(t, 256)
	if sp.Next() != InvalidPage {
		t.Error("fresh page should have no next link")
	}
	sp.SetNext(PageID(7))
	if sp.Next() != PageID(7) {
		t.Errorf("Next = %d", sp.Next())
	}
}

// TestSlottedProperty checks random insert sequences against a slice
// oracle: every inserted record reads back intact and FreeSpace only
// decreases.
// TestSlottedZeroLengthInsertNearFull pins the regression where a
// zero-length record passed the FreeSpace check on a page whose
// directory-to-data gap was smaller than a slot entry (FreeSpace clamps
// to 0), so its directory entry overwrote the lowest record's bytes.
func TestSlottedZeroLengthInsertNearFull(t *testing.T) {
	st, _, sp := slottedPage(t, 512)
	// One record sized to leave a 3-byte gap: header 10 + slot 4 +
	// record = usable-3. A slot entry needs 4.
	rec := bytes.Repeat([]byte{0xAB}, st.PageSize()-slottedHeaderSize-slotSize-3)
	if _, ok := sp.Insert(rec); !ok {
		t.Fatal("setup insert failed")
	}
	if free := sp.FreeSpace(); free != 0 {
		t.Fatalf("FreeSpace = %d, want 0", free)
	}
	if _, ok := sp.Insert(nil); ok {
		t.Error("zero-length insert into a 3-byte gap should be refused")
	}
	got, err := sp.Read(Slot(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Error("record corrupted by refused insert")
	}
}

func TestSlottedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := CreateTemp(Options{PageSize: 512, PoolPages: 2})
		if err != nil {
			return false
		}
		defer st.Close()
		p, err := st.Allocate()
		if err != nil {
			return false
		}
		defer st.Unpin(p, false)
		sp := InitSlotted(p)
		var oracle [][]byte
		prevFree := sp.FreeSpace()
		for i := 0; i < 60; i++ {
			rec := make([]byte, rng.Intn(40))
			rng.Read(rec)
			slot, ok := sp.Insert(rec)
			if !ok {
				break
			}
			if int(slot) != len(oracle) {
				return false
			}
			oracle = append(oracle, rec)
			if sp.FreeSpace() > prevFree {
				return false
			}
			prevFree = sp.FreeSpace()
		}
		for i, want := range oracle {
			got, err := sp.Read(Slot(i))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHeapInsertGetScan(t *testing.T) {
	st := tempStore(t, Options{PageSize: 128, PoolPages: 4})
	h, err := NewHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	var want [][]byte
	for i := 0; i < 50; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 1+i%30)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want = append(want, rec)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("rid %v = %v, want %v", rid, got, want[i])
		}
	}
	// Scan must visit every record once, in insertion order here (heap
	// appends and never reorders).
	var seen int
	err = h.Scan(func(rid RID, rec []byte) error {
		if !bytes.Equal(rec, want[seen]) {
			t.Errorf("scan item %d = %v, want %v", seen, rec, want[seen])
		}
		if rid != rids[seen] {
			t.Errorf("scan rid %d = %v, want %v", seen, rid, rids[seen])
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Errorf("scan saw %d records, want %d", seen, len(want))
	}
	if st.NumPages() < 2 {
		t.Error("heap should have chained multiple pages")
	}
}

func TestHeapView(t *testing.T) {
	st := tempStore(t, Options{PageSize: 128, PoolPages: 4})
	h, err := NewHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("viewme"))
	if err != nil {
		t.Fatal(err)
	}
	called := false
	err = h.View(rid, func(rec []byte) error {
		called = true
		if string(rec) != "viewme" {
			t.Errorf("view rec = %q", rec)
		}
		return nil
	})
	if err != nil || !called {
		t.Errorf("View err=%v called=%v", err, called)
	}
}

func TestHeapRejectsOversized(t *testing.T) {
	st := tempStore(t, Options{PageSize: 128, PoolPages: 4})
	h, err := NewHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(make([]byte, 1000)); err == nil {
		t.Error("oversized record should be rejected")
	}
}

func TestHeapReopen(t *testing.T) {
	st := tempStore(t, Options{PageSize: 128, PoolPages: 4})
	h, err := NewHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 30; i++ {
		rid, err := h.Insert([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	h2, err := OpenHeap(st, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h2.Insert([]byte{99})
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Get(rid)
	if err != nil || got[0] != 99 {
		t.Errorf("insert after reopen: %v %v", got, err)
	}
	// Old records still readable through the reopened heap.
	got0, err := h2.Get(rids[0])
	if err != nil || got0[0] != 0 {
		t.Errorf("old record after reopen: %v %v", got0, err)
	}
}
