// Package xmltree implements the ordered, labelled tree data model that
// underlies the TAX algebra and the TIMBER-style storage layer.
//
// An XML document is a tree: each edge represents element nesting
// (containment). Following the paper (Sec. 2), every node carries a tag
// and an optional textual content; attributes are name/value pairs on
// elements. Pattern-tree predicates address these as $i.tag, $i.content
// and $i.attr, so content is modelled as a property of the element node
// rather than as separate text nodes. This matches how TIMBER's pattern
// predicates are written in the paper (e.g. `$2.content = "*Transaction*"`)
// and keeps the interval numbering scheme element-granular.
//
// Nodes are assigned interval numbers (Start, End, Level) by Number; the
// numbers support O(1) structural containment tests and drive the
// structural join algorithms in package sjoin.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a single XML attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is one element of an XML tree. The zero value is an empty,
// unnumbered element with no tag.
type Node struct {
	// Tag is the element name, e.g. "article".
	Tag string
	// Content is the character data directly contained in the element,
	// with surrounding whitespace trimmed. For elements with both text
	// and child elements, Content holds the concatenated trimmed text.
	Content string
	// Attrs are the element's attributes in document order.
	Attrs []Attr
	// Children are the child elements in document order.
	Children []*Node
	// Parent is the containing element, or nil for a root.
	Parent *Node

	// Interval holds the node's interval numbers once the tree has been
	// numbered with Number. It is the zero Interval otherwise.
	Interval Interval
}

// Interval is the positional encoding of a node: a (DocID, Start, End,
// Level) quadruple. Start and End delimit the node's extent in a
// depth-first traversal, so that node d is a descendant of node a iff
// they are in the same document and a.Start < d.Start && d.End < a.End.
// Level is the depth of the node (roots have level 0), which upgrades a
// descendant test to a child test.
type Interval struct {
	Doc   DocID
	Start uint32
	End   uint32
	Level uint16
}

// DocID identifies a document (a loaded tree) within a database.
type DocID uint32

// NodeID identifies a numbered node: the document plus the node's start
// number, which is unique within the document.
type NodeID struct {
	Doc   DocID
	Start uint32
}

// ID returns the node identifier portion of the interval.
func (iv Interval) ID() NodeID { return NodeID{Doc: iv.Doc, Start: iv.Start} }

// Contains reports whether iv strictly contains other, i.e. whether the
// node with interval iv is a proper ancestor of the node with interval
// other.
func (iv Interval) Contains(other Interval) bool {
	return iv.Doc == other.Doc && iv.Start < other.Start && other.End < iv.End
}

// ParentOf reports whether iv is the interval of the parent of other.
func (iv Interval) ParentOf(other Interval) bool {
	return iv.Contains(other) && iv.Level+1 == other.Level
}

// Before reports whether iv precedes other in document order. Nodes in
// lower-numbered documents precede nodes in higher-numbered documents.
func (iv Interval) Before(other Interval) bool {
	if iv.Doc != other.Doc {
		return iv.Doc < other.Doc
	}
	return iv.Start < other.Start
}

// Less orders node IDs by document, then by position within the document.
func (id NodeID) Less(other NodeID) bool {
	if id.Doc != other.Doc {
		return id.Doc < other.Doc
	}
	return id.Start < other.Start
}

func (id NodeID) String() string { return fmt.Sprintf("%d:%d", id.Doc, id.Start) }

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets the named attribute, replacing an existing value.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Append adds children to n, setting their Parent pointers. It returns n
// to allow chaining during tree construction.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Walk calls fn for every node of the subtree rooted at n in document
// order (pre-order). If fn returns false the walk skips the node's
// subtree but continues with its siblings.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns all nodes in the subtree rooted at n (including n itself)
// with the given tag, in document order.
func (n *Node) Find(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindFirst returns the first node in document order in the subtree of n
// with the given tag, or nil.
func (n *Node) FindFirst(tag string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Tag == tag {
			found = m
			return false
		}
		return true
	})
	return found
}

// Child returns the first direct child with the given tag, or nil.
func (n *Node) Child(tag string) *Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// ChildrenTagged returns all direct children with the given tag.
func (n *Node) ChildrenTagged(tag string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Tag == tag {
			out = append(out, c)
		}
	}
	return out
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Clone returns a deep copy of the subtree rooted at n. The copy's
// Parent is nil; interval numbers are copied verbatim.
func (n *Node) Clone() *Node {
	c := &Node{
		Tag:      n.Tag,
		Content:  n.Content,
		Interval: n.Interval,
	}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, child := range n.Children {
		cc := child.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Equal reports whether the subtrees rooted at a and b have the same
// tags, contents, attributes and child ordering. Interval numbers and
// parents are ignored. Both nil is true; one nil is false.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Tag != b.Tag || a.Content != b.Content || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the subtree in a compact single-line form intended for
// tests and debugging, e.g. `article[title:"Hack HTML" author:"John"]`.
func (n *Node) String() string {
	var b strings.Builder
	n.writeCompact(&b)
	return b.String()
}

func (n *Node) writeCompact(b *strings.Builder) {
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, "@%s=%q", a.Name, a.Value)
	}
	if n.Content != "" {
		fmt.Fprintf(b, ":%q", n.Content)
	}
	if len(n.Children) > 0 {
		b.WriteByte('[')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.writeCompact(b)
		}
		b.WriteByte(']')
	}
}

// SortNodesByDocOrder sorts nodes in place by their interval numbers
// (document, then start). Nodes must have been numbered.
func SortNodesByDocOrder(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].Interval.Before(nodes[j].Interval)
	})
}
