package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTree() *Node {
	return E("doc_root",
		E("article",
			Elem("author", "Jack"),
			Elem("author", "John"),
			Elem("title", "Querying XML"),
		),
		E("article",
			Elem("author", "Jill"),
			Elem("title", "Hack HTML"),
		),
	)
}

func TestAppendSetsParent(t *testing.T) {
	root := sampleTree()
	root.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Errorf("child %s of %s has parent %v", c.Tag, n.Tag, c.Parent)
			}
		}
		return true
	})
}

func TestRoot(t *testing.T) {
	root := sampleTree()
	leaf := root.Children[0].Children[2]
	if leaf.Tag != "title" {
		t.Fatalf("expected title leaf, got %s", leaf.Tag)
	}
	if got := leaf.Root(); got != root {
		t.Errorf("Root() = %v, want doc_root", got.Tag)
	}
	if got := root.Root(); got != root {
		t.Errorf("root.Root() = %v, want itself", got.Tag)
	}
}

func TestWalkOrderIsPreOrder(t *testing.T) {
	root := sampleTree()
	var tags []string
	root.Walk(func(n *Node) bool { tags = append(tags, n.Tag); return true })
	want := []string{"doc_root", "article", "author", "author", "title", "article", "author", "title"}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("walk order = %v, want %v", tags, want)
	}
}

func TestWalkPrune(t *testing.T) {
	root := sampleTree()
	var tags []string
	root.Walk(func(n *Node) bool {
		tags = append(tags, n.Tag)
		return n.Tag != "article" // do not descend into articles
	})
	want := []string{"doc_root", "article", "article"}
	if !reflect.DeepEqual(tags, want) {
		t.Errorf("pruned walk = %v, want %v", tags, want)
	}
}

func TestFind(t *testing.T) {
	root := sampleTree()
	authors := root.Find("author")
	if len(authors) != 3 {
		t.Fatalf("Find(author) returned %d nodes, want 3", len(authors))
	}
	contents := []string{authors[0].Content, authors[1].Content, authors[2].Content}
	want := []string{"Jack", "John", "Jill"}
	if !reflect.DeepEqual(contents, want) {
		t.Errorf("authors = %v, want %v", contents, want)
	}
	if root.Find("missing") != nil {
		t.Error("Find(missing) should be nil")
	}
}

func TestFindFirst(t *testing.T) {
	root := sampleTree()
	if got := root.FindFirst("title"); got == nil || got.Content != "Querying XML" {
		t.Errorf("FindFirst(title) = %v", got)
	}
	if got := root.FindFirst("nope"); got != nil {
		t.Errorf("FindFirst(nope) = %v, want nil", got)
	}
}

func TestChildAndChildrenTagged(t *testing.T) {
	art := sampleTree().Children[0]
	if c := art.Child("title"); c == nil || c.Content != "Querying XML" {
		t.Errorf("Child(title) = %v", c)
	}
	if c := art.Child("publisher"); c != nil {
		t.Errorf("Child(publisher) = %v, want nil", c)
	}
	if got := len(art.ChildrenTagged("author")); got != 2 {
		t.Errorf("ChildrenTagged(author) len = %d, want 2", got)
	}
}

func TestAttrAccess(t *testing.T) {
	n := E("item").WithAttr("id", "7").WithAttr("lang", "en")
	if v, ok := n.Attr("id"); !ok || v != "7" {
		t.Errorf("Attr(id) = %q, %v", v, ok)
	}
	n.SetAttr("id", "8")
	if v, _ := n.Attr("id"); v != "8" {
		t.Errorf("after SetAttr, Attr(id) = %q", v)
	}
	if _, ok := n.Attr("missing"); ok {
		t.Error("Attr(missing) should not exist")
	}
	if len(n.Attrs) != 2 {
		t.Errorf("SetAttr on existing name grew Attrs to %d", len(n.Attrs))
	}
}

func TestSize(t *testing.T) {
	if got := sampleTree().Size(); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	if got := Elem("a", "x").Size(); got != 1 {
		t.Errorf("leaf Size = %d, want 1", got)
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	root := sampleTree()
	Number(root, 3)
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone is not Equal to original")
	}
	if c.Parent != nil {
		t.Error("clone parent should be nil")
	}
	if c.Interval != root.Interval {
		t.Error("clone should copy interval numbers")
	}
	// Mutating the clone must not affect the original.
	c.Children[0].Children[0].Content = "Changed"
	if root.Children[0].Children[0].Content != "Jack" {
		t.Error("mutating clone affected original")
	}
}

func TestEqual(t *testing.T) {
	a := sampleTree()
	tests := []struct {
		name   string
		mutate func(*Node)
		want   bool
	}{
		{"identical", func(*Node) {}, true},
		{"different tag", func(n *Node) { n.Children[0].Tag = "book" }, false},
		{"different content", func(n *Node) { n.Children[0].Children[0].Content = "X" }, false},
		{"extra child", func(n *Node) { n.Append(Elem("extra", "")) }, false},
		{"different attr", func(n *Node) { n.Children[0].SetAttr("k", "v") }, false},
		{"reordered children", func(n *Node) {
			cs := n.Children[0].Children
			cs[0], cs[1] = cs[1], cs[0]
		}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := sampleTree()
			tc.mutate(b)
			if got := Equal(a, b); got != tc.want {
				t.Errorf("Equal = %v, want %v", got, tc.want)
			}
		})
	}
	if !Equal(nil, nil) {
		t.Error("Equal(nil, nil) should be true")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("Equal with one nil should be false")
	}
}

func TestStringCompact(t *testing.T) {
	n := E("article", Elem("title", "T")).WithAttr("id", "1")
	got := n.String()
	want := `article@id="1"[title:"T"]`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestIntervalPredicates(t *testing.T) {
	root := sampleTree()
	Number(root, 1)
	art := root.Children[0]
	author := art.Children[0]
	title := art.Children[2]

	if !root.Interval.Contains(author.Interval) {
		t.Error("root should contain author")
	}
	if !art.Interval.ParentOf(author.Interval) {
		t.Error("article should be parent of author")
	}
	if root.Interval.ParentOf(author.Interval) {
		t.Error("root is not parent of author")
	}
	if author.Interval.Contains(art.Interval) {
		t.Error("author must not contain article")
	}
	if author.Interval.Contains(author.Interval) {
		t.Error("containment is strict")
	}
	if !author.Interval.Before(title.Interval) {
		t.Error("author precedes title in document order")
	}

	other := sampleTree()
	Number(other, 2)
	if root.Interval.Contains(other.Children[0].Interval) {
		t.Error("containment must not cross documents")
	}
	if !root.Interval.Before(other.Interval) {
		t.Error("doc 1 sorts before doc 2")
	}
}

func TestNodeIDLessAndString(t *testing.T) {
	a := NodeID{Doc: 1, Start: 5}
	b := NodeID{Doc: 1, Start: 9}
	c := NodeID{Doc: 2, Start: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less within a document should order by start")
	}
	if !b.Less(c) {
		t.Error("Less should order by document first")
	}
	if a.String() != "1:5" {
		t.Errorf("String = %s", a.String())
	}
}

func TestSortNodesByDocOrder(t *testing.T) {
	root := sampleTree()
	Number(root, 1)
	nodes := root.Find("author")
	shuffled := []*Node{nodes[2], nodes[0], nodes[1]}
	SortNodesByDocOrder(shuffled)
	if !reflect.DeepEqual(shuffled, nodes) {
		t.Error("SortNodesByDocOrder did not restore document order")
	}
}

// randomTree builds a pseudo-random tree with n nodes, used by the
// property tests below.
func randomTree(rng *rand.Rand, n int) *Node {
	root := E("r")
	nodes := []*Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		child := Elem("n", "")
		parent.Append(child)
		nodes = append(nodes, child)
	}
	return root
}

// TestNumberContainmentProperty checks, on random trees, that the
// interval predicates agree exactly with the pointer structure: for all
// node pairs (a, b), a.Contains(b) iff b is a proper descendant of a.
func TestNumberContainmentProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 2
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, n)
		Number(root, 1)
		var all []*Node
		root.Walk(func(m *Node) bool { all = append(all, m); return true })
		for _, a := range all {
			for _, b := range all {
				isDesc := false
				for p := b.Parent; p != nil; p = p.Parent {
					if p == a {
						isDesc = true
						break
					}
				}
				if a.Interval.Contains(b.Interval) != isDesc {
					return false
				}
				if a.Interval.ParentOf(b.Interval) != (b.Parent == a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNumberDocOrderProperty checks that start numbers enumerate nodes
// in pre-order (document order) densely from 1.
func TestNumberDocOrderProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 2
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, n)
		last := Number(root, 9)
		if last != uint32(2*n) {
			return false
		}
		if !Numbered(root) {
			return false
		}
		prev := uint32(0)
		ok := true
		root.Walk(func(m *Node) bool {
			if m.Interval.Start <= prev {
				ok = false
			}
			prev = m.Interval.Start
			return true
		})
		return ok && root.Interval.Start == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNumberedRejectsCorruption(t *testing.T) {
	root := sampleTree()
	if Numbered(root) {
		t.Error("unnumbered tree should not pass Numbered")
	}
	Number(root, 1)
	if !Numbered(root) {
		t.Fatal("freshly numbered tree should pass")
	}
	root.Children[1].Interval.Level = 5
	if Numbered(root) {
		t.Error("corrupted level should fail Numbered")
	}
}

func TestNodeByID(t *testing.T) {
	root := sampleTree()
	Number(root, 4)
	var all []*Node
	root.Walk(func(m *Node) bool { all = append(all, m); return true })
	for _, n := range all {
		got := NodeByID(root, n.Interval.ID())
		if got != n {
			t.Errorf("NodeByID(%v) = %v, want %v", n.Interval.ID(), got, n)
		}
	}
	if NodeByID(root, NodeID{Doc: 4, Start: 999}) != nil {
		t.Error("NodeByID with bogus start should be nil")
	}
	if NodeByID(root, NodeID{Doc: 5, Start: 1}) != nil {
		t.Error("NodeByID with wrong doc should be nil")
	}
}

func TestParseBasic(t *testing.T) {
	root, err := ParseString(`
		<doc_root>
			<article id="a1">
				<author>Jack</author>
				<title>Querying &amp; Indexing</title>
			</article>
		</doc_root>`)
	if err != nil {
		t.Fatal(err)
	}
	art := root.Child("article")
	if art == nil {
		t.Fatal("no article parsed")
	}
	if v, _ := art.Attr("id"); v != "a1" {
		t.Errorf("attr id = %q", v)
	}
	if got := art.Child("title").Content; got != "Querying & Indexing" {
		t.Errorf("title content = %q", got)
	}
	if got := art.Child("author").Content; got != "Jack" {
		t.Errorf("author content = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"unterminated", "<a><b></b>"},
		{"garbage", "<a></b>"},
		{"two roots", "<a/><b/>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseIgnoresCommentsAndPIs(t *testing.T) {
	root, err := ParseString(`<?xml version="1.0"?><!-- hi --><a><!-- x --><b>t</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Tag != "a" || root.Child("b").Content != "t" {
		t.Errorf("parsed %s", root)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	orig := E("doc_root",
		E("article",
			Elem("author", "Jack & Jill"),
			Elem("title", "a <b> c"),
		).WithAttr("id", `q"1`),
		E("empty"),
	)
	s := SerializeString(orig)
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, s)
	}
	if !Equal(orig, back) {
		t.Errorf("round trip mismatch:\norig %s\nback %s\nxml:\n%s", orig, back, s)
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	tags := []string{"a", "b", "c"}
	contents := []string{"", "x", "two words", "sym&<>"}
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 1
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, n)
		root.Walk(func(m *Node) bool {
			m.Tag = tags[rng.Intn(len(tags))]
			m.Content = contents[rng.Intn(len(contents))]
			if rng.Intn(3) == 0 {
				m.SetAttr("k", contents[rng.Intn(len(contents))])
			}
			return true
		})
		back, err := ParseString(SerializeString(root))
		return err == nil && Equal(root, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input should panic")
		}
	}()
	MustParse("<a>")
}

func TestSerializeContentBeforeChildren(t *testing.T) {
	n := E("mixed", Elem("child", "c")).Text("hello")
	s := SerializeString(n)
	if !strings.Contains(s, "hello") || !strings.Contains(s, "<child>c</child>") {
		t.Errorf("serialized form missing parts:\n%s", s)
	}
	back, err := ParseString(s)
	if err != nil || !Equal(n, back) {
		t.Errorf("mixed round trip failed: %v\n%s", err, s)
	}
}
