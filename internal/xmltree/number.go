package xmltree

// Number assigns interval numbers to every node of the tree rooted at
// root, for the given document ID. Numbers are assigned by a single
// depth-first traversal: a node's Start is taken on entry and its End on
// exit from a shared counter, so for any two nodes a and d of the tree,
//
//	d is a descendant of a  ⇔  a.Start < d.Start && d.End < a.End
//	d is a child of a       ⇔  the above && d.Level == a.Level+1
//
// Start numbers are dense in document order (root gets 1), which lets a
// NodeID double as a document-order sort key. Number returns the counter
// after the last node, i.e. 2×(number of nodes).
func Number(root *Node, doc DocID) uint32 {
	var counter uint32
	var walk func(n *Node, level uint16)
	walk = func(n *Node, level uint16) {
		counter++
		n.Interval.Doc = doc
		n.Interval.Start = counter
		n.Interval.Level = level
		for _, c := range n.Children {
			walk(c, level+1)
		}
		counter++
		n.Interval.End = counter
	}
	walk(root, 0)
	return counter
}

// Numbered reports whether the tree rooted at root carries a consistent
// interval numbering: every node has Start < End, children are nested
// strictly inside their parent in order, and levels increase by one.
// It is used by tests and by the storage layer's loading invariants.
func Numbered(root *Node) bool {
	ok := true
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.Interval.Start == 0 || n.Interval.Start >= n.Interval.End {
			return false
		}
		prevEnd := n.Interval.Start
		for _, c := range n.Children {
			if c.Interval.Doc != n.Interval.Doc ||
				c.Interval.Level != n.Interval.Level+1 ||
				c.Interval.Start <= prevEnd ||
				c.Interval.End >= n.Interval.End {
				return false
			}
			if !walk(c) {
				return false
			}
			prevEnd = c.Interval.End
		}
		return true
	}
	ok = walk(root)
	return ok
}

// NodeByID returns the node of the numbered tree rooted at root whose
// start number equals id.Start, or nil if there is no such node or the
// document IDs differ. It descends using the interval nesting, so the
// cost is proportional to tree depth times fan-out.
func NodeByID(root *Node, id NodeID) *Node {
	if root.Interval.Doc != id.Doc {
		return nil
	}
	n := root
	for {
		if n.Interval.Start == id.Start {
			return n
		}
		next := (*Node)(nil)
		for _, c := range n.Children {
			if c.Interval.Start <= id.Start && id.Start < c.Interval.End {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
}
