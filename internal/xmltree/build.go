package xmltree

// This file provides a tiny construction DSL used pervasively by tests,
// examples and the synthetic data generator. E("article", E("title").Text(
// "Querying XML"), E("author").Text("Jack")) builds the obvious tree.

// E constructs an element with the given tag and children.
func E(tag string, children ...*Node) *Node {
	n := &Node{Tag: tag}
	n.Append(children...)
	return n
}

// Text sets the node's content and returns the node, for chaining with E.
func (n *Node) Text(content string) *Node {
	n.Content = content
	return n
}

// WithAttr adds an attribute and returns the node, for chaining with E.
func (n *Node) WithAttr(name, value string) *Node {
	n.SetAttr(name, value)
	return n
}

// Elem constructs a leaf element carrying text content: Elem("author",
// "Jack") is E("author").Text("Jack").
func Elem(tag, content string) *Node {
	return &Node{Tag: tag, Content: content}
}
