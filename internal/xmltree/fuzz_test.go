package xmltree

import (
	"strings"
	"testing"
)

// FuzzParse asserts the XML reader never panics on malformed input —
// unbalanced tags, bad entities, illegal characters, truncated
// documents all must come back as errors.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<a/>",
		"<a><b>text</b></a>",
		`<bib><article key="1"><title>XML</title><author>A</author></article></bib>`,
		"<a>",
		"</a>",
		"<a><b></a></b>",
		"<a>&unknown;</a>",
		"<a>&#xZZ;</a>",
		"<a attr=>x</a>",
		"<a><![CDATA[raw]]></a>",
		"<?xml version=\"1.0\"?><a/>",
		"<a>\x00</a>",
		"<a xmlns:x=\"u\"><x:b/></a>",
		"<a><!-- comment --></a>",
		strings.Repeat("<a>", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := ParseString(src)
		if err == nil && root == nil {
			t.Errorf("ParseString(%q) returned nil root and nil error", src)
		}
	})
}
