package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// failWriter fails after n bytes.
type failWriter struct{ left int }

var errWriterFull = errors.New("writer full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWriterFull
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWriterFull
	}
	return n, nil
}

func TestSerializeWriterError(t *testing.T) {
	tree := E("doc_root",
		E("article", Elem("author", "Jack"), Elem("title", "T")),
	)
	// The error must surface regardless of where the writer fails.
	for limit := 0; limit < 40; limit += 7 {
		err := Serialize(&failWriter{left: limit}, tree)
		if !errors.Is(err, errWriterFull) {
			t.Errorf("limit %d: err = %v, want writer error", limit, err)
		}
	}
	// A big enough writer succeeds.
	if err := Serialize(&failWriter{left: 1 << 20}, tree); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := E("a", Elem("b", `x < y & z > w`)).WithAttr("q", `say "hi" & <bye>`)
	s := SerializeString(n)
	for _, banned := range []string{`<y`, `& z`, `"hi"`} {
		if strings.Contains(s, banned) {
			t.Errorf("unescaped %q in output:\n%s", banned, s)
		}
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if !Equal(n, back) {
		t.Errorf("escape round trip mismatch:\n%s\n%s", n, back)
	}
}
