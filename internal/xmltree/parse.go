package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parse reads a single XML document from r and returns its root element.
// Character data directly inside an element is trimmed and accumulated
// into the element's Content; processing instructions, comments and
// directives are ignored. The returned tree is not numbered; call Number
// before using interval-based operations.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local}
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				cur.Append(n)
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, errors.New("xmltree: parse: unbalanced end element")
			}
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				text := strings.TrimSpace(string(t))
				if text != "" {
					if cur.Content != "" {
						cur.Content += " "
					}
					cur.Content += text
				}
			}
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: parse: empty document")
	}
	if cur != nil {
		return nil, errors.New("xmltree: parse: unterminated document")
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse parses an XML document held in a string and panics on error.
// It is intended for tests and package examples where the input is a
// literal known to be well-formed.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Serialize writes the subtree rooted at n as indented XML. Content is
// written before any child elements, which round-trips every tree this
// package produces (mixed-content interleaving is not preserved; see the
// package comment).
func Serialize(w io.Writer, n *Node) error {
	sw := &stickyWriter{w: w}
	writeIndented(sw, n, 0)
	return sw.err
}

// SerializeString renders the subtree rooted at n as indented XML.
func SerializeString(n *Node) string {
	var b strings.Builder
	_ = Serialize(&b, n)
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeIndented(w *stickyWriter, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	w.WriteString(indent)
	w.WriteString("<")
	w.WriteString(n.Tag)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString(`="`)
		w.WriteString(escapeAttr(a.Value))
		w.WriteString(`"`)
	}
	if n.Content == "" && len(n.Children) == 0 {
		w.WriteString("/>\n")
		return
	}
	w.WriteString(">")
	if len(n.Children) == 0 {
		w.WriteString(escapeText(n.Content))
		w.WriteString("</")
		w.WriteString(n.Tag)
		w.WriteString(">\n")
		return
	}
	w.WriteString("\n")
	if n.Content != "" {
		w.WriteString(strings.Repeat("  ", depth+1))
		w.WriteString(escapeText(n.Content))
		w.WriteString("\n")
	}
	for _, c := range n.Children {
		writeIndented(w, c, depth+1)
	}
	w.WriteString(indent)
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">\n")
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
