// Package crashfs is an in-memory filesystem for crash-recovery
// testing. Every write, truncate, and sync on every file of a Disk is
// journaled with a single global sequence number, so a "power cut" can
// be simulated at any point in the interleaved history of the database
// file and its write-ahead log — including mid-write, producing a torn
// page or torn WAL frame.
//
// Two loss models bracket what real hardware can do:
//
//   - CrashDisk (prefix loss): every write issued before the cut
//     survives, the write straddling the cut is torn, everything after
//     is gone. This is the kindest crash consistent with ordering and
//     exercises torn-tail handling.
//
//   - CrashDiskDropUnsynced (volatile loss): only writes covered by an
//     fsync barrier before the cut survive. This is the harshest crash
//     allowed by POSIX and catches code that acknowledges commits
//     before the fsync actually happened.
//
// Files additionally support fail and short-write injection after a
// byte budget, for table-driven error-path tests.
package crashfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrInjected is returned by writes that exceed an injected fault
// budget (see File.SetWriteLimit).
var ErrInjected = errors.New("crashfs: injected write fault")

type opKind uint8

const (
	opCreate opKind = iota
	opWrite
	opTruncate
	opSync
)

type op struct {
	seq  uint64
	kind opKind
	off  int64  // opWrite
	data []byte // opWrite (owned copy)
	size int64  // opTruncate
}

// Disk is a set of files sharing one operation clock. All methods are
// safe for concurrent use; operations across files serialize, which is
// exactly what gives crash points a well-defined global order.
type Disk struct {
	mu    sync.Mutex
	seq   uint64 // next sequence number
	files map[string]*File
}

// New returns an empty disk.
func New() *Disk {
	return &Disk{files: make(map[string]*File)}
}

// Create makes a new empty file. It fails if the name already exists.
func (d *Disk) Create(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("crashfs: %s already exists", name)
	}
	f := &File{d: d, name: name, failAfter: -1}
	f.ops = append(f.ops, op{seq: d.nextSeq(), kind: opCreate})
	d.files[name] = f
	return f, nil
}

// Open returns the named file, or os.ErrNotExist.
func (d *Disk) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("crashfs: %s: %w", name, os.ErrNotExist)
	}
	f.closed = false
	return f, nil
}

// Exists reports whether the named file is present.
func (d *Disk) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Ops returns the number of operations journaled so far. Any value in
// [0, Ops()] is a valid crash point.
func (d *Disk) Ops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Bytes returns the cumulative bytes written across all files, the
// domain of CrashDiskAtBytes.
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, f := range d.files {
		for _, o := range f.ops {
			if o.kind == opWrite {
				total += int64(len(o.data))
			}
		}
	}
	return total
}

// nextSeq must be called with d.mu held.
func (d *Disk) nextSeq() uint64 {
	s := d.seq
	d.seq++
	return s
}

// orderedOps returns every op of every file in global sequence order,
// tagged with its file name. Caller must hold d.mu.
func (d *Disk) orderedOps() []struct {
	name string
	op
} {
	var all []struct {
		name string
		op
	}
	for name, f := range d.files {
		for _, o := range f.ops {
			all = append(all, struct {
				name string
				op
			}{name, o})
		}
	}
	// Sequence numbers are dense and unique: counting sort by seq.
	out := make([]struct {
		name string
		op
	}, len(all))
	for _, e := range all {
		out[e.seq] = e
	}
	return out
}

// CrashDisk returns a new Disk holding the state a power cut after
// opBudget operations would leave behind: ops with seq < opBudget are
// fully applied; if the op at seq == opBudget is a write, its first
// tear bytes are applied (a torn write); everything later is lost.
// Files whose creation is past the cut do not exist.
func (d *Disk) CrashDisk(opBudget uint64, tear int) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := New()
	for _, e := range d.orderedOps() {
		if e.seq > opBudget {
			break
		}
		torn := -1
		if e.seq == opBudget {
			if e.kind != opWrite || tear <= 0 {
				break
			}
			torn = tear
		}
		nd.applyCrashOp(e.name, e.op, torn)
	}
	return nd
}

// CrashDiskAtBytes returns the state after a power cut once byteBudget
// bytes have reached the disk, cutting mid-write at the boundary.
// Non-write operations consume no budget and apply until the cut.
func (d *Disk) CrashDiskAtBytes(byteBudget int64) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := New()
	var cum int64
	for _, e := range d.orderedOps() {
		if e.kind == opWrite {
			n := int64(len(e.data))
			if cum+n > byteBudget {
				if torn := int(byteBudget - cum); torn > 0 {
					nd.applyCrashOp(e.name, e.op, torn)
				}
				break
			}
			cum += n
		}
		nd.applyCrashOp(e.name, e.op, -1)
	}
	return nd
}

// CrashDiskDropUnsynced returns the state a crash after opBudget
// operations would leave if every unsynced write were lost: for each
// file, only operations covered by a sync barrier at or before the cut
// survive. Code that acknowledges a commit before fsync returns will
// see that commit vanish here.
func (d *Disk) CrashDiskDropUnsynced(opBudget uint64) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Per file: the latest sync barrier at or before the cut.
	barrier := make(map[string]uint64)
	for name, f := range d.files {
		for _, o := range f.ops {
			if o.kind == opSync && o.seq <= opBudget {
				barrier[name] = o.seq
			}
		}
	}
	nd := New()
	for _, e := range d.orderedOps() {
		if e.seq > opBudget {
			break
		}
		switch e.kind {
		case opCreate:
			nd.applyCrashOp(e.name, e.op, -1)
		case opWrite, opTruncate:
			if b, ok := barrier[e.name]; ok && e.seq < b {
				nd.applyCrashOp(e.name, e.op, -1)
			}
		}
	}
	return nd
}

// applyCrashOp replays one journaled op into the reconstructed disk.
// torn >= 0 limits a write to its first torn bytes. Caller guarantees
// creates precede other ops on the same file (journal order).
func (nd *Disk) applyCrashOp(name string, o op, torn int) {
	switch o.kind {
	case opCreate:
		f := &File{d: nd, name: name, failAfter: -1}
		f.ops = append(f.ops, op{seq: nd.nextSeq(), kind: opCreate})
		nd.files[name] = f
	case opWrite:
		f, ok := nd.files[name]
		if !ok {
			return
		}
		data := o.data
		if torn >= 0 && torn < len(data) {
			data = data[:torn]
		}
		f.applyWrite(o.off, data)
		f.ops = append(f.ops, op{seq: nd.nextSeq(), kind: opWrite, off: o.off, data: append([]byte(nil), data...)})
	case opTruncate:
		f, ok := nd.files[name]
		if !ok {
			return
		}
		f.applyTruncate(o.size)
		f.ops = append(f.ops, op{seq: nd.nextSeq(), kind: opTruncate, size: o.size})
	case opSync:
		if f, ok := nd.files[name]; ok {
			f.ops = append(f.ops, op{seq: nd.nextSeq(), kind: opSync})
		}
	}
}

// File is one journaled file. It implements pagestore.File.
type File struct {
	d      *Disk
	name   string
	cur    []byte // materialized current contents
	ops    []op   // full history
	closed bool

	failAfter  int64 // write-byte budget before injection; -1 = off
	written    int64 // bytes accepted so far (for failAfter)
	shortWrite bool  // inject a short write instead of a clean failure
	syncs      uint64
}

// Name returns the file's name on its disk.
func (f *File) Name() string { return f.name }

// SetWriteLimit arms fault injection: after n more accepted bytes,
// writes fail with ErrInjected. With short set, the failing write
// first applies as many bytes as the budget allows and reports a
// short-write byte count alongside the error, as io.WriterAt demands.
func (f *File) SetWriteLimit(n int64, short bool) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.failAfter = f.written + n
	f.shortWrite = short
}

// ClearWriteLimit disarms fault injection.
func (f *File) ClearWriteLimit() {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.failAfter = -1
}

// Syncs returns how many Sync calls the file has absorbed.
func (f *File) Syncs() uint64 {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return f.syncs
}

// Contents returns a copy of the file's current bytes.
func (f *File) Contents() []byte {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return append([]byte(nil), f.cur...)
}

func (f *File) applyWrite(off int64, p []byte) {
	if end := off + int64(len(p)); end > int64(len(f.cur)) {
		grown := make([]byte, end)
		copy(grown, f.cur)
		f.cur = grown
	}
	copy(f.cur[off:], p)
}

func (f *File) applyTruncate(size int64) {
	if size <= int64(len(f.cur)) {
		f.cur = f.cur[:size]
		return
	}
	grown := make([]byte, size)
	copy(grown, f.cur)
	f.cur = grown
}

// ReadAt implements io.ReaderAt over the current contents.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if off < 0 {
		return 0, errors.New("crashfs: negative offset")
	}
	if off >= int64(len(f.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, journaling the write. Writes past
// EOF zero-fill the gap, like an OS file.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if off < 0 {
		return 0, errors.New("crashfs: negative offset")
	}
	if f.failAfter >= 0 && f.written+int64(len(p)) > f.failAfter {
		keep := 0
		if f.shortWrite {
			if avail := f.failAfter - f.written; avail > 0 {
				keep = int(avail)
			}
		}
		if keep > 0 {
			part := p[:keep]
			f.applyWrite(off, part)
			f.ops = append(f.ops, op{seq: f.d.nextSeq(), kind: opWrite, off: off, data: append([]byte(nil), part...)})
			f.written += int64(keep)
		}
		return keep, fmt.Errorf("%w after %d bytes", ErrInjected, f.written)
	}
	f.applyWrite(off, p)
	f.ops = append(f.ops, op{seq: f.d.nextSeq(), kind: opWrite, off: off, data: append([]byte(nil), p...)})
	f.written += int64(len(p))
	return len(p), nil
}

// Truncate implements pagestore.File.
func (f *File) Truncate(size int64) error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if size < 0 {
		return errors.New("crashfs: negative size")
	}
	f.applyTruncate(size)
	f.ops = append(f.ops, op{seq: f.d.nextSeq(), kind: opTruncate, size: size})
	return nil
}

// Sync records a durability barrier: in the drop-unsynced crash model,
// writes before this point survive a later crash.
func (f *File) Sync() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.ops = append(f.ops, op{seq: f.d.nextSeq(), kind: opSync})
	f.syncs++
	return nil
}

// Close marks the handle closed. The file stays on the disk and can be
// reopened with Disk.Open.
func (f *File) Close() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.closed = true
	return nil
}

// Size implements pagestore.File.
func (f *File) Size() (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	return int64(len(f.cur)), nil
}
