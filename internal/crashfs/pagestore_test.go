package crashfs

import (
	"bytes"
	"errors"
	"testing"

	"timber/internal/pagestore"
)

// TestPagestoreOnCrashfs runs a real page store over a crashfs file,
// crashes it at the end of history, reopens the image, and checks the
// synced pages back — plus that a torn page write is caught by the
// slot checksum rather than returned as data.
func TestPagestoreOnCrashfs(t *testing.T) {
	d := New()
	f, err := d.Create("db")
	if err != nil {
		t.Fatal(err)
	}
	st, err := pagestore.CreateOn(f, pagestore.Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []pagestore.PageID
	for i := 0; i < 20; i++ {
		p, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Data() {
			p.Data()[j] = byte(i)
		}
		ids = append(ids, p.ID())
		st.Unpin(p, true)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	// Crash with full history and reopen: every page reads back.
	nd := d.CrashDisk(d.Ops(), 0)
	nf, err := nd.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := pagestore.OpenOn(nf, pagestore.Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for i, id := range ids {
		p, err := st2.Fetch(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		if !bytes.Equal(p.Data(), bytes.Repeat([]byte{byte(i)}, len(p.Data()))) {
			t.Fatalf("page %d corrupted", id)
		}
		st2.Unpin(p, false)
	}

	// Rewrite one page so its slot write is the last operation in
	// history, then tear that write in half: the slot checksum must
	// reject the page rather than serve mixed old/new bytes.
	p, err := st2.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for j := range p.Data() {
		p.Data()[j] = 0xEE
	}
	st2.Unpin(p, true)
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	td := nd.CrashDiskAtBytes(nd.Bytes() - 156) // 100 of the 256-byte slot land
	tf, err := td.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	st3, err := pagestore.OpenOn(tf, pagestore.Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, err := st3.Fetch(ids[0]); !errors.Is(err, pagestore.ErrChecksum) {
		t.Fatalf("torn page read err = %v, want ErrChecksum", err)
	}
}
