package crashfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestReadWriteTruncate(t *testing.T) {
	d := New()
	f, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if n, err := f.WriteAt([]byte("hello world"), 0); n != 11 || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// Write past EOF zero-fills the gap.
	if _, err := f.WriteAt([]byte("!"), 20); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 21 {
		t.Fatalf("Size = %d", sz)
	}
	buf := make([]byte, 21)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("hello world"), make([]byte, 9)...)
	want = append(want, '!')
	if !bytes.Equal(buf, want) {
		t.Fatalf("contents %q", buf)
	}
	// Short read at the tail returns io.EOF.
	if n, err := f.ReadAt(make([]byte, 10), 15); n != 6 || err != io.EOF {
		t.Fatalf("tail read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 100); err != io.EOF {
		t.Fatalf("past-EOF read err = %v", err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if string(f.Contents()) != "hello" {
		t.Fatalf("after truncate: %q", f.Contents())
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Contents(), append([]byte("hello"), 0, 0, 0)) {
		t.Fatalf("grow-truncate: %q", f.Contents())
	}
}

func TestOpenAndClose(t *testing.T) {
	d := New()
	f, _ := d.Create("x")
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("z"), 0); err == nil {
		t.Fatal("write after close should fail")
	}
	g, err := d.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Contents()) != "abc" {
		t.Fatalf("reopened contents %q", g.Contents())
	}
	if _, err := d.Open("missing"); err == nil {
		t.Fatal("open of missing file should fail")
	}
}

// TestCrashPrefix: a crash at op k keeps exactly the first k operations,
// tearing the boundary write.
func TestCrashPrefix(t *testing.T) {
	d := New()
	a, _ := d.Create("a") // seq 0
	b, _ := d.Create("b") // seq 1
	a.WriteAt([]byte("AAAA"), 0)
	b.WriteAt([]byte("BBBB"), 0)
	a.WriteAt([]byte("CCCC"), 4)

	// Cut before anything: no files.
	if nd := d.CrashDisk(0, 0); nd.Exists("a") || nd.Exists("b") {
		t.Fatal("files exist before their creation")
	}
	// Cut after both creates and a's first write.
	nd := d.CrashDisk(3, 0)
	na, err := nd.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(na.Contents()) != "AAAA" {
		t.Fatalf("a = %q", na.Contents())
	}
	nb, _ := nd.Open("b")
	if len(nb.Contents()) != 0 {
		t.Fatalf("b = %q, want empty", nb.Contents())
	}
	// Torn write: op 4 (a's second write) cut at 2 bytes.
	nd = d.CrashDisk(4, 2)
	na, _ = nd.Open("a")
	if string(na.Contents()) != "AAAACC" {
		t.Fatalf("torn a = %q", na.Contents())
	}
	// Full history.
	nd = d.CrashDisk(d.Ops(), 0)
	na, _ = nd.Open("a")
	if string(na.Contents()) != "AAAACCCC" {
		t.Fatalf("full a = %q", na.Contents())
	}
}

// TestCrashAtBytes cuts by cumulative written bytes across files,
// interleaved in global order.
func TestCrashAtBytes(t *testing.T) {
	d := New()
	a, _ := d.Create("a")
	b, _ := d.Create("b")
	a.WriteAt([]byte("1234"), 0) // bytes 0-3
	b.WriteAt([]byte("5678"), 0) // bytes 4-7
	a.WriteAt([]byte("9abc"), 4) // bytes 8-11
	if got := d.Bytes(); got != 12 {
		t.Fatalf("Bytes = %d", got)
	}
	for budget, want := range map[int64][2]string{
		0:  {"", ""},
		2:  {"12", ""},
		4:  {"1234", ""},
		6:  {"1234", "56"},
		9:  {"12349", "5678"},
		12: {"12349abc", "5678"},
	} {
		nd := d.CrashDiskAtBytes(budget)
		na, errA := nd.Open("a")
		nb, errB := nd.Open("b")
		var gotA, gotB string
		if errA == nil {
			gotA = string(na.Contents())
		}
		if errB == nil {
			gotB = string(nb.Contents())
		}
		if gotA != want[0] || gotB != want[1] {
			t.Fatalf("budget %d: a=%q b=%q, want a=%q b=%q", budget, gotA, gotB, want[0], want[1])
		}
	}
}

// TestCrashDropUnsynced: without a sync barrier, writes vanish; with
// one, everything before the barrier survives.
func TestCrashDropUnsynced(t *testing.T) {
	d := New()
	f, _ := d.Create("f") // seq 0
	f.WriteAt([]byte("keep"), 0)
	f.Sync() // seq 2: barrier covering "keep"
	f.WriteAt([]byte("lost"), 4)

	nd := d.CrashDiskDropUnsynced(d.Ops())
	nf, err := nd.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(nf.Contents()) != "keep" {
		t.Fatalf("contents %q, want only the synced prefix", nf.Contents())
	}
	// A cut before the sync barrier drops everything.
	nd = d.CrashDiskDropUnsynced(1)
	nf, _ = nd.Open("f")
	if len(nf.Contents()) != 0 {
		t.Fatalf("pre-barrier crash kept %q", nf.Contents())
	}
}

func TestWriteLimitFail(t *testing.T) {
	d := New()
	f, _ := d.Create("f")
	f.SetWriteLimit(5, false)
	if n, err := f.WriteAt([]byte("abc"), 0); n != 3 || err != nil {
		t.Fatalf("within budget: %d, %v", n, err)
	}
	n, err := f.WriteAt([]byte("defg"), 3)
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("over budget: %d, %v", n, err)
	}
	if string(f.Contents()) != "abc" {
		t.Fatalf("failed write mutated file: %q", f.Contents())
	}
	f.ClearWriteLimit()
	if _, err := f.WriteAt([]byte("defg"), 3); err != nil {
		t.Fatal(err)
	}
	if string(f.Contents()) != "abcdefg" {
		t.Fatalf("after clear: %q", f.Contents())
	}
}

func TestWriteLimitShort(t *testing.T) {
	d := New()
	f, _ := d.Create("f")
	f.SetWriteLimit(5, true)
	n, err := f.WriteAt([]byte("abcdefgh"), 0)
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: %d, %v", n, err)
	}
	if string(f.Contents()) != "abcde" {
		t.Fatalf("contents %q", f.Contents())
	}
	// The partial bytes are journaled: a full-history crash image keeps
	// them.
	nf, _ := d.CrashDisk(d.Ops(), 0).Open("f")
	if string(nf.Contents()) != "abcde" {
		t.Fatalf("crash image %q", nf.Contents())
	}
}

// TestCrashImageIndependence: mutating the original disk after taking
// a crash image must not affect the image.
func TestCrashImageIndependence(t *testing.T) {
	d := New()
	f, _ := d.Create("f")
	f.WriteAt([]byte("before"), 0)
	nd := d.CrashDisk(d.Ops(), 0)
	f.WriteAt([]byte("AFTER!"), 0)
	nf, _ := nd.Open("f")
	if string(nf.Contents()) != "before" {
		t.Fatalf("crash image changed: %q", nf.Contents())
	}
	// And the image is itself a working disk: writes journal anew.
	nf.WriteAt([]byte("x"), 0)
	if string(nf.Contents()) != "xefore" {
		t.Fatalf("image write: %q", nf.Contents())
	}
	nd2 := nd.CrashDisk(nd.Ops(), 0)
	nf2, _ := nd2.Open("f")
	if string(nf2.Contents()) != "xefore" {
		t.Fatalf("second-generation crash image: %q", nf2.Contents())
	}
}
