package sjoin

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/xmltree"
)

// intervalsOf collects the intervals of all nodes with the given tag, in
// document order (the tag-index order).
func intervalsOf(roots []*xmltree.Node, tag string) []xmltree.Interval {
	var out []xmltree.Interval
	for _, r := range roots {
		for _, n := range r.Find(tag) {
			out = append(out, n.Interval)
		}
	}
	return out
}

func sampleDoc() *xmltree.Node {
	root := xmltree.E("doc_root",
		xmltree.E("article",
			xmltree.Elem("author", "Jack"),
			xmltree.Elem("author", "John"),
			xmltree.Elem("title", "Querying XML"),
		),
		xmltree.E("article",
			xmltree.E("section",
				xmltree.Elem("author", "Deep"),
			),
			xmltree.Elem("title", "Nested"),
		),
	)
	xmltree.Number(root, 1)
	return root
}

func TestStackTreeAncestorDescendant(t *testing.T) {
	root := sampleDoc()
	arts := intervalsOf([]*xmltree.Node{root}, "article")
	authors := intervalsOf([]*xmltree.Node{root}, "author")
	pairs := StackTree(arts, authors, AncestorDescendant)
	// Every author is inside exactly one article here.
	want := []Pair{{A: 0, D: 0}, {A: 0, D: 1}, {A: 1, D: 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestStackTreeParentChild(t *testing.T) {
	root := sampleDoc()
	arts := intervalsOf([]*xmltree.Node{root}, "article")
	authors := intervalsOf([]*xmltree.Node{root}, "author")
	pairs := StackTree(arts, authors, ParentChild)
	// The "Deep" author is a grandchild of article 2, so only the two
	// direct authors survive.
	want := []Pair{{A: 0, D: 0}, {A: 0, D: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pc pairs = %v, want %v", pairs, want)
	}
}

func TestStackTreeNestedAncestors(t *testing.T) {
	// section inside section: a descendant pairs with both, outermost
	// first.
	root := xmltree.E("r",
		xmltree.E("section",
			xmltree.E("section",
				xmltree.Elem("p", "x"),
			),
		),
	)
	xmltree.Number(root, 1)
	secs := intervalsOf([]*xmltree.Node{root}, "section")
	ps := intervalsOf([]*xmltree.Node{root}, "p")
	pairs := StackTree(secs, ps, AncestorDescendant)
	want := []Pair{{A: 0, D: 0}, {A: 1, D: 0}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("nested pairs = %v, want %v", pairs, want)
	}
}

func TestStackTreeSelfJoinExcludesSelf(t *testing.T) {
	root := xmltree.E("a", xmltree.E("a", xmltree.E("a")))
	xmltree.Number(root, 1)
	as := intervalsOf([]*xmltree.Node{root}, "a")
	pairs := StackTree(as, as, AncestorDescendant)
	// outer-mid, outer-inner, mid-inner; never (x, x).
	if len(pairs) != 3 {
		t.Fatalf("self join pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.A == p.D {
			t.Errorf("self pair %v", p)
		}
	}
}

func TestStackTreeAcrossDocuments(t *testing.T) {
	r1 := xmltree.E("r", xmltree.E("article", xmltree.Elem("author", "A")))
	r2 := xmltree.E("r", xmltree.E("article", xmltree.Elem("author", "B")))
	xmltree.Number(r1, 1)
	xmltree.Number(r2, 2)
	roots := []*xmltree.Node{r1, r2}
	arts := intervalsOf(roots, "article")
	auths := intervalsOf(roots, "author")
	pairs := StackTree(arts, auths, AncestorDescendant)
	want := []Pair{{A: 0, D: 0}, {A: 1, D: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("cross-doc pairs = %v, want %v", pairs, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	root := sampleDoc()
	arts := intervalsOf([]*xmltree.Node{root}, "article")
	if got := StackTree(nil, arts, AncestorDescendant); len(got) != 0 {
		t.Errorf("nil ancestors: %v", got)
	}
	if got := StackTree(arts, nil, AncestorDescendant); len(got) != 0 {
		t.Errorf("nil descendants: %v", got)
	}
	if got := NestedLoop(nil, nil, ParentChild); len(got) != 0 {
		t.Errorf("nested loop empty: %v", got)
	}
}

// randomForest builds a few random documents and returns interval lists
// for two synthetic "tags" drawn from the node population.
func randomForest(rng *rand.Rand) (alist, dlist []xmltree.Interval) {
	docs := rng.Intn(3) + 1
	for doc := 1; doc <= docs; doc++ {
		n := rng.Intn(40) + 2
		root := xmltree.E("r")
		nodes := []*xmltree.Node{root}
		for i := 1; i < n; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			child := xmltree.E("n")
			parent.Append(child)
			nodes = append(nodes, child)
		}
		xmltree.Number(root, xmltree.DocID(doc))
		// Collect in document order: both join inputs must be sorted by
		// (doc, start), as the tag index guarantees in real use.
		root.Walk(func(nd *xmltree.Node) bool {
			if rng.Intn(3) == 0 {
				alist = append(alist, nd.Interval)
			}
			if rng.Intn(3) == 0 {
				dlist = append(dlist, nd.Interval)
			}
			return true
		})
	}
	return alist, dlist
}

// TestStackTreeMatchesNestedLoopProperty is the central correctness
// property: on random inputs the single-pass join produces exactly the
// nested-loop result, pairs and order both, for both axes.
func TestStackTreeMatchesNestedLoopProperty(t *testing.T) {
	prop := func(seed int64, pc bool) bool {
		rng := rand.New(rand.NewSource(seed))
		alist, dlist := randomForest(rng)
		axis := AncestorDescendant
		if pc {
			axis = ParentChild
		}
		got := StackTree(alist, dlist, axis)
		want := NestedLoop(alist, dlist, axis)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStackTreeJoin(b *testing.B) {
	alist, dlist := benchLists()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StackTree(alist, dlist, AncestorDescendant)
	}
}

func BenchmarkNestedLoopJoin(b *testing.B) {
	alist, dlist := benchLists()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NestedLoop(alist, dlist, AncestorDescendant)
	}
}

// benchLists builds a wide two-level document: 1000 articles with 3
// authors each — the shape of the DBLP join in the paper's experiments.
func benchLists() (arts, authors []xmltree.Interval) {
	root := xmltree.E("doc_root")
	for i := 0; i < 1000; i++ {
		root.Append(xmltree.E("article",
			xmltree.Elem("author", "a"),
			xmltree.Elem("author", "b"),
			xmltree.Elem("author", "c"),
		))
	}
	xmltree.Number(root, 1)
	return intervalsOf([]*xmltree.Node{root}, "article"),
		intervalsOf([]*xmltree.Node{root}, "author")
}

// TestStackTreeParMatchesSequentialProperty: the per-document parallel
// join must return exactly the sequential pairs, in the same order,
// for any worker count — compare element-wise (the parallel path
// returns an empty non-nil slice where the sequential returns nil).
func TestStackTreeParMatchesSequentialProperty(t *testing.T) {
	prop := func(seed int64, pc bool, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alist, dlist := randomForest(rng)
		axis := AncestorDescendant
		if pc {
			axis = ParentChild
		}
		want := StackTree(alist, dlist, axis)
		got, err := StackTreePar(nil, alist, dlist, axis, int(workers%8)+1)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestStackTreeParCancelled: an already-cancelled context must yield
// ctx.Err() and no pairs on both the single-worker fallback and the
// pooled path, and a metrics-recording join must record nothing for
// the cancelled run.
func TestStackTreeParCancelled(t *testing.T) {
	arts, authors := benchLists()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		pairs, err := StackTreePar(ctx, arts, authors, AncestorDescendant, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if pairs != nil {
			t.Fatalf("workers=%d: cancelled join returned %d pairs, want none", workers, len(pairs))
		}
	}
	var m Metrics
	if _, err := StackTreeParM(ctx, arts, authors, AncestorDescendant, 4, &m); !errors.Is(err, context.Canceled) {
		t.Fatalf("StackTreeParM err=%v, want context.Canceled", err)
	}
	if m.Joins.Load() != 0 || m.Pairs.Load() != 0 {
		t.Fatalf("cancelled join recorded metrics: joins=%d pairs=%d", m.Joins.Load(), m.Pairs.Load())
	}
}
