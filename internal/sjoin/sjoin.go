// Package sjoin implements structural containment joins over interval-
// numbered node lists: given a list of potential ancestors and a list of
// potential descendants, it finds all pairs related by containment
// (ancestor-descendant) or immediate containment (parent-child).
//
// Pattern-tree matching determines "structural containment relationships
// between candidate nodes ... one pattern tree edge at a time" with
// "efficient single-pass containment join algorithms whose asymptotic
// cost is optimal" (Sec. 5.2, citing Al-Khalifa et al., ICDE 2002). The
// single-pass algorithm here is Stack-Tree: it merges the two input
// lists in document order while maintaining a stack of nested ancestors,
// and runs in O(|A| + |D| + |output|) time. A quadratic nested-loop join
// is provided as a testing and benchmarking baseline.
//
// Both inputs must be sorted by (document, start) — precisely the order
// in which the storage layer's tag index yields postings.
package sjoin

import (
	"context"
	"sort"
	"sync/atomic"

	"timber/internal/par"
	"timber/internal/xmltree"
)

// Metrics accumulates structural-join work counts for the
// observability layer. Counters are atomic so per-document joins
// running on a worker pool record into one shared Metrics without
// coordination; a nil *Metrics records nothing (a nil-check per join,
// not per pair).
type Metrics struct {
	// Joins is the number of single-pass joins performed.
	Joins atomic.Int64
	// Ancestors and Descendants count input-list entries consumed.
	Ancestors   atomic.Int64
	Descendants atomic.Int64
	// Pairs counts output pairs produced.
	Pairs atomic.Int64
}

func (m *Metrics) note(na, nd, np int) {
	if m == nil {
		return
	}
	m.Joins.Add(1)
	m.Ancestors.Add(int64(na))
	m.Descendants.Add(int64(nd))
	m.Pairs.Add(int64(np))
}

// Axis selects the structural relationship to join on.
type Axis int

const (
	// AncestorDescendant joins pairs where A properly contains D.
	AncestorDescendant Axis = iota
	// ParentChild joins pairs where A is the parent of D.
	ParentChild
)

// Pair is one join result: indices into the ancestor and descendant
// input slices.
type Pair struct {
	A int // index into the ancestor list
	D int // index into the descendant list
}

// StackTree performs a single-pass structural join between ancs and
// descs, both sorted by (doc, start). It returns all (a, d) index pairs
// where ancs[a] contains descs[d] (and, for ParentChild, is exactly one
// level up). Output pairs are grouped by descendant in document order;
// within one descendant, ancestors appear outermost first.
func StackTree(ancs, descs []xmltree.Interval, axis Axis) []Pair {
	var out []Pair
	// stack holds indices into ancs of nodes that contain the current
	// scan position, outermost at the bottom.
	var stack []int
	ai, di := 0, 0
	for di < len(descs) {
		d := descs[di]
		// Advance ancestors whose start precedes this descendant.
		for ai < len(ancs) && ancs[ai].Before(d) {
			a := ancs[ai]
			popClosed(ancs, &stack, a)
			stack = append(stack, ai)
			ai++
		}
		popClosed(ancs, &stack, d)
		for _, si := range stack {
			a := ancs[si]
			if a.Start == d.Start && a.Doc == d.Doc {
				continue // same node appearing in both lists
			}
			if axis == ParentChild && a.Level+1 != d.Level {
				continue
			}
			out = append(out, Pair{A: si, D: di})
		}
		di++
	}
	return out
}

// popClosed removes stack entries that do not contain position pos
// (ended before it, or in an earlier document).
func popClosed(ancs []xmltree.Interval, stack *[]int, pos xmltree.Interval) {
	s := *stack
	for len(s) > 0 {
		top := ancs[s[len(s)-1]]
		if top.Doc == pos.Doc && top.End > pos.Start {
			break
		}
		s = s[:len(s)-1]
	}
	*stack = s
}

// segment is one document's contiguous slice of a sorted interval list.
type segment struct {
	doc    xmltree.DocID
	lo, hi int
}

// docSegments splits a (doc, start)-sorted interval list into its
// per-document contiguous segments.
func docSegments(ivs []xmltree.Interval) []segment {
	var segs []segment
	for lo := 0; lo < len(ivs); {
		doc := ivs[lo].Doc
		hi := lo + 1
		for hi < len(ivs) && ivs[hi].Doc == doc {
			hi++
		}
		segs = append(segs, segment{doc: doc, lo: lo, hi: hi})
		lo = hi
	}
	return segs
}

// StackTreePar is StackTree partitioned by document and evaluated with
// up to workers goroutines: containment never crosses documents, so
// each document's (ancestor, descendant) segments join independently
// and the per-document outputs concatenate in document order. The
// result is byte-identical to StackTree — same pairs, same order —
// because StackTree itself processes descendants in document order and
// a descendant's matching ancestors always come from its own document.
// Inputs follow the StackTree contract: sorted by (doc, start).
//
// A non-nil ctx cancels the join between document partitions (and, on
// the parallel path, mid-batch inside the worker pool); a cancelled
// join returns ctx.Err() and no pairs — never a silently truncated
// pair list.
func StackTreePar(ctx context.Context, ancs, descs []xmltree.Interval, axis Axis, workers int) ([]Pair, error) {
	dsegs := docSegments(descs)
	if workers <= 1 || len(dsegs) <= 1 {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		return StackTree(ancs, descs, axis), nil
	}
	asegs := docSegments(ancs)
	parts := make([][]Pair, len(dsegs))
	err := par.Do(ctx, len(dsegs), workers, func(k int) error {
		ds := dsegs[k]
		// Locate this document's ancestor segment (may be absent).
		i := sort.Search(len(asegs), func(i int) bool { return asegs[i].doc >= ds.doc })
		if i == len(asegs) || asegs[i].doc != ds.doc {
			return nil
		}
		as := asegs[i]
		pairs := StackTree(ancs[as.lo:as.hi], descs[ds.lo:ds.hi], axis)
		for p := range pairs {
			pairs[p].A += as.lo
			pairs[p].D += ds.lo
		}
		parts[k] = pairs
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// StackTreeM is StackTree recording its input and output sizes into m
// (nil m records nothing).
func StackTreeM(ancs, descs []xmltree.Interval, axis Axis, m *Metrics) []Pair {
	out := StackTree(ancs, descs, axis)
	m.note(len(ancs), len(descs), len(out))
	return out
}

// StackTreeParM is StackTreePar recording the join's total input and
// output sizes into m as one logical join (the per-document partitions
// are an implementation detail; nil m records nothing). A cancelled
// join records nothing.
func StackTreeParM(ctx context.Context, ancs, descs []xmltree.Interval, axis Axis, workers int, m *Metrics) ([]Pair, error) {
	out, err := StackTreePar(ctx, ancs, descs, axis, workers)
	if err != nil {
		return nil, err
	}
	m.note(len(ancs), len(descs), len(out))
	return out, nil
}

// NestedLoop is the O(|A|·|D|) baseline with identical output semantics
// to StackTree (same pairs, same grouping: by descendant, ancestors
// outermost first).
func NestedLoop(ancs, descs []xmltree.Interval, axis Axis) []Pair {
	var out []Pair
	for di, d := range descs {
		for aiIdx, a := range ancs {
			if !a.Contains(d) {
				continue
			}
			if axis == ParentChild && a.Level+1 != d.Level {
				continue
			}
			out = append(out, Pair{A: aiIdx, D: di})
		}
	}
	return out
}
