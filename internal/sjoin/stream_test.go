package sjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timber/internal/xmltree"
)

// pushMerged feeds both sorted lists to a Stream in merged (doc, start)
// order, descendants first on ties — the documented push contract.
func pushMerged(s *Stream, alist, dlist []xmltree.Interval) {
	ai, di := 0, 0
	for di < len(dlist) {
		if ai < len(alist) && alist[ai].Before(dlist[di]) {
			s.PushAncestor(alist[ai], ai)
			ai++
			continue
		}
		s.PushDescendant(dlist[di], di)
		di++
	}
	// Remaining ancestors can produce no pairs; feeding them anyway
	// must be harmless.
	for ; ai < len(alist); ai++ {
		s.PushAncestor(alist[ai], ai)
	}
}

// TestStreamMatchesStackTreeProperty pins the incremental join against
// the batch one: same pairs, same order, on random forests, both axes.
func TestStreamMatchesStackTreeProperty(t *testing.T) {
	prop := func(seed int64, pc bool) bool {
		rng := rand.New(rand.NewSource(seed))
		alist, dlist := randomForest(rng)
		axis := AncestorDescendant
		if pc {
			axis = ParentChild
		}
		want := StackTree(alist, dlist, axis)
		var got []Pair
		s := NewStream(axis, nil, func(a, d int) { got = append(got, Pair{A: a, D: d}) })
		pushMerged(s, alist, dlist)
		s.Flush()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestStreamReuseAcrossChunks verifies Flush resets the stream so one
// Stream instance can serve successive chunks (the selection operator
// reuses one per step), and that metrics accumulate across flushes.
func TestStreamReuseAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Metrics
	for chunk := 0; chunk < 4; chunk++ {
		alist, dlist := randomForest(rng)
		want := StackTree(alist, dlist, AncestorDescendant)
		var got []Pair
		s := NewStream(AncestorDescendant, &m, func(a, d int) { got = append(got, Pair{A: a, D: d}) })
		pushMerged(s, alist, dlist)
		s.Flush()
		if len(got) != len(want) {
			t.Fatalf("chunk %d: got %d pairs, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d pair %d: got %v, want %v", chunk, i, got[i], want[i])
			}
		}
	}
	if m.Joins.Load() != 4 {
		t.Errorf("joins = %d, want 4", m.Joins.Load())
	}
}
