package sjoin

import "timber/internal/xmltree"

// Stream is the incremental, push-based form of the Stack-Tree join:
// instead of taking both sorted lists up front and returning a pair
// slice, the caller pushes ancestors and descendants one at a time in
// merged (doc, start) order and pairs are emitted through a callback as
// soon as they are known. The streaming executor's selection operator
// uses it to join a chunk of pattern-node candidates against a cursor
// without materializing either side.
//
// Push contract (mirroring StackTree's merge loop exactly):
//
//   - Overall push order is (doc, start) ascending.
//   - When an ancestor and a descendant share a start position, push
//     the DESCENDANT first: StackTree only advances ancestors that are
//     strictly Before the current descendant, so an equal-start
//     ancestor must not be on the stack when that descendant is
//     processed.
//
// Under that contract the emitted pairs are identical to StackTree's,
// in the same order: grouped by descendant in document order, ancestors
// outermost first.
type Stream struct {
	axis  Axis
	emit  func(aIdx, dIdx int)
	stack []streamEntry
	m     *Metrics
	na    int
	nd    int
	np    int
}

type streamEntry struct {
	iv  xmltree.Interval
	idx int
}

// NewStream creates a streaming join that reports each (ancestor,
// descendant) pair through emit, using the caller's own indices. A
// non-nil m accumulates the join's input/output sizes when Flush is
// called.
func NewStream(axis Axis, m *Metrics, emit func(aIdx, dIdx int)) *Stream {
	return &Stream{axis: axis, emit: emit, m: m}
}

// PushAncestor feeds the next potential ancestor.
func (s *Stream) PushAncestor(iv xmltree.Interval, idx int) {
	s.na++
	s.popClosed(iv)
	s.stack = append(s.stack, streamEntry{iv: iv, idx: idx})
}

// PushDescendant feeds the next potential descendant, emitting its
// pairs immediately.
func (s *Stream) PushDescendant(iv xmltree.Interval, idx int) {
	s.nd++
	s.popClosed(iv)
	for _, e := range s.stack {
		if e.iv.Start == iv.Start && e.iv.Doc == iv.Doc {
			continue // same node appearing in both lists
		}
		if s.axis == ParentChild && e.iv.Level+1 != iv.Level {
			continue
		}
		s.np++
		s.emit(e.idx, idx)
	}
}

// popClosed drops stack entries that do not contain pos.
func (s *Stream) popClosed(pos xmltree.Interval) {
	for len(s.stack) > 0 {
		top := s.stack[len(s.stack)-1].iv
		if top.Doc == pos.Doc && top.End > pos.Start {
			break
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
}

// Flush ends the join: it records the accumulated input/output sizes
// into the stream's Metrics (as one logical join) and resets the stack
// so the Stream can be reused for the next chunk.
func (s *Stream) Flush() {
	s.m.note(s.na, s.nd, s.np)
	s.na, s.nd, s.np = 0, 0, 0
	s.stack = s.stack[:0]
}
