package tax

import (
	"strings"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// DupElim removes trees whose key repeats an earlier tree's key,
// keeping the first occurrence (input order is otherwise preserved).
// The key function receives each tree's root.
func DupElim(c Collection, key func(*xmltree.Node) string) Collection {
	var out Collection
	seen := map[string]bool{}
	for _, t := range c.Trees {
		k := key(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Trees = append(out.Trees, t.Clone())
	}
	out.renumber()
	return out
}

// DupElimByContent eliminates duplicates "based on the content of the
// bound variable" (Sec. 4.1 naive parsing, step 1): trees are keyed by
// the content of the node the pattern binds to label; trees the pattern
// does not match key to the empty string.
func DupElimByContent(c Collection, pt *pattern.Tree, label string) Collection {
	return DupElim(c, func(root *xmltree.Node) string {
		bs := match.Match(pt, []*xmltree.Node{root})
		if len(bs) == 0 {
			return ""
		}
		return bs[0][label].Content
	})
}

// DupElimByTree eliminates structurally identical trees (same tags,
// contents, attributes and ordering) — "duplicate elimination based on
// articles" in the naive plan's join step.
func DupElimByTree(c Collection) Collection {
	return DupElim(c, TreeKey)
}

// TreeKey serializes a tree into a canonical string key for duplicate
// detection.
func TreeKey(n *xmltree.Node) string {
	var b strings.Builder
	var walk func(*xmltree.Node)
	walk = func(m *xmltree.Node) {
		b.WriteByte(0x01)
		b.WriteString(m.Tag)
		b.WriteByte(0x02)
		b.WriteString(m.Content)
		for _, a := range m.Attrs {
			b.WriteByte(0x03)
			b.WriteString(a.Name)
			b.WriteByte(0x04)
			b.WriteString(a.Value)
		}
		for _, c := range m.Children {
			walk(c)
		}
		b.WriteByte(0x05)
	}
	walk(n)
	return b.String()
}
