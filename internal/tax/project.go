package tax

import (
	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// Project is TAX projection (Sec. 2): nodes other than those named in
// the projection list are eliminated, and the surviving nodes keep the
// (partial) hierarchical relationships they had in the input. A starred
// list item retains the whole subtree under each match.
//
// One input tree contributes zero output trees (no witness), one, or
// several: retained nodes with no ancestor-descendant relationship
// among them become separate output trees, in document order.
func Project(c Collection, pt *pattern.Tree, pl []Item) Collection {
	var out Collection
	for _, tree := range c.Trees {
		out.Trees = append(out.Trees, projectTree(tree, pt, pl)...)
	}
	out.renumber()
	return out
}

func projectTree(tree *xmltree.Node, pt *pattern.Tree, pl []Item) []*xmltree.Node {
	bindings := match.Match(pt, []*xmltree.Node{tree})
	if len(bindings) == 0 {
		return nil
	}
	// keep is the set of retained input nodes; starSubtree marks roots
	// whose whole subtree is retained.
	keep := map[*xmltree.Node]bool{}
	starSubtree := map[*xmltree.Node]bool{}
	for _, b := range bindings {
		for _, it := range pl {
			n := b[it.Label]
			if n == nil {
				continue
			}
			keep[n] = true
			if it.Star {
				starSubtree[n] = true
			}
		}
	}

	// Rebuild the induced forest in one document-order pass: each kept
	// node attaches to its nearest kept ancestor; nodes inside a
	// starred subtree are copied wholesale.
	var roots []*xmltree.Node
	type frame struct {
		in  *xmltree.Node // input node
		out *xmltree.Node // its copy in the output
	}
	var stack []frame
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		// Pop ancestors that do not contain n.
		for len(stack) > 0 && !stack[len(stack)-1].in.Interval.Contains(n.Interval) {
			stack = stack[:len(stack)-1]
		}
		if keep[n] {
			var cp *xmltree.Node
			if starSubtree[n] {
				cp = n.Clone()
			} else {
				cp = shallowClone(n)
			}
			if len(stack) == 0 {
				roots = append(roots, cp)
			} else {
				stack[len(stack)-1].out.Append(cp)
			}
			if starSubtree[n] {
				// The whole subtree is already in the output; kept
				// descendants are necessarily inside it, so skip them.
				return
			}
			stack = append(stack, frame{in: n, out: cp})
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	return roots
}
