package tax

import (
	"sort"
	"strconv"
	"strings"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// GroupBy is the grouping operator of Sec. 3 — the paper's central
// contribution. It splits a collection into subsets of (not necessarily
// disjoint) data trees and represents each subset as an ordered tree:
//
//   - The pattern pt is matched against the collection; each witness
//     tree remembers the source tree it came from.
//   - The grouping basis partitions the witnesses by the values of the
//     named elements (or attributes).
//   - The ordering list orders the members of each group.
//
// Each group becomes one output tree: the root (tag TAX_group_root) has
// a left child (TAX_grouping_basis) holding one child per basis item —
// the matched node, with its subtree when the item is starred — and a
// right child (TAX_group_subroot) whose children are the source trees
// of the group's witnesses in ordering-list order. A source tree with
// several witnesses in the same group appears once per witness, and a
// source tree matching under several basis values appears in several
// groups (multiple authorship ⇒ overlapping groups).
//
// Groups are emitted in order of first appearance in witness order,
// matching Figures 3 and 10. No value-based aggregation is involved:
// grouping is a restructuring operator, orthogonal to aggregation.
func GroupBy(c Collection, pt *pattern.Tree, basis []BasisItem, ordering []OrderItem) Collection {
	witnesses := match.Match(pt, c.Trees)

	type member struct {
		binding match.Binding
		source  *xmltree.Node
		seq     int // witness order, the sort tiebreaker
	}
	type group struct {
		first   match.Binding // supplies the basis children
		members []member
	}
	var keys []string
	groups := map[string]*group{}
	for i, b := range witnesses {
		k := basisKey(b, basis)
		g, ok := groups[k]
		if !ok {
			g = &group{first: b}
			groups[k] = g
			keys = append(keys, k)
		}
		src := b[pt.Root.Label].Root()
		g.members = append(g.members, member{binding: b, source: src, seq: i})
	}

	var out Collection
	for _, k := range keys {
		g := groups[k]
		if len(ordering) > 0 {
			sort.SliceStable(g.members, func(i, j int) bool {
				a, b := g.members[i], g.members[j]
				for _, oi := range ordering {
					av := orderValue(a.binding, oi)
					bv := orderValue(b.binding, oi)
					cmp := compareValues(av, bv)
					if oi.Direction == Descending {
						cmp = -cmp
					}
					if cmp != 0 {
						return cmp < 0
					}
				}
				return a.seq < b.seq
			})
		}

		root := xmltree.E(GroupRootTag)
		basisNode := xmltree.E(GroupingBasisTag)
		for _, bi := range basis {
			bound := g.first[bi.Label]
			if bound == nil {
				continue
			}
			if bi.Star {
				basisNode.Append(bound.Clone())
			} else {
				basisNode.Append(shallowClone(bound))
			}
		}
		subroot := xmltree.E(GroupSubrootTag)
		for _, m := range g.members {
			subroot.Append(m.source.Clone())
		}
		root.Append(basisNode, subroot)
		out.Trees = append(out.Trees, root)
	}
	out.renumber()
	return out
}

// basisKey derives the partition key of a witness: the tuple of basis
// values, NUL-separated.
func basisKey(b match.Binding, basis []BasisItem) string {
	parts := make([]string, len(basis))
	for i, bi := range basis {
		n := b[bi.Label]
		if n == nil {
			continue
		}
		if bi.Attr != "" {
			v, _ := n.Attr(bi.Attr)
			parts[i] = v
		} else {
			parts[i] = n.Content
		}
	}
	return strings.Join(parts, "\x00")
}

// orderValue extracts an ordering-list component's value from a witness.
func orderValue(b match.Binding, oi OrderItem) string {
	n := b[oi.Label]
	if n == nil {
		return ""
	}
	if oi.Attr != "" {
		v, _ := n.Attr(oi.Attr)
		return v
	}
	return n.Content
}

// CompareValues compares two values drawn from an ordered domain:
// numerically when both parse as numbers, lexicographically otherwise.
// It is the comparison the ordering list uses; the physical executors
// share it so every plan orders identically.
func CompareValues(a, b string) int { return compareValues(a, b) }

// compareValues compares two values drawn from an ordered domain:
// numerically when both parse as numbers, lexicographically otherwise.
func compareValues(a, b string) int {
	if an, err1 := strconv.ParseFloat(a, 64); err1 == nil {
		if bn, err2 := strconv.ParseFloat(b, 64); err2 == nil {
			switch {
			case an < bn:
				return -1
			case an > bn:
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(a, b)
}
