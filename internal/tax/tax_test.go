package tax

import (
	"reflect"
	"strings"
	"testing"

	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

func sampleCollection() Collection {
	return NewCollection(paperdata.SampleDatabase())
}

func TestNewCollectionNumbersTrees(t *testing.T) {
	c := NewCollection(paperdata.SampleDatabase(), paperdata.TransactionArticles())
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Trees[0].Interval.Doc != 1 || c.Trees[1].Interval.Doc != 2 {
		t.Error("trees not numbered with sequential doc IDs")
	}
	if !xmltree.Numbered(c.Trees[0]) {
		t.Error("tree 0 not numbered")
	}
}

func TestCollectionClone(t *testing.T) {
	c := sampleCollection()
	cp := c.Clone()
	cp.Trees[0].Children[0].Children[0].Content = "X"
	if c.Trees[0].Children[0].Children[0].Content == "X" {
		t.Error("clone aliases original")
	}
	if len(c.Strings()) != 1 {
		t.Error("Strings length")
	}
}

func TestItemStrings(t *testing.T) {
	if L("$2").String() != "$2" || LS("$2").String() != "$2*" {
		t.Error("item strings")
	}
	if (BasisItem{Label: "$3", Attr: "id", Star: true}).String() != "$3.id*" {
		t.Error("basis item string")
	}
	if Ascending.String() != "ASCENDING" || Descending.String() != "DESCENDING" {
		t.Error("direction strings")
	}
}

func articleAuthorPattern() *pattern.Tree {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(root)
}

func TestSelectWitnessTrees(t *testing.T) {
	c := sampleCollection()
	out := Select(c, articleAuthorPattern(), nil)
	// 5 author bindings → 5 witness trees of shape article[author].
	if out.Len() != 5 {
		t.Fatalf("Select produced %d trees, want 5", out.Len())
	}
	want := []string{
		`article[author:"Jack"]`,
		`article[author:"John"]`,
		`article[author:"Jill"]`,
		`article[author:"Jack"]`,
		`article[author:"John"]`,
	}
	for i, s := range out.Strings() {
		if s != want[i] {
			t.Errorf("witness %d = %s, want %s", i, s, want[i])
		}
	}
}

func TestSelectWithAdornment(t *testing.T) {
	c := sampleCollection()
	// Adorning $1 returns the article's full subtree.
	out := Select(c, articleAuthorPattern(), []Item{LS("$1")})
	if out.Len() != 5 {
		t.Fatalf("len = %d", out.Len())
	}
	first := out.Trees[0]
	if first.Child("title") == nil || first.Child("year") == nil {
		t.Errorf("adorned witness lost subtree: %s", first)
	}
	// The two witnesses of the first article are identical full trees.
	if TreeKey(out.Trees[0]) != TreeKey(out.Trees[1]) {
		t.Error("adorned witnesses of same article should be equal")
	}
}

func TestSelectPreservesInputOrderAndContents(t *testing.T) {
	c := sampleCollection()
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "title"}))
	out := Select(c, pt, nil)
	var titles []string
	for _, tr := range out.Trees {
		titles = append(titles, tr.Content)
	}
	want := []string{"Querying XML", "XML and the Web", "Hack HTML"}
	if !reflect.DeepEqual(titles, want) {
		t.Errorf("titles = %v", titles)
	}
}

func TestProjectKeepsHierarchy(t *testing.T) {
	c := sampleCollection()
	// Project doc_root//article with article starred: one output tree
	// per input tree (root in PL), with articles as children.
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	pt := pattern.MustTree(root)
	out := Project(c, pt, []Item{L("$1"), LS("$2")})
	if out.Len() != 1 {
		t.Fatalf("project output = %d trees", out.Len())
	}
	got := out.Trees[0]
	if got.Tag != "doc_root" || len(got.Children) != 3 {
		t.Fatalf("projected tree = %s", got)
	}
	// Starred articles keep full subtrees.
	if got.Children[0].Child("publisher") == nil {
		t.Error("starred article lost its subtree")
	}
}

func TestProjectMultipleOutputTrees(t *testing.T) {
	c := sampleCollection()
	// Keep only authors: no retained ancestors, so each author becomes
	// its own output tree (Sec. 2: "could be more than one").
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "author"}))
	out := Project(c, pt, []Item{L("$1")})
	if out.Len() != 5 {
		t.Fatalf("project output = %d trees, want 5", out.Len())
	}
	if out.Trees[0].Tag != "author" || out.Trees[0].Content != "Jack" {
		t.Errorf("first = %s", out.Trees[0])
	}
}

func TestProjectNoWitnessNoOutput(t *testing.T) {
	c := sampleCollection()
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "nonexistent"}))
	if out := Project(c, pt, []Item{L("$1")}); out.Len() != 0 {
		t.Errorf("output = %d trees, want 0", out.Len())
	}
}

func TestProjectDeduplicatesSharedNodes(t *testing.T) {
	// An article with two authors yields two witnesses, but the article
	// node must appear once in the projection.
	c := sampleCollection()
	out := Project(c, articleAuthorPattern(), []Item{L("$1"), L("$2")})
	// Articles have no retained ancestors: 3 article output trees.
	if out.Len() != 3 {
		t.Fatalf("output trees = %d, want 3", out.Len())
	}
	first := out.Trees[0]
	if len(first.ChildrenTagged("author")) != 2 {
		t.Errorf("first article should keep both authors: %s", first)
	}
	if first.Child("title") != nil {
		t.Error("title should be projected away")
	}
}

func TestDupElim(t *testing.T) {
	c := sampleCollection()
	// All authors as single-node trees, then dedupe by content.
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "author"}))
	authors := Select(c, pt, nil)
	if authors.Len() != 5 {
		t.Fatalf("authors = %d", authors.Len())
	}
	distinct := DupElim(authors, func(n *xmltree.Node) string { return n.Content })
	var got []string
	for _, tr := range distinct.Trees {
		got = append(got, tr.Content)
	}
	want := []string{"Jack", "John", "Jill"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct authors = %v, want %v (first occurrence order)", got, want)
	}
}

func TestDupElimByContentAndByTree(t *testing.T) {
	c := sampleCollection()
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "author"}))
	authors := Select(c, pt, nil)
	d1 := DupElimByContent(authors, pt, "$1")
	if d1.Len() != 3 {
		t.Errorf("DupElimByContent = %d trees", d1.Len())
	}
	d2 := DupElimByTree(authors)
	if d2.Len() != 3 {
		t.Errorf("DupElimByTree = %d trees", d2.Len())
	}
}

// TestFigure3GroupByAuthor reproduces Figure 3: grouping the witness
// trees of Figure 2 by author ($3.content), ordering each group by
// DESCENDING title ($2.content).
func TestFigure3GroupByAuthor(t *testing.T) {
	pt := paperdata.Figure1Pattern()
	// Figure 2: the witness trees of the Figure 1 pattern against the
	// DBLP fragment. These witness trees are the collection grouped in
	// Figure 3 ("Grouping the witness trees of Figure 2 by author").
	witnesses := Select(NewCollection(paperdata.TransactionArticles()), pt, nil)
	if witnesses.Len() != 4 {
		t.Fatalf("figure 2 witnesses = %d, want 4", witnesses.Len())
	}
	out := GroupBy(witnesses, pt,
		[]BasisItem{{Label: "$3"}},
		[]OrderItem{{Direction: Descending, Label: "$2"}})

	// Three groups: Silberschatz, Garcia-Molina, Thompson — in first-
	// appearance order per the figure.
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	type group struct {
		author string
		titles []string
	}
	var got []group
	for _, g := range out.Trees {
		if g.Tag != GroupRootTag || len(g.Children) != 2 {
			t.Fatalf("malformed group tree: %s", g)
		}
		basis := g.Children[0]
		sub := g.Children[1]
		if basis.Tag != GroupingBasisTag || sub.Tag != GroupSubrootTag {
			t.Fatalf("wrong structural tags: %s", g)
		}
		if len(basis.Children) != 1 || basis.Children[0].Tag != "author" {
			t.Fatalf("basis children: %s", basis)
		}
		gr := group{author: basis.Children[0].Content}
		for _, member := range sub.Children {
			if member.Tag != "article" {
				t.Fatalf("group member should be the source article tree, got %s", member.Tag)
			}
			gr.titles = append(gr.titles, member.Child("title").Content)
		}
		got = append(got, gr)
	}
	want := []group{
		{author: "Silberschatz", titles: []string{"Transaction Mng ...", "Overview of Transaction Mng"}},
		{author: "Garcia-Molina", titles: []string{"Overview of Transaction Mng"}},
		{author: "Thompson", titles: []string{"Transaction Mng ..."}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("groups:\n got %+v\nwant %+v", got, want)
	}
}

// TestFigure10GroupBy reproduces Figure 10: grouping the article
// collection of Figure 9 by author, yielding overlapping groups for
// Jack, John and Jill.
func TestFigure10GroupBy(t *testing.T) {
	// Figure 9's collection: the three articles (with full subtrees).
	sample := NewCollection(paperdata.SampleDatabase())
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	selPT := pattern.MustTree(root)
	articles := Project(sample, selPT, []Item{LS("$2")})
	if articles.Len() != 3 {
		t.Fatalf("figure 9 collection = %d trees", articles.Len())
	}

	out := GroupBy(articles, paperdata.Query1GroupByPattern(),
		[]BasisItem{{Label: "$2"}}, nil)
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3 (Jack, John, Jill)", out.Len())
	}
	wantTitles := map[string][]string{
		"Jack": {"Querying XML", "XML and the Web"},
		"John": {"Querying XML", "Hack HTML"},
		"Jill": {"XML and the Web"},
	}
	order := []string{"Jack", "John", "Jill"}
	for i, g := range out.Trees {
		author := g.Children[0].Children[0].Content
		if author != order[i] {
			t.Errorf("group %d author = %s, want %s", i, author, order[i])
		}
		var titles []string
		for _, m := range g.Children[1].Children {
			titles = append(titles, m.Child("title").Content)
		}
		if !reflect.DeepEqual(titles, wantTitles[author]) {
			t.Errorf("%s titles = %v, want %v", author, titles, wantTitles[author])
		}
	}
}

func TestGroupByStarredBasis(t *testing.T) {
	c := sampleCollection()
	out := GroupBy(c, paperdata.Query1GroupByPattern(),
		[]BasisItem{{Label: "$2", Star: true}}, nil)
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	// Starred basis items include the subtree of the matching node; an
	// author element is a leaf, so just verify content survives.
	if out.Trees[0].Children[0].Children[0].Content != "Jack" {
		t.Errorf("basis = %s", out.Trees[0].Children[0])
	}
}

func TestGroupByAttrBasis(t *testing.T) {
	r := xmltree.E("root",
		xmltree.E("item").WithAttr("cat", "a"),
		xmltree.E("item").WithAttr("cat", "b"),
		xmltree.E("item").WithAttr("cat", "a"),
	)
	c := NewCollection(r)
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "item"}))
	out := GroupBy(c, pt, []BasisItem{{Label: "$1", Attr: "cat"}}, nil)
	if out.Len() != 2 {
		t.Fatalf("attr groups = %d, want 2", out.Len())
	}
	if len(out.Trees[0].Children[1].Children) != 2 {
		t.Error("group 'a' should have two members")
	}
}

func TestGroupByOrderingAscendingAndTies(t *testing.T) {
	c := NewCollection(
		xmltree.E("article", xmltree.Elem("author", "A"), xmltree.Elem("year", "2001"), xmltree.Elem("title", "t1")),
		xmltree.E("article", xmltree.Elem("author", "A"), xmltree.Elem("year", "1999"), xmltree.Elem("title", "t2")),
		xmltree.E("article", xmltree.Elem("author", "A"), xmltree.Elem("year", "2001"), xmltree.Elem("title", "t0")),
	)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "year"}))
	pt := pattern.MustTree(root)
	out := GroupBy(c, pt, []BasisItem{{Label: "$2"}},
		[]OrderItem{{Direction: Ascending, Label: "$3"}})
	if out.Len() != 1 {
		t.Fatalf("groups = %d", out.Len())
	}
	var titles []string
	for _, m := range out.Trees[0].Children[1].Children {
		titles = append(titles, m.Child("title").Content)
	}
	// 1999 first; the two 2001 articles keep document order (t1, t0).
	want := []string{"t2", "t1", "t0"}
	if !reflect.DeepEqual(titles, want) {
		t.Errorf("ordered titles = %v, want %v", titles, want)
	}
}

func TestGroupByNumericOrdering(t *testing.T) {
	c := NewCollection(
		xmltree.E("a", xmltree.Elem("k", "g"), xmltree.Elem("v", "9")),
		xmltree.E("a", xmltree.Elem("k", "g"), xmltree.Elem("v", "100")),
	)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "a"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "k"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "v"}))
	pt := pattern.MustTree(root)
	out := GroupBy(c, pt, []BasisItem{{Label: "$2"}},
		[]OrderItem{{Direction: Ascending, Label: "$3"}})
	vs := out.Trees[0].Children[1].Children
	if vs[0].Child("v").Content != "9" || vs[1].Child("v").Content != "100" {
		t.Errorf("numeric ordering failed: %s, %s", vs[0], vs[1])
	}
}

func TestGroupByMultiItemBasis(t *testing.T) {
	r := xmltree.E("root",
		xmltree.E("rec", xmltree.Elem("x", "1"), xmltree.Elem("y", "a")),
		xmltree.E("rec", xmltree.Elem("x", "1"), xmltree.Elem("y", "b")),
		xmltree.E("rec", xmltree.Elem("x", "1"), xmltree.Elem("y", "a")),
	)
	c := NewCollection(r)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "rec"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "x"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "y"}))
	pt := pattern.MustTree(root)
	out := GroupBy(c, pt, []BasisItem{{Label: "$2"}, {Label: "$3"}}, nil)
	if out.Len() != 2 {
		t.Fatalf("(x,y) groups = %d, want 2", out.Len())
	}
	basis := out.Trees[0].Children[0]
	if len(basis.Children) != 2 {
		t.Errorf("basis should hold both items: %s", basis)
	}
}

func TestGroupByEmptyCollection(t *testing.T) {
	out := GroupBy(Collection{}, paperdata.Query1GroupByPattern(), []BasisItem{{Label: "$2"}}, nil)
	if out.Len() != 0 {
		t.Errorf("groups of empty = %d", out.Len())
	}
}

func TestLeftOuterJoinFigure8(t *testing.T) {
	// Left: distinct author trees under doc_root (Figure 7).
	// Right: the database. Join on author content, SL = $5 (article*).
	sample := paperdata.SampleDatabase()
	left := NewCollection(
		xmltree.E("doc_root", xmltree.Elem("author", "Jack")),
		xmltree.E("doc_root", xmltree.Elem("author", "John")),
		xmltree.E("doc_root", xmltree.Elem("author", "Jill")),
		xmltree.E("doc_root", xmltree.Elem("author", "Nobody")),
	)
	right := NewCollection(sample)

	lroot := pattern.NewNode("$2", pattern.TagEq{Tag: "doc_root"})
	lroot.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "author"}))
	rroot := pattern.NewNode("$4", pattern.TagEq{Tag: "doc_root"})
	art := rroot.AddChild(pattern.Descendant, pattern.NewNode("$5", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$6", pattern.TagEq{Tag: "author"}))

	out := LeftOuterJoin(left, right, JoinSpec{
		LeftPattern:  pattern.MustTree(lroot),
		LeftLabel:    "$3",
		RightPattern: pattern.MustTree(rroot),
		RightLabel:   "$6",
		SL:           []Item{LS("$5")},
	})
	if out.Len() != 4 {
		t.Fatalf("join output = %d trees, want 4 (one per left tree)", out.Len())
	}
	// Jack: 2 articles; John: 2; Jill: 1; Nobody: 0 (outer semantics).
	wantCounts := []int{2, 2, 1, 0}
	for i, tr := range out.Trees {
		if tr.Tag != ProdRootTag {
			t.Fatalf("output root = %s", tr.Tag)
		}
		arts := tr.ChildrenTagged("article")
		if len(arts) != wantCounts[i] {
			t.Errorf("tree %d has %d articles, want %d", i, len(arts), wantCounts[i])
		}
		if tr.Children[0].Tag != "doc_root" {
			t.Errorf("tree %d should start with the left tree", i)
		}
	}
	// Articles carry their full subtrees (SL starred).
	if out.Trees[0].ChildrenTagged("article")[0].Child("title") == nil {
		t.Error("article lost subtree through join")
	}
}

func TestLeftOuterJoinDedupesSharedWitness(t *testing.T) {
	// A left tree with TWO identical author bindings must not duplicate
	// right matches (the witness-order dedupe).
	left := NewCollection(
		xmltree.E("doc_root", xmltree.Elem("author", "Jack"), xmltree.Elem("author", "Jack")),
	)
	right := NewCollection(paperdata.SampleDatabase())
	lroot := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	lroot.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	rroot := pattern.NewNode("$4", pattern.TagEq{Tag: "doc_root"})
	art := rroot.AddChild(pattern.Descendant, pattern.NewNode("$5", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$6", pattern.TagEq{Tag: "author"}))
	out := LeftOuterJoin(left, right, JoinSpec{
		LeftPattern:  pattern.MustTree(lroot),
		LeftLabel:    "$2",
		RightPattern: pattern.MustTree(rroot),
		RightLabel:   "$6",
		SL:           []Item{LS("$5")},
	})
	if got := len(out.Trees[0].ChildrenTagged("article")); got != 2 {
		t.Errorf("articles = %d, want 2 (each right witness once)", got)
	}
}

func TestStitch(t *testing.T) {
	a := NewCollection(xmltree.Elem("author", "Jack"), xmltree.Elem("author", "Jill"))
	b := NewCollection(xmltree.Elem("title", "T1"))
	out := Stitch("authorpubs", a, b)
	if out.Len() != 2 {
		t.Fatalf("stitch len = %d", out.Len())
	}
	if len(out.Trees[0].Children) != 2 {
		t.Errorf("first stitched tree = %s", out.Trees[0])
	}
	// Full outer: second tree has only the author part.
	if len(out.Trees[1].Children) != 1 || out.Trees[1].Children[0].Content != "Jill" {
		t.Errorf("second stitched tree = %s", out.Trees[1])
	}
}

func TestStitchChildren(t *testing.T) {
	a := NewCollection(xmltree.E("w", xmltree.Elem("author", "Jack")))
	b := NewCollection(xmltree.E("w", xmltree.Elem("title", "T1"), xmltree.Elem("title", "T2")))
	out := StitchChildren("authorpubs", a, b)
	if out.Len() != 1 {
		t.Fatalf("len = %d", out.Len())
	}
	got := out.Trees[0]
	if got.Tag != "authorpubs" || len(got.Children) != 3 {
		t.Errorf("stitched = %s", got)
	}
}

func TestRenameRoot(t *testing.T) {
	c := NewCollection(xmltree.E(ProdRootTag, xmltree.Elem("author", "Jack")))
	out := RenameRoot(c, "authorpubs")
	if out.Trees[0].Tag != "authorpubs" {
		t.Errorf("root tag = %s", out.Trees[0].Tag)
	}
	// Children survive.
	if out.Trees[0].Children[0].Content != "Jack" {
		t.Error("children lost in rename")
	}
}

func TestRenameByPattern(t *testing.T) {
	c := sampleCollection()
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "author"}))
	out := Rename(c, pt, "$1", "writer")
	if len(out.Trees[0].Find("writer")) != 5 || len(out.Trees[0].Find("author")) != 0 {
		t.Error("pattern rename failed")
	}
}

func TestAggregateCount(t *testing.T) {
	c := sampleCollection()
	// Count authors per document, appended under doc_root.
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	pt := pattern.MustTree(root)
	out := Aggregate(c, pt, AggSpec{
		Fn: Count, SrcLabel: "$2", NewTag: "authorCount",
		AnchorLabel: "$1", Place: AfterLastChild,
	})
	if out.Len() != 1 {
		t.Fatalf("len = %d", out.Len())
	}
	got := out.Trees[0].Child("authorCount")
	if got == nil || got.Content != "5" {
		t.Errorf("authorCount = %v", got)
	}
	// Original children still present before the new node.
	if out.Trees[0].Children[len(out.Trees[0].Children)-1] != got {
		t.Error("aggregate node should be the last child")
	}
}

func TestAggregateSumMinMaxAvg(t *testing.T) {
	r := xmltree.E("doc",
		xmltree.Elem("v", "4"), xmltree.Elem("v", "1"), xmltree.Elem("v", "7"),
	)
	c := NewCollection(r)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "v"}))
	pt := pattern.MustTree(root)
	cases := []struct {
		fn   AggFunc
		want string
	}{
		{Sum, "12"}, {Min, "1"}, {Max, "7"}, {Avg, "4"},
	}
	for _, tc := range cases {
		t.Run(tc.fn.String(), func(t *testing.T) {
			out := Aggregate(c, pt, AggSpec{
				Fn: tc.fn, SrcLabel: "$2", NewTag: "agg",
				AnchorLabel: "$1", Place: AfterLastChild,
			})
			got := out.Trees[0].Child("agg")
			if got == nil || got.Content != tc.want {
				t.Errorf("%s = %v, want %s", tc.fn, got, tc.want)
			}
		})
	}
}

func TestAggregateMinMaxLexicographic(t *testing.T) {
	r := xmltree.E("doc", xmltree.Elem("v", "pear"), xmltree.Elem("v", "apple"))
	c := NewCollection(r)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "v"}))
	pt := pattern.MustTree(root)
	out := Aggregate(c, pt, AggSpec{Fn: Min, SrcLabel: "$2", NewTag: "m", AnchorLabel: "$1", Place: AfterLastChild})
	if got := out.Trees[0].Child("m").Content; got != "apple" {
		t.Errorf("lexicographic MIN = %s", got)
	}
}

func TestAggregatePlacements(t *testing.T) {
	r := xmltree.E("doc", xmltree.Elem("a", "x"), xmltree.Elem("b", "y"))
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "b"}))
	pt := pattern.MustTree(root)

	before := Aggregate(NewCollection(r.Clone()), pt, AggSpec{
		Fn: Count, NewTag: "n", AnchorLabel: "$2", Place: Precedes,
	})
	tags := childTags(before.Trees[0])
	if !reflect.DeepEqual(tags, []string{"a", "n", "b"}) {
		t.Errorf("precedes tags = %v", tags)
	}

	after := Aggregate(NewCollection(r.Clone()), pt, AggSpec{
		Fn: Count, NewTag: "n", AnchorLabel: "$2", Place: Follows,
	})
	tags = childTags(after.Trees[0])
	if !reflect.DeepEqual(tags, []string{"a", "b", "n"}) {
		t.Errorf("follows tags = %v", tags)
	}
}

func TestAggregateCountZeroWitnesses(t *testing.T) {
	r := xmltree.E("doc", xmltree.Elem("a", "x"))
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "zzz"}))
	pt := pattern.MustTree(root)
	out := Aggregate(NewCollection(r), pt, AggSpec{
		Fn: Count, SrcLabel: "$2", NewTag: "n", AnchorLabel: "$1", Place: AfterLastChild,
	})
	got := out.Trees[0].Child("n")
	if got == nil || got.Content != "0" {
		t.Errorf("count of nothing = %v, want 0", got)
	}
}

func childTags(n *xmltree.Node) []string {
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Tag)
	}
	return out
}

func TestTreeKeyDistinguishes(t *testing.T) {
	a := xmltree.E("x", xmltree.Elem("a", "1"), xmltree.Elem("b", ""))
	b := xmltree.E("x", xmltree.Elem("a", "1b"), xmltree.E("b"))
	if TreeKey(a) == TreeKey(b) {
		t.Error("TreeKey collision on structurally different trees")
	}
	if TreeKey(a) != TreeKey(a.Clone()) {
		t.Error("TreeKey should be stable under clone")
	}
	if !strings.Contains(TreeKey(a), "a") {
		t.Error("key should embed tags")
	}
}
