package tax

import (
	"strconv"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// AggFunc is an aggregate function mapping a collection of values to a
// summary value (Sec. 4.3).
type AggFunc int

// The aggregate functions the paper names: MIN, MAX, COUNT, SUM — plus
// AVG for completeness.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AVG"
	}
}

// Placement says where the computed aggregate node is inserted relative
// to the update-spec node.
type Placement int

// Placements from the paper's examples: after lastChild($i),
// precedes($i), follows($i).
const (
	// AfterLastChild appends the aggregate node as the last child of
	// the node matching the anchor label.
	AfterLastChild Placement = iota
	// Precedes inserts the aggregate node as the left sibling of the
	// node matching the anchor label.
	Precedes
	// Follows inserts the aggregate node as the right sibling of the
	// node matching the anchor label.
	Follows
)

func (p Placement) String() string {
	switch p {
	case AfterLastChild:
		return "afterLastChild"
	case Precedes:
		return "precedes"
	default:
		return "follows"
	}
}

// AggSpec parameterizes the aggregation operator: which bound node's
// values to aggregate, what to call the result, and where to put it.
type AggSpec struct {
	// Fn is the aggregate function.
	Fn AggFunc
	// SrcLabel names the pattern node whose values feed the function;
	// SrcAttr selects an attribute of it (empty = content). For Count
	// the values are ignored — witnesses are counted.
	SrcLabel string
	SrcAttr  string
	// NewTag is the element name of the created aggregate node
	// (aggAttr in the paper's notation).
	NewTag string
	// AnchorLabel names the pattern node the placement is relative to.
	AnchorLabel string
	// Place positions the new node.
	Place Placement
}

// Aggregate applies an aggregate function over each input tree's
// witnesses and inserts the computed value as a new node (Sec. 4.3).
// The output contains one tree per input tree, identical to the input
// except for the inserted node. When the pattern does not match a tree,
// COUNT still attaches a 0 node to the tree root (count of an empty
// collection); other functions leave the tree unchanged, as there is no
// value and no anchor.
func Aggregate(c Collection, pt *pattern.Tree, spec AggSpec) Collection {
	var out Collection
	for _, tree := range c.Trees {
		bindings := match.Match(pt, []*xmltree.Node{tree})
		cp := tree.Clone()
		switch {
		case len(bindings) > 0:
			anchor := findInClone(cp, bindings[0][spec.AnchorLabel])
			if anchor == nil {
				anchor = cp
			}
			node := xmltree.Elem(spec.NewTag, computeAggregate(bindings, spec))
			insertAt(anchor, node, spec.Place)
		case spec.Fn == Count:
			// COUNT over zero witnesses is 0; with no binding there is
			// no anchor, so attach to the tree root.
			cp.Append(xmltree.Elem(spec.NewTag, "0"))
		}
		out.Trees = append(out.Trees, cp)
	}
	out.renumber()
	return out
}

// computeAggregate folds the witnesses' source values.
func computeAggregate(bindings []match.Binding, spec AggSpec) string {
	if spec.Fn == Count {
		return strconv.Itoa(len(bindings))
	}
	var nums []float64
	var strs []string
	for _, b := range bindings {
		n := b[spec.SrcLabel]
		if n == nil {
			continue
		}
		v := n.Content
		if spec.SrcAttr != "" {
			v, _ = n.Attr(spec.SrcAttr)
		}
		strs = append(strs, v)
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			nums = append(nums, f)
		}
	}
	switch spec.Fn {
	case Sum:
		total := 0.0
		for _, f := range nums {
			total += f
		}
		return formatNumber(total)
	case Avg:
		if len(nums) == 0 {
			return ""
		}
		total := 0.0
		for _, f := range nums {
			total += f
		}
		return formatNumber(total / float64(len(nums)))
	case Min, Max:
		// Numeric when every value is numeric, else lexicographic.
		if len(nums) == len(strs) && len(nums) > 0 {
			best := nums[0]
			for _, f := range nums[1:] {
				if (spec.Fn == Min && f < best) || (spec.Fn == Max && f > best) {
					best = f
				}
			}
			return formatNumber(best)
		}
		if len(strs) == 0 {
			return ""
		}
		best := strs[0]
		for _, s := range strs[1:] {
			if (spec.Fn == Min && s < best) || (spec.Fn == Max && s > best) {
				best = s
			}
		}
		return best
	default:
		return ""
	}
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// findInClone locates, inside a cloned tree, the node corresponding to
// orig in the original tree, using the interval numbers Clone preserves.
func findInClone(cloneRoot, orig *xmltree.Node) *xmltree.Node {
	if orig == nil {
		return nil
	}
	return xmltree.NodeByID(cloneRoot, orig.Interval.ID())
}

// insertAt places node relative to anchor.
func insertAt(anchor, node *xmltree.Node, place Placement) {
	switch place {
	case AfterLastChild:
		anchor.Append(node)
	case Precedes, Follows:
		parent := anchor.Parent
		if parent == nil {
			// No sibling position exists at a root; fall back to last
			// child, keeping the operator total.
			anchor.Append(node)
			return
		}
		idx := 0
		for i, c := range parent.Children {
			if c == anchor {
				idx = i
				break
			}
		}
		if place == Follows {
			idx++
		}
		node.Parent = parent
		parent.Children = append(parent.Children, nil)
		copy(parent.Children[idx+1:], parent.Children[idx:])
		parent.Children[idx] = node
	}
}
