package tax

import (
	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// Select is TAX selection (Sec. 2): it returns one output tree per
// embedding of the pattern into the collection — the witness tree,
// which records not just that a tree satisfied the predicate but how.
// The adornment list sl names pattern nodes whose descendants are also
// returned (starring is implicit: any label in sl keeps the full
// subtree, per the paper's "not just the nodes themselves, but all
// descendants"). Contents of all nodes are preserved; the relative
// order among nodes is preserved; because a pattern can match many
// times in one tree, selection is one-many.
func Select(c Collection, pt *pattern.Tree, sl []Item) Collection {
	starred := make(map[string]bool, len(sl))
	for _, it := range sl {
		starred[it.Label] = true // adornment-list labels keep subtrees
	}
	var out Collection
	for _, b := range match.Match(pt, c.Trees) {
		out.Trees = append(out.Trees, witnessTree(pt.Root, b, starred))
	}
	out.renumber()
	return out
}

// witnessTree materializes one witness: the pattern shape instantiated
// with the bound nodes. A node whose label is starred carries its full
// input subtree (which already contains any descendant matches); an
// unstarred node carries only itself plus the witness subtrees of its
// pattern children.
func witnessTree(pn *pattern.Node, b match.Binding, starred map[string]bool) *xmltree.Node {
	bound := b[pn.Label]
	if starred[pn.Label] {
		return bound.Clone()
	}
	n := shallowClone(bound)
	for _, pc := range pn.Children {
		n.Append(witnessTree(pc, b, starred))
	}
	return n
}

// shallowClone copies a node without its children.
func shallowClone(n *xmltree.Node) *xmltree.Node {
	c := &xmltree.Node{Tag: n.Tag, Content: n.Content, Interval: n.Interval}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]xmltree.Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	return c
}
