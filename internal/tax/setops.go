package tax

import (
	"sort"

	"timber/internal/xmltree"
)

// This file implements the remaining bulk operators of the TAX algebra
// (Jagadish et al., DBPL 2001 — the paper's reference [8]) that
// "Grouping in XML" builds on but does not re-describe: the set
// operations, the product underlying joins, and reordering. Collections
// are ordered multisets, so the set operations use bag semantics keyed
// by structural tree equality (TreeKey).

// Union concatenates two collections: every tree of a, then every tree
// of b (bag union — duplicates are preserved, matching the multiset
// carrier).
func Union(a, b Collection) Collection {
	var out Collection
	for _, t := range a.Trees {
		out.Trees = append(out.Trees, t.Clone())
	}
	for _, t := range b.Trees {
		out.Trees = append(out.Trees, t.Clone())
	}
	out.renumber()
	return out
}

// Intersect returns the trees of a that are structurally equal to some
// tree of b, with bag semantics: each occurrence in a consumes one
// occurrence in b. Input order (of a) is preserved.
func Intersect(a, b Collection) Collection {
	avail := map[string]int{}
	for _, t := range b.Trees {
		avail[TreeKey(t)]++
	}
	var out Collection
	for _, t := range a.Trees {
		k := TreeKey(t)
		if avail[k] > 0 {
			avail[k]--
			out.Trees = append(out.Trees, t.Clone())
		}
	}
	out.renumber()
	return out
}

// Difference returns the trees of a not matched by an occurrence in b
// (bag difference). Input order is preserved.
func Difference(a, b Collection) Collection {
	avail := map[string]int{}
	for _, t := range b.Trees {
		avail[TreeKey(t)]++
	}
	var out Collection
	for _, t := range a.Trees {
		k := TreeKey(t)
		if avail[k] > 0 {
			avail[k]--
			continue
		}
		out.Trees = append(out.Trees, t.Clone())
	}
	out.renumber()
	return out
}

// Product pairs every tree of a with every tree of b under a
// TAX_prod_root, in (a-major) order — the cartesian product joins are
// derived from. |a|×|b| output trees.
func Product(a, b Collection) Collection {
	var out Collection
	for _, ta := range a.Trees {
		for _, tb := range b.Trees {
			out.Trees = append(out.Trees, xmltree.E(ProdRootTag, ta.Clone(), tb.Clone()))
		}
	}
	out.renumber()
	return out
}

// Reorder sorts the collection's trees by a key function, stably (equal
// keys keep input order). TAX's reordering operator generalizes
// relational ORDER BY to collections of trees; the key function plays
// the ordering list's role.
func Reorder(c Collection, key func(*xmltree.Node) string, dir Direction) Collection {
	type keyed struct {
		tree *xmltree.Node
		key  string
	}
	ks := make([]keyed, len(c.Trees))
	for i, t := range c.Trees {
		ks[i] = keyed{tree: t.Clone(), key: key(t)}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		cmp := compareValues(ks[i].key, ks[j].key)
		if dir == Descending {
			cmp = -cmp
		}
		return cmp < 0
	})
	var out Collection
	for _, k := range ks {
		out.Trees = append(out.Trees, k.tree)
	}
	out.renumber()
	return out
}

// ReorderByContent sorts trees by the content of the first node the
// pattern-free tag lookup finds ("" when absent) — the common case of
// ordering a collection of records by one child element.
func ReorderByContent(c Collection, tag string, dir Direction) Collection {
	return Reorder(c, func(t *xmltree.Node) string {
		if n := t.FindFirst(tag); n != nil {
			return n.Content
		}
		return ""
	}, dir)
}
