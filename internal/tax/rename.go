package tax

import (
	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// RenameRoot renames the root element of every tree in the collection.
// The naive plan and the groupby rewrite both end with such a rename,
// turning the operator-introduced dummy roots into the tag the RETURN
// clause's element constructor specifies (e.g. authorpubs).
func RenameRoot(c Collection, newTag string) Collection {
	var out Collection
	for _, t := range c.Trees {
		cp := t.Clone()
		cp.Tag = newTag
		out.Trees = append(out.Trees, cp)
	}
	out.renumber()
	return out
}

// Rename renames, in every tree, each node the pattern binds to label.
func Rename(c Collection, pt *pattern.Tree, label, newTag string) Collection {
	var out Collection
	for _, t := range c.Trees {
		cp := t.Clone()
		for _, b := range match.Match(pt, []*xmltree.Node{cp}) {
			b[label].Tag = newTag
		}
		out.Trees = append(out.Trees, cp)
	}
	out.renumber()
	return out
}
