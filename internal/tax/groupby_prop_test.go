package tax

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"timber/internal/match"
	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// randomArticles builds a random collection of article trees with
// repeated and missing sub-elements — the heterogeneity grouping must
// handle.
func randomArticles(rng *rand.Rand) Collection {
	n := rng.Intn(8) + 1
	var trees []*xmltree.Node
	for i := 0; i < n; i++ {
		art := xmltree.E("article")
		for a := 0; a < rng.Intn(4); a++ { // possibly zero authors
			art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", rng.Intn(4))))
		}
		art.Append(xmltree.Elem("title", fmt.Sprintf("T%d", rng.Intn(6))))
		if rng.Intn(2) == 0 {
			art.Append(xmltree.Elem("year", fmt.Sprintf("%d", 1995+rng.Intn(10))))
		}
		trees = append(trees, art)
	}
	return NewCollection(trees...)
}

// TestGroupByPartitionProperty checks the core grouping invariants on
// random collections:
//
//  1. Total membership equals the witness count (each witness lands in
//     exactly one group — source trees may repeat across groups, but
//     witnesses do not).
//  2. Every member of a group has the group's basis value.
//  3. Group basis values are pairwise distinct.
//  4. Groups appear in first-witness order.
func TestGroupByPartitionProperty(t *testing.T) {
	pt := paperdata.Query1GroupByPattern() // article -pc-> author
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomArticles(rng)
		witnesses := match.Match(pt, c.Trees)
		out := GroupBy(c, pt, []BasisItem{{Label: "$2"}}, nil)

		// (3) distinct basis values, (4) first-appearance order.
		var groupVals []string
		seen := map[string]bool{}
		for _, g := range out.Trees {
			v := g.Children[0].Children[0].Content
			if seen[v] {
				return false
			}
			seen[v] = true
			groupVals = append(groupVals, v)
		}
		var firstOrder []string
		seenW := map[string]bool{}
		for _, w := range witnesses {
			v := w["$2"].Content
			if !seenW[v] {
				seenW[v] = true
				firstOrder = append(firstOrder, v)
			}
		}
		if len(firstOrder) != len(groupVals) {
			return false
		}
		for i := range firstOrder {
			if firstOrder[i] != groupVals[i] {
				return false
			}
		}

		// (1) total membership = witness count.
		total := 0
		for _, g := range out.Trees {
			total += len(g.Children[1].Children)
		}
		if total != len(witnesses) {
			return false
		}

		// (2) members carry the group's value: every member tree must
		// contain an author child with the group's basis value.
		for _, g := range out.Trees {
			v := g.Children[0].Children[0].Content
			for _, m := range g.Children[1].Children {
				found := false
				for _, au := range m.ChildrenTagged("author") {
					if au.Content == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupByOverlapProperty: a source tree appears in exactly as many
// groups as it has distinct basis values (multiple authorship ⇒
// membership in multiple groups), and within a group once per witness.
func TestGroupByOverlapProperty(t *testing.T) {
	pt := paperdata.Query1GroupByPattern()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomArticles(rng)
		out := GroupBy(c, pt, []BasisItem{{Label: "$2"}}, nil)

		// Count appearances of each source tree across groups.
		appearances := map[string]int{} // tree key -> total member slots
		for _, g := range out.Trees {
			for _, m := range g.Children[1].Children {
				appearances[TreeKey(m)]++
			}
		}
		// Expected: for each input tree, its author multiset size (one
		// witness per author occurrence). Identical trees accumulate.
		expected := map[string]int{}
		for _, tr := range c.Trees {
			expected[TreeKey(tr)] += len(tr.ChildrenTagged("author"))
		}
		if len(appearances) > len(expected) {
			return false
		}
		for k, n := range appearances {
			if expected[k] != n {
				return false
			}
		}
		// Trees with zero authors appear in no group.
		for k, n := range expected {
			if n == 0 && appearances[k] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupByOrderingProperty: with an ordering list, members within
// each group are sorted by the ordering value with the requested
// direction; ties keep witness order.
func TestGroupByOrderingProperty(t *testing.T) {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "title"}))
	pt := pattern.MustTree(root)
	prop := func(seed int64, desc bool) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomArticles(rng)
		dir := Ascending
		if desc {
			dir = Descending
		}
		out := GroupBy(c, pt, []BasisItem{{Label: "$2"}},
			[]OrderItem{{Direction: dir, Label: "$3"}})
		for _, g := range out.Trees {
			var prev string
			for i, m := range g.Children[1].Children {
				title := m.Child("title").Content
				if i > 0 {
					if dir == Ascending && title < prev {
						return false
					}
					if dir == Descending && title > prev {
						return false
					}
				}
				prev = title
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSelectProjectConsistency: projecting the pattern's own nodes from
// a selection result keeps every witness representable — Select then
// Project with all labels equals Select alone in tree count when the
// pattern root is in the projection list with a root-anchored pattern.
func TestSelectProjectConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomArticles(rng)
		pt := paperdata.Query1GroupByPattern()
		sel := Select(c, pt, nil)
		proj := Project(sel, pt, []Item{L("$1"), LS("$2")})
		// Each selected witness tree has exactly one article root that
		// the projection retains, so counts match.
		return proj.Len() == sel.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
