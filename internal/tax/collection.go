// Package tax implements the TAX bulk tree algebra (Jagadish et al.,
// "TAX: A Tree Algebra for XML", DBPL 2001) as used by the paper
// "Grouping in XML": every operator takes collections of data trees as
// input and produces a collection of data trees as output, so the
// algebra is proper — composable and closed (Sec. 2).
//
// The operators implemented here are the ones the paper's translation
// and rewriting pipeline needs: selection, projection, duplicate
// elimination, value-based left outer join, stitching (full outer join
// on argument position), renaming, and — the paper's contribution —
// grouping (Sec. 3) and aggregation (Sec. 4.3).
//
// This package is the *logical* algebra: it operates on in-memory
// trees and defines the semantics. The physical counterpart over the
// storage layer, with identifier-only processing and deferred value
// population (Sec. 5.3), lives in package exec; its results must agree
// with this package's, which the integration tests check.
package tax

import (
	"timber/internal/xmltree"
)

// Tags of the structural nodes the operators introduce, matching the
// paper's figures.
const (
	// GroupRootTag labels the root of each groupby output tree.
	GroupRootTag = "TAX_group_root"
	// GroupingBasisTag labels the left child holding the basis values.
	GroupingBasisTag = "TAX_grouping_basis"
	// GroupSubrootTag labels the right child holding the group members.
	GroupSubrootTag = "TAX_group_subroot"
	// ProdRootTag labels join/product output trees.
	ProdRootTag = "TAX_prod_root"
)

// Collection is an ordered multiset of data trees — the carrier of the
// algebra. Trees in a collection must be interval-numbered with
// distinct document IDs; NewCollection and the operators maintain this.
type Collection struct {
	Trees []*xmltree.Node
}

// NewCollection numbers the given trees (assigning document IDs in
// order, starting at 1) and wraps them in a collection. The trees are
// used as-is, not cloned: callers who need the originals intact should
// pass clones.
func NewCollection(trees ...*xmltree.Node) Collection {
	c := Collection{Trees: trees}
	c.renumber()
	return c
}

// Renumber re-assigns document IDs 1..n and fresh interval numbers to
// every tree. Operators call it after constructing output trees so the
// next operator can pattern-match the result; external code that builds
// collections tree-by-tree must call it before matching.
func (c *Collection) Renumber() {
	for i, t := range c.Trees {
		xmltree.Number(t, xmltree.DocID(i+1))
	}
}

func (c *Collection) renumber() { c.Renumber() }

// Len returns the number of trees in the collection.
func (c Collection) Len() int { return len(c.Trees) }

// Clone returns a deep copy of the collection.
func (c Collection) Clone() Collection {
	out := Collection{Trees: make([]*xmltree.Node, len(c.Trees))}
	for i, t := range c.Trees {
		out.Trees[i] = t.Clone()
	}
	return out
}

// Strings renders each tree in compact form; a convenience for tests
// and debugging.
func (c Collection) Strings() []string {
	out := make([]string, len(c.Trees))
	for i, t := range c.Trees {
		out[i] = t.String()
	}
	return out
}

// Item names a pattern node in a selection, projection or grouping
// basis list, optionally starred: a starred item includes the entire
// subtree rooted at the match, an unstarred one just the node itself.
type Item struct {
	Label string
	Star  bool
}

// L is shorthand for an unstarred list item.
func L(label string) Item { return Item{Label: label} }

// LS is shorthand for a starred list item ("$i*").
func LS(label string) Item { return Item{Label: label, Star: true} }

func (it Item) String() string {
	if it.Star {
		return it.Label + "*"
	}
	return it.Label
}

// Direction orders group members in a groupby ordering list.
type Direction int

const (
	// Ascending sorts smallest first.
	Ascending Direction = iota
	// Descending sorts largest first.
	Descending
)

func (d Direction) String() string {
	if d == Ascending {
		return "ASCENDING"
	}
	return "DESCENDING"
}

// OrderItem is one component of a groupby ordering list: a direction
// plus the pattern node (and optionally attribute) whose value sorts
// the group members.
type OrderItem struct {
	Direction Direction
	Label     string
	Attr      string // empty = element content
}

// BasisItem is one component of a grouping basis: a pattern node label,
// optionally an attribute of it, optionally starred.
type BasisItem struct {
	Label string
	Attr  string // empty = element content
	Star  bool
}

func (b BasisItem) String() string {
	s := b.Label
	if b.Attr != "" {
		s += "." + b.Attr
	}
	if b.Star {
		s += "*"
	}
	return s
}
