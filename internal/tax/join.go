package tax

import (
	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// JoinSpec parameterizes a value-based left outer join between two
// collections, in the shape the naive translation produces (Sec. 4.1,
// Figure 4.b): a pattern is matched on each side and the join condition
// equates the contents of two bound nodes ($3.content = $6.content in
// the figure).
type JoinSpec struct {
	// LeftPattern binds nodes in each left tree; LeftLabel names the
	// node whose content is the left join value.
	LeftPattern *pattern.Tree
	LeftLabel   string
	// RightPattern binds nodes in each right tree; RightLabel names the
	// node whose content is the right join value.
	RightPattern *pattern.Tree
	RightLabel   string
	// SL lists the right-side pattern nodes emitted into the output for
	// each matching right witness, mirroring selection's adornment list
	// (labels keep their full subtrees).
	SL []Item
}

// LeftOuterJoin joins each left tree against all right trees: the
// output contains one TAX_prod_root tree per left input tree, holding a
// copy of the left tree followed by the SL subtrees of every right
// witness whose join value equals one of the left tree's join values —
// in right-witness document order. Left trees with no match still
// produce an output tree (the "outer" in left outer join); this
// reproduces Figure 8 exactly.
func LeftOuterJoin(left, right Collection, spec JoinSpec) Collection {
	// Index right witnesses by join value once.
	type rightHit struct {
		order int
		trees []*xmltree.Node // SL materializations
	}
	byValue := map[string][]rightHit{}
	order := 0
	for _, rt := range right.Trees {
		for _, rb := range match.Match(spec.RightPattern, []*xmltree.Node{rt}) {
			v := rb[spec.RightLabel].Content
			hit := rightHit{order: order}
			for _, it := range spec.SL {
				n := rb[it.Label]
				if n == nil {
					continue
				}
				hit.trees = append(hit.trees, n.Clone())
			}
			byValue[v] = append(byValue[v], hit)
			order++
		}
	}

	var out Collection
	for _, lt := range left.Trees {
		prod := xmltree.E(ProdRootTag)
		prod.Append(lt.Clone())
		seen := map[int]bool{}
		for _, lb := range match.Match(spec.LeftPattern, []*xmltree.Node{lt}) {
			v := lb[spec.LeftLabel].Content
			for _, hit := range byValue[v] {
				if seen[hit.order] {
					continue
				}
				seen[hit.order] = true
				for _, tr := range hit.trees {
					prod.Append(tr.Clone())
				}
			}
		}
		out.Trees = append(out.Trees, prod)
	}
	out.renumber()
	return out
}

// Stitch is the naive plan's final step: the results computed for each
// RETURN-clause argument are combined positionally — a full outer join
// on argument index — under a common root with the given tag, then
// typically renamed. parts[k][i] is argument k's result for outer
// binding i; missing entries (a shorter collection) simply contribute
// nothing, which is the "full outer" behaviour.
func Stitch(rootTag string, parts ...Collection) Collection {
	maxLen := 0
	for _, p := range parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	var out Collection
	for i := 0; i < maxLen; i++ {
		root := xmltree.E(rootTag)
		for _, p := range parts {
			if i < p.Len() {
				root.Append(p.Trees[i].Clone())
			}
		}
		out.Trees = append(out.Trees, root)
	}
	out.renumber()
	return out
}

// StitchChildren behaves like Stitch but splices the *children* of each
// part's tree under the new root instead of the tree itself, which is
// what element constructors like <authorpubs>{$a}{...}</authorpubs>
// need when the parts are themselves wrapped results.
func StitchChildren(rootTag string, parts ...Collection) Collection {
	maxLen := 0
	for _, p := range parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	var out Collection
	for i := 0; i < maxLen; i++ {
		root := xmltree.E(rootTag)
		for _, p := range parts {
			if i < p.Len() {
				for _, c := range p.Trees[i].Children {
					root.Append(c.Clone())
				}
			}
		}
		out.Trees = append(out.Trees, root)
	}
	out.renumber()
	return out
}
