package tax

import (
	"strings"
	"testing"

	"timber/internal/match"
	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

func TestGroupByFuncMatchesBasisGrouping(t *testing.T) {
	// A key function that returns the author content must reproduce
	// exactly the BasisItem-based grouping's partitioning and order.
	pt := paperdata.Query1GroupByPattern()
	articles := splitSampleArticles()

	byBasis := GroupBy(articles, pt, []BasisItem{{Label: "$2"}}, nil)
	byFunc := GroupByFunc(articles, pt, func(b match.Binding) string {
		return b["$2"].Content
	}, nil)

	if byFunc.Len() != byBasis.Len() {
		t.Fatalf("group counts differ: %d vs %d", byFunc.Len(), byBasis.Len())
	}
	for i := range byFunc.Trees {
		keyNode := byFunc.Trees[i].Children[0].Children[0]
		if keyNode.Tag != GroupKeyTag {
			t.Fatalf("basis child = %s", keyNode.Tag)
		}
		wantKey := byBasis.Trees[i].Children[0].Children[0].Content
		if keyNode.Content != wantKey {
			t.Errorf("group %d key = %s, want %s", i, keyNode.Content, wantKey)
		}
		got := len(byFunc.Trees[i].Children[1].Children)
		want := len(byBasis.Trees[i].Children[1].Children)
		if got != want {
			t.Errorf("group %d members = %d, want %d", i, got, want)
		}
	}
}

func TestGroupByFuncComputedKey(t *testing.T) {
	// Group articles by the INITIAL of the author name — impossible
	// with an attribute list, the motivating case for the generic
	// function (Sec. 3's "several dimensions").
	pt := paperdata.Query1GroupByPattern()
	articles := splitSampleArticles()
	out := GroupByFunc(articles, pt, func(b match.Binding) string {
		return b["$2"].Content[:1]
	}, nil)
	// Jack, John, Jill all start with J: one group, five members.
	if out.Len() != 1 {
		t.Fatalf("initial groups = %d, want 1", out.Len())
	}
	if got := out.Trees[0].Children[0].Children[0].Content; got != "J" {
		t.Errorf("key = %s", got)
	}
	if got := len(out.Trees[0].Children[1].Children); got != 5 {
		t.Errorf("members = %d, want 5", got)
	}
}

func TestGroupByFuncCustomOrdering(t *testing.T) {
	// Order members by title LENGTH — a "more sophisticated ordering
	// function" than value comparison.
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "title"}))
	pt := pattern.MustTree(root)
	articles := splitSampleArticles()

	out := GroupByFunc(articles, pt,
		func(match.Binding) string { return "all" },
		func(a, b match.Binding) bool {
			return len(a["$3"].Content) < len(b["$3"].Content)
		})
	if out.Len() != 1 {
		t.Fatalf("groups = %d", out.Len())
	}
	var lens []int
	for _, m := range out.Trees[0].Children[1].Children {
		lens = append(lens, len(m.Child("title").Content))
	}
	sorted := append([]int(nil), lens...)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Errorf("member titles not sorted by length: %v", lens)
			break
		}
	}
}

func TestGroupByFuncEmpty(t *testing.T) {
	pt := paperdata.Query1GroupByPattern()
	out := GroupByFunc(Collection{}, pt, func(match.Binding) string { return "x" }, nil)
	if out.Len() != 0 {
		t.Errorf("groups of empty = %d", out.Len())
	}
}

// splitSampleArticles projects the Figure 6 database into one tree per
// article.
func splitSampleArticles() Collection {
	c := NewCollection(paperdata.SampleDatabase())
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	return Project(c, pattern.MustTree(root), []Item{LS("$2")})
}

func TestGroupKeySerializable(t *testing.T) {
	pt := paperdata.Query1GroupByPattern()
	out := GroupByFunc(splitSampleArticles(), pt, func(b match.Binding) string {
		return strings.ToUpper(b["$2"].Content)
	}, nil)
	s := xmltree.SerializeString(out.Trees[0])
	if !strings.Contains(s, GroupKeyTag) || !strings.Contains(s, "JACK") {
		t.Errorf("serialized group:\n%s", s)
	}
}
