package tax

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/xmltree"
)

func leafColl(vals ...string) Collection {
	trees := make([]*xmltree.Node, len(vals))
	for i, v := range vals {
		trees[i] = xmltree.Elem("v", v)
	}
	return NewCollection(trees...)
}

func contents(c Collection) []string {
	out := make([]string, c.Len())
	for i, t := range c.Trees {
		out[i] = t.Content
	}
	return out
}

func TestUnion(t *testing.T) {
	got := Union(leafColl("a", "b"), leafColl("b", "c"))
	want := []string{"a", "b", "b", "c"}
	if !reflect.DeepEqual(contents(got), want) {
		t.Errorf("union = %v, want %v", contents(got), want)
	}
}

func TestIntersectBagSemantics(t *testing.T) {
	got := Intersect(leafColl("a", "a", "b", "c"), leafColl("a", "b", "b"))
	// a appears twice in left, once in right -> once; b once; c never.
	want := []string{"a", "b"}
	if !reflect.DeepEqual(contents(got), want) {
		t.Errorf("intersect = %v, want %v", contents(got), want)
	}
}

func TestDifferenceBagSemantics(t *testing.T) {
	got := Difference(leafColl("a", "a", "b", "c"), leafColl("a", "x"))
	// one 'a' consumed.
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(contents(got), want) {
		t.Errorf("difference = %v, want %v", contents(got), want)
	}
}

func TestSetOpsUseStructuralEquality(t *testing.T) {
	a := NewCollection(
		xmltree.E("r", xmltree.Elem("x", "1"), xmltree.Elem("y", "2")),
	)
	sameShape := NewCollection(
		xmltree.E("r", xmltree.Elem("x", "1"), xmltree.Elem("y", "2")),
	)
	otherOrder := NewCollection(
		xmltree.E("r", xmltree.Elem("y", "2"), xmltree.Elem("x", "1")),
	)
	if Intersect(a, sameShape).Len() != 1 {
		t.Error("structurally equal trees should intersect")
	}
	if Intersect(a, otherOrder).Len() != 0 {
		t.Error("sibling order matters for tree equality")
	}
}

// TestSetOpsLawsProperty checks bag-algebra laws on random collections:
// |a ∪ b| = |a| + |b|, |a ∩ b| = |b ∩ a|,
// |a \ b| = |a| - |a ∩ b|.
func TestSetOpsLawsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Collection {
			n := rng.Intn(8)
			vals := make([]string, n)
			for i := range vals {
				vals[i] = string(rune('a' + rng.Intn(4)))
			}
			return leafColl(vals...)
		}
		a, b := mk(), mk()
		if Union(a, b).Len() != a.Len()+b.Len() {
			return false
		}
		if Intersect(a, b).Len() != Intersect(b, a).Len() {
			return false
		}
		if Difference(a, b).Len() != a.Len()-Intersect(a, b).Len() {
			return false
		}
		// a \ a is empty; a ∩ a is a.
		if Difference(a, a).Len() != 0 || Intersect(a, a).Len() != a.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestProduct(t *testing.T) {
	got := Product(leafColl("a", "b"), leafColl("x", "y", "z"))
	if got.Len() != 6 {
		t.Fatalf("product size = %d", got.Len())
	}
	first := got.Trees[0]
	if first.Tag != ProdRootTag || len(first.Children) != 2 {
		t.Fatalf("product tree = %s", first)
	}
	if first.Children[0].Content != "a" || first.Children[1].Content != "x" {
		t.Errorf("first pair = %s", first)
	}
	// a-major order: (a,x) (a,y) (a,z) (b,x) ...
	if got.Trees[3].Children[0].Content != "b" || got.Trees[3].Children[1].Content != "x" {
		t.Errorf("fourth pair = %s", got.Trees[3])
	}
	if Product(leafColl(), leafColl("x")).Len() != 0 {
		t.Error("empty product")
	}
}

func TestReorderByContent(t *testing.T) {
	c := NewCollection(
		xmltree.E("article", xmltree.Elem("year", "1999"), xmltree.Elem("title", "B")),
		xmltree.E("article", xmltree.Elem("year", "201"), xmltree.Elem("title", "A")),
		xmltree.E("article", xmltree.Elem("year", "1989"), xmltree.Elem("title", "C")),
	)
	asc := ReorderByContent(c, "year", Ascending)
	var years []string
	for _, tr := range asc.Trees {
		years = append(years, tr.Child("year").Content)
	}
	// Numeric comparison: 201 < 1989 < 1999.
	if !reflect.DeepEqual(years, []string{"201", "1989", "1999"}) {
		t.Errorf("ascending years = %v", years)
	}
	desc := ReorderByContent(c, "year", Descending)
	if desc.Trees[0].Child("year").Content != "1999" {
		t.Errorf("descending first = %s", desc.Trees[0])
	}
	// Missing tag sorts as empty string (first ascending).
	withMissing := Union(c, NewCollection(xmltree.E("article", xmltree.Elem("title", "D"))))
	out := ReorderByContent(withMissing, "year", Ascending)
	if out.Trees[0].Child("year") != nil {
		t.Error("tree lacking the key should sort first ascending")
	}
}

func TestReorderStable(t *testing.T) {
	c := NewCollection(
		xmltree.E("r", xmltree.Elem("k", "x"), xmltree.Elem("id", "1")),
		xmltree.E("r", xmltree.Elem("k", "x"), xmltree.Elem("id", "2")),
		xmltree.E("r", xmltree.Elem("k", "x"), xmltree.Elem("id", "3")),
	)
	out := ReorderByContent(c, "k", Ascending)
	for i, tr := range out.Trees {
		if want := string(rune('1' + i)); tr.Child("id").Content != want {
			t.Errorf("tie order broken at %d: %s", i, tr)
		}
	}
}
