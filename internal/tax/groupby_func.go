package tax

import (
	"sort"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// This file implements the generalizations Sec. 3 sketches but does not
// elaborate: "one could use a generic function mapping trees to values
// rather than an attribute list to perform the needed grouping, one can
// have a more sophisticated ordering function, and so forth."

// KeyFunc maps a witness (a binding of pattern labels to nodes) to its
// grouping key. The BasisItem-based GroupBy is the special case that
// concatenates bound-node values.
type KeyFunc func(match.Binding) string

// LessFunc orders two witnesses within a group; it replaces the
// ordering list. Returning false for both (a,b) and (b,a) keeps the
// witnesses' document order (the sort is stable).
type LessFunc func(a, b match.Binding) bool

// GroupByFunc is GroupBy with a generic grouping function and an
// optional generic ordering function. The output tree shape is the same
// (TAX_group_root over TAX_grouping_basis and TAX_group_subroot), with
// the grouping basis holding a single synthetic element tagged
// TAX_group_key that carries the computed key — a function's result has
// no source node to display, so the key value stands in for it.
func GroupByFunc(c Collection, pt *pattern.Tree, key KeyFunc, less LessFunc) Collection {
	witnesses := match.Match(pt, c.Trees)

	type member struct {
		binding match.Binding
		source  *xmltree.Node
	}
	type group struct {
		key     string
		members []member
	}
	var order []string
	groups := map[string]*group{}
	for _, b := range witnesses {
		k := key(b)
		g, ok := groups[k]
		if !ok {
			g = &group{key: k}
			groups[k] = g
			order = append(order, k)
		}
		g.members = append(g.members, member{binding: b, source: b[pt.Root.Label].Root()})
	}

	var out Collection
	for _, k := range order {
		g := groups[k]
		if less != nil {
			sort.SliceStable(g.members, func(i, j int) bool {
				return less(g.members[i].binding, g.members[j].binding)
			})
		}
		root := xmltree.E(GroupRootTag,
			xmltree.E(GroupingBasisTag, xmltree.Elem(GroupKeyTag, g.key)),
			xmltree.E(GroupSubrootTag),
		)
		sub := root.Children[1]
		for _, m := range g.members {
			sub.Append(m.source.Clone())
		}
		out.Trees = append(out.Trees, root)
	}
	out.renumber()
	return out
}

// GroupKeyTag labels the synthetic grouping-key element GroupByFunc
// places under the grouping basis.
const GroupKeyTag = "TAX_group_key"
