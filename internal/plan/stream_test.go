package plan

import (
	"testing"

	"timber/internal/xq"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		op   Op
		want StreamClass
	}{
		{&DBScan{}, Streaming},
		{&Select{}, Streaming},
		{&ProjectPerTree{}, Streaming},
		{&DupElimContent{}, Streaming},
		{&LeftOuterJoin{}, Streaming},
		{&Stitch{}, Streaming},
		{&Aggregate{}, Streaming},
		{&GroupBy{}, Blocking},
		{&SortChildrenByPath{}, Blocking},
	}
	for _, c := range cases {
		if got := Classify(c.op); got != c.want {
			t.Errorf("Classify(%T) = %v, want %v", c.op, got, c.want)
		}
	}
	if Streaming.String() != "streaming" || Blocking.String() != "blocking" {
		t.Error("StreamClass strings")
	}
}

// TestBreakersNaivePlan pins that the naive translated plan of Query 1
// has no pipeline breakers (it is pure selection/projection/stitching)
// — the breakers appear only after the GROUPBY rewrite.
func TestBreakersNaivePlan(t *testing.T) {
	const src = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`
	naive, err := Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if bs := Breakers(naive); len(bs) != 0 {
		t.Errorf("naive plan breakers = %v, want none", bs)
	}
}
