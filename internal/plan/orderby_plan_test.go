package plan

import (
	"reflect"
	"strings"
	"testing"

	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

const queryOrderedSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    ORDER BY $b/title DESCENDING
    RETURN $b/title
  }
</authorpubs>`

func TestNaiveOrderedQuery(t *testing.T) {
	op := translateSrc(t, queryOrderedSrc)
	want := []string{
		"Jack: XML and the Web Querying XML", // descending titles
		"John: Querying XML Hack HTML",
		"Jill: XML and the Web",
	}
	if got := queryResult(t, op); !reflect.DeepEqual(got, want) {
		t.Errorf("ordered naive = %v, want %v", got, want)
	}
	// The plan carries the sort operator.
	if s := Format(op); !strings.Contains(s, "SortChildren by [title] DESCENDING") {
		t.Errorf("plan lacks sort op:\n%s", s)
	}
}

func TestNaiveOrderedAscendingDefault(t *testing.T) {
	src := strings.Replace(queryOrderedSrc, " DESCENDING", "", 1)
	op := translateSrc(t, src)
	want := []string{
		"Jack: Querying XML XML and the Web",
		"John: Hack HTML Querying XML",
		"Jill: XML and the Web",
	}
	if got := queryResult(t, op); !reflect.DeepEqual(got, want) {
		t.Errorf("ascending naive = %v, want %v", got, want)
	}
}

func TestSortChildrenEval(t *testing.T) {
	// Non-matching children keep their positions; matching ones sort.
	base := tax.NewCollection(
		xmltree.E("r",
			xmltree.Elem("marker", "m"),
			xmltree.E("article", xmltree.Elem("k", "9")),
			xmltree.E("article", xmltree.Elem("k", "100")),
			xmltree.E("article", xmltree.Elem("k", "20")),
		),
	)
	op := &SortChildrenByPath{In: &DBScan{}, Path: []string{"k"}, Desc: true}
	out, err := Eval(base, op)
	if err != nil {
		t.Fatal(err)
	}
	tree := out.Trees[0]
	if tree.Children[0].Tag != "marker" {
		t.Error("non-matching child moved")
	}
	var ks []string
	for _, c := range tree.Children[1:] {
		ks = append(ks, c.Child("k").Content)
	}
	// Numeric descending: 100, 20, 9.
	if !reflect.DeepEqual(ks, []string{"100", "20", "9"}) {
		t.Errorf("sorted keys = %v", ks)
	}
}

func TestLiteralOp(t *testing.T) {
	lit := &Literal{C: tax.NewCollection(xmltree.Elem("x", "1"))}
	if len(lit.Inputs()) != 0 {
		t.Error("literal has no inputs")
	}
	if !strings.Contains(lit.Describe(), "1 trees") {
		t.Errorf("describe = %s", lit.Describe())
	}
	out, err := Eval(tax.Collection{}, lit)
	if err != nil || out.Len() != 1 {
		t.Errorf("literal eval = %v, %v", out.Strings(), err)
	}
	// The evaluated collection is a clone: mutating it leaves the
	// literal intact.
	out.Trees[0].Content = "changed"
	if lit.C.Trees[0].Content != "1" {
		t.Error("literal collection aliased by Eval result")
	}
}

func TestAllOpDescribes(t *testing.T) {
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "x"}))
	ops := []Op{
		&DBScan{},
		&Literal{},
		&Select{In: &DBScan{}, Pattern: pt},
		&Project{In: &DBScan{}, Pattern: pt},
		&ProjectPerTree{In: &DBScan{}, Pattern: pt},
		&DupElimContent{In: &DBScan{}, Pattern: pt, Label: "$1"},
		&DedupChildren{In: &DBScan{}},
		&SortChildrenByPath{In: &DBScan{}, Path: []string{"k"}},
		&LeftOuterJoin{Left: &DBScan{}, Right: &DBScan{}, Spec: tax.JoinSpec{
			LeftPattern: pt, LeftLabel: "$1", RightPattern: pt, RightLabel: "$1",
		}},
		&Stitch{Tag: "t"},
		&GroupBy{In: &DBScan{}, Pattern: pt},
		&Aggregate{In: &DBScan{}, Pattern: pt, Spec: tax.AggSpec{Fn: tax.Count, AnchorLabel: "$1"}},
		&Rename{In: &DBScan{}, NewTag: "y"},
	}
	for _, op := range ops {
		if op.Describe() == "" {
			t.Errorf("%T: empty Describe", op)
		}
		if s := Format(op); s == "" {
			t.Errorf("%T: empty Format", op)
		}
		for _, in := range op.Inputs() {
			if in == nil {
				t.Errorf("%T: nil input", op)
			}
		}
	}
}

func TestOuterWhereOperators(t *testing.T) {
	// Exercise every comparison operator through the outer filter.
	for _, tc := range []struct {
		op   string
		want []string
	}{
		{`$a != "Jack"`, []string{"John:", "Jill:"}},
		{`$a < "Jill"`, []string{"Jack:"}},
		{`$a > "Jill"`, []string{"John:"}},
		{`$a >= "Jill"`, []string{"John:", "Jill:"}},
		{`"Jill" > $a`, []string{"Jack:"}},           // flipped <
		{`"Jill" >= $a`, []string{"Jack:", "Jill:"}}, // flipped <=
		{`"Jill" < $a`, []string{"John:"}},           // flipped >
		{`"Jack" = $a`, []string{"Jack:"}},           // symmetric
	} {
		src := `FOR $a IN distinct-values(document("bib.xml")//author) WHERE ` + tc.op +
			` RETURN <who>{$a}</who>`
		op := translateSrc(t, src)
		if got := queryResult(t, op); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("WHERE %s = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestOrderByTranslateErrors(t *testing.T) {
	srcs := []string{
		// ORDER BY with a predicate step.
		`FOR $a IN distinct-values(document("d")//author)
		 RETURN <x>{$a}{FOR $b IN document("d")//article WHERE $a = $b/author ORDER BY $b/title[x = "y"] RETURN $b/title}</x>`,
		// ORDER BY on a string literal.
		`FOR $a IN distinct-values(document("d")//author)
		 RETURN <x>{$a}{FOR $b IN document("d")//article WHERE $a = $b/author ORDER BY "zzz" RETURN $b/title}</x>`,
	}
	for i, src := range srcs {
		e, err := xq.Parse(src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if _, err := Translate(e); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
