package plan

// This file classifies the logical operators for the streaming
// physical layer: when a plan lowers to the iterator executor
// (exec.SpecFromPlan → the streaming groupby pipeline), each logical
// operator maps to a pull-based iterator that is either streaming —
// emits rows while consuming, holding O(batch) state — or blocking —
// must drain its input before emitting, and therefore owns a spill
// hook. The classification drives DESIGN.md §9 and lets the explain
// surfaces annotate plans with their pipeline-breaker points.

// StreamClass says whether an operator's physical lowering is
// pipelined or a pipeline breaker.
type StreamClass int

const (
	// Streaming operators emit output while consuming input, holding
	// only bounded (per-batch or per-chunk) state.
	Streaming StreamClass = iota
	// Blocking operators must consume their whole input before the
	// first output row (sorts, grouping); their buffers are bounded by
	// a memory budget with spilling past it.
	Blocking
)

func (c StreamClass) String() string {
	if c == Blocking {
		return "blocking"
	}
	return "streaming"
}

// Classify returns the stream class of one logical operator's physical
// lowering. The only pipeline breakers of the plan family are GroupBy
// (the grouping sort) and SortChildrenByPath (an ordering sort);
// everything else — scans, selections, projections, duplicate
// elimination over member-ordered streams, the merge left-outer-join,
// stitching and aggregation over grouped streams — streams.
func Classify(op Op) StreamClass {
	switch op.(type) {
	case *GroupBy, *SortChildrenByPath:
		return Blocking
	default:
		return Streaming
	}
}

// Breakers walks a plan and returns its pipeline-breaker operators in
// evaluation (post-order, inputs-first) order — the points where the
// streaming executor must buffer (and may spill). Plans are DAGs
// (stitch parts share their grouped input), so each operator is
// visited — and reported — once.
func Breakers(op Op) []Op {
	var out []Op
	seen := map[Op]bool{}
	var walk func(Op)
	walk = func(o Op) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		for _, in := range o.Inputs() {
			walk(in)
		}
		if Classify(o) == Blocking {
			out = append(out, o)
		}
	}
	walk(op)
	return out
}
