package plan

import (
	"fmt"
	"sort"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// Eval evaluates a logical plan over a base collection (what DBScan
// yields). This is the reference semantics: the physical executors in
// package exec must produce the same results, and the integration tests
// hold them to it.
func Eval(base tax.Collection, op Op) (tax.Collection, error) {
	switch o := op.(type) {
	case *DBScan:
		return base.Clone(), nil
	case *Literal:
		return o.C.Clone(), nil
	case *Select:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.Select(in, o.Pattern, o.SL), nil
	case *Project:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.Project(in, o.Pattern, o.PL), nil
	case *ProjectPerTree:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return evalProjectPerTree(in, o.Pattern, o.PL), nil
	case *DupElimContent:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.DupElimByContent(in, o.Pattern, o.Label), nil
	case *DedupChildren:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return evalDedupChildren(in), nil
	case *SortChildrenByPath:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return evalSortChildren(in, o.Path, o.Desc), nil
	case *LeftOuterJoin:
		left, err := Eval(base, o.Left)
		if err != nil {
			return tax.Collection{}, err
		}
		right, err := Eval(base, o.Right)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.LeftOuterJoin(left, right, o.Spec), nil
	case *Stitch:
		parts := make([]tax.Collection, len(o.Parts))
		for i, p := range o.Parts {
			c, err := Eval(base, p.Op)
			if err != nil {
				return tax.Collection{}, err
			}
			parts[i] = c
		}
		return evalStitch(o.Tag, o.Parts, parts), nil
	case *GroupBy:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.GroupBy(in, o.Pattern, o.Basis, o.Ordering), nil
	case *Aggregate:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.Aggregate(in, o.Pattern, o.Spec), nil
	case *Rename:
		in, err := Eval(base, o.In)
		if err != nil {
			return tax.Collection{}, err
		}
		return tax.RenameRoot(in, o.NewTag), nil
	default:
		return tax.Collection{}, fmt.Errorf("plan: unknown operator %T", op)
	}
}

// evalProjectPerTree keeps exactly one output tree per input tree: a
// copy of the input root holding the retained nodes as its descendants,
// with the nearest-retained-ancestor hierarchy tax.Project uses; the
// input root itself is never counted as retained (it is always present
// as the output root). Starred items keep their subtrees. Inputs with
// no witness produce a bare root.
func evalProjectPerTree(c tax.Collection, pt *pattern.Tree, pl []tax.Item) tax.Collection {
	var out tax.Collection
	for _, tree := range c.Trees {
		bindings := match.Match(pt, []*xmltree.Node{tree})
		keep := map[*xmltree.Node]bool{}
		star := map[*xmltree.Node]bool{}
		for _, b := range bindings {
			for _, it := range pl {
				n := b[it.Label]
				if n == nil || n == tree {
					continue
				}
				keep[n] = true
				if it.Star {
					star[n] = true
				}
			}
		}
		root := shallowCopy(tree)
		type frame struct{ in, out *xmltree.Node }
		stack := []frame{{in: tree, out: root}}
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			for len(stack) > 1 && !stack[len(stack)-1].in.Interval.Contains(n.Interval) {
				stack = stack[:len(stack)-1]
			}
			if keep[n] {
				var cp *xmltree.Node
				if star[n] {
					cp = n.Clone()
				} else {
					cp = shallowCopy(n)
				}
				stack[len(stack)-1].out.Append(cp)
				if star[n] {
					return
				}
				stack = append(stack, frame{in: n, out: cp})
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, c := range tree.Children {
			walk(c)
		}
		out.Trees = append(out.Trees, root)
	}
	out.Renumber()
	return out
}

func shallowCopy(n *xmltree.Node) *xmltree.Node {
	cp := &xmltree.Node{Tag: n.Tag, Content: n.Content}
	if len(n.Attrs) > 0 {
		cp.Attrs = append(cp.Attrs, n.Attrs...)
	}
	return cp
}

// evalDedupChildren removes structurally duplicate children within each
// tree, keeping first occurrences.
func evalDedupChildren(c tax.Collection) tax.Collection {
	var out tax.Collection
	for _, tree := range c.Trees {
		cp := &xmltree.Node{Tag: tree.Tag, Content: tree.Content}
		if len(tree.Attrs) > 0 {
			cp.Attrs = append(cp.Attrs, tree.Attrs...)
		}
		seen := map[string]bool{}
		for _, ch := range tree.Children {
			k := tax.TreeKey(ch)
			if seen[k] {
				continue
			}
			seen[k] = true
			cp.Append(ch.Clone())
		}
		out.Trees = append(out.Trees, cp)
	}
	out.Renumber()
	return out
}

// evalSortChildren reorders matching children per tree by the first
// value at the relative path; children without a match stay where they
// are.
func evalSortChildren(c tax.Collection, path []string, desc bool) tax.Collection {
	var out tax.Collection
	for _, tree := range c.Trees {
		cp := tree.Clone()
		type keyed struct {
			node *xmltree.Node
			key  string
		}
		var slots []int // original positions of matching children
		var matched []keyed
		for i, ch := range cp.Children {
			if vs := valuesAtChildPath(ch, path); len(vs) > 0 {
				slots = append(slots, i)
				matched = append(matched, keyed{node: ch, key: vs[0]})
			}
		}
		sort.SliceStable(matched, func(i, j int) bool {
			cmp := tax.CompareValues(matched[i].key, matched[j].key)
			if desc {
				cmp = -cmp
			}
			return cmp < 0
		})
		for i, slot := range slots {
			cp.Children[slot] = matched[i].node
		}
		out.Trees = append(out.Trees, cp)
	}
	out.Renumber()
	return out
}

// valuesAtChildPath walks child steps from n and returns leaf contents
// in document order.
func valuesAtChildPath(n *xmltree.Node, path []string) []string {
	cur := []*xmltree.Node{n}
	for _, tag := range path {
		var next []*xmltree.Node
		for _, m := range cur {
			next = append(next, m.ChildrenTagged(tag)...)
		}
		cur = next
	}
	out := make([]string, len(cur))
	for i, m := range cur {
		out[i] = m.Content
	}
	return out
}

// evalStitch combines the parts positionally under Tag, splicing the
// children of parts marked Splice.
func evalStitch(tag string, specs []StitchPart, parts []tax.Collection) tax.Collection {
	maxLen := 0
	for _, p := range parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	var out tax.Collection
	for i := 0; i < maxLen; i++ {
		root := xmltree.E(tag)
		for k, p := range parts {
			if i >= p.Len() {
				continue
			}
			if specs[k].Splice {
				for _, ch := range p.Trees[i].Children {
					root.Append(ch.Clone())
				}
			} else {
				root.Append(p.Trees[i].Clone())
			}
		}
		out.Trees = append(out.Trees, root)
	}
	out.Renumber()
	return out
}
