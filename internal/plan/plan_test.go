package plan

import (
	"reflect"
	"strings"
	"testing"

	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xq"
)

// The paper's queries, used across this package and opt/exec tests.
const (
	Query1Src = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

	Query2Src = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {$t}
</authorpubs>`

	QueryCountSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {count($t)}
</authorpubs>`
)

func sampleBase() tax.Collection {
	return tax.NewCollection(paperdata.SampleDatabase())
}

func translateSrc(t *testing.T, src string) Op {
	t.Helper()
	op, err := Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// queryResult evaluates a plan over the Figure 6 sample database and
// flattens each authorpubs tree to "author: title, title" form.
func queryResult(t *testing.T, op Op) []string {
	t.Helper()
	out, err := Eval(sampleBase(), op)
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, tr := range out.Trees {
		var sb strings.Builder
		if au := tr.Child("author"); au != nil {
			sb.WriteString(au.Content)
		}
		sb.WriteString(":")
		for _, c := range tr.Children {
			switch c.Tag {
			case "title":
				sb.WriteString(" " + c.Content)
			case "count":
				sb.WriteString(" #" + c.Content)
			}
		}
		rows = append(rows, sb.String())
	}
	return rows
}

// wantQuery1 is Query 1's result on the Figure 6 database: for each
// author (in first-occurrence order), that author's article titles in
// document order.
var wantQuery1 = []string{
	"Jack: Querying XML XML and the Web",
	"John: Querying XML Hack HTML",
	"Jill: XML and the Web",
}

func TestNaiveQuery1(t *testing.T) {
	op := translateSrc(t, Query1Src)
	if got := queryResult(t, op); !reflect.DeepEqual(got, wantQuery1) {
		t.Errorf("Query 1 = %v, want %v", got, wantQuery1)
	}
}

func TestNaiveQuery2EquivalentToQuery1(t *testing.T) {
	op1 := translateSrc(t, Query1Src)
	op2 := translateSrc(t, Query2Src)
	r1 := queryResult(t, op1)
	r2 := queryResult(t, op2)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Query 1 and Query 2 disagree:\n q1 %v\n q2 %v", r1, r2)
	}
	if !reflect.DeepEqual(r1, wantQuery1) {
		t.Errorf("Query 2 = %v, want %v", r1, wantQuery1)
	}
}

func TestNaiveCountQuery(t *testing.T) {
	op := translateSrc(t, QueryCountSrc)
	want := []string{"Jack: #2", "John: #2", "Jill: #1"}
	if got := queryResult(t, op); !reflect.DeepEqual(got, want) {
		t.Errorf("count query = %v, want %v", got, want)
	}
}

func TestNaiveCountOfNestedFLWR(t *testing.T) {
	src := `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {count(FOR $b IN document("bib.xml")//article WHERE $a = $b/author RETURN $b/title)}
</authorpubs>`
	op := translateSrc(t, src)
	want := []string{"Jack: #2", "John: #2", "Jill: #1"}
	if got := queryResult(t, op); !reflect.DeepEqual(got, want) {
		t.Errorf("count(FLWR) = %v, want %v", got, want)
	}
}

// TestFigure4NaivePatternTrees checks that the naive translation of
// Query 1 generates the pattern trees of Figure 4: the outer pattern
// (doc_root with descendant author), the join-plan's inner pattern
// (doc_root, article, author), and the inner projection pattern
// reaching the title.
func TestFigure4NaivePatternTrees(t *testing.T) {
	op := translateSrc(t, Query1Src)
	st, ok := op.(*Stitch)
	if !ok || st.Tag != "authorpubs" || len(st.Parts) != 2 {
		t.Fatalf("top = %T %v", op, op)
	}

	// Part 1: {$a} — Project(Select(outer)).
	proj, ok := st.Parts[0].Op.(*Project)
	if !ok {
		t.Fatalf("part 1 = %T", st.Parts[0].Op)
	}
	sel, ok := proj.In.(*Select)
	if !ok {
		t.Fatalf("part 1 input = %T", proj.In)
	}
	dup, ok := sel.In.(*DupElimContent)
	if !ok {
		t.Fatalf("{$a} should read the deduplicated outer result, got %T", sel.In)
	}
	outerProj := dup.In.(*Project)
	outerSel := outerProj.In.(*Select)
	if _, ok := outerSel.In.(*DBScan); !ok {
		t.Fatal("outer selection must scan the database")
	}
	// Figure 4.a: outer pattern doc_root -ad-> author (ad in the
	// selection; pc in the post-selection projection, per footnote 5).
	outerPat := outerSel.Pattern
	if outerPat.Root.TagConstraint() != DocRootTag {
		t.Errorf("outer root = %s", outerPat.Root.TagConstraint())
	}
	au := outerPat.Root.Children[0]
	if au.TagConstraint() != "author" || au.Axis != pattern.Descendant {
		t.Errorf("outer author node = %s axis %v", au.TagConstraint(), au.Axis)
	}
	if outerProj.Pattern.Root.Children[0].Axis != pattern.Child {
		t.Error("projection pattern should have pc edges (footnote 5)")
	}

	// Part 2: nested FLWR — ProjectPerTree(DedupChildren(Join)).
	ppt, ok := st.Parts[1].Op.(*ProjectPerTree)
	if !ok {
		t.Fatalf("part 2 = %T", st.Parts[1].Op)
	}
	dd, ok := ppt.In.(*DedupChildren)
	if !ok {
		t.Fatalf("part 2 input = %T", ppt.In)
	}
	join, ok := dd.In.(*LeftOuterJoin)
	if !ok {
		t.Fatalf("dedup input = %T", dd.In)
	}
	if _, ok := join.Right.(*DBScan); !ok {
		t.Error("join right side must be the database")
	}
	// Figure 4.b inner pattern: doc_root -ad-> article -pc-> author.
	rp := join.Spec.RightPattern
	if rp.Root.TagConstraint() != DocRootTag {
		t.Errorf("inner root = %s", rp.Root.TagConstraint())
	}
	art := rp.Root.Children[0]
	if art.TagConstraint() != "article" || art.Axis != pattern.Descendant {
		t.Errorf("inner article = %s axis %v", art.TagConstraint(), art.Axis)
	}
	auInner := art.Children[0]
	if auInner.TagConstraint() != "author" || auInner.Axis != pattern.Child {
		t.Errorf("inner author = %s axis %v", auInner.TagConstraint(), auInner.Axis)
	}
	if join.Spec.RightLabel != auInner.Label {
		t.Errorf("join value label = %s, want %s", join.Spec.RightLabel, auInner.Label)
	}
	// SL is the starred article.
	if len(join.Spec.SL) != 1 || !join.Spec.SL[0].Star || join.Spec.SL[0].Label != art.Label {
		t.Errorf("join SL = %v", join.Spec.SL)
	}
	// Figure 4.c: title projection pattern under the product root.
	if ppt.Pattern.Root.TagConstraint() != tax.ProdRootTag {
		t.Errorf("projection root = %s", ppt.Pattern.Root.TagConstraint())
	}
	titleNode := ppt.Pattern.Root.Children[0].Children[0]
	if titleNode.TagConstraint() != "title" {
		t.Errorf("projection leaf = %s", titleNode.TagConstraint())
	}
}

func TestTranslateInstitutionQuery(t *testing.T) {
	// The introduction's group-by-institution query: correlation path
	// author/institution, two steps deep.
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	op := translateSrc(t, src)
	st := op.(*Stitch)
	join := st.Parts[1].Op.(*ProjectPerTree).In.(*DedupChildren).In.(*LeftOuterJoin)
	rp := join.Spec.RightPattern
	// doc_root -> article -> author -> institution.
	art := rp.Root.Children[0]
	au := art.Children[0]
	inst := au.Children[0]
	if au.TagConstraint() != "author" || inst.TagConstraint() != "institution" {
		t.Errorf("correlation chain = %s/%s", au.TagConstraint(), inst.TagConstraint())
	}
	if join.Spec.RightLabel != inst.Label {
		t.Errorf("join label = %s", join.Spec.RightLabel)
	}
	// (Institution data is exercised end-to-end in the examples; here
	// the plan shape is what matters.)
}

func TestTranslateWhereReversedOperands(t *testing.T) {
	src := `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $b/author = $a
    RETURN $b/title
  }
</authorpubs>`
	op := translateSrc(t, src)
	if got := queryResult(t, op); !reflect.DeepEqual(got, wantQuery1) {
		t.Errorf("reversed operands = %v", got)
	}
}

func TestTranslateWithoutDistinct(t *testing.T) {
	// Without distinct-values, every author occurrence produces a
	// result tree (Jack and John twice).
	src := `
FOR $a IN document("bib.xml")//author
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`
	op := translateSrc(t, src)
	got := queryResult(t, op)
	if len(got) != 5 {
		t.Errorf("without distinct: %d rows, want 5: %v", len(got), got)
	}
}

func TestOuterWhereFilter(t *testing.T) {
	src := `
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $a = "Jack"
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`
	op := translateSrc(t, src)
	want := []string{"Jack: Querying XML XML and the Web"}
	if got := queryResult(t, op); !reflect.DeepEqual(got, want) {
		t.Errorf("filtered query = %v, want %v", got, want)
	}
}

func TestOuterWhereReversedAndComparison(t *testing.T) {
	// Literal on the left, and a range operator.
	src := `
FOR $b IN document("bib.xml")//article
WHERE "2000" <= $b/year
RETURN
<late>
  {$b/title}
</late>`
	e, err := xq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// This query has no correlated part; the translator handles the
	// outer filter but the RETURN part is a path on the outer var,
	// which the part translator does not support — so expect a clean
	// error rather than silent misbehaviour.
	if _, err := Translate(e); err == nil {
		t.Skip("path-typed RETURN parts became supported; extend this test")
	}

	// The supported form: filter the outer variable itself.
	src2 := `
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE "Jill" <= $a
RETURN
<who>
  {$a}
</who>`
	op := translateSrc(t, src2)
	got := queryResult(t, op)
	// Jill and John pass the filter ("Jack" < "Jill").
	want := []string{"John:", "Jill:"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("range-filtered = %v, want %v", got, want)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"not flwr", `<a>{$x}</a>`},
		{"let first", `LET $t := document("d")//x RETURN <a>{$t}</a>`},
		{"outer where on two vars", `FOR $a IN document("d")//x WHERE $a = $a RETURN <a>{$a}</a>`},
		{"non-ctor return", `FOR $a IN document("d")//x RETURN $a`},
		{"unbound var", `FOR $a IN document("d")//x RETURN <a>{$z}</a>`},
		{"two fors", `FOR $a IN document("d")//x, $b IN document("d")//y RETURN <a>{$a}</a>`},
		{"nested without where", `FOR $a IN document("d")//x RETURN <a>{FOR $b IN document("d")//y RETURN $b/z}</a>`},
		{"nested bad return", `FOR $a IN document("d")//x RETURN <a>{FOR $b IN document("d")//y WHERE $a = $b/k RETURN <q>{$b}</q>}</a>`},
		{"count of string", `FOR $a IN document("d")//x RETURN <a>{count("zzz")}</a>`},
		{"var path source", `FOR $a IN $q//x RETURN <a>{$a}</a>`},
		{"doc without steps", `FOR $a IN document("d") RETURN <a>{$a}</a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := xq.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse should succeed here: %v", err)
			}
			if _, err := Translate(e); err == nil {
				t.Errorf("Translate(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestFormatPlan(t *testing.T) {
	op := translateSrc(t, Query1Src)
	s := Format(op)
	for _, want := range []string{"Stitch <authorpubs>", "LeftOuterJoin", "DBScan", "DupElim", "tag=article"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestEvalUnknownOp(t *testing.T) {
	type bogus struct{ Op }
	if _, err := Eval(sampleBase(), bogus{}); err == nil {
		t.Error("unknown op should error")
	}
}

func TestProjectPerTreeBareRoot(t *testing.T) {
	// A tree with no witnesses yields a bare root, keeping alignment.
	c := tax.NewCollection(
		paperdata.SampleDatabase(),
	)
	pt := pattern.MustTree(func() *pattern.Node {
		r := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
		r.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "nonexistent"}))
		return r
	}())
	out := evalProjectPerTree(c, pt, []tax.Item{tax.LS("$2")})
	if out.Len() != 1 {
		t.Fatalf("len = %d", out.Len())
	}
	if len(out.Trees[0].Children) != 0 || out.Trees[0].Tag != "doc_root" {
		t.Errorf("bare root = %s", out.Trees[0])
	}
}
