package plan

import (
	"errors"
	"fmt"

	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xq"
)

// DocRootTag is the tag of document roots the translator anchors
// patterns at. The paper treats the database as a single tree document
// whose root is tagged doc_root; the DBLP generator and the sample data
// follow that convention.
const DocRootTag = "doc_root"

// CountTag is the element name wrapping count() results. XQuery's
// count() yields a bare number; our data model has no text nodes, so
// the number is carried by a <count> element — the one deliberate
// deviation from the surface syntax, shared by both evaluation plans.
const CountTag = "count"

// Translate performs the naive parsing of Sec. 4.1 (and its Sec. 4.2
// LET variant): it converts a grouping-style FLWR query into a TAX
// plan of selections, projections, duplicate eliminations, a left outer
// join per nested FLWR or LET binding, and a final stitch. No grouping
// operator appears in the result; package opt's Rewrite detects the
// idiom and introduces GROUPBY.
//
// The supported query family is the paper's: an outer FOR over
// distinct-values(document(...)  path), optional LET clauses binding
// predicate paths correlated to the outer variable, and a RETURN
// element constructor whose parts are the outer variable, nested
// correlated FLWRs, LET variables, or count() of either.
func Translate(e xq.Expr) (Op, error) {
	f, ok := e.(*xq.FLWR)
	if !ok {
		return nil, fmt.Errorf("plan: top-level expression must be a FLWR, got %T", e)
	}
	if len(f.Clauses) == 0 || f.Clauses[0].Kind != xq.ForClause {
		return nil, errors.New("plan: query must start with a FOR clause")
	}

	outer, err := newOuterPipeline(f.Clauses[0], f.Where)
	if err != nil {
		return nil, err
	}

	// Collect LET bindings.
	lets := map[string]*xq.Clause{}
	for i := 1; i < len(f.Clauses); i++ {
		c := f.Clauses[i]
		if c.Kind != xq.LetClause {
			return nil, errors.New("plan: only one FOR clause plus LET clauses are supported at the outer level")
		}
		lets[c.Var] = &f.Clauses[i]
	}

	ctor, ok := f.Return.(*xq.ElemCtor)
	if !ok {
		return nil, fmt.Errorf("plan: RETURN must be an element constructor, got %T", f.Return)
	}

	stitch := &Stitch{Tag: ctor.Tag}
	for _, part := range ctor.Parts {
		sp, err := translatePart(part, outer, lets)
		if err != nil {
			return nil, err
		}
		stitch.Parts = append(stitch.Parts, sp)
	}
	return stitch, nil
}

// outerPipeline carries what the RETURN-part translations need to know
// about the outer FOR: the plan computing its distinct bindings and the
// (post-projection, parent-child) pattern describing those trees.
type outerPipeline struct {
	op Op // DupElim(Project(Select(DBScan)))
	// selPat is the original outer pattern (Figure 4.a, with the ad
	// edges the query wrote); the join-plan's left part reuses it, and
	// Phase 1's subset test depends on those edge marks.
	selPat *pattern.Tree
	// pat is the parent-child version describing the physically
	// projected outer trees (footnote 5).
	pat      *pattern.Tree
	varName  string // the outer variable
	rootLbl  string // label bound to doc_root in pat
	boundLbl string // label bound to the outer variable's element
}

// newOuterPipeline implements Sec. 4.1 step 1: the outer FOR/WHERE
// generates a pattern tree; a selection is applied on the database with
// the bound variable as selection list, then a projection with the root
// and starred bound variable, then duplicate elimination on the bound
// variable's content. Outer WHERE conjuncts comparing the variable (or
// a path under it) to a string literal become predicates on the pattern
// — such filtered queries evaluate through the naive plan; the GROUPBY
// rewrite correctly declines them, since the strengthened outer pattern
// is no longer a subset of the join's inner pattern.
func newOuterPipeline(c xq.Clause, where []xq.Comparison) (*outerPipeline, error) {
	src := c.Expr
	distinct := false
	if dv, ok := src.(*xq.DistinctValues); ok {
		distinct = true
		src = dv.Arg
	}
	steps, err := docPathSteps(src)
	if err != nil {
		return nil, fmt.Errorf("plan: outer FOR: %w", err)
	}
	lg := newLabelGen()
	rootLbl := lg.next()
	root := pattern.NewNode(rootLbl, pattern.TagEq{Tag: DocRootTag})
	bound, err := chainSteps(root, steps, lg)
	if err != nil {
		return nil, err
	}
	for _, w := range where {
		if err := attachOuterPredicate(bound, c.Var, w, lg); err != nil {
			return nil, err
		}
	}
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, err
	}

	sel := &Select{In: &DBScan{}, Pattern: pt, SL: []tax.Item{tax.L(bound.Label)}}
	// Footnote 5: when a projection follows a selection with the same
	// pattern, ancestor-descendant edges become parent-child.
	pcPat := pcVersion(pt)
	proj := &Project{
		In:      sel,
		Pattern: pcPat,
		PL:      []tax.Item{tax.L(rootLbl), tax.LS(bound.Label)},
	}
	var op Op = proj
	if distinct {
		op = &DupElimContent{In: proj, Pattern: pcPat, Label: bound.Label}
	}
	return &outerPipeline{
		op:       op,
		selPat:   pt,
		pat:      pcPat,
		varName:  c.Var,
		rootLbl:  rootLbl,
		boundLbl: bound.Label,
	}, nil
}

// translatePart converts one RETURN-clause argument into a stitch part
// (Sec. 4.1 step 2).
func translatePart(part xq.Expr, outer *outerPipeline, lets map[string]*xq.Clause) (StitchPart, error) {
	switch p := part.(type) {
	case *xq.VarRef:
		if p.Name == outer.varName {
			return outerVarPart(outer), nil
		}
		if letc, ok := lets[p.Name]; ok {
			jp, err := joinPipeline(outer, letFLWREquivalent(letc))
			if err != nil {
				return StitchPart{}, err
			}
			return StitchPart{Op: jp.valuesOp(), Splice: true}, nil
		}
		return StitchPart{}, fmt.Errorf("plan: unbound variable $%s in RETURN", p.Name)
	case *xq.FLWR:
		corr, err := analyzeNestedFLWR(p, outer.varName)
		if err != nil {
			return StitchPart{}, err
		}
		jp, err := joinPipeline(outer, corr)
		if err != nil {
			return StitchPart{}, err
		}
		return StitchPart{Op: jp.valuesOp(), Splice: true}, nil
	case *xq.CountCall:
		var corr *correlatedQuery
		switch arg := p.Arg.(type) {
		case *xq.VarRef:
			letc, ok := lets[arg.Name]
			if !ok {
				return StitchPart{}, fmt.Errorf("plan: count($%s): not a LET variable", arg.Name)
			}
			corr = letFLWREquivalent(letc)
		case *xq.FLWR:
			var err error
			corr, err = analyzeNestedFLWR(arg, outer.varName)
			if err != nil {
				return StitchPart{}, err
			}
		default:
			return StitchPart{}, fmt.Errorf("plan: unsupported count() argument %T", p.Arg)
		}
		jp, err := joinPipeline(outer, corr)
		if err != nil {
			return StitchPart{}, err
		}
		return StitchPart{Op: jp.countOp(), Splice: true}, nil
	default:
		return StitchPart{}, fmt.Errorf("plan: unsupported RETURN part %T", part)
	}
}

// outerVarPart builds the {$a} argument: a selection and projection on
// the outer result extracting the bound variable's subtree.
func outerVarPart(outer *outerPipeline) StitchPart {
	sel := &Select{In: outer.op, Pattern: outer.pat, SL: []tax.Item{tax.L(outer.boundLbl)}}
	proj := &Project{In: sel, Pattern: outer.pat, PL: []tax.Item{tax.LS(outer.boundLbl)}}
	return StitchPart{Op: proj, Splice: false}
}

// correlatedQuery is the normalized form of a nested FLWR or LET
// binding correlated with the outer variable:
//
//	bind an element by forSteps from the document root,
//	require joinSteps (relative to it) to reach a node whose content
//	equals the outer variable,
//	return the nodes at returnSteps (relative to it).
type correlatedQuery struct {
	forSteps    []xq.Step // e.g. //article
	joinSteps   []xq.Step // e.g. /author  (the correlation path)
	returnSteps []xq.Step // e.g. /title
	orderSteps  []xq.Step // ORDER BY path relative to the member; nil = document order
	orderDesc   bool
}

// letFLWREquivalent normalizes LET $t := document(...)//article[author
// = $a]/title into the same correlated form as the nested FLWR — the
// equivalence Sec. 4.2 is about.
func letFLWREquivalent(letc *xq.Clause) *correlatedQuery {
	pe, ok := letc.Expr.(*xq.PathExpr)
	if !ok {
		return nil
	}
	// Find the step carrying the correlation predicate.
	for i, st := range pe.Steps {
		if st.Pred == nil {
			continue
		}
		if _, ok := st.Pred.Rhs.(*xq.VarRef); !ok {
			continue
		}
		forSteps := append([]xq.Step{}, pe.Steps[:i+1]...)
		forSteps[i].Pred = nil
		return &correlatedQuery{
			forSteps:    forSteps,
			joinSteps:   st.Pred.Path,
			returnSteps: pe.Steps[i+1:],
		}
	}
	return nil
}

// analyzeNestedFLWR normalizes FOR $b IN document(...)steps WHERE $a =
// $b/path RETURN $b/path into the correlated form.
func analyzeNestedFLWR(f *xq.FLWR, outerVar string) (*correlatedQuery, error) {
	if len(f.Clauses) != 1 || f.Clauses[0].Kind != xq.ForClause {
		return nil, errors.New("plan: nested FLWR must have a single FOR clause")
	}
	innerVar := f.Clauses[0].Var
	forSteps, err := docPathSteps(f.Clauses[0].Expr)
	if err != nil {
		return nil, fmt.Errorf("plan: nested FOR: %w", err)
	}
	if len(f.Where) != 1 || f.Where[0].Op != "=" {
		return nil, errors.New("plan: nested FLWR needs exactly one equality WHERE conjunct")
	}
	joinSteps, err := correlationPath(f.Where[0], outerVar, innerVar)
	if err != nil {
		return nil, err
	}
	retPath, ok := f.Return.(*xq.PathExpr)
	if !ok {
		return nil, fmt.Errorf("plan: nested RETURN must be a path on $%s, got %T", innerVar, f.Return)
	}
	if v, ok := retPath.Source.(*xq.VarRef); !ok || v.Name != innerVar {
		return nil, fmt.Errorf("plan: nested RETURN must start at $%s", innerVar)
	}
	corr := &correlatedQuery{
		forSteps:    forSteps,
		joinSteps:   joinSteps,
		returnSteps: retPath.Steps,
	}
	if len(f.OrderBy) > 0 {
		if len(f.OrderBy) > 1 {
			return nil, errors.New("plan: nested ORDER BY supports a single key")
		}
		key := f.OrderBy[0]
		kp, ok := key.Expr.(*xq.PathExpr)
		if !ok {
			return nil, fmt.Errorf("plan: ORDER BY key must be a path on $%s", innerVar)
		}
		if v, ok := kp.Source.(*xq.VarRef); !ok || v.Name != innerVar {
			return nil, fmt.Errorf("plan: ORDER BY key must start at $%s", innerVar)
		}
		for _, st := range kp.Steps {
			if st.Descendant || st.Pred != nil {
				return nil, errors.New("plan: ORDER BY key must be a plain child path")
			}
		}
		corr.orderSteps = kp.Steps
		corr.orderDesc = key.Descending
	}
	return corr, nil
}

// correlationPath extracts the inner-relative path from WHERE
// $outer = $inner/path (either operand order).
func correlationPath(w xq.Comparison, outerVar, innerVar string) ([]xq.Step, error) {
	try := func(a, b xq.Expr) []xq.Step {
		v, ok := a.(*xq.VarRef)
		if !ok || v.Name != outerVar {
			return nil
		}
		pe, ok := b.(*xq.PathExpr)
		if !ok {
			return nil
		}
		src, ok := pe.Source.(*xq.VarRef)
		if !ok || src.Name != innerVar {
			return nil
		}
		return pe.Steps
	}
	if steps := try(w.Left, w.Right); steps != nil {
		return steps, nil
	}
	if steps := try(w.Right, w.Left); steps != nil {
		return steps, nil
	}
	return nil, fmt.Errorf("plan: WHERE must correlate $%s with a path on $%s", outerVar, innerVar)
}

// joined carries the pieces of one join pipeline so the caller can ask
// for the values (titles) or the count form.
type joined struct {
	src      Op            // [SortChildrenByPath](DedupChildren(LeftOuterJoin(...)))
	prodPat  *pattern.Tree // TAX_prod_root -> bound element -> return path
	valueLbl string        // label of the return-path node in prodPat
	rootLbl  string        // label of the prod root in prodPat
}

// joinPipeline implements Sec. 4.1 step 2's nested-FLWR procedure: a
// left outer join between the outer result and the database using the
// join-plan pattern tree (Figure 4.b), followed by duplicate
// elimination based on the joined elements.
func joinPipeline(outer *outerPipeline, corr *correlatedQuery) (*joined, error) {
	if corr == nil {
		return nil, errors.New("plan: unsupported correlated binding shape")
	}
	// Right ("inner") pattern: doc_root, the FOR path, the join path.
	lg := newLabelGen()
	rroot := pattern.NewNode(lg.next(), pattern.TagEq{Tag: DocRootTag})
	bound, err := chainSteps(rroot, corr.forSteps, lg)
	if err != nil {
		return nil, err
	}
	joinNode, err := chainSteps(bound, corr.joinSteps, lg)
	if err != nil {
		return nil, err
	}
	rightPat, err := pattern.NewTree(rroot)
	if err != nil {
		return nil, err
	}

	join := &LeftOuterJoin{
		Left:  outer.op,
		Right: &DBScan{},
		Spec: tax.JoinSpec{
			LeftPattern:  outer.selPat,
			LeftLabel:    outer.boundLbl,
			RightPattern: rightPat,
			RightLabel:   joinNode.Label,
			SL:           []tax.Item{tax.LS(bound.Label)},
		},
	}
	var src Op = &DedupChildren{In: join}
	if corr.orderSteps != nil {
		src = &SortChildrenByPath{In: src, Path: stepNames(corr.orderSteps), Desc: corr.orderDesc}
	}

	// Product pattern: prod root, the joined element, the return path.
	lg2 := newLabelGen()
	proot := pattern.NewNode(lg2.next(), pattern.TagEq{Tag: tax.ProdRootTag})
	elemTag := bound.TagConstraint()
	elem := proot.AddChild(pattern.Child, pattern.NewNode(lg2.next(), pattern.TagEq{Tag: elemTag}))
	valueNode, err := chainSteps(elem, corr.returnSteps, lg2)
	if err != nil {
		return nil, err
	}
	prodPat, err := pattern.NewTree(proot)
	if err != nil {
		return nil, err
	}
	return &joined{
		src:      src,
		prodPat:  prodPat,
		valueLbl: valueNode.Label,
		rootLbl:  proot.Label,
	}, nil
}

// valuesOp extracts the return-path subtrees per joined tree (spliced
// into the stitch).
func (j *joined) valuesOp() Op {
	return &ProjectPerTree{In: j.src, Pattern: j.prodPat, PL: []tax.Item{tax.LS(j.valueLbl)}}
}

// countOp aggregates the return-path matches per joined tree into a
// count node and extracts it.
func (j *joined) countOp() Op {
	agg := &Aggregate{
		In:      j.src,
		Pattern: j.prodPat,
		Spec: tax.AggSpec{
			Fn:          tax.Count,
			SrcLabel:    j.valueLbl,
			NewTag:      CountTag,
			AnchorLabel: j.rootLbl,
			Place:       tax.AfterLastChild,
		},
	}
	lg := newLabelGen()
	root := pattern.NewNode(lg.next(), pattern.TagEq{Tag: tax.ProdRootTag})
	cnt := root.AddChild(pattern.Child, pattern.NewNode(lg.next(), pattern.TagEq{Tag: CountTag}))
	cntPat := pattern.MustTree(root)
	return &ProjectPerTree{In: agg, Pattern: cntPat, PL: []tax.Item{tax.LS(cnt.Label)}}
}

// docPathSteps unwraps document("...")/steps.
func docPathSteps(e xq.Expr) ([]xq.Step, error) {
	pe, ok := e.(*xq.PathExpr)
	if !ok {
		return nil, fmt.Errorf("expected a document path, got %T", e)
	}
	if _, ok := pe.Source.(*xq.DocCall); !ok {
		return nil, fmt.Errorf("path must start at document(...), got %T", pe.Source)
	}
	if len(pe.Steps) == 0 {
		return nil, errors.New("document path needs at least one step")
	}
	return pe.Steps, nil
}

// chainSteps appends pattern nodes for each path step under parent and
// returns the last node. Step predicates other than the correlation
// (already stripped) become content-equality predicates for string
// comparands.
func chainSteps(parent *pattern.Node, steps []xq.Step, lg *labelGen) (*pattern.Node, error) {
	cur := parent
	for i, st := range steps {
		axis := pattern.Child
		// The leading step of a relative path (inside predicates) has
		// Descendant=false and is a child step; top-level paths mark
		// descendant explicitly.
		if st.Descendant {
			axis = pattern.Descendant
		}
		preds := []pattern.Predicate{pattern.TagEq{Tag: st.Name}}
		node := pattern.NewNode(lg.next(), preds...)
		cur.AddChild(axis, node)
		cur = node
		if st.Pred != nil {
			lit, ok := st.Pred.Rhs.(*xq.StringLit)
			if !ok {
				return nil, fmt.Errorf("unsupported predicate at step %d (only string literals or the correlation variable)", i)
			}
			sub, err := chainSteps(cur, st.Pred.Path, lg)
			if err != nil {
				return nil, err
			}
			sub.Preds = append(sub.Preds, pattern.ContentEq{Value: lit.Value})
		}
	}
	return cur, nil
}

// pcVersion clones a pattern converting every edge to parent-child —
// the paper's footnote 5 transformation for projections that follow a
// selection with the same pattern.
func pcVersion(pt *pattern.Tree) *pattern.Tree {
	cp := pt.Clone()
	var walk func(*pattern.Node)
	walk = func(n *pattern.Node) {
		for _, c := range n.Children {
			c.Axis = pattern.Child
			walk(c)
		}
	}
	walk(cp.Root)
	return cp
}

// attachOuterPredicate turns one outer WHERE conjunct into pattern
// predicates under the bound node. Supported forms: $v op "literal" and
// $v/path op "literal" (either operand order).
func attachOuterPredicate(bound *pattern.Node, outerVar string, w xq.Comparison, lg *labelGen) error {
	path, lit, op, err := normalizeOuterConjunct(outerVar, w)
	if err != nil {
		return err
	}
	target := bound
	if len(path) > 0 {
		target, err = chainSteps(bound, path, lg)
		if err != nil {
			return err
		}
	}
	pred, err := comparisonPredicate(op, lit)
	if err != nil {
		return err
	}
	target.Preds = append(target.Preds, pred)
	return nil
}

// normalizeOuterConjunct extracts (relative path, literal, operator)
// from a conjunct on the outer variable, flipping reversed operands.
func normalizeOuterConjunct(outerVar string, w xq.Comparison) ([]xq.Step, string, string, error) {
	try := func(a, b xq.Expr, op string) ([]xq.Step, string, string, bool) {
		lit, ok := b.(*xq.StringLit)
		if !ok {
			return nil, "", "", false
		}
		switch l := a.(type) {
		case *xq.VarRef:
			if l.Name == outerVar {
				return nil, lit.Value, op, true
			}
		case *xq.PathExpr:
			if v, ok := l.Source.(*xq.VarRef); ok && v.Name == outerVar {
				return l.Steps, lit.Value, op, true
			}
		}
		return nil, "", "", false
	}
	if p, lit, op, ok := try(w.Left, w.Right, w.Op); ok {
		return p, lit, op, nil
	}
	if p, lit, op, ok := try(w.Right, w.Left, flipOp(w.Op)); ok {
		return p, lit, op, nil
	}
	return nil, "", "", fmt.Errorf("plan: unsupported outer WHERE conjunct %s %s %s", w.Left, w.Op, w.Right)
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	default:
		return op // = and != are symmetric
	}
}

func comparisonPredicate(op, lit string) (pattern.Predicate, error) {
	switch op {
	case "=":
		return pattern.ContentEq{Value: lit}, nil
	case "!=":
		return pattern.ContentCmp{Op: pattern.Ne, Value: lit}, nil
	case "<":
		return pattern.ContentCmp{Op: pattern.Lt, Value: lit}, nil
	case "<=":
		return pattern.ContentCmp{Op: pattern.Le, Value: lit}, nil
	case ">":
		return pattern.ContentCmp{Op: pattern.Gt, Value: lit}, nil
	case ">=":
		return pattern.ContentCmp{Op: pattern.Ge, Value: lit}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported comparison operator %q", op)
	}
}

// stepNames extracts the element names of a plain child-step path.
func stepNames(steps []xq.Step) []string {
	out := make([]string, len(steps))
	for i, st := range steps {
		out[i] = st.Name
	}
	return out
}

// labelGen hands out fresh $1, $2, ... labels per pattern tree.
type labelGen struct{ n int }

func newLabelGen() *labelGen { return &labelGen{} }

func (g *labelGen) next() string {
	g.n++
	return fmt.Sprintf("$%d", g.n)
}
