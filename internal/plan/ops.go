// Package plan defines logical TAX algebra plans and the naive
// translation from the XQuery subset into them (Sec. 4.1 "Naive
// Parsing" and Sec. 4.2's LET variant). Plans are operator trees whose
// leaves scan the database collection; package opt rewrites them
// (detecting the grouping idiom and introducing GROUPBY), and they can
// be evaluated logically over in-memory collections (Eval here) or
// physically over the storage layer (package exec).
package plan

import (
	"fmt"
	"strings"

	"timber/internal/pattern"
	"timber/internal/tax"
)

// Op is a logical plan operator.
type Op interface {
	// Inputs returns the operator's input plans, if any.
	Inputs() []Op
	// Describe returns a one-line description (operator name plus
	// parameters) used by the plan printer.
	Describe() string
}

// DBScan is the plan leaf: the collection of all documents in the
// database (the paper's "the database is a single tree document" —
// several loaded documents simply mean several trees).
type DBScan struct{}

// Inputs implements Op.
func (*DBScan) Inputs() []Op { return nil }

// Describe implements Op.
func (*DBScan) Describe() string { return "DBScan" }

// Literal is a plan leaf holding a precomputed collection. The generic
// physical evaluator (package exec) substitutes Literal leaves for
// index-evaluated selections before running the remaining operators
// with the reference semantics.
type Literal struct {
	C tax.Collection
}

// Inputs implements Op.
func (*Literal) Inputs() []Op { return nil }

// Describe implements Op.
func (o *Literal) Describe() string { return fmt.Sprintf("Literal (%d trees)", o.C.Len()) }

// Select is TAX selection with a pattern and adornment list.
type Select struct {
	In      Op
	Pattern *pattern.Tree
	SL      []tax.Item
}

// Inputs implements Op.
func (o *Select) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *Select) Describe() string {
	return fmt.Sprintf("Select SL=%v pattern:\n%s", o.SL, indent(o.Pattern.String()))
}

// Project is TAX projection with a pattern and projection list.
type Project struct {
	In      Op
	Pattern *pattern.Tree
	PL      []tax.Item
}

// Inputs implements Op.
func (o *Project) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *Project) Describe() string {
	return fmt.Sprintf("Project PL=%v pattern:\n%s", o.PL, indent(o.Pattern.String()))
}

// ProjectPerTree is an alignment-preserving projection: exactly one
// output tree per input tree, whose root is a copy of the input root
// and whose children are the retained nodes (starred items keep their
// subtrees). Inputs with no witness produce a bare root. The naive plan
// uses it to keep per-outer-binding alignment through the RETURN
// arguments so the final positional stitch is well defined. (The
// paper's figures elide this bookkeeping; plain TAX projection can
// split or drop trees, which would lose the alignment the stitch
// step implicitly relies on.)
type ProjectPerTree struct {
	In      Op
	Pattern *pattern.Tree
	PL      []tax.Item
}

// Inputs implements Op.
func (o *ProjectPerTree) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *ProjectPerTree) Describe() string {
	return fmt.Sprintf("ProjectPerTree PL=%v pattern:\n%s", o.PL, indent(o.Pattern.String()))
}

// DupElimContent eliminates duplicate trees keyed by the content of the
// node the pattern binds to Label ("duplicate elimination based on
// $2.content").
type DupElimContent struct {
	In      Op
	Pattern *pattern.Tree
	Label   string
}

// Inputs implements Op.
func (o *DupElimContent) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *DupElimContent) Describe() string {
	return fmt.Sprintf("DupElim by %s.content", o.Label)
}

// DedupChildren removes, within each tree, children that duplicate an
// earlier sibling structurally ("duplicate elimination based on
// articles" after the naive join).
type DedupChildren struct {
	In Op
}

// Inputs implements Op.
func (o *DedupChildren) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *DedupChildren) Describe() string { return "DedupChildren" }

// LeftOuterJoin is the naive plan's value-based left outer join
// (Sec. 4.1 step 2a, Figure 4.b).
type LeftOuterJoin struct {
	Left  Op
	Right Op
	Spec  tax.JoinSpec
}

// Inputs implements Op.
func (o *LeftOuterJoin) Inputs() []Op { return []Op{o.Left, o.Right} }

// Describe implements Op.
func (o *LeftOuterJoin) Describe() string {
	return fmt.Sprintf("LeftOuterJoin on %s.content = %s.content SL=%v\n  left pattern:\n%s  right pattern:\n%s",
		o.Spec.LeftLabel, o.Spec.RightLabel, o.Spec.SL,
		indent(indent(o.Spec.LeftPattern.String())), indent(indent(o.Spec.RightPattern.String())))
}

// StitchPart is one RETURN-clause argument feeding a Stitch.
type StitchPart struct {
	Op Op
	// Splice controls whether the part contributes its per-tree result
	// root's children (true) or the result tree itself (false).
	Splice bool
}

// Stitch combines the per-argument results positionally — the "full
// outer join" plus rename of Sec. 4.1's stitching step: output tree i
// has tag Tag and collects part k's tree i for every k.
type Stitch struct {
	Tag   string
	Parts []StitchPart
}

// Inputs implements Op.
func (o *Stitch) Inputs() []Op {
	ops := make([]Op, len(o.Parts))
	for i, p := range o.Parts {
		ops[i] = p.Op
	}
	return ops
}

// Describe implements Op.
func (o *Stitch) Describe() string { return fmt.Sprintf("Stitch <%s> (%d parts)", o.Tag, len(o.Parts)) }

// SortChildrenByPath reorders, within each tree, the children that
// contain the given relative child-step path, by the path's first leaf
// value (ties keep document order; non-matching children keep their
// positions). The naive translation introduces it for a nested FLWR's
// ORDER BY; the rewrite turns it into the GROUPBY ordering list.
type SortChildrenByPath struct {
	In   Op
	Path []string
	Desc bool
}

// Inputs implements Op.
func (o *SortChildrenByPath) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *SortChildrenByPath) Describe() string {
	dir := "ASCENDING"
	if o.Desc {
		dir = "DESCENDING"
	}
	return fmt.Sprintf("SortChildren by %v %s", o.Path, dir)
}

// GroupBy is the TAX grouping operator (Sec. 3).
type GroupBy struct {
	In       Op
	Pattern  *pattern.Tree
	Basis    []tax.BasisItem
	Ordering []tax.OrderItem
}

// Inputs implements Op.
func (o *GroupBy) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *GroupBy) Describe() string {
	return fmt.Sprintf("GroupBy basis=%v ordering=%v pattern:\n%s",
		o.Basis, o.Ordering, indent(o.Pattern.String()))
}

// Aggregate is the TAX aggregation operator (Sec. 4.3).
type Aggregate struct {
	In      Op
	Pattern *pattern.Tree
	Spec    tax.AggSpec
}

// Inputs implements Op.
func (o *Aggregate) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *Aggregate) Describe() string {
	return fmt.Sprintf("Aggregate %s(%s) as <%s> %v($%s)",
		o.Spec.Fn, o.Spec.SrcLabel, o.Spec.NewTag, o.Spec.Place, o.Spec.AnchorLabel)
}

// Rename renames the root of every tree.
type Rename struct {
	In     Op
	NewTag string
}

// Inputs implements Op.
func (o *Rename) Inputs() []Op { return []Op{o.In} }

// Describe implements Op.
func (o *Rename) Describe() string { return fmt.Sprintf("Rename root -> <%s>", o.NewTag) }

// Format renders the plan tree, children indented under parents.
func Format(op Op) string {
	var b strings.Builder
	var walk func(o Op, depth int)
	walk = func(o Op, depth int) {
		pad := strings.Repeat("  ", depth)
		for _, line := range strings.Split(strings.TrimRight(o.Describe(), "\n"), "\n") {
			fmt.Fprintf(&b, "%s%s\n", pad, line)
		}
		for _, in := range o.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
