package xq

import "testing"

// FuzzParse asserts the parser's total-function contract: any input —
// truncated keywords, stray braces, embedded NULs — must produce an
// Expr or an error, never a panic. Seeds cover the grammar's corners
// plus known-tricky shapes (unterminated strings, nested braces).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"FOR",
		`FOR $a IN distinct-values(document("bib.xml")//author) RETURN <r>{$a}</r>`,
		`FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN <authorpubs>{$a} {count($t)}</authorpubs>`,
		`FOR $b IN document("bib.xml")//article WHERE $a = $b/author RETURN $b/title`,
		`RETURN <x>{`,
		`FOR $a IN RETURN`,
		`FOR $a IN document("x")// RETURN $a`,
		"FOR $a IN document(\"bib.xml\")//author RETURN <x>{$a}\x00</x>",
		`FOR $a IN document("unterminated`,
		`<a><b>{{}}</b></a>`,
		`FOR $a IN distinct-values(document("bib.xml")//author ORDER BY $a RETURN <r/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err == nil && expr == nil {
			t.Errorf("Parse(%q) returned nil expr and nil error", src)
		}
	})
}
