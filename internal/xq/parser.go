package xq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses one XQuery expression from src. Keywords (FOR, LET,
// WHERE, RETURN, IN, AND) are case-insensitive, matching the paper's
// uppercase style and XQuery's lowercase style alike.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	p.skipSpace()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected trailing input %q", p.rest(20))
	}
	return e, nil
}

// MustParse parses a query literal, panicking on error; for tests.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

// ParseError reports a syntax error with its byte offset.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xq: parse error at offset %d: %s", e.Pos, e.Msg)
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// peekByte returns the next byte without consuming it (0 at EOF).
func (p *parser) peekByte() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

// eat consumes the literal s if present.
func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// eatKeyword consumes a case-insensitive keyword followed by a
// non-identifier character.
func (p *parser) eatKeyword(kw string) bool {
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) && isIdentByte(p.src[end]) {
		return false
	}
	p.pos = end
	p.skipSpace()
	return true
}

func (p *parser) peekKeyword(kw string) bool {
	save := p.pos
	ok := p.eatKeyword(kw)
	p.pos = save
	return ok
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// ident consumes an identifier (letters, digits, _, -, .), which covers
// XML names and hyphenated function names like distinct-values.
func (p *parser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected identifier, found %q", p.rest(10))
	}
	return p.src[start:p.pos], nil
}

// stringLit consumes a double-quoted string (no escapes; the paper's
// queries need none) or the typographic quotes that appear in the
// paper's typesetting.
func (p *parser) stringLit() (string, error) {
	openers := []struct{ open, close string }{
		{`"`, `"`}, {"“", "”"}, {"”", "”"},
	}
	for _, q := range openers {
		if !p.eat(q.open) {
			continue
		}
		end := strings.Index(p.src[p.pos:], q.close)
		if end < 0 {
			return "", p.errorf("unterminated string")
		}
		s := p.src[p.pos : p.pos+end]
		p.pos += end + len(q.close)
		return s, nil
	}
	return "", p.errorf("expected string literal, found %q", p.rest(10))
}

// parseExpr parses any expression.
func (p *parser) parseExpr() (Expr, error) {
	p.skipSpace()
	switch {
	case p.peekKeyword("for"), p.peekKeyword("let"):
		return p.parseFLWR()
	case p.peekByte() == '<':
		return p.parseElemCtor()
	default:
		return p.parsePrimary()
	}
}

// parseFLWR parses FOR/LET clauses, optional WHERE, and RETURN.
func (p *parser) parseFLWR() (Expr, error) {
	f := &FLWR{}
	for {
		p.skipSpace()
		switch {
		case p.eatKeyword("for"):
			for {
				c, err := p.parseForBinding()
				if err != nil {
					return nil, err
				}
				f.Clauses = append(f.Clauses, c)
				p.skipSpace()
				if !p.eat(",") {
					break
				}
			}
		case p.eatKeyword("let"):
			c, err := p.parseLetBinding()
			if err != nil {
				return nil, err
			}
			f.Clauses = append(f.Clauses, c)
		default:
			goto clausesDone
		}
	}
clausesDone:
	if len(f.Clauses) == 0 {
		return nil, p.errorf("FLWR without FOR or LET clause")
	}
	p.skipSpace()
	if p.eatKeyword("where") {
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			f.Where = append(f.Where, cmp)
			p.skipSpace()
			if !p.eatKeyword("and") {
				break
			}
		}
	}
	p.skipSpace()
	if p.eatKeyword("order") {
		if !p.eatKeyword("by") {
			return nil, p.errorf("expected BY after ORDER")
		}
		for {
			key, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			ok := OrderKey{Expr: key}
			p.skipSpace()
			if p.eatKeyword("descending") {
				ok.Descending = true
			} else {
				p.eatKeyword("ascending") // explicit default
			}
			f.OrderBy = append(f.OrderBy, ok)
			p.skipSpace()
			if !p.eat(",") {
				break
			}
		}
	}
	p.skipSpace()
	if !p.eatKeyword("return") {
		return nil, p.errorf("expected RETURN, found %q", p.rest(10))
	}
	ret, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f.Return = ret
	return f, nil
}

func (p *parser) parseForBinding() (Clause, error) {
	p.skipSpace()
	v, err := p.varName()
	if err != nil {
		return Clause{}, err
	}
	p.skipSpace()
	if !p.eatKeyword("in") {
		return Clause{}, p.errorf("expected IN after FOR $%s", v)
	}
	e, err := p.parsePrimary()
	if err != nil {
		return Clause{}, err
	}
	return Clause{Kind: ForClause, Var: v, Expr: e}, nil
}

func (p *parser) parseLetBinding() (Clause, error) {
	p.skipSpace()
	v, err := p.varName()
	if err != nil {
		return Clause{}, err
	}
	p.skipSpace()
	if !p.eat(":=") {
		return Clause{}, p.errorf("expected := after LET $%s", v)
	}
	e, err := p.parsePrimary()
	if err != nil {
		return Clause{}, err
	}
	return Clause{Kind: LetClause, Var: v, Expr: e}, nil
}

func (p *parser) varName() (string, error) {
	if !p.eat("$") {
		return "", p.errorf("expected variable, found %q", p.rest(10))
	}
	return p.ident()
}

// parseComparison parses operand op operand.
func (p *parser) parseComparison() (Comparison, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return Comparison{}, err
	}
	p.skipSpace()
	op, err := p.compareOp()
	if err != nil {
		return Comparison{}, err
	}
	right, err := p.parsePrimary()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Op: op, Right: right}, nil
}

func (p *parser) compareOp() (string, error) {
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.eat(op) {
			return op, nil
		}
	}
	return "", p.errorf("expected comparison operator, found %q", p.rest(10))
}

// parsePrimary parses a non-FLWR, non-constructor expression: function
// calls, document() paths, variable paths, string literals.
func (p *parser) parsePrimary() (Expr, error) {
	p.skipSpace()
	switch {
	case p.peekByte() == '$':
		v, err := p.varName()
		if err != nil {
			return nil, err
		}
		return p.parseSteps(&VarRef{Name: v})
	case p.peekByte() == '"' || strings.HasPrefix(p.src[p.pos:], "“") || strings.HasPrefix(p.src[p.pos:], "”"):
		s, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		return &StringLit{Value: s}, nil
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eat("(") {
			return nil, p.errorf("expected ( after %s", name)
		}
		switch strings.ToLower(name) {
		case "document", "doc":
			p.skipSpace()
			docName, err := p.stringLit()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eat(")") {
				return nil, p.errorf("expected ) to close document(...)")
			}
			return p.parseSteps(&DocCall{Name: docName})
		case "distinct-values":
			arg, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eat(")") {
				return nil, p.errorf("expected ) to close distinct-values(...)")
			}
			return &DistinctValues{Arg: arg}, nil
		case "count":
			arg, err := p.parseExpr() // count(...) may wrap a whole FLWR
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eat(")") {
				return nil, p.errorf("expected ) to close count(...)")
			}
			return &CountCall{Arg: arg}, nil
		default:
			return nil, p.errorf("unknown function %s", name)
		}
	}
}

// parseSteps parses the trailing path steps after a source.
func (p *parser) parseSteps(source Expr) (Expr, error) {
	var steps []Step
	for {
		desc := false
		switch {
		case p.eat("//"):
			desc = true
		case p.eat("/"):
		default:
			if len(steps) == 0 {
				return source, nil
			}
			return &PathExpr{Source: source, Steps: steps}, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := Step{Descendant: desc, Name: name}
		if p.eat("[") {
			pred, err := p.parseStepPred()
			if err != nil {
				return nil, err
			}
			st.Pred = pred
		}
		steps = append(steps, st)
	}
}

// parseStepPred parses the inside of [relpath op rhs].
func (p *parser) parseStepPred() (*StepPred, error) {
	p.skipSpace()
	// Relative path: name (/name | //name)*.
	var path []Step
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	path = append(path, Step{Name: name})
	for {
		desc := false
		if p.eat("//") {
			desc = true
		} else if !p.eat("/") {
			break
		}
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		path = append(path, Step{Descendant: desc, Name: n})
	}
	p.skipSpace()
	op, err := p.compareOp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	var rhs Expr
	if p.peekByte() == '$' {
		v, err := p.varName()
		if err != nil {
			return nil, err
		}
		rhs = &VarRef{Name: v}
	} else {
		s, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		rhs = &StringLit{Value: s}
	}
	p.skipSpace()
	if !p.eat("]") {
		return nil, p.errorf("expected ] to close predicate")
	}
	return &StepPred{Path: path, Op: op, Rhs: rhs}, nil
}

// parseElemCtor parses <tag> parts </tag> where parts are enclosed
// expressions or nested constructors; whitespace between parts is
// skipped and literal text is rejected.
func (p *parser) parseElemCtor() (Expr, error) {
	if !p.eat("<") {
		return nil, p.errorf("expected <")
	}
	tag, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eat(">") {
		return nil, p.errorf("expected > after <%s", tag)
	}
	ctor := &ElemCtor{Tag: tag}
	for {
		p.skipSpace()
		switch {
		case p.eat("</"):
			p.skipSpace()
			closeTag, err := p.ident()
			if err != nil {
				return nil, err
			}
			if closeTag != tag {
				return nil, p.errorf("mismatched closing tag </%s> for <%s>", closeTag, tag)
			}
			p.skipSpace()
			if !p.eat(">") {
				return nil, p.errorf("expected > after </%s", closeTag)
			}
			return ctor, nil
		case p.peekByte() == '{':
			p.eat("{")
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eat("}") {
				return nil, p.errorf("expected } to close enclosed expression")
			}
			ctor.Parts = append(ctor.Parts, e)
		case p.peekByte() == '<':
			nested, err := p.parseElemCtor()
			if err != nil {
				return nil, err
			}
			ctor.Parts = append(ctor.Parts, nested)
		case p.eof():
			return nil, p.errorf("unterminated element constructor <%s>", tag)
		default:
			return nil, p.errorf("literal text inside constructors is not supported (found %q)", p.rest(10))
		}
	}
}
