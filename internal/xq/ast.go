// Package xq implements the XQuery subset the paper exercises: FLWR
// expressions (FOR / LET / WHERE / RETURN) with nesting, XPath-style
// paths over document() and variables with child (/) and descendant
// (//) steps and equality predicates ([author = $a]), the
// distinct-values and count functions, and element constructors with
// enclosed expressions.
//
// Every query in the paper — Query 1, the unnested Query 2, the
// institution variants of the introduction, and the count variant of
// Sec. 6 — parses with this package. The AST deliberately mirrors the
// surface syntax; translation into TAX algebra plans is package plan's
// job.
package xq

import (
	"fmt"
	"strings"
)

// Expr is any expression node.
type Expr interface {
	exprNode()
	// String renders the expression in (re-parseable) XQuery syntax.
	String() string
}

// FLWR is a FOR/LET/WHERE/ORDER BY/RETURN expression. Clauses preserve
// source order, which matters: later clauses may reference earlier
// variables.
type FLWR struct {
	Clauses []Clause
	Where   []Comparison // conjunction; empty = no WHERE
	OrderBy []OrderKey   // empty = document order
	Return  Expr
}

// OrderKey is one ORDER BY component.
type OrderKey struct {
	Expr       Expr // typically a path on a FOR variable
	Descending bool
}

// ClauseKind distinguishes FOR from LET.
type ClauseKind int

// Clause kinds.
const (
	ForClause ClauseKind = iota
	LetClause
)

// Clause is one variable binding: FOR $v IN expr or LET $v := expr.
type Clause struct {
	Kind ClauseKind
	Var  string // without the $
	Expr Expr
}

// Comparison is one WHERE conjunct: left op right.
type Comparison struct {
	Left  Expr
	Op    string // "=", "!=", "<", "<=", ">", ">="
	Right Expr
}

// PathExpr is a path: a source followed by steps, e.g.
// document("bib.xml")//article[author = $a]/title or $b/author.
type PathExpr struct {
	Source Expr // DocCall or VarRef
	Steps  []Step
}

// Step is one path step.
type Step struct {
	// Descendant is true for // (descendant-or-self::node()/child in
	// full XPath; here simply "descendant"), false for / (child).
	Descendant bool
	// Name is the element name test.
	Name string
	// Pred is an optional equality predicate [relpath = expr].
	Pred *StepPred
}

// StepPred is a step predicate [path op expr], e.g. [author = $a].
type StepPred struct {
	Path []Step // relative path inside the predicate
	Op   string
	Rhs  Expr // VarRef or StringLit
}

// DocCall is document("name").
type DocCall struct {
	Name string
}

// VarRef references a bound variable, e.g. $a.
type VarRef struct {
	Name string // without the $
}

// StringLit is a quoted string literal.
type StringLit struct {
	Value string
}

// DistinctValues is distinct-values(expr).
type DistinctValues struct {
	Arg Expr
}

// CountCall is count(expr).
type CountCall struct {
	Arg Expr
}

// ElemCtor is an element constructor <tag>parts</tag>; parts are
// enclosed expressions ({...}) or nested constructors. Literal text
// inside constructors is not supported (the paper's queries have none).
type ElemCtor struct {
	Tag   string
	Parts []Expr
}

func (*FLWR) exprNode()           {}
func (*PathExpr) exprNode()       {}
func (*DocCall) exprNode()        {}
func (*VarRef) exprNode()         {}
func (*StringLit) exprNode()      {}
func (*DistinctValues) exprNode() {}
func (*CountCall) exprNode()      {}
func (*ElemCtor) exprNode()       {}

func (f *FLWR) String() string {
	var b strings.Builder
	for _, c := range f.Clauses {
		if c.Kind == ForClause {
			fmt.Fprintf(&b, "FOR $%s IN %s ", c.Var, c.Expr)
		} else {
			fmt.Fprintf(&b, "LET $%s := %s ", c.Var, c.Expr)
		}
	}
	if len(f.Where) > 0 {
		b.WriteString("WHERE ")
		for i, w := range f.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %s", w.Left, w.Op, w.Right)
		}
		b.WriteString(" ")
	}
	if len(f.OrderBy) > 0 {
		b.WriteString("ORDER BY ")
		for i, k := range f.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Expr.String())
			if k.Descending {
				b.WriteString(" DESCENDING")
			}
		}
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "RETURN %s", f.Return)
	return b.String()
}

func (p *PathExpr) String() string {
	var b strings.Builder
	b.WriteString(p.Source.String())
	for _, s := range p.Steps {
		b.WriteString(s.String())
	}
	return b.String()
}

func (s Step) String() string {
	sep := "/"
	if s.Descendant {
		sep = "//"
	}
	out := sep + s.Name
	if s.Pred != nil {
		var pb strings.Builder
		for i, ps := range s.Pred.Path {
			if i == 0 {
				pb.WriteString(ps.Name) // leading step is relative
			} else {
				pb.WriteString(ps.String())
			}
		}
		out += fmt.Sprintf("[%s %s %s]", pb.String(), s.Pred.Op, s.Pred.Rhs)
	}
	return out
}

func (d *DocCall) String() string   { return fmt.Sprintf("document(%q)", d.Name) }
func (v *VarRef) String() string    { return "$" + v.Name }
func (s *StringLit) String() string { return fmt.Sprintf("%q", s.Value) }

func (d *DistinctValues) String() string { return fmt.Sprintf("distinct-values(%s)", d.Arg) }
func (c *CountCall) String() string      { return fmt.Sprintf("count(%s)", c.Arg) }

func (e *ElemCtor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%s>", e.Tag)
	for _, p := range e.Parts {
		if nested, ok := p.(*ElemCtor); ok {
			b.WriteString(nested.String())
		} else {
			fmt.Fprintf(&b, "{%s}", p)
		}
	}
	fmt.Fprintf(&b, "</%s>", e.Tag)
	return b.String()
}
