package xq

import (
	"strings"
	"testing"
)

// Query1 is the paper's Query 1 (group by author, nested FLWR).
const Query1 = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

// Query2 is the paper's unnested formulation using LET (Sec. 4.2).
const Query2 = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {$t}
</authorpubs>`

// QueryCount is the Sec. 6 count variant.
const QueryCount = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {count($t)}
</authorpubs>`

func TestParseQuery1(t *testing.T) {
	e, err := Parse(Query1)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := e.(*FLWR)
	if !ok {
		t.Fatalf("top level = %T", e)
	}
	if len(f.Clauses) != 1 || f.Clauses[0].Kind != ForClause || f.Clauses[0].Var != "a" {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
	dv, ok := f.Clauses[0].Expr.(*DistinctValues)
	if !ok {
		t.Fatalf("for source = %T", f.Clauses[0].Expr)
	}
	path, ok := dv.Arg.(*PathExpr)
	if !ok || len(path.Steps) != 1 || !path.Steps[0].Descendant || path.Steps[0].Name != "author" {
		t.Fatalf("distinct-values arg = %v", dv.Arg)
	}
	if doc, ok := path.Source.(*DocCall); !ok || doc.Name != "bib.xml" {
		t.Fatalf("source = %v", path.Source)
	}

	ctor, ok := f.Return.(*ElemCtor)
	if !ok || ctor.Tag != "authorpubs" || len(ctor.Parts) != 2 {
		t.Fatalf("return = %v", f.Return)
	}
	if v, ok := ctor.Parts[0].(*VarRef); !ok || v.Name != "a" {
		t.Fatalf("first part = %v", ctor.Parts[0])
	}
	inner, ok := ctor.Parts[1].(*FLWR)
	if !ok {
		t.Fatalf("second part = %T", ctor.Parts[1])
	}
	if len(inner.Where) != 1 || inner.Where[0].Op != "=" {
		t.Fatalf("inner where = %+v", inner.Where)
	}
	if _, ok := inner.Where[0].Left.(*VarRef); !ok {
		t.Errorf("where left = %T", inner.Where[0].Left)
	}
	rp, ok := inner.Where[0].Right.(*PathExpr)
	if !ok || rp.Steps[0].Name != "author" || rp.Steps[0].Descendant {
		t.Errorf("where right = %v", inner.Where[0].Right)
	}
	ret, ok := inner.Return.(*PathExpr)
	if !ok || ret.Steps[0].Name != "title" {
		t.Errorf("inner return = %v", inner.Return)
	}
}

func TestParseQuery2(t *testing.T) {
	e, err := Parse(Query2)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWR)
	if len(f.Clauses) != 2 || f.Clauses[1].Kind != LetClause || f.Clauses[1].Var != "t" {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
	p, ok := f.Clauses[1].Expr.(*PathExpr)
	if !ok || len(p.Steps) != 2 {
		t.Fatalf("let expr = %v", f.Clauses[1].Expr)
	}
	art := p.Steps[0]
	if art.Name != "article" || !art.Descendant || art.Pred == nil {
		t.Fatalf("article step = %+v", art)
	}
	if art.Pred.Path[0].Name != "author" || art.Pred.Op != "=" {
		t.Fatalf("pred = %+v", art.Pred)
	}
	if v, ok := art.Pred.Rhs.(*VarRef); !ok || v.Name != "a" {
		t.Fatalf("pred rhs = %v", art.Pred.Rhs)
	}
	if p.Steps[1].Name != "title" || p.Steps[1].Descendant {
		t.Fatalf("title step = %+v", p.Steps[1])
	}
}

func TestParseQueryCount(t *testing.T) {
	e, err := Parse(QueryCount)
	if err != nil {
		t.Fatal(err)
	}
	ctor := e.(*FLWR).Return.(*ElemCtor)
	cnt, ok := ctor.Parts[1].(*CountCall)
	if !ok {
		t.Fatalf("second part = %T", ctor.Parts[1])
	}
	if v, ok := cnt.Arg.(*VarRef); !ok || v.Name != "t" {
		t.Fatalf("count arg = %v", cnt.Arg)
	}
}

func TestParseInstitutionQuery(t *testing.T) {
	// The introduction's group-by-institution query.
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inner := e.(*FLWR).Return.(*ElemCtor).Parts[1].(*FLWR)
	rp := inner.Where[0].Right.(*PathExpr)
	if len(rp.Steps) != 2 || rp.Steps[0].Name != "author" || rp.Steps[1].Name != "institution" {
		t.Fatalf("where path = %v", rp)
	}
}

func TestParseNestedConstructors(t *testing.T) {
	// The doubly-nested author+institution query shape.
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $a IN distinct-values(document("bib.xml")//author)
    WHERE $i = $a/institution
    RETURN
    <authorpubs>
      {$a}
      {
        FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title
      }
    </authorpubs>
  }
</instpubs>`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := e.(*FLWR).Return.(*ElemCtor)
	mid := outer.Parts[1].(*FLWR)
	midCtor, ok := mid.Return.(*ElemCtor)
	if !ok || midCtor.Tag != "authorpubs" {
		t.Fatalf("mid return = %v", mid.Return)
	}
	if _, ok := midCtor.Parts[1].(*FLWR); !ok {
		t.Fatalf("innermost = %T", midCtor.Parts[1])
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{Query1, Query2, QueryCount} {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		// String() must re-parse to the same String().
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", e.String(), err)
		}
		if again.String() != e.String() {
			t.Errorf("round trip:\n 1st %s\n 2nd %s", e, again)
		}
	}
}

func TestParseWhereConjunction(t *testing.T) {
	src := `FOR $b IN document("d")//article WHERE $b/year = "1999" AND $b/author = "Jack" RETURN $b/title`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWR)
	if len(f.Where) != 2 {
		t.Fatalf("where conjuncts = %d", len(f.Where))
	}
	if s, ok := f.Where[0].Right.(*StringLit); !ok || s.Value != "1999" {
		t.Errorf("first rhs = %v", f.Where[0].Right)
	}
}

func TestParseMultipleForBindings(t *testing.T) {
	src := `FOR $a IN document("d")//author, $b IN document("d")//article RETURN $b/title`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FLWR)
	if len(f.Clauses) != 2 || f.Clauses[0].Var != "a" || f.Clauses[1].Var != "b" {
		t.Fatalf("clauses = %+v", f.Clauses)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"for without in", `FOR $a document("d")//x RETURN $a`},
		{"missing return", `FOR $a IN document("d")//x`},
		{"bad function", `FOR $a IN mystery(document("d")//x) RETURN $a`},
		{"unterminated string", `FOR $a IN document("d//x RETURN $a`},
		{"unterminated ctor", `FOR $a IN document("d")//x RETURN <y>{$a}`},
		{"mismatched close", `FOR $a IN document("d")//x RETURN <y>{$a}</z>`},
		{"text in ctor", `FOR $a IN document("d")//x RETURN <y>hello</y>`},
		{"trailing junk", `FOR $a IN document("d")//x RETURN $a junk`},
		{"bad predicate", `FOR $a IN document("d")//x[author = ] RETURN $a`},
		{"unclosed predicate", `FOR $a IN document("d")//x[author = $a RETURN $a`},
		{"let without assign", `LET $t document("d")//x RETURN $t`},
		{"unclosed enclosed", `FOR $a IN document("d")//x RETURN <y>{$a </y>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			} else if !strings.Contains(err.Error(), "xq: parse error") {
				t.Errorf("error %v should be a ParseError", err)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse("not a query")
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	src := `for $a in distinct-values(document("d")//author) return <x>{$a}</x>`
	if _, err := Parse(src); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
}

func TestIdentifierNotKeywordPrefix(t *testing.T) {
	// An element named "formula" must not be lexed as FOR.
	src := `FOR $a IN document("d")//formula RETURN $a`
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := e.(*FLWR).Clauses[0].Expr.(*PathExpr)
	if p.Steps[0].Name != "formula" {
		t.Errorf("step = %v", p.Steps[0])
	}
}
