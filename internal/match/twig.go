package match

import (
	"sort"

	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// twig.go implements the holistic twig-join matcher (TwigStack family,
// after Bruno/Koudas/Srivastava): one posting stream per pattern node,
// driven directly off the tag/value B+tree cursors, and one stack per
// pattern node whose entries encode the partial root-to-leaf paths
// discovered so far. Per-node candidate lists are never materialized —
// the streams are consumed in a single coordinated document-order pass,
// with three skip mechanisms feeding TagCursor.Seek:
//
//   - document alignment: all streams fast-forward to the next document
//     every stream can inhabit (whole posting blocks of skipped
//     documents stay undecoded);
//   - the classic getNext skip: an internal node's postings that end
//     before the latest child-stream head cannot contain every branch
//     and are dropped;
//   - the dead-start skip: when a node's parent stack is empty, its
//     postings at or before the parent stream's head start can never
//     acquire an ancestor and are seeked over.
//
// Phase one emits root-to-leaf path solutions at each leaf push; phase
// two merge-joins the per-leaf path sets on their shared ancestor
// prefix into full witness rows. Rows sort lexicographically by
// pre-order node IDs within each document, and documents ascend — the
// exact binding sequence of the binary cascade, which is the package's
// hard equivalence invariant.

// infStart is the sentinel start for a stream exhausted within the
// current document (any real start is below it).
const infStart = uint64(1) << 40

// stackEntry is one partial-path element: a posting plus the index of
// the parent stack's top at push time. Entries at or below ptr on the
// parent stack are exactly the ancestors of this posting that were
// live when it was pushed — the chain the path enumeration follows.
type stackEntry struct {
	post storage.Posting
	ptr  int
}

// twigStream is one pattern node's posting source: a tag-index cursor
// (value-index postings for content-pinned nodes are served from a
// slice; both look the same to the matcher), with residual predicates
// applied on pull.
type twigStream struct {
	cur   *storage.TagCursor // nil when posts is the source
	posts []storage.Posting  // value-index (or test) postings
	pos   int
	rest  []pattern.Predicate // predicates needing the node record
	db    storage.Reader
	stats *DBStats

	head        storage.Posting
	ok          bool
	err         error
	prevDecoded int
}

// advance pulls the next posting that passes the residual predicates
// into head; ok goes false at end of stream.
func (s *twigStream) advance() {
	for {
		var p storage.Posting
		if s.cur != nil {
			var ok bool
			p, ok = s.cur.Next()
			d := s.cur.PostingsDecoded()
			s.stats.PostingsScanned += d - s.prevDecoded
			s.prevDecoded = d
			if !ok {
				s.ok = false
				if err := s.cur.Err(); err != nil && s.err == nil {
					s.err = err
				}
				return
			}
		} else {
			if s.pos >= len(s.posts) {
				s.ok = false
				return
			}
			p = s.posts[s.pos]
			s.pos++
		}
		s.stats.Candidates++
		if len(s.rest) > 0 {
			rec, err := s.db.GetNodeAt(p.RID)
			if err != nil {
				s.err = err
				s.ok = false
				return
			}
			s.stats.RecordFilterFetches++
			if !predsMatch(s.rest, recFields{rec}) {
				continue
			}
		}
		s.head = p
		s.ok = true
		return
	}
}

// seekTo fast-forwards the stream so head is the first posting at or
// after (doc, start); a head already there is kept (never rewinds).
func (s *twigStream) seekTo(doc xmltree.DocID, start uint32) {
	if !s.ok {
		return
	}
	iv := s.head.Interval
	if iv.Doc > doc || (iv.Doc == doc && iv.Start >= start) {
		return
	}
	if s.cur != nil {
		s.cur.Seek(doc, start)
	} else {
		s.pos += sort.Search(len(s.posts)-s.pos, func(i int) bool {
			iv := s.posts[s.pos+i].Interval
			return iv.Doc > doc || (iv.Doc == doc && iv.Start >= start)
		})
	}
	s.advance()
}

func (s *twigStream) close() {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
}

// twigMatcher streams a pattern's witnesses with the holistic twig
// join. It holds a snapshot pin and open cursors until Close.
type twigMatcher struct {
	db      storage.Reader
	release func()
	order   []*pattern.Node
	parentI []int   // parent's pre-order index (-1 for the root)
	childI  [][]int // children's pre-order indexes
	leaves  []int   // leaf pre-order indexes, in pre-order
	pathOf  [][]int // per leaves[i]: pre-order indexes root → leaf

	streams []*twigStream
	stacks  [][]stackEntry
	paths   [][][]storage.Posting // per leaves[i]: current doc's path solutions
	stats   *DBStats
	err     error
	done    bool

	buf []DBBinding // current document's witnesses, in output order
	pos int
}

// openTwig builds the streams and primes them. The caller has checked
// TwigApplicable.
func openTwig(db storage.Reader, pt *pattern.Tree) (*twigMatcher, error) {
	db, release := storage.Pin(db)
	order := preorder(pt.Root)
	stats := &DBStats{Matcher: MatcherTwig.String()}
	colOf := make(map[string]int, len(order))
	for i, pn := range order {
		colOf[pn.Label] = i
	}
	m := &twigMatcher{
		db:      db,
		release: release,
		order:   order,
		parentI: make([]int, len(order)),
		childI:  make([][]int, len(order)),
		streams: make([]*twigStream, len(order)),
		stacks:  make([][]stackEntry, len(order)),
		stats:   stats,
	}
	for i, pn := range order {
		if pn.Parent == nil {
			m.parentI[i] = -1
		} else {
			p := colOf[pn.Parent.Label]
			m.parentI[i] = p
			m.childI[p] = append(m.childI[p], i)
		}
		// The streams are consumed together in document order; JoinOrder
		// reports the pattern's pre-order as the (only) order.
		stats.JoinOrder = append(stats.JoinOrder, pn.Label)
	}
	for i := range order {
		if len(m.childI[i]) == 0 {
			var path []int
			for q := i; q >= 0; q = m.parentI[q] {
				path = append(path, q)
			}
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			m.leaves = append(m.leaves, i)
			m.pathOf = append(m.pathOf, path)
		}
	}
	m.paths = make([][][]storage.Posting, len(m.leaves))

	for i, pn := range order {
		tag := pn.TagConstraint()
		s := &twigStream{db: db, stats: stats}
		var covered []pattern.Predicate
		if ceq := contentEqOf(pn); ceq != nil && db.HasValueIndex() {
			posts, err := db.ValuePostings(tag, ceq.Value)
			if err != nil {
				m.closeStreams()
				release()
				return nil, err
			}
			s.posts = posts
			stats.PostingsScanned += len(posts)
			covered = []pattern.Predicate{pattern.TagEq{Tag: tag}, *ceq}
		} else {
			s.cur = db.OpenTagCursor(tag)
			covered = []pattern.Predicate{pattern.TagEq{Tag: tag}}
		}
		s.rest = remaining(pn.Preds, covered)
		m.streams[i] = s
		s.advance()
		if s.err != nil {
			err := s.err
			m.closeStreams()
			release()
			return nil, err
		}
	}
	return m, nil
}

func (m *twigMatcher) closeStreams() {
	for _, s := range m.streams {
		if s != nil {
			s.close()
		}
	}
}

// Next returns the next witness binding in the global output order.
func (m *twigMatcher) Next() (DBBinding, bool) {
	for {
		if m.pos < len(m.buf) {
			b := m.buf[m.pos]
			m.pos++
			m.stats.Witnesses++
			return b, true
		}
		if m.done || m.err != nil {
			return nil, false
		}
		m.nextDoc()
	}
}

func (m *twigMatcher) Stats() *DBStats { return m.stats }

func (m *twigMatcher) Err() error { return m.err }

// Close releases the matcher's cursors and snapshot pin. Idempotent.
func (m *twigMatcher) Close() error {
	m.closeStreams()
	if m.release != nil {
		m.release()
		m.release = nil
	}
	m.done = true
	return m.err
}

// nextDoc aligns every stream on the next document all of them inhabit
// and runs the per-document twig join; streams left inside the document
// afterwards are seeked past it. Alignment is where entire documents
// are skipped: a stream whose head is behind the frontier seeks
// directly to it, jumping posting blocks without decoding.
func (m *twigMatcher) nextDoc() {
	for {
		var d xmltree.DocID
		for _, s := range m.streams {
			if !s.ok {
				if s.err != nil && m.err == nil {
					m.err = s.err
				}
				m.done = true
				return
			}
			if s.head.Interval.Doc > d {
				d = s.head.Interval.Doc
			}
		}
		aligned := true
		for _, s := range m.streams {
			if s.head.Interval.Doc < d {
				s.seekTo(d, 0)
				aligned = false
			}
		}
		if !aligned {
			continue
		}
		m.matchDoc(d)
		for _, s := range m.streams {
			if s.ok && s.head.Interval.Doc == d {
				s.seekTo(d+1, 0)
			}
		}
		return
	}
}

// inDoc reports whether node q's stream head is inside document d.
func (m *twigMatcher) inDoc(q int, d xmltree.DocID) bool {
	s := m.streams[q]
	return s.ok && s.head.Interval.Doc == d
}

// startOrInf is node q's stream head start, or infStart when the stream
// is exhausted within document d.
func (m *twigMatcher) startOrInf(q int, d xmltree.DocID) uint64 {
	if !m.inDoc(q, d) {
		return infStart
	}
	return uint64(m.streams[q].head.Interval.Start)
}

// clean pops stack entries that end before start — they cannot be
// ancestors of any posting from here on.
func (m *twigMatcher) clean(i int, start uint32) {
	s := m.stacks[i]
	for len(s) > 0 && s[len(s)-1].post.Interval.End < start {
		s = s[:len(s)-1]
	}
	m.stacks[i] = s
}

// getNext returns the pattern node whose stream head should be acted on
// next: a node all of whose child subtrees can still extend it, with
// the minimal start among them (TwigStack's getNext). Exhausted
// subtrees surface as a node with an in-doc-exhausted stream, which
// ends the document loop.
func (m *twigMatcher) getNext(q int, d xmltree.DocID) int {
	if len(m.childI[q]) == 0 {
		return q
	}
	nmin := -1
	var minStart, maxStart uint64
	for _, qi := range m.childI[q] {
		ni := m.getNext(qi, d)
		if ni != qi {
			return ni
		}
		st := m.startOrInf(qi, d)
		if nmin < 0 || st < minStart {
			nmin, minStart = qi, st
		}
		if st > maxStart {
			maxStart = st
		}
	}
	// Drop q's postings that end before the latest child head: they
	// cannot contain a node from every branch. With a branch exhausted
	// in this document no posting can, so drain q past the document.
	if maxStart == infStart {
		if m.inDoc(q, d) {
			m.streams[q].seekTo(d+1, 0)
		}
	} else {
		for m.inDoc(q, d) && uint64(m.streams[q].head.Interval.End) < maxStart {
			m.streams[q].advance()
		}
	}
	if m.startOrInf(q, d) < minStart {
		return q
	}
	return nmin
}

// matchDoc runs the two twig phases over one document: the stack-driven
// stream pass emitting path solutions, then the merge of per-leaf path
// sets into full rows, sorted into the binary cascade's output order.
func (m *twigMatcher) matchDoc(d xmltree.DocID) {
	m.buf = m.buf[:0]
	m.pos = 0
	for i := range m.stacks {
		m.stacks[i] = m.stacks[i][:0]
	}
	for i := range m.paths {
		m.paths[i] = nil
	}

	for m.err == nil {
		// End of document: every leaf stream exhausted means no further
		// path solutions can be emitted.
		allDone := true
		for _, l := range m.leaves {
			if m.inDoc(l, d) {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		q := m.getNext(0, d)
		if !m.inDoc(q, d) {
			break // the whole relevant frontier is exhausted
		}
		hp := m.streams[q].head
		p := m.parentI[q]
		if p >= 0 {
			m.clean(p, hp.Interval.Start)
		}
		if p < 0 || len(m.stacks[p]) > 0 {
			m.clean(q, hp.Interval.Start)
			ptr := -1
			if p >= 0 {
				ptr = len(m.stacks[p]) - 1
			}
			m.stacks[q] = append(m.stacks[q], stackEntry{post: hp, ptr: ptr})
			m.streams[q].advance()
			if len(m.childI[q]) == 0 {
				m.emitPaths(q)
				m.stacks[q] = m.stacks[q][:len(m.stacks[q])-1]
			}
		} else {
			// Dead start: no live ancestor on the parent stack, and any
			// future one begins at or after the parent head's start — a
			// strict descendant must start strictly later than that.
			if m.inDoc(p, d) {
				m.streams[q].seekTo(d, m.streams[p].head.Interval.Start+1)
			} else {
				m.streams[q].seekTo(d+1, 0)
			}
		}
	}
	if m.err != nil {
		return
	}
	m.mergeDoc()
}

// emitPaths enumerates the root-to-leaf path solutions ending at the
// just-pushed top of leaf q's stack: every chain of live ancestor
// entries (indexes at or below the recorded parent pointers) whose
// consecutive intervals satisfy the pattern edges.
func (m *twigMatcher) emitPaths(q int) {
	li := -1
	for i, l := range m.leaves {
		if l == q {
			li = i
			break
		}
	}
	path := m.pathOf[li]
	top := m.stacks[q][len(m.stacks[q])-1]
	sol := make([]storage.Posting, len(path))
	sol[len(path)-1] = top.post
	var rec func(k, maxIdx int)
	rec = func(k, maxIdx int) {
		if k < 0 {
			m.paths[li] = append(m.paths[li], append([]storage.Posting(nil), sol...))
			m.stats.IntermediateBindings++
			return
		}
		node := path[k]
		child := m.order[path[k+1]]
		st := m.stacks[node]
		if maxIdx >= len(st) {
			maxIdx = len(st) - 1
		}
		for i := 0; i <= maxIdx; i++ {
			if !edgeOK(st[i].post.Interval, sol[k+1].Interval, child.Axis) {
				continue
			}
			sol[k] = st[i].post
			rec(k-1, st[i].ptr)
		}
	}
	rec(len(path)-2, top.ptr)
}

// edgeOK checks one pattern edge between candidate intervals: strict
// containment for descendant edges (equal starts mean the same node in
// a tree, which the strictness excludes — matching the binary join's
// same-node rule), plus the level constraint for child edges.
func edgeOK(anc, desc xmltree.Interval, axis pattern.Axis) bool {
	if axis == pattern.Child {
		return anc.ParentOf(desc)
	}
	return anc.Contains(desc)
}

// mergeDoc joins the per-leaf path-solution sets on their shared
// ancestor prefixes into full witness rows and stages them in output
// order. Leaves are taken in pattern pre-order; the shared prefix of a
// later leaf's path is always a non-empty prefix (bound nodes form a
// subtree containing the root), so the hash join keys are well defined.
func (m *twigMatcher) mergeDoc() {
	if len(m.paths[0]) == 0 {
		return
	}
	width := len(m.order)
	bound := make([]bool, width)
	rows := make([][]storage.Posting, 0, len(m.paths[0]))
	for _, sol := range m.paths[0] {
		row := make([]storage.Posting, width)
		for k, col := range m.pathOf[0] {
			row[col] = sol[k]
		}
		rows = append(rows, row)
	}
	for _, col := range m.pathOf[0] {
		bound[col] = true
	}
	for li := 1; li < len(m.leaves) && len(rows) > 0; li++ {
		path := m.pathOf[li]
		shared := 0
		for shared < len(path) && bound[path[shared]] {
			shared++
		}
		prefix := path[:shared]
		idx := make(map[string][]int, len(rows))
		for r, row := range rows {
			key := startKey(func(k int) uint32 { return row[prefix[k]].Interval.Start }, shared)
			idx[key] = append(idx[key], r)
		}
		var next [][]storage.Posting
		for _, sol := range m.paths[li] {
			key := startKey(func(k int) uint32 { return sol[k].Interval.Start }, shared)
			for _, r := range idx[key] {
				nr := make([]storage.Posting, width)
				copy(nr, rows[r])
				for k := shared; k < len(path); k++ {
					nr[path[k]] = sol[k]
				}
				next = append(next, nr)
			}
		}
		rows = next
		m.stats.IntermediateBindings += len(next)
		for _, col := range path {
			bound[col] = true
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i := range m.order {
			x, y := rows[a][i].ID(), rows[b][i].ID()
			if x != y {
				return x.Less(y)
			}
		}
		return false
	})
	for _, row := range rows {
		bind := make(DBBinding, width)
		for i, pn := range m.order {
			bind[pn.Label] = row[i]
		}
		m.buf = append(m.buf, bind)
	}
}

// startKey packs n node starts into a hash-join key (the document is
// fixed within a merge, so starts identify nodes).
func startKey(at func(int) uint32, n int) string {
	b := make([]byte, 0, 4*n)
	for k := 0; k < n; k++ {
		s := at(k)
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}
