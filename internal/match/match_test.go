package match

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// TestFigure1PatternMatch reproduces Figures 1 and 2 of the paper: the
// article[title~*Transaction*][author] pattern against the DBLP
// fragment yields exactly the four witness trees shown in Figure 2.
func TestFigure1PatternMatch(t *testing.T) {
	root := paperdata.TransactionArticles()
	xmltree.Number(root, 1)
	pt := paperdata.Figure1Pattern()
	ws := Match(pt, []*xmltree.Node{root})
	if len(ws) != 4 {
		t.Fatalf("got %d witness trees, Figure 2 shows 4", len(ws))
	}
	type wt struct{ title, author string }
	want := []wt{
		{"Transaction Mng ...", "Silberschatz"},
		{"Overview of Transaction Mng", "Silberschatz"},
		{"Overview of Transaction Mng", "Garcia-Molina"},
		{"Transaction Mng ...", "Thompson"},
	}
	for i, w := range ws {
		got := wt{w["$2"].Content, w["$3"].Content}
		if got != want[i] {
			t.Errorf("witness %d = %+v, want %+v", i, got, want[i])
		}
		if w["$1"].Tag != "article" {
			t.Errorf("witness %d root = %s", i, w["$1"].Tag)
		}
	}
}

func TestMatchDescendantAxis(t *testing.T) {
	root := xmltree.MustParse(`<r><a><b><c>x</c></b></a><c>y</c></r>`)
	xmltree.Number(root, 1)
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "a"})
	pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "c"}))
	pt := pattern.MustTree(pr)
	ws := Match(pt, []*xmltree.Node{root})
	if len(ws) != 1 || ws[0]["$2"].Content != "x" {
		t.Errorf("witnesses = %v", ws)
	}
}

func TestMatchRepeatedSubElements(t *testing.T) {
	// One article, three authors: three witnesses (the heterogeneity
	// point of Sec. 2).
	root := xmltree.MustParse(`<r><article><author>A</author><author>B</author><author>C</author></article></r>`)
	xmltree.Number(root, 1)
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	ws := Match(pattern.MustTree(pr), []*xmltree.Node{root})
	if len(ws) != 3 {
		t.Fatalf("witnesses = %d, want 3", len(ws))
	}
	for i, want := range []string{"A", "B", "C"} {
		if ws[i]["$2"].Content != want {
			t.Errorf("witness %d author = %s, want %s", i, ws[i]["$2"].Content, want)
		}
	}
}

func TestMatchMissingSubElement(t *testing.T) {
	// Articles without authors simply produce no witness — no nulls.
	root := xmltree.MustParse(`<r><article><title>T</title></article></r>`)
	xmltree.Number(root, 1)
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	if ws := Match(pattern.MustTree(pr), []*xmltree.Node{root}); len(ws) != 0 {
		t.Errorf("witnesses = %v, want none", ws)
	}
}

func TestMatchMultiplePatternLevels(t *testing.T) {
	root := paperdata.SampleDatabase()
	xmltree.Number(root, 1)
	// doc_root -ad-> article -pc-> author: 5 witnesses (2+2+1 authors).
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	art := pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "author"}))
	ws := Match(pattern.MustTree(pr), []*xmltree.Node{root})
	if len(ws) != 5 {
		t.Errorf("witnesses = %d, want 5", len(ws))
	}
}

func newTestDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestMatchDBCancelled: an already-cancelled context aborts the match
// before the candidate scans and returns ctx.Err() with no bindings.
func TestMatchDBCancelled(t *testing.T) {
	db := newTestDB(t)
	root := paperdata.TransactionArticles()
	if _, err := db.LoadDocument("dblp", root); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws, _, err := MatchDBObs(ctx, db, paperdata.Figure1Pattern(), 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ws != nil {
		t.Fatalf("cancelled match returned %d bindings, want none", len(ws))
	}
}

func TestMatchDBFigure1(t *testing.T) {
	db := newTestDB(t)
	root := paperdata.TransactionArticles()
	if _, err := db.LoadDocument("dblp", root); err != nil {
		t.Fatal(err)
	}
	pt := paperdata.Figure1Pattern()
	ws, stats, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("db witnesses = %d, want 4", len(ws))
	}
	if stats.Witnesses != 4 {
		t.Errorf("stats.Witnesses = %d", stats.Witnesses)
	}
	if stats.Candidates == 0 {
		t.Error("expected index candidates")
	}
	// The glob predicate on title forces record fetches for titles only.
	if stats.RecordFilterFetches == 0 {
		t.Error("glob predicate should fetch records")
	}
	// Spot-check first witness against the in-memory matcher.
	mem := Match(pt, []*xmltree.Node{root})
	for i := range ws {
		for _, l := range pt.Labels() {
			if ws[i][l].ID() != mem[i][l].Interval.ID() {
				t.Errorf("witness %d label %s: db %v, mem %v", i, l, ws[i][l].ID(), mem[i][l].Interval.ID())
			}
		}
	}
}

func TestMatchDBValueIndexPath(t *testing.T) {
	db := newTestDB(t)
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib", root); err != nil {
		t.Fatal(err)
	}
	// author content = "Jack": answered via value index, no record
	// fetches.
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2",
		pattern.TagEq{Tag: "author"}, pattern.ContentEq{Value: "Jack"}))
	pt := pattern.MustTree(pr)
	ws, stats, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("witnesses = %d, want 2 (Jack wrote two articles)", len(ws))
	}
	if stats.RecordFilterFetches != 0 {
		t.Errorf("value-index path should not fetch records, got %d", stats.RecordFilterFetches)
	}
}

func TestMatchDBFullScanFallback(t *testing.T) {
	db := newTestDB(t)
	root := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib", root); err != nil {
		t.Fatal(err)
	}
	// A pattern node with no tag constraint: any node with content
	// "Jack". Forces the full-scan access path.
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.ContentEq{Value: "Jack"}))
	ws, _, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Errorf("full scan witnesses = %d, want 2", len(ws))
	}
}

func TestMatchDBNoMatches(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "nonexistent"}))
	ws, stats, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 || stats.Witnesses != 0 {
		t.Errorf("ws = %v", ws)
	}
}

func TestMatchDBMultipleDocuments(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("one", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument("two", paperdata.TransactionArticles()); err != nil {
		t.Fatal(err)
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	ws, _, err := MatchDB(db, pattern.MustTree(pr))
	if err != nil {
		t.Fatal(err)
	}
	// 5 author bindings in doc one + 5 in doc two.
	if len(ws) != 10 {
		t.Errorf("witnesses across docs = %d, want 10", len(ws))
	}
	// Doc 1 witnesses come first.
	if ws[0]["$1"].Interval.Doc != 1 || ws[len(ws)-1]["$1"].Interval.Doc != 2 {
		t.Error("witnesses not ordered by document")
	}
}

// randomDocument builds a random bibliography-shaped tree.
func randomDocument(rng *rand.Rand) *xmltree.Node {
	root := xmltree.E("doc_root")
	arts := rng.Intn(6) + 1
	for i := 0; i < arts; i++ {
		art := xmltree.E("article")
		for a := 0; a < rng.Intn(4); a++ {
			art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", rng.Intn(5))))
		}
		if rng.Intn(4) > 0 {
			art.Append(xmltree.Elem("title", fmt.Sprintf("T%d", rng.Intn(8))))
		}
		if rng.Intn(2) == 0 {
			art.Append(xmltree.E("section", xmltree.Elem("author", fmt.Sprintf("A%d", rng.Intn(5)))))
		}
		root.Append(art)
	}
	return root
}

// randomPattern builds one of a few bibliography patterns.
func randomPattern(rng *rand.Rand) *pattern.Tree {
	switch rng.Intn(4) {
	case 0:
		pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
		pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
		return pattern.MustTree(pr)
	case 1:
		pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
		pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
		return pattern.MustTree(pr)
	case 2:
		pr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
		art := pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
		art.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "author"}))
		art.AddChild(pattern.Child, pattern.NewNode("$4", pattern.TagEq{Tag: "title"}))
		return pattern.MustTree(pr)
	default:
		pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
		pr.AddChild(pattern.Child, pattern.NewNode("$2",
			pattern.TagEq{Tag: "author"}, pattern.ContentEq{Value: "A1"}))
		return pattern.MustTree(pr)
	}
}

// TestMatchersAgreeProperty is the central equivalence: the in-memory
// matcher and the index-driven matcher produce identical witness lists
// on random documents and patterns.
func TestMatchersAgreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
		if err != nil {
			return false
		}
		defer db.Close()
		docs := rng.Intn(2) + 1
		var roots []*xmltree.Node
		for i := 0; i < docs; i++ {
			root := randomDocument(rng)
			if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), root); err != nil {
				return false
			}
			roots = append(roots, root)
		}
		pt := randomPattern(rng)
		mem := Match(pt, roots)
		dbw, _, err := MatchDB(db, pt)
		if err != nil {
			return false
		}
		if len(mem) != len(dbw) {
			return false
		}
		for i := range mem {
			for _, l := range pt.Labels() {
				if mem[i][l].Interval.ID() != dbw[i][l].ID() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortDBBindings(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "author"})
	pt := pattern.MustTree(pr)
	ws, _, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle then re-sort.
	rev := make([]DBBinding, len(ws))
	for i := range ws {
		rev[len(ws)-1-i] = ws[i]
	}
	SortDBBindings(pt, rev)
	for i := range ws {
		if rev[i]["$1"].ID() != ws[i]["$1"].ID() {
			t.Fatalf("sort mismatch at %d", i)
		}
	}
}

// TestMatchDBParMatchesSequentialProperty: the per-document parallel
// matcher must return exactly the sequential witness list — same
// bindings, same order, same stats — for any parallelism.
func TestMatchDBParMatchesSequentialProperty(t *testing.T) {
	prop := func(seed int64, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
		if err != nil {
			return false
		}
		defer db.Close()
		docs := rng.Intn(3) + 1
		for i := 0; i < docs; i++ {
			if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), randomDocument(rng)); err != nil {
				return false
			}
		}
		pt := randomPattern(rng)
		seq, seqStats, err := MatchDBPar(db, pt, 1)
		if err != nil {
			return false
		}
		par, parStats, err := MatchDBPar(db, pt, int(workers%8)+2)
		if err != nil {
			return false
		}
		if len(seq) != len(par) || !reflect.DeepEqual(seqStats, parStats) {
			return false
		}
		for i := range seq {
			for _, l := range pt.Labels() {
				if seq[i][l] != par[i][l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
