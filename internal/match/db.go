package match

import (
	"context"
	"sort"
	"sync/atomic"

	"timber/internal/obs"
	"timber/internal/par"
	"timber/internal/pattern"
	"timber/internal/sjoin"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// DBBinding maps pattern labels to matched stored nodes, identified by
// postings (interval + record location). Obtaining a DBBinding touches
// only indices unless a predicate forces a record fetch; values are
// populated later, and only as needed (Sec. 5.3).
type DBBinding map[string]storage.Posting

// DBStats reports what a MatchDB call did, for experiment reporting.
type DBStats struct {
	// Candidates is the total number of index postings considered
	// across pattern nodes.
	Candidates int
	// RecordFilterFetches counts node records fetched to evaluate
	// predicates that no index could answer.
	RecordFilterFetches int
	// Witnesses is the number of bindings produced.
	Witnesses int
	// JoinOrder lists the pattern labels in the order the
	// structural-join edges were resolved: the root first, then each
	// joined node, smallest candidate list first among the nodes whose
	// parent is already bound. The witness output is identical for any
	// order; the order only changes how fast intermediate row sets
	// shrink.
	JoinOrder []string
	// PostingsScanned counts index postings decoded to serve the match.
	// For the binary cascade this equals Candidates (every candidate
	// list is materialized in full); the holistic matcher decodes only
	// the blocks its stream alignment could not skip, plus block
	// remainders.
	PostingsScanned int
	// IntermediateBindings counts partial binding rows materialized
	// between the candidate scan and the witness output: join-produced
	// rows for the binary cascade, root-to-leaf path solutions plus
	// merge rows for the holistic matcher.
	IntermediateBindings int
	// Matcher names the algorithm that produced the bindings ("binary"
	// or "twig").
	Matcher string
}

// recFields adapts a stored node record to pattern.Fields.
type recFields struct{ r *storage.NodeRecord }

func (f recFields) Tag() string     { return f.r.Tag }
func (f recFields) Content() string { return f.r.Content }
func (f recFields) Attr(name string) (string, bool) {
	for _, a := range f.r.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// RecordFields exposes a stored record as predicate-testable fields.
func RecordFields(r *storage.NodeRecord) pattern.Fields { return recFields{r} }

// MatchDB computes the pattern's witnesses against every document in
// the database, using the strategy of Sec. 5.2: independently locate
// candidate postings for each pattern node from the indices, then
// resolve structural relationships one pattern edge at a time with
// single-pass containment joins. Witness order is identical to Match's.
// It parallelizes across every core; use MatchDBPar to bound (or
// disable) the parallelism.
func MatchDB(db storage.Reader, pt *pattern.Tree) ([]DBBinding, *DBStats, error) {
	return MatchDBPar(db, pt, 0)
}

// MatchDBPar is MatchDB with an explicit parallelism bound (<= 0 means
// GOMAXPROCS). Candidate postings come from sequential index scans;
// the structural-join phase is then partitioned by document — edges
// never cross documents — and the per-document witness sets are merged
// in document order, so the output is identical to the sequential
// path's for any parallelism. MatchDBPar only reads the database and is
// safe to call concurrently with other readers.
func MatchDBPar(db storage.Reader, pt *pattern.Tree, parallelism int) ([]DBBinding, *DBStats, error) {
	return MatchDBObs(nil, db, pt, parallelism, nil)
}

// MatchDBObs is MatchDBPar with a cancellation context and an
// observability span. A non-nil ctx cancels the match between
// candidate scans and inside the per-document join pool; a cancelled
// match returns ctx.Err() and no bindings. When sp is non-nil,
// candidate scanning and the structural-join phase become child spans
// carrying candidate, fetch, join and witness counts. A nil span costs
// nothing and the witness output is identical either way.
func MatchDBObs(ctx context.Context, db storage.Reader, pt *pattern.Tree, parallelism int, sp *obs.Span) ([]DBBinding, *DBStats, error) {
	// One pinned epoch for candidate scans and predicate fetches alike.
	db, release := storage.Pin(db)
	defer release()
	order := preorder(pt.Root)
	stats := &DBStats{Matcher: MatcherBinary.String()}

	// Column index by label, following pre-order positions.
	colOf := make(map[string]int, len(order))
	for i, pn := range order {
		colOf[pn.Label] = i
	}

	// Candidate postings per pattern node.
	candSp := sp.Child("scan: candidates")
	cands := make([][]storage.Posting, len(order))
	for i, pn := range order {
		if ctx != nil {
			select {
			case <-ctx.Done():
				candSp.End()
				return nil, nil, ctx.Err()
			default:
			}
		}
		cs, err := candidates(db, pn, stats)
		if err != nil {
			candSp.End()
			return nil, nil, err
		}
		if len(cs) == 0 {
			candSp.Add("candidates", int64(stats.Candidates))
			candSp.Add("record_filter_fetches", int64(stats.RecordFilterFetches))
			candSp.End()
			return nil, stats, nil // some node has no match at all
		}
		cands[i] = cs
	}
	candSp.Add("candidates", int64(stats.Candidates))
	candSp.Add("record_filter_fetches", int64(stats.RecordFilterFetches))
	candSp.End()

	// Pick the structural-join order greedily from the candidate
	// counts: always extend the edge whose new node has the fewest
	// candidates (among nodes whose parent is already bound), so the
	// intermediate row sets stay as small as the statistics allow. The
	// final sort below makes the witness output identical for every
	// order.
	jorder := greedyJoinOrder(order, colOf, cands)
	stats.JoinOrder = append(stats.JoinOrder, order[0].Label)
	for _, i := range jorder {
		stats.JoinOrder = append(stats.JoinOrder, order[i].Label)
	}

	// Partition every candidate list by document: pattern edges relate
	// nodes of one document, so each document's witnesses derive from
	// its own candidate segments alone. Documents whose segment is
	// empty for any pattern node produce no witnesses.
	docs := candidateDocs(cands[0])
	workers := par.Workers(parallelism)
	joinSp := sp.Child("sjoin: pattern edges")
	var jm *sjoin.Metrics
	if joinSp != nil {
		jm = &sjoin.Metrics{}
	}
	rowsByDoc := make([][][]storage.Posting, len(docs))
	var interm atomic.Int64
	if err := par.Do(ctx, len(docs), workers, func(k int) error {
		docCands := make([][]storage.Posting, len(order))
		for i := range cands {
			docCands[i] = docSegment(cands[i], docs[k])
			if len(docCands[i]) == 0 {
				return nil
			}
		}
		rowsByDoc[k] = matchRows(order, colOf, jorder, docCands, jm, &interm)
		return nil
	}); err != nil {
		joinSp.End()
		return nil, nil, err
	}
	stats.IntermediateBindings = int(interm.Load())

	// Merge in document order (candidate lists are (doc, start)-sorted,
	// so concatenation preserves the sequential row order).
	var rows [][]storage.Posting
	for _, rs := range rowsByDoc {
		rows = append(rows, rs...)
	}
	if jm != nil {
		joinSp.Add("joins", jm.Joins.Load())
		joinSp.Add("join_inputs", jm.Ancestors.Load()+jm.Descendants.Load())
		joinSp.Add("join_pairs", jm.Pairs.Load())
		joinSp.Add("witness_rows", int64(len(rows)))
	}
	joinSp.End()
	if len(rows) == 0 {
		return nil, stats, nil
	}

	// Sort lexicographically by node IDs in pre-order, then convert.
	sort.SliceStable(rows, func(a, b int) bool {
		for i := range order {
			x, y := rows[a][i].ID(), rows[b][i].ID()
			if x != y {
				return x.Less(y)
			}
		}
		return false
	})
	out := make([]DBBinding, len(rows))
	for r, row := range rows {
		bind := make(DBBinding, len(order))
		for i, pn := range order {
			bind[pn.Label] = row[i]
		}
		out[r] = bind
	}
	stats.Witnesses = len(out)
	sp.Add("witnesses", int64(len(out)))
	return out, stats, nil
}

// greedyJoinOrder sequences the non-root pattern nodes for the
// edge-at-a-time join: among the nodes whose parent is already bound,
// always take the one with the fewest candidates (pre-order position
// breaks ties, keeping the order deterministic). The root is always
// bound first — it is the only parentless node — so every node is
// eventually placed.
func greedyJoinOrder(order []*pattern.Node, colOf map[string]int, cands [][]storage.Posting) []int {
	bound := make([]bool, len(order))
	bound[0] = true
	seq := make([]int, 0, len(order)-1)
	for len(seq) < len(order)-1 {
		best := -1
		for i := 1; i < len(order); i++ {
			if bound[i] || !bound[colOf[order[i].Parent.Label]] {
				continue
			}
			if best < 0 || len(cands[i]) < len(cands[best]) {
				best = i
			}
		}
		seq = append(seq, best)
		bound[best] = true
	}
	return seq
}

// matchRows runs the edge-at-a-time structural-join pipeline of
// Sec. 5.2 over one document's candidate segments: seed rows with the
// root candidates, then extend one pattern edge at a time, in jorder,
// with single-pass containment joins. rows[r][i] is the posting bound
// to order[i] in row r. Pure in-memory computation — no database
// access — so per-document invocations run concurrently without
// coordination.
func matchRows(order []*pattern.Node, colOf map[string]int, jorder []int, cands [][]storage.Posting, jm *sjoin.Metrics, interm *atomic.Int64) [][]storage.Posting {
	rows := make([][]storage.Posting, len(cands[0]))
	for r, p := range cands[0] {
		row := make([]storage.Posting, len(order))
		row[0] = p
		rows[r] = row
	}
	for _, i := range jorder {
		pn := order[i]
		pcol := colOf[pn.Parent.Label]

		// Distinct, sorted parent postings currently bound.
		parents := distinctSorted(rows, pcol)
		pIvs := make([]xmltree.Interval, len(parents))
		for k, p := range parents {
			pIvs[k] = p.Interval
		}
		cIvs := make([]xmltree.Interval, len(cands[i]))
		for k, c := range cands[i] {
			cIvs[k] = c.Interval
		}
		axis := sjoin.AncestorDescendant
		if pn.Axis == pattern.Child {
			axis = sjoin.ParentChild
		}
		pairs := sjoin.StackTreeM(pIvs, cIvs, axis, jm)

		// children[parentID] lists matching candidate indices in
		// document order.
		children := make(map[xmltree.NodeID][]int, len(parents))
		for _, pr := range pairs {
			id := parents[pr.A].ID()
			children[id] = append(children[id], pr.D)
		}
		var next [][]storage.Posting
		for _, row := range rows {
			for _, ci := range children[row[pcol].ID()] {
				nr := make([]storage.Posting, len(order))
				copy(nr, row)
				nr[i] = cands[i][ci]
				next = append(next, nr)
			}
		}
		rows = next
		if interm != nil {
			interm.Add(int64(len(next)))
		}
		if len(rows) == 0 {
			return nil
		}
	}
	return rows
}

// candidateDocs lists the distinct documents of a (doc, start)-sorted
// posting list, in document order.
func candidateDocs(posts []storage.Posting) []xmltree.DocID {
	var docs []xmltree.DocID
	for i := 0; i < len(posts); {
		d := posts[i].Interval.Doc
		docs = append(docs, d)
		for i < len(posts) && posts[i].Interval.Doc == d {
			i++
		}
	}
	return docs
}

// docSegment returns the contiguous slice of a (doc, start)-sorted
// posting list belonging to doc.
func docSegment(posts []storage.Posting, doc xmltree.DocID) []storage.Posting {
	lo := sort.Search(len(posts), func(i int) bool { return posts[i].Interval.Doc >= doc })
	hi := sort.Search(len(posts), func(i int) bool { return posts[i].Interval.Doc > doc })
	return posts[lo:hi]
}

// candidates produces the sorted candidate postings for one pattern
// node, preferring index-only access paths.
func candidates(db storage.Reader, pn *pattern.Node, stats *DBStats) ([]storage.Posting, error) {
	tag := pn.TagConstraint()
	var posts []storage.Posting
	var covered []pattern.Predicate // predicates the access path has answered
	switch {
	case tag != "" && contentEqOf(pn) != nil && db.HasValueIndex():
		ceq := contentEqOf(pn)
		var err error
		posts, err = db.ValuePostings(tag, ceq.Value)
		if err != nil {
			return nil, err
		}
		covered = []pattern.Predicate{pattern.TagEq{Tag: tag}, *ceq}
	case tag != "":
		var err error
		posts, err = db.TagPostings(tag)
		if err != nil {
			return nil, err
		}
		covered = []pattern.Predicate{pattern.TagEq{Tag: tag}}
	default:
		// No index applies: scan every document (the paper's "simplest
		// way ... scan the entire database" fallback).
		for _, d := range db.Documents() {
			err := db.ScanDocument(d.ID, func(rec *storage.NodeRecord) error {
				if pn.NodeMatches(recFields{rec}) {
					// ScanDocument does not expose the RID; recover it
					// via a locator probe only when records pass.
					p, err := postingFor(db, rec)
					if err != nil {
						return err
					}
					posts = append(posts, p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		stats.Candidates += len(posts)
		stats.PostingsScanned += len(posts)
		return posts, nil
	}
	stats.Candidates += len(posts)
	stats.PostingsScanned += len(posts)

	rest := remaining(pn.Preds, covered)
	if len(rest) == 0 {
		return posts, nil
	}
	// Residual predicates need the records.
	var filtered []storage.Posting
	for _, p := range posts {
		rec, err := db.GetNodeAt(p.RID)
		if err != nil {
			return nil, err
		}
		stats.RecordFilterFetches++
		if predsMatch(rest, recFields{rec}) {
			filtered = append(filtered, p)
		}
	}
	return filtered, nil
}

func contentEqOf(pn *pattern.Node) *pattern.ContentEq {
	for _, p := range pn.Preds {
		if ceq, ok := p.(pattern.ContentEq); ok && len(ceq.Value) > 0 {
			return &ceq
		}
	}
	return nil
}

func remaining(all, covered []pattern.Predicate) []pattern.Predicate {
	var rest []pattern.Predicate
	for _, p := range all {
		skip := false
		for _, c := range covered {
			if p == c {
				skip = true
				break
			}
		}
		if !skip {
			rest = append(rest, p)
		}
	}
	return rest
}

func predsMatch(preds []pattern.Predicate, f pattern.Fields) bool {
	for _, p := range preds {
		if !p.Matches(f) {
			return false
		}
	}
	return true
}

func postingFor(db storage.Reader, rec *storage.NodeRecord) (storage.Posting, error) {
	rid, err := db.LocateRID(rec.ID())
	if err != nil {
		return storage.Posting{}, err
	}
	return storage.Posting{Interval: rec.Interval, RID: rid}, nil
}

// distinctSorted extracts the distinct postings of one column, sorted by
// node ID — the input form the structural join requires.
func distinctSorted(rows [][]storage.Posting, col int) []storage.Posting {
	out := make([]storage.Posting, 0, len(rows))
	seen := make(map[xmltree.NodeID]bool, len(rows))
	for _, row := range rows {
		id := row[col].ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, row[col])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID().Less(out[j].ID()) })
	return out
}

// SortDBBindings orders db witnesses lexicographically by bound node IDs
// in pattern pre-order (the order MatchDB already returns).
func SortDBBindings(pt *pattern.Tree, bs []DBBinding) {
	labels := pt.Labels()
	sort.SliceStable(bs, func(i, j int) bool {
		for _, l := range labels {
			a, b := bs[i][l].ID(), bs[j][l].ID()
			if a != b {
				return a.Less(b)
			}
		}
		return false
	})
}
