package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/paperdata"
	"timber/internal/pattern"
)

// drainCursor pulls a cursor to exhaustion.
func drainCursor(c *Cursor) []DBBinding {
	var out []DBBinding
	for {
		b, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}

// TestCursorMatchesMatchDB pins the streaming cursor to MatchDB:
// identical bindings, identical order, identical witness count — on
// the paper's figures and across documents.
func TestCursorMatchesMatchDB(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("one", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument("two", paperdata.TransactionArticles()); err != nil {
		t.Fatal(err)
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	for _, pt := range []*pattern.Tree{pattern.MustTree(pr), paperdata.Figure1Pattern()} {
		want, wantStats, err := MatchDB(db, pt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := OpenCursor(db, pt)
		if err != nil {
			t.Fatal(err)
		}
		got := drainCursor(c)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cursor bindings differ from MatchDB:\ngot  %v\nwant %v", got, want)
		}
		if c.Stats().Witnesses != wantStats.Witnesses {
			t.Errorf("witnesses = %d, want %d", c.Stats().Witnesses, wantStats.Witnesses)
		}
	}
}

// TestCursorNoMatches pins the exhausted-at-open path (a pattern node
// with no candidates anywhere).
func TestCursorNoMatches(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "no_such_tag"}))
	c, err := OpenCursor(db, pattern.MustTree(pr))
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := c.Next(); ok {
		t.Fatalf("unexpected binding %v", b)
	}
	if c.Stats().Witnesses != 0 {
		t.Errorf("witnesses = %d, want 0", c.Stats().Witnesses)
	}
}

// TestCursorMatchesMatchDBProperty drives the equivalence over random
// multi-document databases.
func TestCursorMatchesMatchDBProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := newTestDB(t)
		for d := 0; d < rng.Intn(3)+1; d++ {
			if _, err := db.LoadDocument(fmt.Sprintf("doc-%d", d), randomDocument(rng)); err != nil {
				t.Fatal(err)
			}
		}
		pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
		axis := pattern.Child
		if rng.Intn(2) == 0 {
			axis = pattern.Descendant
		}
		pr.AddChild(axis, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
		pt := pattern.MustTree(pr)
		want, _, err := MatchDB(db, pt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := OpenCursor(db, pt)
		if err != nil {
			t.Fatal(err)
		}
		return reflect.DeepEqual(drainCursor(c), want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
