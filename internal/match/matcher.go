package match

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"timber/internal/obs"
	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// MatcherKind selects the algorithm that embeds a pattern tree into the
// database. The zero value is MatcherAuto.
type MatcherKind int

const (
	// MatcherAuto lets the caller's planner decide; at this package's
	// level (no statistics) it resolves structurally — holistic when the
	// pattern qualifies, binary otherwise.
	MatcherAuto MatcherKind = iota
	// MatcherBinary is the cascaded binary structural-join matcher of
	// Sec. 5.2: materialize per-node candidate lists, then resolve one
	// pattern edge at a time in greedy cost order.
	MatcherBinary
	// MatcherTwig is the holistic twig-join matcher (TwigStack family):
	// per-node posting streams off the B+tree cursors with per-node
	// stacks encoding partial root-to-leaf paths; candidate lists are
	// never materialized.
	MatcherTwig
)

var matcherNames = map[MatcherKind]string{
	MatcherAuto:   "auto",
	MatcherBinary: "binary",
	MatcherTwig:   "twig",
}

func (k MatcherKind) String() string {
	if n, ok := matcherNames[k]; ok {
		return n
	}
	return fmt.Sprintf("matcher(%d)", int(k))
}

// ParseMatcher resolves a matcher name ("" means auto).
func ParseMatcher(name string) (MatcherKind, error) {
	if name == "" {
		return MatcherAuto, nil
	}
	for k, n := range matcherNames {
		if n == name {
			return k, nil
		}
	}
	return MatcherAuto, fmt.Errorf("match: unknown matcher %q (have %s)", name, strings.Join(MatcherNames(), ", "))
}

// MatcherNames lists the accepted matcher names, sorted.
func MatcherNames() []string {
	out := make([]string, 0, len(matcherNames))
	for _, n := range matcherNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Matcher is the unified streaming face of pattern matching: open a
// matcher, pull bindings until ok=false, check Err, Close. Every
// implementation yields the same binding sequence — per-document
// witnesses sorted lexicographically by pre-order node identifiers,
// documents ascending — so matchers are interchangeable without
// affecting results, only access patterns.
type Matcher interface {
	// Next returns the next witness binding, or ok=false at the end of
	// the stream (or on error — check Err).
	Next() (DBBinding, bool)
	// Stats returns the matcher's access counters; Witnesses counts the
	// bindings returned so far.
	Stats() *DBStats
	// Err reports the first error the matcher hit, if any.
	Err() error
	// Close releases the matcher's resources (snapshot pins, open
	// cursors). Idempotent.
	Close() error
}

// Open returns a streaming matcher of the requested kind over the
// database. MatcherAuto (and a MatcherTwig request on a pattern the
// holistic matcher cannot drive, i.e. one with an untagged node)
// resolves to the binary cascade; Stats().Matcher records what actually
// ran.
func Open(db storage.Reader, pt *pattern.Tree, kind MatcherKind) (Matcher, error) {
	if kind != MatcherBinary && TwigApplicable(pt) {
		return openTwig(db, pt)
	}
	return OpenCursor(db, pt)
}

// TwigApplicable reports whether the holistic matcher can drive the
// pattern: every node must carry a tag constraint, because the twig
// streams are tag-index cursors (an untagged node would need a full
// database scan, which is the binary path's fallback).
func TwigApplicable(pt *pattern.Tree) bool {
	for _, pn := range preorder(pt.Root) {
		if pn.TagConstraint() == "" {
			return false
		}
	}
	return true
}

// MatchKindObs is MatchDBObs with an explicit matcher kind: it computes
// the full witness slice with the chosen algorithm, under the same span
// and cancellation contract. The binding output is byte-identical
// across kinds and parallelisms; only the access counters differ.
// parallelism applies to the binary cascade's per-document join phase —
// the holistic matcher is single-pass by construction.
func MatchKindObs(ctx context.Context, db storage.Reader, pt *pattern.Tree, kind MatcherKind, parallelism int, sp *obs.Span) ([]DBBinding, *DBStats, error) {
	if kind == MatcherBinary || !TwigApplicable(pt) {
		return MatchDBObs(ctx, db, pt, parallelism, sp)
	}
	if kind == MatcherAuto {
		kind = MatcherTwig
	}
	m, err := openTwig(db, pt)
	if err != nil {
		return nil, nil, err
	}
	defer m.Close()
	twigSp := sp.Child("twig: pattern match")
	var out []DBBinding
	for {
		if ctx != nil && len(out)%1024 == 0 {
			select {
			case <-ctx.Done():
				twigSp.End()
				return nil, nil, ctx.Err()
			default:
			}
		}
		b, ok := m.Next()
		if !ok {
			break
		}
		out = append(out, b)
	}
	if err := m.Err(); err != nil {
		twigSp.End()
		return nil, nil, err
	}
	stats := m.Stats()
	twigSp.Add("candidates", int64(stats.Candidates))
	twigSp.Add("postings_scanned", int64(stats.PostingsScanned))
	twigSp.Add("record_filter_fetches", int64(stats.RecordFilterFetches))
	twigSp.Add("path_solutions", int64(stats.IntermediateBindings))
	twigSp.End()
	sp.Add("witnesses", int64(len(out)))
	if cerr := m.Close(); cerr != nil {
		return nil, nil, cerr
	}
	return out, stats, nil
}

// OpenMem streams the in-memory matcher's bindings through the Matcher
// interface, unifying the three historical code paths behind one face.
// Bindings carry postings synthesized from the nodes' intervals; the
// record locations (RIDs) are zero, since in-memory trees have no
// stored records.
func OpenMem(pt *pattern.Tree, trees []*xmltree.Node) Matcher {
	bs := Match(pt, trees)
	m := &memMatcher{out: make([]DBBinding, len(bs))}
	m.stats.Matcher = "mem"
	for i, b := range bs {
		dst := make(DBBinding, len(b))
		for label, n := range b {
			dst[label] = storage.Posting{Interval: n.Interval}
		}
		m.out[i] = dst
	}
	return m
}

type memMatcher struct {
	out   []DBBinding
	pos   int
	stats DBStats
}

func (m *memMatcher) Next() (DBBinding, bool) {
	if m.pos >= len(m.out) {
		return nil, false
	}
	b := m.out[m.pos]
	m.pos++
	m.stats.Witnesses++
	return b, true
}

func (m *memMatcher) Stats() *DBStats { return &m.stats }
func (m *memMatcher) Err() error      { return nil }
func (m *memMatcher) Close() error    { return nil }
