package match

import (
	"sort"
	"sync/atomic"

	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// Cursor streams a pattern's witnesses one binding at a time instead
// of returning the full slice — the streaming-cursor face of MatchDB
// the iterator executor builds on. Candidate postings (identifiers
// only) are scanned up front, but the structural joins run one
// document at a time, on demand: peak memory is one document's witness
// set rather than the corpus's, and an early-terminating consumer
// never joins the remaining documents. The binding sequence is
// identical to MatchDB's — per-document witnesses sort
// lexicographically by pre-order node identifiers, and documents
// ascend, which is exactly the order the global sort produces.
type Cursor struct {
	db     storage.Reader
	order  []*pattern.Node
	colOf  map[string]int
	jorder []int
	cands  [][]storage.Posting
	docs   []xmltree.DocID
	stats  *DBStats

	di     int
	buf    []DBBinding
	pos    int
	interm atomic.Int64
}

// OpenCursor scans the pattern's candidate postings and positions the
// cursor before the first witness. The returned cursor only reads the
// database and is safe to use concurrently with other readers.
func OpenCursor(db storage.Reader, pt *pattern.Tree) (*Cursor, error) {
	// Every database read happens here at open (candidate scans and
	// predicate fetches); one pinned epoch covers them all.
	db, release := storage.Pin(db)
	defer release()
	order := preorder(pt.Root)
	stats := &DBStats{Matcher: MatcherBinary.String()}
	colOf := make(map[string]int, len(order))
	for i, pn := range order {
		colOf[pn.Label] = i
	}
	cands := make([][]storage.Posting, len(order))
	for i, pn := range order {
		cs, err := candidates(db, pn, stats)
		if err != nil {
			return nil, err
		}
		if len(cs) == 0 {
			// Some node has no match at all: an exhausted cursor.
			return &Cursor{stats: stats}, nil
		}
		cands[i] = cs
	}
	jorder := greedyJoinOrder(order, colOf, cands)
	stats.JoinOrder = append(stats.JoinOrder, order[0].Label)
	for _, i := range jorder {
		stats.JoinOrder = append(stats.JoinOrder, order[i].Label)
	}
	return &Cursor{
		db:     db,
		order:  order,
		colOf:  colOf,
		jorder: jorder,
		cands:  cands,
		docs:   candidateDocs(cands[0]),
		stats:  stats,
	}, nil
}

// Next returns the next witness binding, or ok=false when the stream
// is exhausted. Joining happens lazily, one document per refill.
func (c *Cursor) Next() (DBBinding, bool) {
	for {
		if c.pos < len(c.buf) {
			b := c.buf[c.pos]
			c.pos++
			c.stats.Witnesses++
			return b, true
		}
		if c.di >= len(c.docs) {
			return nil, false
		}
		doc := c.docs[c.di]
		c.di++
		c.fillDoc(doc)
	}
}

// fillDoc joins one document's candidate segments and stages its
// bindings in MatchDB order.
func (c *Cursor) fillDoc(doc xmltree.DocID) {
	c.buf = c.buf[:0]
	c.pos = 0
	docCands := make([][]storage.Posting, len(c.order))
	for i := range c.cands {
		docCands[i] = docSegment(c.cands[i], doc)
		if len(docCands[i]) == 0 {
			return
		}
	}
	rows := matchRows(c.order, c.colOf, c.jorder, docCands, nil, &c.interm)
	sort.SliceStable(rows, func(a, b int) bool {
		for i := range c.order {
			x, y := rows[a][i].ID(), rows[b][i].ID()
			if x != y {
				return x.Less(y)
			}
		}
		return false
	})
	for _, row := range rows {
		bind := make(DBBinding, len(c.order))
		for i, pn := range c.order {
			bind[pn.Label] = row[i]
		}
		c.buf = append(c.buf, bind)
	}
}

// Stats returns the cursor's access counters; Witnesses counts the
// bindings returned so far.
func (c *Cursor) Stats() *DBStats {
	c.stats.IntermediateBindings = int(c.interm.Load())
	return c.stats
}

// Err reports the first error the cursor hit. OpenCursor performs
// every database read up front, so a successfully opened cursor cannot
// fail later; Err exists to satisfy the Matcher interface.
func (c *Cursor) Err() error { return nil }

// Close releases the cursor's resources. OpenCursor materializes its
// candidate lists and releases its pin before returning, so there is
// nothing to free; Close exists to satisfy the Matcher interface.
func (c *Cursor) Close() error { return nil }
