package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// deepChainPattern is the workload the holistic matcher exists for:
// doc_root //article //section /author, a four-level chain.
func deepChainPattern() *pattern.Tree {
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	art := pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	sec := art.AddChild(pattern.Descendant, pattern.NewNode("$3", pattern.TagEq{Tag: "section"}))
	sec.AddChild(pattern.Child, pattern.NewNode("$4", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(pr)
}

// sameBindings asserts two witness lists bind identical postings, in
// the same order, for every pattern label.
func sameBindings(t *testing.T, pt *pattern.Tree, want, got []DBBinding, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d bindings, want %d", label, len(got), len(want))
	}
	for i := range want {
		for _, l := range pt.Labels() {
			if want[i][l] != got[i][l] {
				t.Fatalf("%s: binding %d label %s = %v, want %v", label, i, l, got[i][l], want[i][l])
			}
		}
	}
}

// TestTwigMatchesBinaryProperty is the tentpole's hard invariant: on
// random documents and patterns the holistic matcher returns exactly
// the binary cascade's bindings — same postings, same order — both in
// bulk (at parallelism 1 and 4) and through the streaming Matcher
// interface.
func TestTwigMatchesBinaryProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
		if err != nil {
			return false
		}
		defer db.Close()
		docs := rng.Intn(3) + 1
		for i := 0; i < docs; i++ {
			if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), randomDocument(rng)); err != nil {
				return false
			}
		}
		var pt *pattern.Tree
		if rng.Intn(5) == 0 {
			pt = deepChainPattern()
		} else {
			pt = randomPattern(rng)
		}
		bin, _, err := MatchKindObs(nil, db, pt, MatcherBinary, 1, nil)
		if err != nil {
			return false
		}
		for _, par := range []int{1, 4} {
			twig, tstats, err := MatchKindObs(nil, db, pt, MatcherTwig, par, nil)
			if err != nil || len(twig) != len(bin) {
				return false
			}
			if tstats.Matcher != "twig" || tstats.Witnesses != len(twig) {
				return false
			}
			for i := range bin {
				for _, l := range pt.Labels() {
					if bin[i][l] != twig[i][l] {
						return false
					}
				}
			}
		}
		// Streaming face: pull one binding at a time.
		m, err := Open(db, pt, MatcherTwig)
		if err != nil {
			return false
		}
		defer m.Close()
		var streamed []DBBinding
		for {
			b, ok := m.Next()
			if !ok {
				break
			}
			streamed = append(streamed, b)
		}
		if m.Err() != nil || len(streamed) != len(bin) {
			return false
		}
		for i := range bin {
			for _, l := range pt.Labels() {
				if bin[i][l] != streamed[i][l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTwigFigure1 drives the paper's Figure 1 pattern (glob predicate
// on title — a residual record-filter inside a stream) through the
// holistic matcher.
func TestTwigFigure1(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("dblp", paperdata.TransactionArticles()); err != nil {
		t.Fatal(err)
	}
	pt := paperdata.Figure1Pattern()
	bin, _, err := MatchKindObs(nil, db, pt, MatcherBinary, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	twig, stats, err := MatchKindObs(nil, db, pt, MatcherTwig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(twig) != 4 {
		t.Fatalf("twig witnesses = %d, want 4", len(twig))
	}
	sameBindings(t, pt, bin, twig, "figure1")
	if stats.RecordFilterFetches == 0 {
		t.Error("glob predicate should fetch records through the stream filter")
	}
}

// TestTwigValueIndexStream: a content-pinned node's stream comes from
// the value index (no record fetches), and agrees with the binary path.
func TestTwigValueIndexStream(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2",
		pattern.TagEq{Tag: "author"}, pattern.ContentEq{Value: "Jack"}))
	pt := pattern.MustTree(pr)
	twig, stats, err := MatchKindObs(nil, db, pt, MatcherTwig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(twig) != 2 {
		t.Fatalf("witnesses = %d, want 2", len(twig))
	}
	if stats.RecordFilterFetches != 0 {
		t.Errorf("value-index stream should not fetch records, got %d", stats.RecordFilterFetches)
	}
}

// TestTwigSingleNodePattern: the degenerate one-node twig streams the
// tag postings straight through.
func TestTwigSingleNodePattern(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.TagEq{Tag: "author"}))
	bin, _, err := MatchKindObs(nil, db, pt, MatcherBinary, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	twig, _, err := MatchKindObs(nil, db, pt, MatcherTwig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameBindings(t, pt, bin, twig, "single-node")
}

// TestTwigFallsBackWithoutTags: an untagged pattern node cannot drive
// tag streams; a twig request silently runs the binary cascade and the
// stats say so.
func TestTwigFallsBackWithoutTags(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	pt := pattern.MustTree(pattern.NewNode("$1", pattern.ContentEq{Value: "Jack"}))
	if TwigApplicable(pt) {
		t.Fatal("untagged pattern reported twig-applicable")
	}
	ws, stats, err := MatchKindObs(nil, db, pt, MatcherTwig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("witnesses = %d, want 2", len(ws))
	}
	if stats.Matcher != "binary" {
		t.Errorf("stats.Matcher = %q, want binary fallback", stats.Matcher)
	}
}

// TestTwigSkipsNonMatchingDocuments: documents lacking a pattern tag
// are skipped at stream alignment — the twig matcher decodes strictly
// fewer postings than the binary cascade materializes on a corpus where
// most documents cannot match.
func TestTwigSkipsNonMatchingDocuments(t *testing.T) {
	db := newTestDB(t)
	// One matching document among nine without <section>.
	for i := 0; i < 10; i++ {
		root := xmltree.E("doc_root")
		for a := 0; a < 30; a++ {
			art := xmltree.E("article")
			art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", a%7)))
			if i == 5 {
				art.Append(xmltree.E("section", xmltree.Elem("author", "S")))
			}
			root.Append(art)
		}
		if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), root); err != nil {
			t.Fatal(err)
		}
	}
	pt := deepChainPattern()
	bin, bstats, err := MatchKindObs(nil, db, pt, MatcherBinary, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	twig, tstats, err := MatchKindObs(nil, db, pt, MatcherTwig, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameBindings(t, pt, bin, twig, "sparse corpus")
	if len(twig) == 0 {
		t.Fatal("fixture produced no witnesses")
	}
	if tstats.PostingsScanned >= bstats.PostingsScanned {
		t.Errorf("twig scanned %d postings, binary %d — expected strictly fewer",
			tstats.PostingsScanned, bstats.PostingsScanned)
	}
}

// TestMatcherKindParse: names round-trip and bad names fail.
func TestMatcherKindParse(t *testing.T) {
	for _, k := range []MatcherKind{MatcherAuto, MatcherBinary, MatcherTwig} {
		got, err := ParseMatcher(k.String())
		if err != nil || got != k {
			t.Errorf("ParseMatcher(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseMatcher(""); err != nil || k != MatcherAuto {
		t.Errorf("ParseMatcher(\"\") = %v, %v", k, err)
	}
	if _, err := ParseMatcher("nope"); err == nil {
		t.Error("ParseMatcher accepted an unknown name")
	}
	if !reflect.DeepEqual(MatcherNames(), []string{"auto", "binary", "twig"}) {
		t.Errorf("MatcherNames() = %v", MatcherNames())
	}
}

// TestOpenMemMatcher: the in-memory matcher behind the unified
// interface yields the same intervals as the database matchers.
func TestOpenMemMatcher(t *testing.T) {
	root := paperdata.SampleDatabase()
	xmltree.Number(root, 1)
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	pt := pattern.MustTree(pr)

	db := newTestDB(t)
	if _, err := db.LoadDocument("bib", root); err != nil {
		t.Fatal(err)
	}
	want, _, err := MatchDB(db, pt)
	if err != nil {
		t.Fatal(err)
	}
	m := OpenMem(pt, []*xmltree.Node{root})
	defer m.Close()
	i := 0
	for {
		b, ok := m.Next()
		if !ok {
			break
		}
		for _, l := range pt.Labels() {
			if b[l].Interval != want[i][l].Interval {
				t.Fatalf("binding %d label %s interval = %v, want %v", i, l, b[l].Interval, want[i][l].Interval)
			}
		}
		i++
	}
	if i != len(want) || m.Stats().Witnesses != i {
		t.Fatalf("streamed %d bindings (stats %d), want %d", i, m.Stats().Witnesses, len(want))
	}
}

// TestTwigBinaryConcurrentHammer runs both matchers concurrently
// against one snapshot under the race detector: matchers are
// read-only and must not interfere.
func TestTwigBinaryConcurrentHammer(t *testing.T) {
	db := newTestDB(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), randomDocument(rng)); err != nil {
			t.Fatal(err)
		}
	}
	sn := db.Snapshot()
	defer sn.Close()
	pt := randomPattern(rand.New(rand.NewSource(3)))
	want, _, err := MatchKindObs(nil, sn, pt, MatcherBinary, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		kind := MatcherBinary
		if g%2 == 0 {
			kind = MatcherTwig
		}
		wg.Add(1)
		go func(kind MatcherKind, par int) {
			defer wg.Done()
			got, _, err := MatchKindObs(nil, sn, pt, kind, par, nil)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("%v: %d bindings, want %d", kind, len(got), len(want))
				return
			}
			for i := range want {
				for _, l := range pt.Labels() {
					if want[i][l] != got[i][l] {
						errs <- fmt.Errorf("%v: binding %d label %s differs", kind, i, l)
						return
					}
				}
			}
		}(kind, g%4+1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// FuzzTwigMatch derives random corpora and patterns from the fuzz seed
// and checks the twig ≡ binary binding equivalence — the fuzz face of
// TestTwigMatchesBinaryProperty, wired into make fuzz-smoke.
func FuzzTwigMatch(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, docs uint8) {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
		if err != nil {
			t.Skip()
		}
		defer db.Close()
		n := int(docs)%3 + 1
		for i := 0; i < n; i++ {
			if _, err := db.LoadDocument(fmt.Sprintf("d%d", i), randomDocument(rng)); err != nil {
				t.Fatal(err)
			}
		}
		var pt *pattern.Tree
		if rng.Intn(4) == 0 {
			pt = deepChainPattern()
		} else {
			pt = randomPattern(rng)
		}
		bin, _, err := MatchKindObs(nil, db, pt, MatcherBinary, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		twig, _, err := MatchKindObs(nil, db, pt, MatcherTwig, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(bin) != len(twig) {
			t.Fatalf("twig %d bindings, binary %d", len(twig), len(bin))
		}
		for i := range bin {
			for _, l := range pt.Labels() {
				if bin[i][l] != twig[i][l] {
					t.Fatalf("binding %d label %s: twig %v, binary %v", i, l, twig[i][l], bin[i][l])
				}
			}
		}
	})
}
