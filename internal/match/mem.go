// Package match implements pattern-tree matching: computing the witness
// trees (tuples of node bindings) of a pattern against XML data.
//
// Two matchers are provided with identical semantics:
//
//   - Match embeds a pattern into in-memory trees by direct traversal.
//     The logical TAX operators (package tax) use it.
//   - MatchDB embeds a pattern into a stored database using the tag and
//     value indices to obtain candidate posting lists and single-pass
//     structural joins to connect them, one pattern edge at a time —
//     the strategy of Sec. 5.2. Bindings come back as node identifiers
//     (postings) without touching node records except where a
//     predicate cannot be answered from an index.
//
// Both return witnesses sorted lexicographically by the bound node IDs
// in pattern pre-order, so results are deterministic and the two
// matchers agree exactly (a property the test suite checks).
package match

import (
	"sort"

	"timber/internal/pattern"
	"timber/internal/xmltree"
)

// Binding maps pattern labels to matched in-memory nodes.
type Binding map[string]*xmltree.Node

// nodeFields adapts an xmltree node to pattern.Fields.
type nodeFields struct{ n *xmltree.Node }

func (f nodeFields) Tag() string                     { return f.n.Tag }
func (f nodeFields) Content() string                 { return f.n.Content }
func (f nodeFields) Attr(name string) (string, bool) { return f.n.Attr(name) }

// NodeFields exposes an in-memory node as predicate-testable fields.
func NodeFields(n *xmltree.Node) pattern.Fields { return nodeFields{n} }

// Match returns every embedding of the pattern into the given trees.
// The pattern root may bind to any node of any tree (including interior
// nodes); anchoring at tree roots is expressed with predicates such as
// tag=doc_root, exactly as the paper's figures do.
//
// Witnesses are ordered lexicographically by the bound nodes' document
// order, taking pattern labels in pre-order — so for the common case of
// a root-anchored pattern, witness order follows document order of the
// outermost varying binding.
//
// Trees must be numbered (xmltree.Number); ordering and the
// cross-matcher equivalence depend on interval numbers.
func Match(pt *pattern.Tree, trees []*xmltree.Node) []Binding {
	order := preorder(pt.Root)
	var out []Binding
	b := make(Binding, len(order))

	var enumerate func(idx int)
	enumerate = func(idx int) {
		if idx == len(order) {
			cp := make(Binding, len(b))
			for k, v := range b {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		pn := order[idx]
		parentData := b[pn.Parent.Label]
		for _, cand := range axisCandidates(parentData, pn.Axis) {
			if !pn.NodeMatches(nodeFields{cand}) {
				continue
			}
			b[pn.Label] = cand
			enumerate(idx + 1)
			delete(b, pn.Label)
		}
	}

	for _, root := range trees {
		root.Walk(func(n *xmltree.Node) bool {
			if pt.Root.NodeMatches(nodeFields{n}) {
				b[pt.Root.Label] = n
				enumerate(1)
				delete(b, pt.Root.Label)
			}
			return true
		})
	}
	SortBindings(pt, out)
	return out
}

// preorder lists the pattern nodes root-first, parents before children.
func preorder(root *pattern.Node) []*pattern.Node {
	var out []*pattern.Node
	var walk func(*pattern.Node)
	walk = func(n *pattern.Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// axisCandidates returns dn's children or proper descendants in
// document order.
func axisCandidates(dn *xmltree.Node, axis pattern.Axis) []*xmltree.Node {
	if axis == pattern.Child {
		return dn.Children
	}
	var out []*xmltree.Node
	for _, c := range dn.Children {
		c.Walk(func(m *xmltree.Node) bool {
			out = append(out, m)
			return true
		})
	}
	return out
}

// SortBindings orders witnesses lexicographically by the bound node IDs
// taken in pattern pre-order.
func SortBindings(pt *pattern.Tree, bs []Binding) {
	labels := pt.Labels()
	sort.SliceStable(bs, func(i, j int) bool {
		for _, l := range labels {
			a, b := bs[i][l].Interval.ID(), bs[j][l].Interval.ID()
			if a != b {
				return a.Less(b)
			}
		}
		return false
	})
}
