package paperdata

import "timber/internal/pattern"

// Figure1Pattern returns the selection pattern tree of Figure 1:
//
//	$1 [tag=article]
//	  pc $2 [tag=title & content~"*Transaction*"]
//	  pc $3 [tag=author]
func Figure1Pattern() *pattern.Tree {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2",
		pattern.TagEq{Tag: "title"}, pattern.ContentGlob{Pattern: "*Transaction*"}))
	root.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(root)
}

// Query1OuterPattern returns the Figure 4.a "outer" pattern tree of
// Query 1: $1 doc_root with ad descendant $2 author.
func Query1OuterPattern() *pattern.Tree {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(root)
}

// Query1GroupByPattern returns the Figure 5.b GROUPBY input pattern of
// Query 1: $1 article with pc child $2 author.
func Query1GroupByPattern() *pattern.Tree {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(root)
}
