// Package paperdata reconstructs the running examples of the paper
// "Grouping in XML" (EDBT 2002): the sample bibliography database of
// Figure 6 and the four DBLP fragments of Figure 2. Tests across the
// repository use these trees as golden inputs so that every worked
// example in the paper (Figures 2, 3, 6–10) is reproduced literally.
package paperdata

import "timber/internal/xmltree"

// SampleDatabase returns the Figure 6 sample database: a doc_root with
// three article elements,
//
//	article[author:"Jack"  author:"John" title:"Querying XML"  year:"1999" publisher:"Morgan Kaufman"]
//	article[author:"Jill"  author:"Jack" title:"XML and the Web" year:"2000" publisher:"Prentice Hall"]
//	article[author:"John"  title:"Hack HTML" year:"2001"]
//
// The author/title structure (which is all the paper's Query 1 touches)
// matches Figures 7–10 exactly; year and publisher reproduce the extra
// sub-elements visible in Figure 6 and exercise the "irrelevant
// structure is immaterial" property of pattern matching (Sec. 2). The
// returned tree is freshly built and unnumbered.
func SampleDatabase() *xmltree.Node {
	e, t := xmltree.E, xmltree.Elem
	return e("doc_root",
		e("article",
			t("author", "Jack"),
			t("author", "John"),
			t("title", "Querying XML"),
			t("year", "1999"),
			t("publisher", "Morgan Kaufman"),
		),
		e("article",
			t("author", "Jill"),
			t("author", "Jack"),
			t("title", "XML and the Web"),
			t("year", "2000"),
			t("publisher", "Prentice Hall"),
		),
		e("article",
			t("author", "John"),
			t("title", "Hack HTML"),
			t("year", "2001"),
		),
	)
}

// TransactionArticles returns a doc_root holding the four DBLP-fragment
// articles whose witness trees appear in Figure 2: each article has a
// title containing the word "Transaction" and one author among
// Silberschatz, Garcia-Molina and Thompson; one article has two authors,
// so matching the Figure 1 pattern yields the four witness trees of
// Figure 2 and the grouping of Figure 3 produces overlapping groups. A
// fourth article (by Ullman, no "Transaction" in the title) does not
// match and exercises the selection predicate.
func TransactionArticles() *xmltree.Node {
	e, t := xmltree.E, xmltree.Elem
	return e("doc_root",
		e("article",
			t("title", "Transaction Mng ..."),
			t("author", "Silberschatz"),
		),
		e("article",
			t("title", "Overview of Transaction Mng"),
			t("author", "Silberschatz"),
			t("author", "Garcia-Molina"),
		),
		e("article",
			t("title", "Transaction Mng ..."),
			t("author", "Thompson"),
		),
		e("article",
			t("title", "Principles of DBMS"),
			t("author", "Ullman"),
		),
	)
}
