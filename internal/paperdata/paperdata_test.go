package paperdata

import (
	"strings"
	"testing"

	"timber/internal/pattern"
	"timber/internal/xmltree"
)

func TestSampleDatabaseShape(t *testing.T) {
	db := SampleDatabase()
	if db.Tag != "doc_root" {
		t.Fatalf("root = %s", db.Tag)
	}
	arts := db.ChildrenTagged("article")
	if len(arts) != 3 {
		t.Fatalf("articles = %d", len(arts))
	}
	// Figure 7–10 author/title structure.
	wantAuthors := [][]string{{"Jack", "John"}, {"Jill", "Jack"}, {"John"}}
	wantTitles := []string{"Querying XML", "XML and the Web", "Hack HTML"}
	for i, art := range arts {
		var authors []string
		for _, au := range art.ChildrenTagged("author") {
			authors = append(authors, au.Content)
		}
		if len(authors) != len(wantAuthors[i]) {
			t.Errorf("article %d authors = %v", i, authors)
			continue
		}
		for j := range authors {
			if authors[j] != wantAuthors[i][j] {
				t.Errorf("article %d author %d = %s, want %s", i, j, authors[j], wantAuthors[i][j])
			}
		}
		if got := art.Child("title").Content; got != wantTitles[i] {
			t.Errorf("article %d title = %s, want %s", i, got, wantTitles[i])
		}
	}
	// Fresh tree each call, unnumbered.
	if SampleDatabase() == db {
		t.Error("SampleDatabase must build a fresh tree")
	}
	if xmltree.Numbered(db) {
		t.Error("sample should be unnumbered")
	}
}

func TestTransactionArticlesShape(t *testing.T) {
	db := TransactionArticles()
	arts := db.ChildrenTagged("article")
	if len(arts) != 4 {
		t.Fatalf("articles = %d", len(arts))
	}
	// Exactly one article has two authors; one does not mention
	// Transaction at all.
	twoAuthors, nonMatching := 0, 0
	for _, art := range arts {
		if len(art.ChildrenTagged("author")) == 2 {
			twoAuthors++
		}
		title := art.Child("title").Content
		if !strings.Contains(title, "Transaction") {
			nonMatching++
		}
	}
	if twoAuthors != 1 || nonMatching != 1 {
		t.Errorf("twoAuthors=%d nonMatching=%d", twoAuthors, nonMatching)
	}
}

func TestPatterns(t *testing.T) {
	for name, pt := range map[string]*pattern.Tree{
		"figure1": Figure1Pattern(),
		"outer":   Query1OuterPattern(),
		"groupby": Query1GroupByPattern(),
	} {
		if pt.Size() < 2 {
			t.Errorf("%s: size = %d", name, pt.Size())
		}
		if pt.Root.TagConstraint() == "" {
			t.Errorf("%s: root without tag", name)
		}
	}
	if Figure1Pattern().NodeByLabel("$3").TagConstraint() != "author" {
		t.Error("figure1 $3 should be the author")
	}
}
