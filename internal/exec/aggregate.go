package exec

// aggregateIter is the streaming AGGREGATE operator for count-mode
// queries: it consumes the stitched stream (rowGroup boundaries
// followed by their binding rows), swallows the binding rows while
// counting value matches, and emits each group's rowCount row once the
// group's bindings are exhausted. The output stream is pairs of
// (rowGroup, rowCount) — the sink renders the count without ever
// touching value content, the identifier-only aggregation win of
// Sec. 5.3.
//
// Output rows are staged through a small queue (state transitions
// happen at enqueue time), so a batch boundary can split a
// (rowCount, rowGroup) pair without corrupting the running count.
type aggregateIter struct {
	child  Iterator
	counts *opCounts

	opened  bool
	rdr     *rowReader
	inGroup bool
	n       int64
	q       []Row
	qPos    int
	done    bool
}

func newAggregate(child Iterator, batchSize int, counts *opCounts) *aggregateIter {
	return &aggregateIter{child: child, counts: counts, rdr: newRowReader(child, batchSize)}
}

func (a *aggregateIter) Open() error {
	if a.opened {
		return nil
	}
	a.opened = true
	return a.child.Open()
}

func (a *aggregateIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		if a.qPos < len(a.q) {
			b.Rows = append(b.Rows, a.q[a.qPos])
			a.qPos++
			continue
		}
		if a.done {
			break
		}
		a.q = a.q[:0]
		a.qPos = 0
		r, ok, err := a.rdr.next()
		if err != nil {
			return err
		}
		if !ok {
			a.done = true
			if a.inGroup {
				a.inGroup = false
				a.q = append(a.q, Row{Kind: rowCount, Ord: a.n})
			}
			continue
		}
		a.counts.in(1)
		switch r.Kind {
		case rowGroup:
			if a.inGroup {
				a.q = append(a.q, Row{Kind: rowCount, Ord: a.n})
			}
			a.inGroup = true
			a.n = 0
			a.q = append(a.q, r)
		default:
			if r.HasAux {
				a.n++
			}
		}
	}
	a.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		a.counts.batch()
	}
	return nil
}

func (a *aggregateIter) Close() error { return a.child.Close() }
