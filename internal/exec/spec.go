// Package exec implements the physical evaluation plans of Sec. 6 over
// the storage layer: the "direct" execution of the XQuery as written
// (a nested-loops plan probing indices per outer binding, plus the
// batch variant the experiment section describes), and the TIMBER
// groupby plan with identifier-only processing and deferred value
// population (Sec. 5.3).
//
// The executors cover the query family the paper evaluates — group a
// member element (article) by a correlated path value (author, or
// author/institution), returning either the member's value path
// (titles) or its count. The Spec describing a concrete query is
// derived from the rewritten logical plan, so the full pipeline is:
// query text → naive plan (plan.Translate) → GROUPBY plan
// (opt.Rewrite) → Spec (SpecFromPlan) → physical execution here.
// Logical evaluation (plan.Eval) is the reference semantics the
// integration tests compare against.
package exec

import (
	"fmt"

	"timber/internal/pattern"
	"timber/internal/plan"
	"timber/internal/tax"
)

// Mode selects the query output shape.
type Mode int

const (
	// Titles returns, per group, the member's value-path contents
	// (Query 1 / Query 2).
	Titles Mode = iota
	// Count returns, per group, the number of value-path matches (the
	// Sec. 6 count variant).
	Count
)

func (m Mode) String() string {
	if m == Count {
		return "count"
	}
	return "titles"
}

// Spec is the physical description of one grouping query.
type Spec struct {
	// MemberTag is the grouped element (article).
	MemberTag string
	// JoinPath leads from the member to the grouping value (author, or
	// author/institution); steps may be child (/) or descendant (//).
	JoinPath Path
	// ValuePath leads from the member to the returned values (title).
	ValuePath Path
	// OutTag is the result element name (authorpubs).
	OutTag string
	// Mode selects titles or count output.
	Mode Mode
	// OrderPath, when non-nil, orders each group's members by the first
	// value at this member-relative path (the GROUPBY ordering list);
	// OrderDesc flips the direction. Members without a match keep their
	// document-order positions.
	OrderPath Path
	OrderDesc bool
	// Strategy selects the physical plan Run dispatches to. The zero
	// value is StrategyAuto — through the engine the cost-based
	// planner picks the plan; straight through Run it falls back to
	// the groupby plan. Run-time knobs (parallelism, tracing,
	// cancellation) are NOT part of the Spec; they travel in Options
	// so one cached Spec serves many differently-configured runs.
	Strategy Strategy
}

// BasisTag returns the tag of the grouping-value element.
func (s Spec) BasisTag() string { return s.JoinPath.LastTag() }

func (s Spec) String() string {
	return fmt.Sprintf("group %s by %v -> %s(%v) as <%s>", s.MemberTag, s.JoinPath, s.Mode, s.ValuePath, s.OutTag)
}

// SpecFromPlan derives the physical spec from a rewritten (GROUPBY)
// plan produced by opt.Rewrite. It fails on plans outside the supported
// family.
func SpecFromPlan(op plan.Op) (Spec, error) {
	st, ok := op.(*plan.Stitch)
	if !ok {
		return Spec{}, fmt.Errorf("exec: expected a stitched plan, got %T", op)
	}
	var spec Spec
	spec.OutTag = st.Tag
	var gb *plan.GroupBy
	mode := Titles
	var valuePat *pattern.Tree
	for _, p := range st.Parts {
		cur := p.Op
		// Walk this part's chain looking for GroupBy / Aggregate.
		for cur != nil {
			switch o := cur.(type) {
			case *plan.Aggregate:
				mode = Count
				valuePat = o.Pattern
			case *plan.ProjectPerTree:
				if root := o.Pattern.Root.TagConstraint(); root != "" && valuePat == nil {
					// Candidate member/value projection; confirmed below.
					if hasSubrootChild(o.Pattern) {
						valuePat = o.Pattern
					}
				}
			case *plan.GroupBy:
				if gb == nil {
					gb = o
				}
			}
			ins := cur.Inputs()
			if len(ins) == 0 {
				break
			}
			cur = ins[0]
		}
	}
	if gb == nil {
		return Spec{}, fmt.Errorf("exec: plan has no GroupBy (run opt.Rewrite first)")
	}
	spec.Mode = mode

	// Member tag and join path from the GroupBy pattern (member ->
	// ... -> basis); an ORDER BY extension appears as a second branch
	// under the root, referenced by the ordering list.
	spec.MemberTag = gb.Pattern.Root.TagConstraint()
	if spec.MemberTag == "" {
		return Spec{}, fmt.Errorf("exec: groupby pattern root lacks a tag constraint")
	}
	for n := gb.Pattern.Root; len(n.Children) > 0; {
		c := n.Children[0]
		tag := c.TagConstraint()
		if tag == "" {
			return Spec{}, fmt.Errorf("exec: groupby pattern node %s lacks a tag constraint", c.Label)
		}
		spec.JoinPath = append(spec.JoinPath, PathStep{Tag: tag, Descendant: c.Axis == pattern.Descendant})
		n = c
	}
	if len(spec.JoinPath) == 0 {
		return Spec{}, fmt.Errorf("exec: groupby pattern has no join path")
	}
	if len(gb.Ordering) > 0 {
		if len(gb.Pattern.Root.Children) < 2 {
			return Spec{}, fmt.Errorf("exec: ordering list without an order branch in the groupby pattern")
		}
		for n := gb.Pattern.Root.Children[1]; ; {
			tag := n.TagConstraint()
			if tag == "" {
				return Spec{}, fmt.Errorf("exec: order path node %s lacks a tag constraint", n.Label)
			}
			spec.OrderPath = append(spec.OrderPath, PathStep{Tag: tag, Descendant: n.Axis == pattern.Descendant})
			if len(n.Children) == 0 {
				break
			}
			n = n.Children[0]
		}
		spec.OrderDesc = gb.Ordering[0].Direction == tax.Descending
	}

	// Value path from the member projection pattern:
	// group_root / subroot / member / <value path>.
	if valuePat == nil {
		return Spec{}, fmt.Errorf("exec: plan lacks a member value projection")
	}
	member := findTag(valuePat.Root, spec.MemberTag)
	if member == nil {
		return Spec{}, fmt.Errorf("exec: value projection lacks member %q", spec.MemberTag)
	}
	for n := member; len(n.Children) > 0; {
		c := n.Children[0]
		tag := c.TagConstraint()
		if tag == "" {
			return Spec{}, fmt.Errorf("exec: value path node %s lacks a tag constraint", c.Label)
		}
		spec.ValuePath = append(spec.ValuePath, PathStep{Tag: tag, Descendant: c.Axis == pattern.Descendant})
		n = c
	}
	if len(spec.ValuePath) == 0 {
		return Spec{}, fmt.Errorf("exec: empty value path")
	}
	return spec, nil
}

func hasSubrootChild(pt *pattern.Tree) bool {
	for _, c := range pt.Root.Children {
		if c.TagConstraint() == tax.GroupSubrootTag {
			return true
		}
	}
	return false
}

func findTag(n *pattern.Node, tag string) *pattern.Node {
	if n.TagConstraint() == tag {
		return n
	}
	for _, c := range n.Children {
		if f := findTag(c, tag); f != nil {
			return f
		}
	}
	return nil
}
