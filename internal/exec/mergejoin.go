package exec

import (
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// mergeLOJIter is the streaming left-outer-join: witness rows (left —
// member plus populated grouping value) against value-path rows
// (right — member plus value leaf), equi-joined on the member
// identifier. Both inputs are member-major in document order, so the
// join is a single merge pass buffering only one member's value leaves
// at a time. A witness whose member has no value matches survives with
// HasAux=false — it still defines its group, contributing zero output
// values (and zero to a count), exactly like the materializing
// executor's empty valuesOf entry. Right rows whose member produced no
// witness are discarded. Because several witnesses can share a member
// (one per grouping-value match), the buffered value set is re-emitted
// per witness.
type mergeLOJIter struct {
	left   Iterator
	right  Iterator
	counts *opCounts

	opened bool
	lr     *rowReader
	rr     *rowReader
	// lookahead on the right stream
	rNext Row
	rOk   bool
	// value-leaf buffer for the current member
	bufMember xmltree.NodeID
	haveBuf   bool
	buf       []storage.Posting
	// expansion staging
	out    []Row
	outPos int
	done   bool
	// rightRows counts every right-side row consumed, including the
	// post-drain tail — the value-pair total the ExecStats
	// IndexPostings accounting needs.
	rightRows int64
}

func newMergeLOJ(left, right Iterator, batchSize int, counts *opCounts) *mergeLOJIter {
	return &mergeLOJIter{
		left:   left,
		right:  right,
		counts: counts,
		lr:     newRowReader(left, batchSize),
		rr:     newRowReader(right, batchSize),
	}
}

func (m *mergeLOJIter) Open() error {
	if m.opened {
		return nil
	}
	m.opened = true
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	return m.primeRight()
}

func (m *mergeLOJIter) primeRight() error {
	r, ok, err := m.rr.next()
	if err != nil {
		return err
	}
	m.rNext, m.rOk = r, ok
	if ok {
		m.rightRows++
	}
	return nil
}

func (m *mergeLOJIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		if m.outPos < len(m.out) {
			n := len(m.out) - m.outPos
			if room := cap(b.Rows) - len(b.Rows); n > room {
				n = room
			}
			b.Rows = append(b.Rows, m.out[m.outPos:m.outPos+n]...)
			m.outPos += n
			continue
		}
		if m.done {
			break
		}
		span, err := m.lr.span()
		if err != nil {
			return err
		}
		if span == nil {
			// Drain the right tail so the value-pair count is complete
			// (the materializing executor always computed every pair).
			if err := m.drainRight(); err != nil {
				return err
			}
			m.done = true
			break
		}
		// Process a run of left rows against the output batch directly;
		// the m.out staging is only for an expansion that overflows the
		// batch's remaining room.
		consumed := 0
		for consumed < len(span) && !b.full() {
			l := span[consumed]
			consumed++
			mid := l.Member.ID()
			if !m.haveBuf || m.bufMember != mid {
				if err := m.advanceRight(mid); err != nil {
					m.counts.in(consumed)
					m.lr.advance(consumed)
					return err
				}
			}
			if len(m.buf) == 0 {
				b.Rows = append(b.Rows, Row{Member: l.Member, Key: l.Key})
			} else if len(m.buf) <= cap(b.Rows)-len(b.Rows) {
				for _, v := range m.buf {
					b.Rows = append(b.Rows, Row{Member: l.Member, Key: l.Key, Aux: v, HasAux: true})
				}
			} else {
				m.out = m.out[:0]
				m.outPos = 0
				for _, v := range m.buf {
					m.out = append(m.out, Row{Member: l.Member, Key: l.Key, Aux: v, HasAux: true})
				}
				break
			}
		}
		m.counts.in(consumed)
		m.lr.advance(consumed)
	}
	m.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		m.counts.batch()
	}
	return nil
}

// drainRight consumes the rest of the right stream span-at-a-time,
// counting the rows into rightRows.
func (m *mergeLOJIter) drainRight() error {
	for m.rOk {
		span, err := m.rr.span()
		if err != nil {
			return err
		}
		if span == nil {
			m.rOk = false
			break
		}
		m.rightRows += int64(len(span))
		m.rr.advance(len(span))
	}
	return nil
}

// advanceRight consumes right rows up to and including member id,
// buffering id's value leaves and discarding earlier members'.
func (m *mergeLOJIter) advanceRight(id xmltree.NodeID) error {
	m.buf = m.buf[:0]
	m.bufMember = id
	m.haveBuf = true
	for m.rOk && !id.Less(m.rNext.Member.ID()) {
		if m.rNext.Member.ID() == id {
			m.buf = append(m.buf, m.rNext.Aux)
		}
		if err := m.primeRight(); err != nil {
			return err
		}
	}
	return nil
}

func (m *mergeLOJIter) Close() error {
	err := m.left.Close()
	if cerr := m.right.Close(); err == nil {
		err = cerr
	}
	m.lr.release()
	m.rr.release()
	return err
}
