package exec

import (
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// LoadCollection materializes every document of the database as an
// in-memory collection — the input the logical algebra operates on.
func LoadCollection(db storage.Reader) (tax.Collection, error) {
	db, release := storage.Pin(db)
	defer release()
	var trees []*xmltree.Node
	for _, d := range db.Documents() {
		root, err := db.GetSubtree(xmltree.NodeID{Doc: d.ID, Start: d.RootStart})
		if err != nil {
			return tax.Collection{}, err
		}
		trees = append(trees, root)
	}
	return tax.NewCollection(trees...), nil
}

// ExecLogical evaluates a logical plan against the database by loading
// the documents and running the reference in-memory semantics. It is
// the correctness oracle for the physical executors (and was how
// queries would run with no physical optimization at all — every
// experiment's result sets are checked against it at small scale).
func ExecLogical(db storage.Reader, op plan.Op) (tax.Collection, error) {
	db, release := storage.Pin(db)
	defer release()
	base, err := LoadCollection(db)
	if err != nil {
		return tax.Collection{}, err
	}
	return plan.Eval(base, op)
}
