package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/opt"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

func TestExecPhysicalMatchesLogicalQuery1(t *testing.T) {
	db := sampleDB(t)
	naive, rewritten, _ := plansFor(t, query1Src)
	for name, op := range map[string]plan.Op{"naive": naive, "rewritten": rewritten} {
		logical, err := ExecLogical(db, op)
		if err != nil {
			t.Fatal(err)
		}
		physical, err := ExecPhysical(db, op, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(physical.Strings(), logical.Strings()) {
			t.Errorf("%s plan: physical != logical:\nphys %v\nlog  %v",
				name, physical.Strings(), logical.Strings())
		}
	}
}

func TestExecPhysicalNonGroupingQuery(t *testing.T) {
	// A query the rewrite does not apply to: distinct authors only.
	// ExecPhysical must still run it via the index path.
	db := sampleDB(t)
	src := `FOR $a IN distinct-values(document("bib.xml")//author) RETURN <who>{$a}</who>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecPhysical(db, naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`who[author:"Jack"]`,
		`who[author:"John"]`,
		`who[author:"Jill"]`,
	}
	if !reflect.DeepEqual(out.Strings(), want) {
		t.Errorf("physical = %v, want %v", out.Strings(), want)
	}
}

func TestExecPhysicalAvoidsFullLoadForLeafSelect(t *testing.T) {
	// The index path must fetch far fewer records than materializing
	// the whole document: compare buffer fetches against ExecLogical on
	// a database where the selection touches a small fraction of nodes.
	db, err := storage.CreateTemp(storage.Options{PageSize: 4096, PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	root := xmltree.E("doc_root")
	for i := 0; i < 500; i++ {
		root.Append(xmltree.E("article",
			xmltree.Elem("author", fmt.Sprintf("A%d", i%40)),
			xmltree.Elem("title", fmt.Sprintf("T%d", i)),
			xmltree.Elem("year", "2001"),
			xmltree.Elem("journal", "J"),
			xmltree.Elem("pages", "1-2"),
		))
	}
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	src := `FOR $a IN distinct-values(document("bib.xml")//author) RETURN <who>{$a}</who>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if _, err := ExecPhysical(db, naive, Options{}); err != nil {
		t.Fatal(err)
	}
	phys := db.Stats().Fetches
	db.ResetStats()
	if _, err := ExecLogical(db, naive); err != nil {
		t.Fatal(err)
	}
	logical := db.Stats().Fetches
	if phys >= logical {
		t.Errorf("physical fetches (%d) should undercut logical/full-load fetches (%d)", phys, logical)
	}
}

// TestExecPhysicalProperty: on random databases and all query variants,
// the generic physical evaluator equals the logical reference.
func TestExecPhysicalProperty(t *testing.T) {
	queries := []string{query1Src, queryCountSrc, queryOrderedSrc}
	var plans []plan.Op
	for _, src := range queries {
		naive, err := plan.Translate(xq.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, naive)
		rw, applied, err := opt.Rewrite(naive)
		if err != nil || !applied {
			t.Fatal(err)
		}
		plans = append(plans, rw)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _ := randomBibDB(t, rng)
		defer db.Close()
		for _, p := range plans {
			logical, err := ExecLogical(db, p)
			if err != nil {
				return false
			}
			physical, err := ExecPhysical(db, p, Options{})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(physical.Strings(), logical.Strings()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestExecPhysicalSharedGroupBySubplan(t *testing.T) {
	// The rewritten plan's two parts share one GroupBy; the substituted
	// plan must keep sharing it (pointer equality after substitution).
	db := sampleDB(t)
	_, rewritten, _ := plansFor(t, query1Src)
	sub, err := substituteLeaves(db, rewritten, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := sub.(*plan.Stitch)
	find := func(op plan.Op) *plan.GroupBy {
		for op != nil {
			if g, ok := op.(*plan.GroupBy); ok {
				return g
			}
			ins := op.Inputs()
			if len(ins) == 0 {
				return nil
			}
			op = ins[0]
		}
		return nil
	}
	g0, g1 := find(st.Parts[0].Op), find(st.Parts[1].Op)
	if g0 == nil || g0 != g1 {
		t.Errorf("GroupBy sharing lost: %p vs %p", g0, g1)
	}
}

func TestExecPhysicalUnknownOp(t *testing.T) {
	db := sampleDB(t)
	type bogus struct{ plan.Op }
	if _, err := ExecPhysical(db, bogus{}, Options{}); err == nil {
		t.Error("unknown op should error")
	}
}

func BenchmarkExecPhysicalVsLogical(b *testing.B) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 8192, PoolPages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	root := xmltree.E("doc_root")
	for i := 0; i < 2000; i++ {
		root.Append(xmltree.E("article",
			xmltree.Elem("author", fmt.Sprintf("A%d", i%200)),
			xmltree.Elem("title", fmt.Sprintf("T%d", i)),
		))
	}
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		b.Fatal(err)
	}
	src := `FOR $a IN distinct-values(document("bib.xml")//author) RETURN <who>{$a}</who>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("physical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecPhysical(db, naive, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("logical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecLogical(db, naive); err != nil {
				b.Fatal(err)
			}
		}
	})
}
