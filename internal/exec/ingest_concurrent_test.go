package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

func serializeResult(t *testing.T, trees []*xmltree.Node) string {
	t.Helper()
	var b strings.Builder
	for _, tr := range trees {
		if err := xmltree.Serialize(&b, tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func sidecarDoc(t *testing.T, w, i int) *xmltree.Node {
	t.Helper()
	root, err := xmltree.ParseString(fmt.Sprintf(
		`<sidecar id="%d-%d"><payload>writer %d item %d</payload></sidecar>`, w, i, w, i))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestConcurrentIngestByteIdentity is the snapshot-isolation
// acceptance check: while writers insert and delete documents through
// the WAL, every concurrently executing query — streaming groupby and
// the materializing reference, at parallelism 1 and 4, with tracing
// on — returns bytes identical to the quiesced run. Run under -race
// by make wal-check.
func TestConcurrentIngestByteIdentity(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)

	strategies := []Strategy{StrategyGroupBy, StrategyGroupByMat}
	parallelisms := []int{1, 4}
	want := map[string]string{}
	for _, st := range strategies {
		for _, p := range parallelisms {
			s := spec
			s.Strategy = st
			res, err := Run(db, s, Options{Parallelism: p})
			if err != nil {
				t.Fatalf("quiesced %v/p%d: %v", st, p, err)
			}
			want[fmt.Sprintf("%v/p%d", st, p)] = serializeResult(t, res.Trees)
		}
	}

	const writers, docsPerWriter, readers, iters = 2, 10, 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				name := fmt.Sprintf("sidecar-%d-%d.xml", w, i)
				if _, err := db.InsertDocument(name, sidecarDoc(t, w, i), storage.SyncGroup); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
				// Delete every other document: retire/reclaim runs while
				// reader snapshots still pin older epochs.
				if i%2 == 1 {
					if err := db.DeleteDocument(name, storage.SyncGroup); err != nil {
						errs <- fmt.Errorf("writer %d delete: %v", w, err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := strategies[(r+i)%len(strategies)]
				p := parallelisms[(r+i)%len(parallelisms)]
				s := spec
				s.Strategy = st
				res, err := Run(db, s, Options{Parallelism: p, Tracer: db.NewTracer(fmt.Sprintf("reader-%d-%d", r, i))})
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %v", r, i, err)
					return
				}
				key := fmt.Sprintf("%v/p%d", st, p)
				if got := serializeResult(t, res.Trees); got != want[key] {
					errs <- fmt.Errorf("reader %d iter %d (%s): bytes differ from quiesced run under concurrent ingest", r, i, key)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ic := db.IngestCounters()
	if ic.DocumentsInserted != writers*docsPerWriter {
		t.Errorf("inserted counter = %d, want %d", ic.DocumentsInserted, writers*docsPerWriter)
	}
	if ic.DocumentsDeleted != writers*docsPerWriter/2 {
		t.Errorf("deleted counter = %d, want %d", ic.DocumentsDeleted, writers*docsPerWriter/2)
	}
	if ic.SnapshotsPinned != 0 {
		t.Errorf("snapshots still pinned after drain: %d", ic.SnapshotsPinned)
	}
	// Quiesced again: the surviving sidecars don't intersect the query
	// pattern, so results still match the original reference.
	res, err := Run(db, spec, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := serializeResult(t, res.Trees); got != want["groupby/p4"] {
		t.Error("post-ingest quiesced run differs from pre-ingest reference")
	}
}

// TestSpoolCancellationHammer runs the spilling GROUPBY under a
// barrage of cancellation points and asserts no spill run outlives its
// query: the leak counter stays zero, every spilled page is freed, and
// the store's page count reaches a steady state instead of growing
// with each cancelled query.
func TestSpoolCancellationHammer(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)

	hammer := func() {
		// A mix of pre-cancelled, racing, and completing queries; tiny
		// SortMemRows forces a spill run every few input rows.
		for i := 0; i < 20; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			switch i % 3 {
			case 0:
				cancel() // dead on arrival
			case 1:
				time.AfterFunc(time.Duration(i%5)*50*time.Microsecond, cancel)
			}
			_, err := Run(db, spec, Options{SortMemRows: 4, BatchSize: 8, Ctx: ctx, Parallelism: 1 + i%2})
			if i%3 == 2 && err != nil {
				t.Fatalf("uncancelled run %d: %v", i, err)
			}
			cancel()
		}
	}
	hammer()
	steady := db.NumPages()
	hammer()
	ic := db.IngestCounters()
	if ic.SpoolRuns == 0 {
		t.Fatal("hammer never spilled; SortMemRows too high to exercise the spool")
	}
	if ic.SpoolRunsLeaked != 0 {
		t.Errorf("spool_runs_leaked = %d after cancellation hammer", ic.SpoolRunsLeaked)
	}
	if ic.SpoolPagesFreed == 0 {
		t.Error("no spool pages freed")
	}
	if got := db.NumPages(); got != steady {
		t.Errorf("page count grew across hammer rounds: %d -> %d (spool pages leaking)", steady, got)
	}
}
