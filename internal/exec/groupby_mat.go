package exec

import (
	"sort"
	"strconv"

	"timber/internal/par"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// groupByMaterialized is the pre-streaming groupby executor: the same
// TIMBER plan (Sec. 5.3) evaluated by materializing each phase — all
// witness pairs, all value pairs, the full sorted witness array —
// before the next begins. It is kept as the reference the streaming
// executor is tested byte-identical against (and as the baseline of
// the streaming-memory experiment); `-strategy groupby-mat` selects it.
//
//  1. The pattern-tree match — members, the join path and the value
//     path — is computed from indices alone, as witness pairs of node
//     identifiers.
//  2. Only the grouping-basis values are populated: one record fetch
//     per witness, by RID, in document order.
//  3. Witnesses are sorted by (grouping value, witness order); runs of
//     equal values are the groups.
//  4. Output is populated lazily: title contents are fetched only in
//     Titles mode, and counts are computed from node identifiers alone.
//
// The value-population phases (steps 2 and 4) fan out over
// o.Parallelism workers; every worker writes into its own
// pre-assigned slot and the stats are added in bulk afterwards, so the
// result trees, group order and ExecStats are identical for any
// parallelism setting.
func groupByMaterialized(db storage.Reader, spec Spec, o Options) (*Result, error) {
	res := &Result{}
	workers := o.workers()
	sp := o.trace("exec: groupby")
	defer sp.End()

	// Step 1: identifier-only pattern match.
	scanSp := sp.Child("scan: member postings")
	members, err := db.TagPostings(spec.MemberTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(members)
	scanSp.Add("postings", int64(len(members)))
	scanSp.End()

	joinSp := sp.Child("sjoin: join path")
	witnesses, err := pathPairs(o.Ctx, db, members, spec.JoinPath, workers, joinSp)
	joinSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(witnesses)

	valSp := sp.Child("sjoin: value path")
	valuePairs, err := pathPairs(o.Ctx, db, members, spec.ValuePath, workers, valSp)
	valSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(valuePairs)
	valuesOf := groupPairsByMember(valuePairs)

	// Step 2: populate only the grouping values, in document order.
	// Witness i's value lands in slot i regardless of which worker
	// fetches it.
	type witness struct {
		member storage.Posting
		value  string
		seq    int
	}
	popSp := sp.Child("populate: grouping values")
	ws := make([]witness, len(witnesses))
	if err := par.Do(o.Ctx, len(witnesses), workers, func(i int) error {
		p := witnesses[i]
		v, err := db.Content(p.leaf)
		if err != nil {
			return err
		}
		ws[i] = witness{member: p.member, value: v, seq: i}
		return nil
	}); err != nil {
		popSp.End()
		return nil, err
	}
	res.Stats.ValueLookups += len(witnesses)
	popSp.Add("value_lookups", int64(len(witnesses)))
	popSp.End()

	// Step 3: sort by value; the ordering-list values (populated on
	// identifiers like the grouping values, per Sec. 5.3) order members
	// within a group, and witness order breaks remaining ties.
	if spec.OrderPath != nil {
		ov, err := orderValues(o.Ctx, db, members, spec.OrderPath, res, workers, sp)
		if err != nil {
			return nil, err
		}
		sortSp := sp.Child("sort: witnesses")
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].value != ws[j].value {
				return ws[i].value < ws[j].value
			}
			return orderLess(ov[ws[i].member.ID()], ov[ws[j].member.ID()], spec.OrderDesc)
		})
		sortSp.Add("witnesses", int64(len(ws)))
		sortSp.End()
	} else {
		sortSp := sp.Child("sort: witnesses")
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].value < ws[j].value })
		sortSp.Add("witnesses", int64(len(ws)))
		sortSp.End()
	}

	// Step 4: emit one tree per run of equal values. Runs are found
	// sequentially; in Titles mode the per-group output materialization
	// (the content fetches) runs one group per worker slot.
	basisTag := spec.BasisTag()
	type run struct{ i, j int }
	var runs []run
	for i := 0; i < len(ws); {
		j := i
		for j < len(ws) && ws[j].value == ws[i].value {
			j++
		}
		runs = append(runs, run{i: i, j: j})
		i = j
	}
	matSp := sp.Child("materialize: groups")
	trees := make([]*xmltree.Node, len(runs))
	looks := make([]int, len(runs))
	switch spec.Mode {
	case Titles:
		if err := par.Do(o.Ctx, len(runs), workers, func(g int) error {
			r := runs[g]
			out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, ws[r.i].value))
			for _, w := range ws[r.i:r.j] {
				for _, tp := range valuesOf[w.member.ID()] {
					content, err := db.Content(tp)
					if err != nil {
						return err
					}
					looks[g]++
					out.Append(xmltree.Elem(spec.ValuePath.LastTag(), content))
				}
			}
			trees[g] = out
			return nil
		}); err != nil {
			matSp.End()
			return nil, err
		}
	case Count:
		for g, r := range runs {
			out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, ws[r.i].value))
			total := 0
			for _, w := range ws[r.i:r.j] {
				total += len(valuesOf[w.member.ID()])
			}
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
			trees[g] = out
		}
	}
	totalLooks := 0
	for g := range runs {
		res.Trees = append(res.Trees, trees[g])
		res.Stats.ValueLookups += looks[g]
		totalLooks += looks[g]
	}
	matSp.Add("groups", int64(len(runs)))
	matSp.Add("value_lookups", int64(totalLooks))
	matSp.End()
	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}
