package exec

import (
	"fmt"
	"sort"
	"strings"

	"timber/internal/storage"
)

// Strategy names one of the physical evaluation plans. It lives on
// Spec — the strategy is part of the compiled query description — and
// Run dispatches on it, replacing the old per-variant exported
// functions.
type Strategy int

const (
	// StrategyAuto — the zero value — delegates the choice to the
	// cost-based planner: engine.Execute costs the candidate plans
	// against the database's cardinality statistics and runs the
	// cheapest, reporting what actually ran in Result.Strategy. Code
	// that calls exec.Run directly (below the engine, no planner) gets
	// the groupby plan, the paper's default.
	StrategyAuto Strategy = iota
	// StrategyGroupBy is the TIMBER groupby plan with identifier-only
	// processing and deferred value population (Sec. 5.3) — the plan
	// the optimizer's rewrite targets and the planner's fallback.
	StrategyGroupBy
	// StrategyDirect is the fully materialized direct execution of the
	// naive plan (Sec. 4.1 / Sec. 6 "direct").
	StrategyDirect
	// StrategyDirectNested is the nested-loops direct plan probing the
	// value index per outer binding.
	StrategyDirectNested
	// StrategyDirectBatch is the batch direct variant (index
	// identification + hash join).
	StrategyDirectBatch
	// StrategyReplicating is the early-replication grouping strawman
	// Sec. 5.3 argues against.
	StrategyReplicating
	// StrategyLogical evaluates the logical plan over fully loaded
	// documents — the reference semantics. It needs the plan itself,
	// not a Spec, so Run rejects it; the engine facade (or ExecLogical)
	// is the path that runs it.
	StrategyLogical
	// StrategyPhysical is the generic index-accelerated evaluation of
	// an arbitrary logical plan. Like StrategyLogical it needs the
	// plan, so Run rejects it; the engine facade (or ExecPhysical) runs
	// it.
	StrategyPhysical
	// StrategyGroupByMat is the materializing groupby executor the
	// streaming pipeline replaced — kept as the byte-equality reference
	// and the baseline of the streaming-memory experiment.
	StrategyGroupByMat
)

// strategyNames maps each Strategy to its canonical flag spelling.
var strategyNames = map[Strategy]string{
	StrategyAuto:         "auto",
	StrategyGroupBy:      "groupby",
	StrategyDirect:       "direct",
	StrategyDirectNested: "direct-nested",
	StrategyDirectBatch:  "direct-batch",
	StrategyReplicating:  "replicating",
	StrategyLogical:      "logical",
	StrategyPhysical:     "physical",
	StrategyGroupByMat:   "groupby-mat",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a flag spelling to its Strategy — the inverse of
// String, used by the CLIs and the serve daemon.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("exec: unknown strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}

// StrategyNames returns every valid strategy spelling, sorted — the
// enumeration ParseStrategy's error reports and the CLIs document.
func StrategyNames() []string {
	names := make([]string, 0, len(strategyNames))
	for _, n := range strategyNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a Spec with the strategy it names. It is the single
// public Spec-execution path: the per-strategy functions are package
// internals and the engine facade builds on Run. Plan-level strategies
// (logical, physical) need the logical plan rather than a Spec, so Run
// rejects them — the engine dispatches those to ExecLogical and
// ExecPhysical with its cached plans.
func Run(db storage.Reader, spec Spec, o Options) (*Result, error) {
	o, fold := o.foldSpans("exec: " + spec.Strategy.String())
	defer fold()
	// Pin one snapshot for the whole run: every operator of the query —
	// including exchange fragments on other goroutines — reads the same
	// committed epoch, so results are byte-identical to a quiesced run
	// even while documents are inserted or deleted concurrently.
	db, release := storage.Pin(db)
	defer release()
	switch spec.Strategy {
	case StrategyAuto, StrategyGroupBy:
		// Auto below the engine has no planner to consult; the groupby
		// plan is the documented fallback.
		return groupByExec(db, spec, o)
	case StrategyGroupByMat:
		return groupByMaterialized(db, spec, o)
	case StrategyDirect:
		return directMaterialized(db, spec, o)
	case StrategyDirectNested:
		return directNestedLoops(db, spec, o)
	case StrategyDirectBatch:
		return directBatch(db, spec, o)
	case StrategyReplicating:
		return groupByReplicating(db, spec, o)
	case StrategyLogical, StrategyPhysical:
		return nil, fmt.Errorf("exec: strategy %v evaluates a logical plan, not a Spec; use the engine facade (or ExecLogical/ExecPhysical)", spec.Strategy)
	default:
		return nil, fmt.Errorf("exec: unknown strategy %v", spec.Strategy)
	}
}
