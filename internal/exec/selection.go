package exec

import (
	"sort"

	"timber/internal/sjoin"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// stepIter is the streaming selection operator: it extends each input
// row's path position (Aux) by one structural step — child or
// descendant — into the postings of the step's tag, keeping only rows
// whose position structurally matches. It is the iterator form of
// stepJoin, producing the identical row sequence, but instead of
// materializing both sides it joins bounded chunks of input rows
// against a candidate cursor with the incremental stack-tree.
//
// Chunk safety: input rows arrive member-major with non-decreasing
// member starts, and a row's leaf (Aux) starts at or after its member.
// A chunk closes when the NEXT row's member starts past chunkMaxEnd,
// the maximum end of the chunk's leaves. At that point (a) every later
// leaf starts past every chunk leaf's end, so no leaf spans chunks and
// chunk-local leaf dedup equals global dedup; and (b) every candidate
// a later leaf can contain starts past chunkMaxEnd, so candidates
// pulled for this chunk (starts <= chunkMaxEnd) are discardable
// afterwards and candidates a chunk needs were never consumed by an
// earlier chunk.
type stepIter struct {
	child  Iterator
	db     storage.Reader
	tag    string
	doc    xmltree.DocID
	axis   sjoin.Axis
	counts *opCounts

	opened bool
	rdr    *rowReader
	cands  *storage.TagCursor
	// one-posting candidate lookahead
	candNext  storage.Posting
	candOk    bool
	childDone bool
	// joined rows of the current chunk, served in order
	out    []Row
	outPos int
	// per-chunk scratch, reused across chunks
	chunk    []Row
	leaves   []storage.Posting
	candBuf  []storage.Posting
	children map[uint32][]storage.Posting
	join     *sjoin.Stream
}

func newStep(child Iterator, db storage.Reader, st PathStep, doc xmltree.DocID, batchSize int, counts *opCounts) *stepIter {
	axis := sjoin.ParentChild
	if st.Descendant {
		axis = sjoin.AncestorDescendant
	}
	it := &stepIter{
		child:    child,
		db:       db,
		tag:      st.Tag,
		doc:      doc,
		axis:     axis,
		counts:   counts,
		rdr:      nil,
		children: map[uint32][]storage.Posting{},
	}
	it.rdr = newRowReader(child, batchSize)
	it.join = sjoin.NewStream(axis, nil, func(a, d int) {
		lf := it.leaves[a]
		it.children[lf.Interval.Start] = append(it.children[lf.Interval.Start], it.candBuf[d])
	})
	return it
}

func (s *stepIter) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	if err := s.child.Open(); err != nil {
		return err
	}
	s.cands = s.db.OpenTagDocCursor(s.tag, s.doc)
	s.candNext, s.candOk = s.cands.Next()
	return s.cands.Err()
}

func (s *stepIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		if s.outPos < len(s.out) {
			n := len(s.out) - s.outPos
			if room := cap(b.Rows) - len(b.Rows); n > room {
				n = room
			}
			b.Rows = append(b.Rows, s.out[s.outPos:s.outPos+n]...)
			s.outPos += n
			continue
		}
		if s.childDone {
			break
		}
		if err := s.buildChunk(); err != nil {
			return err
		}
	}
	s.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		s.counts.batch()
	}
	return nil
}

// buildChunk pulls the next closed chunk of input rows, joins it
// against the candidate cursor, and stages the expanded rows in s.out.
func (s *stepIter) buildChunk() error {
	s.chunk = s.chunk[:0]
	s.out = s.out[:0]
	s.outPos = 0

	// Gather rows until the close condition. The reader's span doubles
	// as the one-row lookahead: a row that opens the next chunk is
	// simply left unconsumed.
	var maxEnd uint32
gather:
	for {
		span, err := s.rdr.span()
		if err != nil {
			return err
		}
		if span == nil {
			s.childDone = true
			break
		}
		consumed := 0
		for consumed < len(span) {
			row := span[consumed]
			if len(s.chunk) > 0 && row.Member.Interval.Start > maxEnd {
				s.rdr.advance(consumed)
				break gather
			}
			s.chunk = append(s.chunk, row)
			if row.Aux.Interval.End > maxEnd {
				maxEnd = row.Aux.Interval.End
			}
			consumed++
		}
		s.rdr.advance(consumed)
	}
	s.counts.in(len(s.chunk))
	if len(s.chunk) == 0 {
		return nil
	}

	// Distinct leaves, sorted by start (one document, so start is the
	// full node order). Equal starts name the same node, so sorting and
	// squeezing adjacent duplicates replaces the old per-chunk map —
	// no per-chunk allocation, no hashing per row.
	s.leaves = s.leaves[:0]
	for _, r := range s.chunk {
		s.leaves = append(s.leaves, r.Aux)
	}
	sort.Slice(s.leaves, func(i, j int) bool {
		return s.leaves[i].Interval.Start < s.leaves[j].Interval.Start
	})
	n := 0
	for i, lf := range s.leaves {
		if i == 0 || lf.Interval.Start != s.leaves[n-1].Interval.Start {
			s.leaves[n] = lf
			n++
		}
	}
	s.leaves = s.leaves[:n]

	// Pull the chunk's candidate window.
	s.candBuf = s.candBuf[:0]
	for s.candOk && s.candNext.Interval.Start <= maxEnd {
		s.candBuf = append(s.candBuf, s.candNext)
		s.candNext, s.candOk = s.cands.Next()
	}
	if err := s.cands.Err(); err != nil {
		return err
	}

	// Incremental stack-tree over the merged (start) order; descendants
	// first on ties, per the Stream contract.
	for k := range s.children {
		delete(s.children, k)
	}
	ai, di := 0, 0
	for di < len(s.candBuf) {
		if ai < len(s.leaves) && s.leaves[ai].Interval.Before(s.candBuf[di].Interval) {
			s.join.PushAncestor(s.leaves[ai].Interval, ai)
			ai++
			continue
		}
		s.join.PushDescendant(s.candBuf[di].Interval, di)
		di++
	}
	s.join.Flush()

	// Expand row-major: input order × per-leaf candidate (document)
	// order — exactly stepJoin's output order.
	for _, r := range s.chunk {
		for _, c := range s.children[r.Aux.Interval.Start] {
			s.out = append(s.out, Row{Member: r.Member, Aux: c, HasAux: true})
		}
	}
	return nil
}

func (s *stepIter) Close() error {
	err := s.child.Close()
	if s.cands != nil {
		if cerr := s.cands.Close(); err == nil {
			err = cerr
		}
	}
	s.rdr.release()
	return err
}
