package exec

import (
	"testing"

	"timber/internal/pagestore"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

func sampleRows() []Row {
	return []Row{
		{},
		{
			Kind: rowBinding,
			Member: storage.Posting{
				Interval: xmltree.Interval{Doc: 1, Start: 10, End: 90, Level: 2},
				RID:      pagestore.RID{Page: 3, Slot: 7},
			},
			Aux: storage.Posting{
				Interval: xmltree.Interval{Doc: 1, Start: 11, End: 12, Level: 3},
				RID:      pagestore.RID{Page: 4, Slot: 1},
			},
			HasAux: true,
			Key:    "Jagadish",
			Ord:    42,
		},
		{Kind: rowGroup, Key: "a grouping value with spaces"},
		{Kind: rowCount, Ord: -1},
		{
			// An inverted interval: encodeRow must round-trip any Row
			// value, not only well-formed postings.
			Member: storage.Posting{
				Interval: xmltree.Interval{Doc: 9, Start: 100, End: 5, Level: 1},
			},
			Ord: 1 << 40,
		},
		{
			Member: storage.Posting{
				Interval: xmltree.Interval{Doc: 1<<32 - 1, Start: 1<<32 - 1, End: 1<<32 - 1, Level: 1<<16 - 1},
				RID:      pagestore.RID{Page: 1<<32 - 1, Slot: 1<<16 - 1},
			},
			Key: "",
			Ord: -(1 << 62),
		},
	}
}

func TestSpillRowRoundTrip(t *testing.T) {
	for i, r := range sampleRows() {
		enc := encodeRow(nil, r)
		got, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got != r {
			t.Errorf("row %d: got %+v want %+v", i, got, r)
		}
	}
}

func TestSpillRowTruncated(t *testing.T) {
	full := encodeRow(nil, sampleRows()[1])
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeRow(full[:cut]); err == nil {
			t.Errorf("truncated row (%d/%d bytes) decoded cleanly", cut, len(full))
		}
	}
	// Exact consumption: trailing bytes are corruption, not padding.
	if _, err := decodeRow(append(append([]byte(nil), full...), 0)); err == nil {
		t.Error("row with trailing byte decoded cleanly")
	}
}

// FuzzSpillRow asserts decodeRow is a total function: arbitrary bytes
// either fail or produce a Row whose canonical re-encoding decodes to
// the same value.
func FuzzSpillRow(f *testing.F) {
	for _, r := range sampleRows() {
		f.Add(encodeRow(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeRow(b)
		if err != nil {
			return
		}
		// Varints admit non-minimal encodings, so the bytes need not
		// round-trip — the decoded value must.
		got, err := decodeRow(encodeRow(nil, r))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got != r {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
		}
	})
}
