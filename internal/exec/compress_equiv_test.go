package exec

import (
	"fmt"
	"reflect"
	"testing"

	"timber/internal/dblpgen"
	"timber/internal/obs"
	"timber/internal/paperdata"
	"timber/internal/storage"
)

// buildEquivDB loads the shared equivalence corpus — the paper's
// sample database plus three generated DBLP fragments — into a fresh
// temp database with the given storage options.
func buildEquivDB(t *testing.T, opts storage.Options) *storage.DB {
	t.Helper()
	db, err := storage.CreateTemp(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	for i, seed := range []int64{7, 11, 13} {
		root, _ := dblpgen.Generate(dblpgen.Config{Articles: 30, Seed: seed})
		if _, err := db.LoadDocument(fmt.Sprintf("dblp-%d.xml", i), root); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// collectOps accumulates the per-operator row/batch counters from a
// finished trace, keyed by span name.
func collectOps(d *obs.SpanData, into map[string]map[string]int64) {
	if len(d.Ops) > 0 {
		m := into[d.Name]
		if m == nil {
			m = map[string]int64{}
			into[d.Name] = m
		}
		for k, v := range d.Ops {
			m[k] += v
		}
	}
	for _, c := range d.Children {
		collectOps(c, into)
	}
}

// TestCompressedUncompressedEquivalence is the format-bump safety net:
// the same corpus loaded under the compact+compressed default and
// under Uncompressed must answer every corpus query with byte-identical
// trees, identical ExecStats, and identical per-operator trace row
// counts — at parallelism 1 and 4. The compressed formats may only
// change where bytes live, never what flows through the executor.
func TestCompressedUncompressedEquivalence(t *testing.T) {
	comp := buildEquivDB(t, storage.Options{PageSize: 2048, PoolPages: 512})
	unc := buildEquivDB(t, storage.Options{PageSize: 2048, PoolPages: 512, Uncompressed: true})
	if !comp.Compact() || unc.Compact() {
		t.Fatalf("Compact() = %v/%v, want true/false", comp.Compact(), unc.Compact())
	}

	// The compact formats must actually shrink the database.
	ci, err := comp.SizeInfo()
	if err != nil {
		t.Fatal(err)
	}
	ui, err := unc.SizeInfo()
	if err != nil {
		t.Fatal(err)
	}
	if ci.TotalPages >= ui.TotalPages {
		t.Errorf("compact database is not smaller: %d pages vs %d", ci.TotalPages, ui.TotalPages)
	}
	if ci.IndexPages >= ui.IndexPages {
		t.Errorf("compact indexes are not smaller: %d pages vs %d", ci.IndexPages, ui.IndexPages)
	}

	type outcome struct {
		trees string
		stats ExecStats
		ops   map[string]map[string]int64
	}
	runOne := func(db *storage.DB, spec Spec, p int) outcome {
		t.Helper()
		db.ResetStats()
		tr := db.NewTracer("equiv")
		res, err := groupByExec(db, spec, Options{Parallelism: p, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		ops := map[string]map[string]int64{}
		collectOps(tr.Finish(), ops)
		return outcome{trees: serializeTrees(res.Trees), stats: res.Stats, ops: ops}
	}

	for _, q := range streamCorpus {
		_, _, spec := plansFor(t, q.src)
		for _, p := range []int{1, 4} {
			got := runOne(comp, spec, p)
			want := runOne(unc, spec, p)
			if got.trees != want.trees {
				t.Errorf("%s p=%d: compressed trees differ from uncompressed", q.name, p)
			}
			if got.stats != want.stats {
				t.Errorf("%s p=%d: stats %+v vs %+v", q.name, p, got.stats, want.stats)
			}
			if !reflect.DeepEqual(got.ops, want.ops) {
				t.Errorf("%s p=%d: operator counts differ\ncompressed   %v\nuncompressed %v", q.name, p, got.ops, want.ops)
			}
		}
	}
}
