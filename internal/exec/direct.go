package exec

import (
	"fmt"
	"sort"
	"strconv"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// DirectNestedLoops is the "direct execution of the XQuery as written"
// of Sec. 6 — the nested-loops evaluation plan: for each distinct outer
// binding, the inner query is evaluated by probing the value index for
// matching nodes, navigating up to the grouped member, and navigating
// down its subtree for the returned values. Every navigation step is a
// node-ID resolution through the locator plus a record fetch — the
// per-binding work that identifier processing (GroupByExec) avoids.
//
// Output trees appear in first-occurrence order of the distinct values,
// matching the logical naive plan. Requires the value index.
func directNestedLoops(db storage.Reader, spec Spec, o Options) (*Result, error) {
	if !db.HasValueIndex() {
		return nil, fmt.Errorf("exec: direct nested-loops plan needs the value index")
	}
	res := &Result{}
	basisTag := spec.BasisTag()
	sp := o.trace("exec: direct nested-loops")
	defer sp.End()

	// Outer: distinct-values(//basisTag) — identify nodes by index,
	// look up the actual data values, eliminate duplicates.
	outerSp := sp.Child("scan: distinct outer values")
	outerPosts, err := db.TagPostings(basisTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(outerPosts)
	var distinct []string
	seen := map[string]bool{}
	for _, p := range outerPosts {
		if err := o.err(); err != nil {
			return nil, err
		}
		v, err := db.Content(p)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		if !seen[v] {
			seen[v] = true
			distinct = append(distinct, v)
		}
	}
	outerSp.Add("postings", int64(len(outerPosts)))
	outerSp.Add("value_lookups", int64(len(outerPosts)))
	outerSp.Add("distinct", int64(len(distinct)))
	outerSp.End()

	// The upward chain from the grouping-value node to the member:
	// reverse of the join path with the member tag at the end. A child
	// step requires the immediate parent; a descendant step lets the
	// climb skip intermediate ancestors.
	upSteps := make([]PathStep, 0, len(spec.JoinPath))
	for i := len(spec.JoinPath) - 1; i >= 1; i-- {
		upSteps = append(upSteps, PathStep{Tag: spec.JoinPath[i-1].Tag, Descendant: spec.JoinPath[i].Descendant})
	}
	upSteps = append(upSteps, PathStep{Tag: spec.MemberTag, Descendant: spec.JoinPath[0].Descendant})

	// Inner loop, once per distinct value: probe the value index,
	// navigate up to members, order them if requested, and navigate
	// down for values.
	innerSp := sp.Child("nested loop: probe + navigate")
	probesBefore := res.Stats.IndexPostings
	lookupsBefore := res.Stats.ValueLookups
	for _, v := range distinct {
		// One cancellation probe per outer binding: each iteration is a
		// probe-plus-navigation burst of record fetches.
		if err := o.err(); err != nil {
			return nil, err
		}
		probes, err := db.ValuePostings(basisTag, v)
		if err != nil {
			return nil, err
		}
		res.Stats.IndexPostings += len(probes)
		out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, v))
		memberSeen := map[xmltree.NodeID]bool{}
		var matched []*storage.NodeRecord
		for _, p := range probes {
			member, ok, err := res.navigateUp(db, p, upSteps)
			if err != nil {
				return nil, err
			}
			if !ok || memberSeen[member.ID()] {
				continue
			}
			memberSeen[member.ID()] = true
			matched = append(matched, member)
		}
		if spec.OrderPath != nil {
			// ORDER BY costs this plan an extra navigation per member.
			keys := make(map[xmltree.NodeID]string, len(matched))
			for _, m := range matched {
				vs, err := res.navigateDown(db, m, spec.OrderPath)
				if err != nil {
					return nil, err
				}
				if len(vs) > 0 {
					keys[m.ID()] = vs[0]
				}
			}
			sort.SliceStable(matched, func(i, j int) bool {
				return orderLess(keys[matched[i].ID()], keys[matched[j].ID()], spec.OrderDesc)
			})
		}
		total := 0
		for _, member := range matched {
			values, err := res.navigateDown(db, member, spec.ValuePath)
			if err != nil {
				return nil, err
			}
			if spec.Mode == Titles {
				for _, val := range values {
					out.Append(xmltree.Elem(spec.ValuePath.LastTag(), val))
				}
			} else {
				total += len(values)
			}
		}
		if spec.Mode == Count {
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
		}
		res.Trees = append(res.Trees, out)
	}
	innerSp.Add("probe_postings", int64(res.Stats.IndexPostings-probesBefore))
	innerSp.Add("value_lookups", int64(res.Stats.ValueLookups-lookupsBefore))
	innerSp.Add("locator_probes", int64(res.Stats.LocatorProbes))
	innerSp.Add("groups", int64(len(res.Trees)))
	innerSp.End()
	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}

// navigateUp walks parent links from a posting, matching the expected
// upward steps; each level is a locator probe plus a record fetch. A
// child step must match the immediate parent; a descendant step climbs
// until its tag appears (greedy matching, which is exact on the
// single ancestor chain).
func (r *Result) navigateUp(db storage.Reader, p storage.Posting, upSteps []PathStep) (*storage.NodeRecord, bool, error) {
	rec, err := db.GetNodeAt(p.RID)
	if err != nil {
		return nil, false, err
	}
	climb := func(rec *storage.NodeRecord) (*storage.NodeRecord, error) {
		if rec.ParentStart == 0 {
			return nil, nil
		}
		parentID := xmltree.NodeID{Doc: rec.Interval.Doc, Start: rec.ParentStart}
		up, err := db.GetNode(parentID)
		if err != nil {
			return nil, err
		}
		r.Stats.LocatorProbes++
		return up, nil
	}
	for _, st := range upSteps {
		rec, err = climb(rec)
		if err != nil {
			return nil, false, err
		}
		if rec == nil {
			return nil, false, nil
		}
		if st.Descendant {
			for rec != nil && rec.Tag != st.Tag {
				rec, err = climb(rec)
				if err != nil {
					return nil, false, err
				}
			}
			if rec == nil {
				return nil, false, nil
			}
		} else if rec.Tag != st.Tag {
			return nil, false, nil
		}
	}
	return rec, true, nil
}

// navigateDown scans the member's subtree range and evaluates the
// relative path over it, returning the leaf contents in document order.
// The scan reads every record in the subtree — the navigational cost of
// "looking up the title" without an identifier-processed plan.
func (r *Result) navigateDown(db storage.Reader, member *storage.NodeRecord, path Path) ([]string, error) {
	// Rebuild the member subtree from the range scan (the records
	// arrive in document order), then walk the path with full axis
	// semantics.
	root := &xmltree.Node{
		Tag: member.Tag, Content: member.Content, Interval: member.Interval,
	}
	stack := []*xmltree.Node{root}
	err := db.ScanRange(member.Interval.Doc, member.Interval.Start+1, member.Interval.End, func(rec *storage.NodeRecord) error {
		r.Stats.ValueLookups++
		n := &xmltree.Node{Tag: rec.Tag, Content: rec.Content, Interval: rec.Interval}
		for len(stack) > 1 && stack[len(stack)-1].Interval.End < n.Interval.Start {
			stack = stack[:len(stack)-1]
		}
		stack[len(stack)-1].Append(n)
		stack = append(stack, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return valuesAtPath(root, path), nil
}

// DirectBatch is the batch variant Sec. 6's prose describes: identify
// the outer nodes and the member/value pairs with indices, eliminate
// duplicates in the former by looking up values, perform the requisite
// (hash) join with the latter, then output per distinct value. It does
// the same data-value look-ups twice (dedupe pass and join pass) but
// avoids the per-binding navigation of the nested-loops plan, so it
// sits between the nested-loops and groupby plans.
func directBatch(db storage.Reader, spec Spec, o Options) (*Result, error) {
	res := &Result{}
	basisTag := spec.BasisTag()
	sp := o.trace("exec: direct batch")
	defer sp.End()

	// Outer values, first-occurrence order.
	outerSp := sp.Child("scan: distinct outer values")
	outerPosts, err := db.TagPostings(basisTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(outerPosts)
	var distinct []string
	seen := map[string]bool{}
	for _, p := range outerPosts {
		if err := o.err(); err != nil {
			return nil, err
		}
		v, err := db.Content(p)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		if !seen[v] {
			seen[v] = true
			distinct = append(distinct, v)
		}
	}
	outerSp.Add("postings", int64(len(outerPosts)))
	outerSp.Add("value_lookups", int64(len(outerPosts)))
	outerSp.Add("distinct", int64(len(distinct)))
	outerSp.End()

	// Member/value-node pairs, index-only; then one value look-up per
	// pair to build the hash join table.
	joinSp := sp.Child("sjoin: join path")
	members, err := db.TagPostings(spec.MemberTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(members)
	joinSp.Add("postings", int64(len(members)))
	witnesses, err := pathPairs(o.Ctx, db, members, spec.JoinPath, o.workers(), joinSp)
	joinSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(witnesses)
	hashSp := sp.Child("hash join: build")
	byValue := map[string][]storage.Posting{}
	dedup := map[string]map[xmltree.NodeID]bool{}
	for _, w := range witnesses {
		if err := o.err(); err != nil {
			hashSp.End()
			return nil, err
		}
		v, err := db.Content(w.leaf)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		if dedup[v] == nil {
			dedup[v] = map[xmltree.NodeID]bool{}
		}
		if dedup[v][w.member.ID()] {
			continue
		}
		dedup[v][w.member.ID()] = true
		byValue[v] = append(byValue[v], w.member)
	}
	hashSp.Add("value_lookups", int64(len(witnesses)))
	hashSp.End()

	// Value path, index-only.
	valSp := sp.Child("sjoin: value path")
	valuePairs, err := pathPairs(o.Ctx, db, members, spec.ValuePath, o.workers(), valSp)
	valSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(valuePairs)
	valuesOf := groupPairsByMember(valuePairs)

	if spec.OrderPath != nil {
		ov, err := orderValues(o.Ctx, db, members, spec.OrderPath, res, o.workers(), sp)
		if err != nil {
			return nil, err
		}
		for _, ms := range byValue {
			sortPostingsByOrder(ms, ov, spec.OrderDesc)
		}
	}

	matSp := sp.Child("materialize: groups")
	lookupsBefore := res.Stats.ValueLookups
	for _, v := range distinct {
		out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, v))
		switch spec.Mode {
		case Titles:
			for _, m := range byValue[v] {
				for _, tp := range valuesOf[m.ID()] {
					content, err := db.Content(tp)
					if err != nil {
						return nil, err
					}
					res.Stats.ValueLookups++
					out.Append(xmltree.Elem(spec.ValuePath.LastTag(), content))
				}
			}
		case Count:
			total := 0
			for _, m := range byValue[v] {
				total += len(valuesOf[m.ID()])
			}
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
		}
		res.Trees = append(res.Trees, out)
	}
	matSp.Add("groups", int64(len(res.Trees)))
	matSp.Add("value_lookups", int64(res.Stats.ValueLookups-lookupsBefore))
	matSp.End()
	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}
