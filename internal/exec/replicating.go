package exec

import (
	"sort"
	"strconv"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// GroupByReplicating is the strawman grouping implementation Sec. 5.3
// argues against: "replicate elements an appropriate number of times,
// and tag each replica with the correct grouping variables", then sort.
// It materializes the full member subtree once per witness — a
// two-author article is physically instantiated twice — before any
// grouping happens, so "large amounts of data may be replicated early
// in the process". The groupby plan is the identifier-processing
// variant that defers materialization; benchmarking the two reproduces
// the design argument.
func groupByReplicating(db storage.Reader, spec Spec, o Options) (*Result, error) {
	res := &Result{}
	sp := o.trace("exec: groupby replicating")
	defer sp.End()

	joinSp := sp.Child("sjoin: join path")
	members, err := db.TagPostings(spec.MemberTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(members)
	joinSp.Add("postings", int64(len(members)))
	witnesses, err := pathPairs(o.Ctx, db, members, spec.JoinPath, o.workers(), joinSp)
	joinSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(witnesses)

	// Early replication: one fully materialized subtree per witness,
	// tagged with its grouping value.
	type replica struct {
		value    string
		orderKey string
		tree     *xmltree.Node
		seq      int
	}
	repSp := sp.Child("materialize: replicas")
	reps := make([]replica, 0, len(witnesses))
	for i, w := range witnesses {
		// Each replica materializes a whole subtree; probe per witness.
		if err := o.err(); err != nil {
			return nil, err
		}
		sub, err := db.GetSubtree(w.member.ID())
		if err != nil {
			return nil, err
		}
		res.Stats.LocatorProbes++ // GetSubtree resolves via the locator
		res.Stats.ValueLookups += sub.Size()
		v, err := db.Content(w.leaf)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		r := replica{value: v, tree: sub, seq: i}
		if spec.OrderPath != nil {
			if vs := valuesAtPath(sub, spec.OrderPath); len(vs) > 0 {
				r.orderKey = vs[0]
			}
		}
		reps = append(reps, r)
	}
	repSp.Add("replicas", int64(len(reps)))
	repSp.Add("value_lookups", int64(res.Stats.ValueLookups))
	repSp.End()

	// Standard sort-based grouping over the replicas; the replicas
	// already carry everything an ordering list needs.
	sortSp := sp.Child("sort: replicas")
	sort.SliceStable(reps, func(i, j int) bool {
		if reps[i].value != reps[j].value {
			return reps[i].value < reps[j].value
		}
		if spec.OrderPath != nil {
			return orderLess(reps[i].orderKey, reps[j].orderKey, spec.OrderDesc)
		}
		return false
	})
	sortSp.Add("replicas", int64(len(reps)))
	sortSp.End()

	matSp := sp.Child("materialize: groups")
	basisTag := spec.BasisTag()
	valueTag := spec.ValuePath.LastTag()
	for i := 0; i < len(reps); {
		j := i
		for j < len(reps) && reps[j].value == reps[i].value {
			j++
		}
		out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, reps[i].value))
		total := 0
		for _, r := range reps[i:j] {
			for _, v := range valuesAtPath(r.tree, spec.ValuePath) {
				if spec.Mode == Titles {
					out.Append(xmltree.Elem(valueTag, v))
				} else {
					total++
				}
			}
		}
		if spec.Mode == Count {
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
		}
		res.Trees = append(res.Trees, out)
		i = j
	}
	matSp.Add("groups", int64(len(res.Trees)))
	matSp.End()
	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}
