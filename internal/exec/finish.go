package exec

import (
	"timber/internal/obs"
	"timber/internal/storage"
)

// finishResult materializes the output collection through the storage
// engine. TIMBER query results are stored trees, so every plan pays to
// write and re-read its answer; this shared cost is what compresses the
// titles experiment's plan gap relative to the count experiment's (the
// paper's E1 ratio is 1.8x against E2's 6.7x largely because the bulky
// titles output burdens both plans equally, while the count output is
// negligible).
//
// Because results (and the naive plan's intermediates) spill to a
// shared temporary page region that is truncated afterwards, executors
// must not run concurrently against one database; the read-only storage
// paths (postings, record fetches, subtree scans) remain safe for
// concurrent use.
func finishResult(db storage.Reader, res *Result, sp *obs.Span) error {
	finSp := sp.Child("spill: result trees")
	defer finSp.End()
	trees, err := db.SpillTrees(res.Trees)
	if err != nil {
		return err
	}
	res.Trees = trees
	res.Stats.Groups = len(trees)
	finSp.Add("trees", int64(len(trees)))
	return nil
}
