package exec

import (
	"bytes"
	"testing"

	"timber/internal/obs"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// serializeAll renders result trees to one byte slice, so equality
// checks are byte-exact rather than structural.
func serializeAll(t *testing.T, trees []*xmltree.Node) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tr := range trees {
		if err := xmltree.Serialize(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTracingPreservesResults is the observability layer's core
// property: attaching a tracer must not change what any executor
// computes — byte-identical output at parallelism 1 and 4 — and the
// finished trace must satisfy the exactness invariant (span deltas
// telescope to the database's global counters).
func TestTracingPreservesResults(t *testing.T) {
	db := sampleDB(t)
	executors := []struct {
		name string
		fn   func(storage.Reader, Spec, Options) (*Result, error)
	}{
		{"groupby", groupByExec},
		{"direct-materialized", directMaterialized},
		{"direct-nested-loops", directNestedLoops},
		{"direct-batch", directBatch},
		{"groupby-replicating", groupByReplicating},
	}
	for _, src := range []string{query1Src, queryCountSrc} {
		_, _, spec := plansFor(t, src)
		for _, ex := range executors {
			for _, p := range []int{1, 4} {
				base, err := ex.fn(db, spec, Options{Parallelism: p})
				if err != nil {
					t.Fatalf("%s p=%d untraced: %v", ex.name, p, err)
				}
				want := serializeAll(t, base.Trees)

				db.ResetStats()
				tr := db.NewTracer("test")
				traced, err := ex.fn(db, spec, Options{Parallelism: p, Tracer: tr})
				if err != nil {
					t.Fatalf("%s p=%d traced: %v", ex.name, p, err)
				}
				got := serializeAll(t, traced.Trees)
				if !bytes.Equal(want, got) {
					t.Errorf("%s p=%d: traced output differs from untraced", ex.name, p)
				}
				if base.Stats != traced.Stats {
					t.Errorf("%s p=%d: stats differ: %+v vs %+v", ex.name, p, base.Stats, traced.Stats)
				}
				data := tr.Finish()
				if err := data.Verify(db.TraceCounters()); err != nil {
					t.Errorf("%s p=%d: exactness invariant: %v", ex.name, p, err)
				}
				if len(data.Children) == 0 {
					t.Errorf("%s p=%d: trace has no executor span", ex.name, p)
				}
			}
		}
	}
}

// TestTracingPreservesPhysicalEval covers the generic physical path:
// a traced ExecPhysical must match the untraced run byte for byte and
// produce a verifiable trace.
func TestTracingPreservesPhysicalEval(t *testing.T) {
	db := sampleDB(t)
	_, rewritten, _ := plansFor(t, query1Src)
	for _, p := range []int{1, 4} {
		base, err := ExecPhysical(db, rewritten, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		want := serializeAll(t, base.Trees)

		db.ResetStats()
		tr := db.NewTracer("physical")
		traced, err := ExecPhysical(db, rewritten, Options{Parallelism: p, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if got := serializeAll(t, traced.Trees); !bytes.Equal(want, got) {
			t.Errorf("p=%d: traced physical output differs from untraced", p)
		}
		data := tr.Finish()
		if err := data.Verify(db.TraceCounters()); err != nil {
			t.Errorf("p=%d: exactness invariant: %v", p, err)
		}
	}
}

// TestNilTracerOptionsAreInert pins the zero-cost-when-disabled
// contract at the Options level: a nil Tracer must produce nil spans
// everywhere.
func TestNilTracerOptionsAreInert(t *testing.T) {
	var o Options
	if sp := o.trace("anything"); sp != nil {
		t.Fatalf("nil-tracer options produced span %v", sp)
	}
	var tr *obs.Tracer
	if tr.Finish() != nil {
		t.Fatal("nil tracer finished to non-nil data")
	}
}
