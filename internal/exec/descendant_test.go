package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// The descendant-axis variant of Query 1: authors correlate at any
// depth under the article ($b//author), and titles likewise.
const queryDescSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b//author
    RETURN $b//title
  }
</authorpubs>`

// deepDB builds articles whose authors and titles nest at varying
// depths (inside section/front-matter wrappers), so child-axis plans
// would miss them.
func deepDB(t testing.TB, seed int64) (*storage.DB, *xmltree.Node) {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root")
	names := []string{"A", "B", "C"}
	for i := 0; i < rng.Intn(8)+2; i++ {
		au := el("author", names[rng.Intn(len(names))])
		ti := el("title", "T"+string(rune('0'+i)))
		art := e("article")
		switch rng.Intn(3) {
		case 0: // both direct children
			art.Append(au, ti)
		case 1: // author nested in front matter
			art.Append(e("front", e("byline", au)), ti)
		default: // both nested in a section
			art.Append(e("section", au, e("head", ti)))
		}
		root.Append(art)
	}
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	return db, root
}

func TestDescendantAxisSpec(t *testing.T) {
	_, _, spec := plansFor(t, queryDescSrc)
	if len(spec.JoinPath) != 1 || !spec.JoinPath[0].Descendant {
		t.Errorf("join path = %v, want one descendant step", spec.JoinPath)
	}
	if len(spec.ValuePath) != 1 || !spec.ValuePath[0].Descendant {
		t.Errorf("value path = %v, want one descendant step", spec.ValuePath)
	}
	if spec.JoinPath.String() != "//author" {
		t.Errorf("join path string = %s", spec.JoinPath)
	}
}

// TestDescendantAxisAllPlansAgree: every physical plan handles the //
// correlation identically to the logical reference, on data where the
// authors really do nest at depth.
func TestDescendantAxisAllPlansAgree(t *testing.T) {
	naive, rewritten, spec := plansFor(t, queryDescSrc)
	prop := func(seed int64) bool {
		db, _ := deepDB(t, seed)
		defer db.Close()
		ln, err := ExecLogical(db, naive)
		if err != nil {
			return false
		}
		lr, err := ExecLogical(db, rewritten)
		if err != nil {
			return false
		}
		nRows := rows(ln.Trees)
		if !reflect.DeepEqual(sorted(rows(lr.Trees)), sorted(nRows)) {
			return false
		}
		for _, strat := range []Strategy{
			StrategyDirect, StrategyDirectNested, StrategyDirectBatch, StrategyGroupBy, StrategyReplicating,
		} {
			spec := spec
			spec.Strategy = strat
			res, err := Run(db, spec, Options{})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(sorted(rows(res.Trees)), sorted(nRows)) {
				return false
			}
		}
		phys, err := ExecPhysical(db, rewritten, Options{})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(sorted(rows(phys.Trees)), sorted(nRows))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDescendantAxisGolden(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", e("front", el("author", "Deep")), e("body", e("head", el("title", "Hidden")))),
		e("article", el("author", "Flat"), el("title", "Plain")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	_, _, spec := plansFor(t, queryDescSrc)
	res, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Deep:Hidden", "Flat:Plain"}
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("deep grouping = %v, want %v", got, want)
	}
	// The child-axis query must NOT see the nested pair.
	_, _, childSpec := plansFor(t, query1Src)
	res2, err := groupByExec(db, childSpec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(res2.Trees); !reflect.DeepEqual(got, []string{"Flat:Plain"}) {
		t.Errorf("child-axis grouping = %v, want only the flat pair", got)
	}
}
