package exec

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestParseStrategyRoundTrip: every Strategy's String() parses back to
// itself, and unknown spellings are rejected with a helpful message.
func TestParseStrategyRoundTrip(t *testing.T) {
	all := []Strategy{
		StrategyAuto, StrategyGroupBy, StrategyGroupByMat, StrategyDirect,
		StrategyDirectNested, StrategyDirectBatch, StrategyReplicating,
		StrategyLogical, StrategyPhysical,
	}
	for _, s := range all {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
	}
	// The error must name the bad input and enumerate every valid
	// spelling.
	_, err := ParseStrategy("turbo")
	if err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Errorf("ParseStrategy(turbo) err = %v, want mention of the bad name", err)
	}
	for _, name := range StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseStrategy error %q does not list %q", err, name)
		}
	}
	if len(StrategyNames()) != len(all) {
		t.Errorf("StrategyNames() has %d entries, want %d", len(StrategyNames()), len(all))
	}
}

// TestRunDispatchesEveryStrategy: Run on each Spec-level strategy
// produces the same row multiset as the logical reference, and the
// zero-value Strategy is the groupby plan.
func TestRunDispatchesEveryStrategy(t *testing.T) {
	db := sampleDB(t)
	naive, _, spec := plansFor(t, query1Src)
	ln, err := ExecLogical(db, naive)
	if err != nil {
		t.Fatal(err)
	}
	want := sorted(rows(ln.Trees))
	for _, strat := range []Strategy{
		StrategyGroupBy, StrategyDirect, StrategyDirectNested,
		StrategyDirectBatch, StrategyReplicating,
	} {
		spec := spec
		spec.Strategy = strat
		res, err := Run(db, spec, Options{})
		if err != nil {
			t.Fatalf("Run(%v): %v", strat, err)
		}
		if got := sorted(rows(res.Trees)); !reflect.DeepEqual(got, want) {
			t.Errorf("Run(%v) = %v, want %v", strat, got, want)
		}
	}
	// The zero value is auto — "planner decides" through the engine,
	// groupby when Run is called below it.
	var zero Spec
	if zero.Strategy != StrategyAuto {
		t.Errorf("zero-value Strategy = %v, want StrategyAuto", zero.Strategy)
	}
	auto := spec
	auto.Strategy = StrategyAuto
	res, err := Run(db, auto, Options{})
	if err != nil {
		t.Fatalf("Run(auto): %v", err)
	}
	if got := sorted(rows(res.Trees)); !reflect.DeepEqual(got, want) {
		t.Errorf("Run(auto) = %v, want %v", got, want)
	}
}

// TestRunRejectsPlanLevelStrategies: logical and physical evaluate a
// plan, not a Spec, so Run must refuse them rather than misexecute.
func TestRunRejectsPlanLevelStrategies(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	for _, strat := range []Strategy{StrategyLogical, StrategyPhysical} {
		spec := spec
		spec.Strategy = strat
		if _, err := Run(db, spec, Options{}); err == nil {
			t.Errorf("Run(%v) succeeded, want an error", strat)
		}
	}
	spec.Strategy = Strategy(99)
	if _, err := Run(db, spec, Options{}); err == nil {
		t.Error("Run(unknown strategy) succeeded, want an error")
	}
}

// TestRunCancelledContext: every Spec-level strategy must notice an
// already-cancelled context and return ctx.Err() with no result, at
// parallelism 1 and 4 — the promptness half of the cancellation
// contract (the buffer-pool-integrity half is pinned by the engine
// tests' counter-exactness check).
func TestRunCancelledContext(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{
		StrategyGroupBy, StrategyDirect, StrategyDirectNested,
		StrategyDirectBatch, StrategyReplicating,
	} {
		for _, p := range []int{1, 4} {
			spec := spec
			spec.Strategy = strat
			res, err := Run(db, spec, Options{Parallelism: p, Ctx: ctx})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Run(%v p=%d) err = %v, want context.Canceled", strat, p, err)
			}
			if res != nil {
				t.Errorf("Run(%v p=%d) returned a result after cancellation", strat, p)
			}
		}
	}
	// The generic physical path observes cancellation too.
	_, rewritten, _ := plansFor(t, query1Src)
	if _, err := ExecPhysical(db, rewritten, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecPhysical err = %v, want context.Canceled", err)
	}
}
