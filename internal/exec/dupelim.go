package exec

import "timber/internal/xmltree"

// dupElimIter is the streaming duplicate-elimination operator: its
// input arrives member-major (all rows of one member contiguous, in
// document order), so keeping the first row per member needs only one
// identifier of state. The ordering pipeline uses it to reduce the
// order-path matches to each member's first (document-order) match —
// the GROUPBY ordering-list convention.
type dupElimIter struct {
	child  Iterator
	counts *opCounts

	opened bool
	have   bool
	last   xmltree.NodeID
}

func newDupElim(child Iterator, counts *opCounts) *dupElimIter {
	return &dupElimIter{child: child, counts: counts}
}

func (d *dupElimIter) Open() error {
	if d.opened {
		return nil
	}
	d.opened = true
	return d.child.Open()
}

func (d *dupElimIter) Next(b *Batch) error {
	for {
		if err := d.child.Next(b); err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			return nil
		}
		d.counts.in(len(b.Rows))
		rows := b.Rows
		// Duplicates are adjacent (the input is member-major), so one
		// comparison scan detects a duplicate-free batch — the common
		// case — and passes it through without copying a row.
		dup := d.have && rows[0].Member.ID() == d.last
		for i := 1; !dup && i < len(rows); i++ {
			if rows[i].Member.ID() == rows[i-1].Member.ID() {
				dup = true
			}
		}
		if !dup {
			d.have = true
			d.last = rows[len(rows)-1].Member.ID()
			d.counts.out(len(rows))
			d.counts.batch()
			return nil
		}
		kept := rows[:0]
		for _, r := range rows {
			id := r.Member.ID()
			if d.have && id == d.last {
				continue
			}
			d.have = true
			d.last = id
			kept = append(kept, r)
		}
		b.Rows = kept
		if len(b.Rows) > 0 {
			d.counts.out(len(b.Rows))
			d.counts.batch()
			return nil
		}
		// Everything in this batch was a duplicate; pull again rather
		// than signal a false end-of-stream.
	}
}

func (d *dupElimIter) Close() error { return d.child.Close() }
