package exec

import (
	"reflect"
	"testing"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

func TestDirectMaterializedSample(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	res, err := directMaterialized(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(res.Trees); !reflect.DeepEqual(got, wantSample) {
		t.Errorf("materialized result = %v, want %v", got, wantSample)
	}
	// The naive plan materializes full article replicas: value lookups
	// far exceed the witness count.
	if res.Stats.ValueLookups <= 10 {
		t.Errorf("value lookups = %d; replication should dominate", res.Stats.ValueLookups)
	}
	if res.Stats.LocatorProbes == 0 {
		t.Error("subtree materialization resolves through the locator")
	}
}

func TestDirectMaterializedCount(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, queryCountSrc)
	res, err := directMaterialized(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Jack:2", "John:2", "Jill:1"}
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("materialized count = %v, want %v", got, want)
	}
}

func TestDirectMaterializedInstitution(t *testing.T) {
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	_, _, spec := plansFor(t, src)
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", e("author", el("institution", "UM")).Text("Jack"), el("title", "T1")),
		e("article", e("author", el("institution", "UBC")).Text("Jill"), el("title", "T2")),
		e("article", e("author", el("institution", "UM")).Text("Jag"), el("title", "T3")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	res, err := directMaterialized(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"UM:T1,T3", "UBC:T2"} // first-occurrence order
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("institution materialized = %v, want %v", got, want)
	}
}

// TestStructuralDedupCaveat pins the naive plan's second semantic
// boundary (alongside opt.TestRewriteDuplicateAuthorCaveat): its
// "duplicate elimination based on articles" is structural, so two
// char-identical articles by the same author collapse to one in the
// naive/direct-materialized result, while witness-based plans (the
// groupby plans, and the ID-based direct baselines) keep both. DBLP has
// no such duplicates; this test documents the behaviour rather than
// hiding it.
func TestStructuralDedupCaveat(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", el("author", "A"), el("title", "Same")),
		e("article", el("author", "A"), el("title", "Same")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	naive, rewritten, spec := plansFor(t, query1Src)

	ln, err := ExecLogical(db, naive)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(ln.Trees); !reflect.DeepEqual(got, []string{"A:Same"}) {
		t.Errorf("logical naive = %v, want structural dedup", got)
	}
	dm, err := directMaterialized(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(dm.Trees); !reflect.DeepEqual(got, []string{"A:Same"}) {
		t.Errorf("direct materialized = %v, want structural dedup", got)
	}
	lr, err := ExecLogical(db, rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(lr.Trees); !reflect.DeepEqual(got, []string{"A:Same,Same"}) {
		t.Errorf("rewritten = %v, want both witnesses", got)
	}
	gb, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(gb.Trees); !reflect.DeepEqual(got, []string{"A:Same,Same"}) {
		t.Errorf("groupby = %v, want both witnesses", got)
	}
}

func TestExecutorsNoTemporaryPageLeak(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	before := db.NumPages()
	for i := 0; i < 3; i++ {
		if _, err := directMaterialized(db, spec, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := groupByExec(db, spec, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if after := db.NumPages(); after != before {
		t.Errorf("temporary pages leaked: %d -> %d", before, after)
	}
}

func TestExecutorsOnClosedDB(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument("d", xmltree.E("doc_root",
		xmltree.E("article", xmltree.Elem("author", "A"), xmltree.Elem("title", "T")))); err != nil {
		t.Fatal(err)
	}
	_, _, spec := plansFor(t, query1Src)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Every executor must surface the storage failure, not panic.
	if _, err := groupByExec(db, spec, Options{}); err == nil {
		t.Error("GroupByExec on closed db should fail")
	}
	if _, err := directMaterialized(db, spec, Options{}); err == nil {
		t.Error("DirectMaterialized on closed db should fail")
	}
	if _, err := directBatch(db, spec, Options{}); err == nil {
		t.Error("DirectBatch on closed db should fail")
	}
	if _, err := directNestedLoops(db, spec, Options{}); err == nil {
		t.Error("DirectNestedLoops on closed db should fail")
	}
	if _, err := groupByReplicating(db, spec, Options{}); err == nil {
		t.Error("GroupByReplicating on closed db should fail")
	}
}
