package exec

import (
	"sort"

	"timber/internal/pagestore"
	"timber/internal/storage"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// groupSortIter is the blocking GROUPBY operator: it drains its input,
// assigns each row its arrival order (the stable-sort tie-breaker),
// and sorts by (grouping value, member ordering value, arrival).
// Downstream operators see runs of equal grouping values — the groups
// — in ascending value order, exactly the sort of Sec. 5.3.
//
// Memory: with SortMemRows unset the sort is in-memory (identifier
// rows only; values were never materialized). With a budget, full
// buffers are sorted and spilled as encoded-row runs through the
// storage spool — the spilled pages compete with base data in the
// buffer pool, the TIMBER intermediate-collection cost model — and
// Next serves a k-way merge over the runs. Each run's cursor pins one
// pool frame for the duration of the merge, so the budget should be
// sized to keep the run count well below the pool size. Either path emits the
// byte-identical row order: the comparator is a total order (arrival
// breaks every tie).
type groupSortIter struct {
	child   Iterator
	db      storage.Reader
	ordVals func() map[xmltree.NodeID]string
	desc    bool
	memRows int
	counts  *opCounts

	opened bool
	ov     map[xmltree.NodeID]string
	buf    []Row
	// spill state
	spool   *storage.Spool
	runs    []*storage.SpoolRun
	cursors []*pagestore.HeapCursor
	heads   []Row
	headOk  []bool
	// in-memory serve state
	pos  int
	next int64 // arrival counter
	enc  []byte
}

func newGroupSort(child Iterator, db storage.Reader, ordVals func() map[xmltree.NodeID]string, desc bool, memRows int, counts *opCounts) *groupSortIter {
	return &groupSortIter{child: child, db: db, ordVals: ordVals, desc: desc, memRows: memRows, counts: counts}
}

// less is the total sort order: grouping value, then the member's
// ordering value under the requested direction, then arrival order.
func (g *groupSortIter) less(a, b *Row) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if g.ov != nil {
		c := tax.CompareValues(g.ov[a.Member.ID()], g.ov[b.Member.ID()])
		if g.desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return a.Ord < b.Ord
}

func (g *groupSortIter) Open() error {
	if g.opened {
		return nil
	}
	g.opened = true
	if err := g.child.Open(); err != nil {
		return err
	}
	if g.ordVals != nil {
		g.ov = g.ordVals()
	}
	b := getBatch(0)
	defer putBatch(b)
	for {
		if err := g.child.Next(b); err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			break
		}
		g.counts.in(len(b.Rows))
		// Bulk-append the batch, then stamp arrival orders in a second
		// pass — one grow decision per batch instead of per row.
		base := len(g.buf)
		g.buf = append(g.buf, b.Rows...)
		for i := base; i < len(g.buf); i++ {
			g.buf[i].Ord = g.next
			g.next++
		}
		if g.memRows > 0 && len(g.buf) >= g.memRows {
			if err := g.spillRun(); err != nil {
				return err
			}
		}
	}
	sort.Slice(g.buf, func(i, j int) bool { return g.less(&g.buf[i], &g.buf[j]) })
	if len(g.runs) > 0 {
		return g.openMerge()
	}
	return nil
}

// spillRun sorts the buffered rows and writes them as one run.
func (g *groupSortIter) spillRun() error {
	if g.spool == nil {
		g.spool = g.db.NewSpool()
	}
	sort.Slice(g.buf, func(i, j int) bool { return g.less(&g.buf[i], &g.buf[j]) })
	run, err := g.spool.NewRun()
	if err != nil {
		return err
	}
	for _, r := range g.buf {
		g.enc = encodeRow(g.enc[:0], r)
		if err := run.Append(g.enc); err != nil {
			return err
		}
	}
	g.runs = append(g.runs, run)
	g.buf = g.buf[:0]
	return nil
}

// openMerge opens a cursor per spilled run and primes the merge heads.
// The in-memory tail (already sorted) merges as run index len(runs).
func (g *groupSortIter) openMerge() error {
	k := len(g.runs)
	g.cursors = make([]*pagestore.HeapCursor, k)
	g.heads = make([]Row, k+1)
	g.headOk = make([]bool, k+1)
	for i, run := range g.runs {
		g.cursors[i] = run.Open()
		if err := g.advanceRun(i); err != nil {
			return err
		}
	}
	return g.advanceRun(k)
}

// advanceRun refills the merge head for run i (the last index is the
// in-memory tail).
func (g *groupSortIter) advanceRun(i int) error {
	if i == len(g.runs) {
		if g.pos < len(g.buf) {
			g.heads[i] = g.buf[g.pos]
			g.pos++
			g.headOk[i] = true
		} else {
			g.headOk[i] = false
		}
		return nil
	}
	rec, ok := g.cursors[i].Next()
	if !ok {
		g.headOk[i] = false
		return g.cursors[i].Err()
	}
	r, err := decodeRow(rec)
	if err != nil {
		return err
	}
	g.heads[i] = r
	g.headOk[i] = true
	return nil
}

func (g *groupSortIter) Next(b *Batch) error {
	b.Reset()
	if len(g.runs) == 0 {
		n := len(g.buf) - g.pos
		if room := cap(b.Rows) - len(b.Rows); n > room {
			n = room
		}
		b.Rows = append(b.Rows, g.buf[g.pos:g.pos+n]...)
		g.pos += n
	} else {
		for !b.full() {
			best := -1
			for i := range g.heads {
				if !g.headOk[i] {
					continue
				}
				if best < 0 || g.less(&g.heads[i], &g.heads[best]) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			b.Rows = append(b.Rows, g.heads[best])
			if err := g.advanceRun(best); err != nil {
				return err
			}
		}
	}
	g.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		g.counts.batch()
	}
	return nil
}

func (g *groupSortIter) Close() error {
	err := g.child.Close()
	for _, c := range g.cursors {
		if c == nil {
			continue
		}
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	g.cursors = nil
	if g.spool != nil {
		if serr := g.spool.Close(); err == nil {
			err = serr
		}
		g.spool = nil
	}
	return err
}
