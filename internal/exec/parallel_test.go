package exec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"timber/internal/dblpgen"
	"timber/internal/paperdata"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// The parallel executors must be invisible: any Parallelism setting
// yields byte-identical result trees, identical group order and
// identical ExecStats. These tests pin that property on hand-written,
// generated and randomized databases.

// multiDocDB loads several documents — the per-document partitioning
// of the structural joins and MatchDBPar only kicks in with more than
// one — built from the paper's sample plus generated DBLP slices.
func multiDocDB(t *testing.T, seeds ...int64) *storage.DB {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{PageSize: 2048, PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		root, _ := dblpgen.Generate(dblpgen.Config{Articles: 30, Seed: seed})
		if _, err := db.LoadDocument(fmt.Sprintf("dblp-%d.xml", i), root); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// serializeTrees renders result trees to one byte string for exact
// comparison (content, attribute and sibling order all included).
func serializeTrees(trees []*xmltree.Node) string {
	var out string
	for _, tr := range trees {
		out += xmltree.SerializeString(tr)
	}
	return out
}

func TestGroupByExecParallelEquivalence(t *testing.T) {
	db := multiDocDB(t, 7, 11, 13)
	for _, src := range []string{query1Src, queryCountSrc, queryOrderedSrc} {
		_, _, spec := plansFor(t, src)
		seq, err := groupByExec(db, spec, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4, 8, 0} {
			par, err := groupByExec(db, spec, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := serializeTrees(par.Trees), serializeTrees(seq.Trees); got != want {
				t.Errorf("%v p=%d: trees differ from sequential\ngot  %s\nwant %s", spec, p, got, want)
			}
			if par.Stats != seq.Stats {
				t.Errorf("%v p=%d: stats = %+v, want %+v", spec, p, par.Stats, seq.Stats)
			}
		}
	}
}

// TestGroupByExecParallelRandomized drives the same equivalence over
// randomized generated databases (shape and size vary with the seed).
func TestGroupByExecParallelRandomized(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 2048, PoolPages: 512})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		nDocs := 1 + rng.Intn(3)
		for d := 0; d < nDocs; d++ {
			root, _ := dblpgen.Generate(dblpgen.Config{
				Articles:             5 + rng.Intn(40),
				MaxAuthorsPerArticle: 1 + rng.Intn(4),
				Seed:                 rng.Int63(),
			})
			if _, err := db.LoadDocument(fmt.Sprintf("d%d.xml", d), root); err != nil {
				t.Fatal(err)
			}
		}
		_, _, spec := plansFor(t, query1Src)
		if rng.Intn(2) == 0 {
			spec.Mode = Count
		}
		seq, err := groupByExec(db, spec, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := groupByExec(db, spec, Options{Parallelism: 2 + rng.Intn(7)})
		if err != nil {
			t.Fatal(err)
		}
		return serializeTrees(par.Trees) == serializeTrees(seq.Trees) && par.Stats == seq.Stats
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestExecPhysicalParEquivalence(t *testing.T) {
	db := multiDocDB(t, 19, 23)
	for _, src := range []string{query1Src, queryCountSrc} {
		_, rewritten, _ := plansFor(t, src)
		seq, err := ExecPhysical(db, rewritten, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{4, 0} {
			par, err := ExecPhysical(db, rewritten, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := serializeTrees(par.Trees), serializeTrees(seq.Trees); got != want {
				t.Errorf("p=%d: physical plan output differs from sequential", p)
			}
		}
	}
}

// TestParallelStatsExact pins counter accuracy under concurrency: with
// a pool large enough to avoid eviction, the buffer-pool counters of a
// parallel run must equal the sequential run's exactly — every fetch
// counted once, every miss read once.
func TestParallelStatsExact(t *testing.T) {
	run := func(parallelism int) (ExecStats, interface{}) {
		db, err := storage.CreateTemp(storage.Options{PageSize: 2048, PoolPages: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
			t.Fatal(err)
		}
		root, _ := dblpgen.Generate(dblpgen.Config{Articles: 50, Seed: 42})
		if _, err := db.LoadDocument("dblp.xml", root); err != nil {
			t.Fatal(err)
		}
		_, _, spec := plansFor(t, query1Src)
		db.ResetStats()
		res, err := groupByExec(db, spec, Options{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats, db.Stats()
	}
	seqStats, seqPool := run(1)
	parStats, parPool := run(8)
	if parStats != seqStats {
		t.Errorf("exec stats: p=8 %+v, p=1 %+v", parStats, seqStats)
	}
	if parPool != seqPool {
		t.Errorf("pool stats: p=8 %+v, p=1 %+v", parPool, seqPool)
	}
}

// TestConcurrentReaders exercises the storage read paths — tag-index
// scans, path joins, record fetches, subtree reads — from many
// goroutines at once; run with -race this is the storage-layer
// thread-safety gate. (Whole executors stay single-flight because
// finishResult spills results through a shared temporary page region;
// only their internal read phases fan out.)
func TestConcurrentReaders(t *testing.T) {
	db := multiDocDB(t, 3)
	_, _, spec := plansFor(t, query1Src)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			done <- func() error {
				for i := 0; i < 5; i++ {
					members, err := db.TagPostings(spec.MemberTag)
					if err != nil {
						return err
					}
					pairs, err := pathPairs(nil, db, members, spec.JoinPath, 1+g%4, nil)
					if err != nil {
						return err
					}
					for _, p := range pairs[:min(len(pairs), 20)] {
						if _, err := db.Content(p.leaf); err != nil {
							return err
						}
					}
					if _, err := db.GetSubtree(members[g%len(members)].ID()); err != nil {
						return err
					}
				}
				return nil
			}()
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
