package exec

import (
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// Result is a physical execution's output plus its work counters.
type Result struct {
	// Trees are the materialized result elements (authorpubs...).
	Trees []*xmltree.Node
	// Stats counts the plan's work.
	Stats ExecStats
}

// ExecStats itemizes the data accesses a plan performed; buffer-pool
// effects are visible through storage.DB.Stats.
type ExecStats struct {
	// IndexPostings is the number of postings read from tag indices.
	IndexPostings int
	// ValueLookups counts node-record fetches performed to read element
	// contents — the "data value look-ups" the paper's analysis centres
	// on.
	ValueLookups int
	// LocatorProbes counts node-ID-to-record resolutions through the
	// locator index (navigation); identifier processing avoids these.
	LocatorProbes int
	// Groups is the number of output trees.
	Groups int
}

// groupByExec runs the TIMBER groupby plan (Sec. 5.3) as a streaming
// iterator pipeline over identifier-only batches:
//
//	exchange (per-document fragments, merged in document order)
//	  fragment: scan → select* (join path) → populate ─┐
//	            scan replay → select* (value path) ────┤→ merge-LOJ
//	→ groupsort (blocking: arrival-ordered total sort, spillable)
//	→ stitch (group boundaries)            [streaming]
//	→ aggregate (Count mode only)          [streaming]
//	→ late-materialize sink
//
// Only the sink reads output value content — and only in Titles mode;
// a count query finishes without a single output-value fetch ("we can
// perform the count without physically instantiating the elements").
// The populated grouping and ordering values (the early population
// Sec. 5.3 allows) are fetched inside the fragments, per batch.
//
// Groups are emitted in ascending grouping-value order, and the result
// trees, group order and ExecStats are byte-identical to
// groupByMaterialized for every parallelism and batch size: the
// exchange merges fragment rows in document order, the sort's
// comparator is a total order (arrival position breaks every tie), and
// each operator preserves its input's row order.
func groupByExec(db storage.Reader, spec Spec, o Options) (*Result, error) {
	if err := o.err(); err != nil {
		return nil, err
	}
	res := &Result{}
	sp := o.trace("exec: groupby")
	defer sp.End()
	bs := o.BatchSize
	ops := newOpSet()

	// Phase 1: parallel match. The exchange barrier is also the span
	// boundary — fragments never touch the tracer.
	ex := newExchange(db, spec, o.Ctx, o.workers(), bs, ops)
	exSp := sp.Child("exchange: match fragments")
	if err := ex.Open(); err != nil {
		exSp.End()
		return nil, err
	}
	exSp.Add("rows", int64(len(ex.rows)))
	exSp.Add("fragment_ops", int64(len(ops.order)))
	exSp.End()

	// Phase 2..4: sort, stitch, aggregate, materialize. The chain is
	// closed bottom-up through the root before the result spill below
	// (the sort's spill region shares the temporary-page latch with it).
	var ordVals func() map[xmltree.NodeID]string
	if spec.OrderPath != nil {
		ordVals = func() map[xmltree.NodeID]string { return ex.ord }
	}
	gs := newGroupSort(ex, db, ordVals, spec.OrderDesc, o.SortMemRows, ops.get("sort: witnesses"))
	var top Iterator = newStitch(gs, bs, ops.get("stitch: group boundaries"))
	if spec.Mode == Count {
		top = newAggregate(top, bs, ops.get("aggregate: group counts"))
	}

	sortSp := sp.Child("sort: witnesses")
	err := gs.Open()
	sortSp.Add("witnesses", gs.counts.rowsIn)
	if gs.spool != nil {
		sortSp.Add("spilled_runs", int64(len(gs.runs)))
	}
	sortSp.End()
	if err != nil {
		top.Close()
		return nil, err
	}

	matSp := sp.Child("materialize: groups")
	snk := newSink(db, spec, o.Ctx, o.MaxMaterializeBytes)
	err = snk.drain(top, bs)
	if cerr := top.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		matSp.End()
		return nil, err
	}
	matSp.Add("groups", int64(len(snk.trees)))
	matSp.Add("value_lookups", int64(snk.looks))
	matSp.End()

	res.Trees = snk.trees
	res.Stats = ex.stats
	res.Stats.ValueLookups += snk.looks

	// Per-operator report spans: rows in/out and batch counts for every
	// operator of the run, aggregated across fragments. The spans carry
	// no counter deltas of their own (they open and close immediately on
	// the orchestrating goroutine), so trace verification still holds.
	for _, c := range ops.all() {
		opSp := sp.Child("op: " + c.name)
		opSp.Add("rows_in", c.rowsIn)
		opSp.Add("rows_out", c.rowsOut)
		opSp.Add("batches", c.batches)
		opSp.End()
	}

	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}
