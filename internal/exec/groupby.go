package exec

import (
	"sort"
	"strconv"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// Result is a physical execution's output plus its work counters.
type Result struct {
	// Trees are the materialized result elements (authorpubs...).
	Trees []*xmltree.Node
	// Stats counts the plan's work.
	Stats ExecStats
}

// ExecStats itemizes the data accesses a plan performed; buffer-pool
// effects are visible through storage.DB.Stats.
type ExecStats struct {
	// IndexPostings is the number of postings read from tag indices.
	IndexPostings int
	// ValueLookups counts node-record fetches performed to read element
	// contents — the "data value look-ups" the paper's analysis centres
	// on.
	ValueLookups int
	// LocatorProbes counts node-ID-to-record resolutions through the
	// locator index (navigation); identifier processing avoids these.
	LocatorProbes int
	// Groups is the number of output trees.
	Groups int
}

// GroupByExec runs the TIMBER groupby plan (Sec. 5.3):
//
//  1. The pattern-tree match — members, the join path and the value
//     path — is computed from indices alone, as witness pairs of node
//     identifiers.
//  2. Only the grouping-basis values are populated: one record fetch
//     per witness, by RID, in document order.
//  3. Witnesses are sorted by (grouping value, witness order); runs of
//     equal values are the groups.
//  4. Output is populated lazily: title contents are fetched only in
//     Titles mode, and counts are computed from node identifiers alone
//     ("we can perform the count without physically instantiating the
//     elements").
//
// Groups are emitted in ascending grouping-value order — the order the
// sort of Sec. 5.3 produces (the logical GroupBy's first-appearance
// order differs; see the package tests).
func GroupByExec(db *storage.DB, spec Spec) (*Result, error) {
	res := &Result{}

	// Step 1: identifier-only pattern match.
	members, err := db.TagPostings(spec.MemberTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(members)
	witnesses, err := pathPairs(db, members, spec.JoinPath)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(witnesses)

	valuePairs, err := pathPairs(db, members, spec.ValuePath)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(valuePairs)
	valuesOf := groupPairsByMember(valuePairs)

	// Step 2: populate only the grouping values, in document order.
	type witness struct {
		member storage.Posting
		value  string
		seq    int
	}
	ws := make([]witness, len(witnesses))
	for i, p := range witnesses {
		v, err := db.Content(p.leaf)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		ws[i] = witness{member: p.member, value: v, seq: i}
	}

	// Step 3: sort by value; the ordering-list values (populated on
	// identifiers like the grouping values, per Sec. 5.3) order members
	// within a group, and witness order breaks remaining ties.
	if spec.OrderPath != nil {
		ov, err := orderValues(db, members, spec.OrderPath, res)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(ws, func(i, j int) bool {
			if ws[i].value != ws[j].value {
				return ws[i].value < ws[j].value
			}
			return orderLess(ov[ws[i].member.ID()], ov[ws[j].member.ID()], spec.OrderDesc)
		})
	} else {
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].value < ws[j].value })
	}

	// Step 4: emit one tree per run of equal values.
	basisTag := spec.BasisTag()
	for i := 0; i < len(ws); {
		j := i
		for j < len(ws) && ws[j].value == ws[i].value {
			j++
		}
		out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, ws[i].value))
		switch spec.Mode {
		case Titles:
			for _, w := range ws[i:j] {
				for _, tp := range valuesOf[w.member.ID()] {
					content, err := db.Content(tp)
					if err != nil {
						return nil, err
					}
					res.Stats.ValueLookups++
					out.Append(xmltree.Elem(spec.ValuePath.LastTag(), content))
				}
			}
		case Count:
			total := 0
			for _, w := range ws[i:j] {
				total += len(valuesOf[w.member.ID()])
			}
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
		}
		res.Trees = append(res.Trees, out)
		i = j
	}
	if err := finishResult(db, res); err != nil {
		return nil, err
	}
	return res, nil
}
