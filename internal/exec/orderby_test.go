package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

// The ordered Query 1 variant: titles per author, each author's titles
// DESCENDING — the ordering of Figure 3.
const queryOrderedSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    ORDER BY $b/title DESCENDING
    RETURN $b/title
  }
</authorpubs>`

const queryOrderedByYearSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    ORDER BY $b/year
    RETURN $b/title
  }
</authorpubs>`

func TestOrderBySpec(t *testing.T) {
	_, _, spec := plansFor(t, queryOrderedSrc)
	if !reflect.DeepEqual(spec.OrderPath, ChildPath("title")) || !spec.OrderDesc {
		t.Errorf("spec order = %v desc=%v", spec.OrderPath, spec.OrderDesc)
	}
	_, _, specY := plansFor(t, queryOrderedByYearSrc)
	if !reflect.DeepEqual(specY.OrderPath, ChildPath("year")) || specY.OrderDesc {
		t.Errorf("year spec order = %v desc=%v", specY.OrderPath, specY.OrderDesc)
	}
}

func TestOrderByDescendingTitles(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, queryOrderedSrc)
	res, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Jack's titles descending: "XML and the Web" > "Querying XML".
	want := []string{
		"Jack:XML and the Web,Querying XML",
		"Jill:XML and the Web",
		"John:Querying XML,Hack HTML",
	}
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("ordered groupby = %v, want %v", got, want)
	}
}

func TestOrderByYearAscending(t *testing.T) {
	// Years force a numeric sort that differs from document order.
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", el("author", "A"), el("title", "newest"), el("year", "2001")),
		e("article", el("author", "A"), el("title", "oldest"), el("year", "1989")),
		e("article", el("author", "A"), el("title", "middle"), el("year", "1995")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	naive, rewritten, spec := plansFor(t, queryOrderedByYearSrc)

	want := []string{"A:oldest,middle,newest"}
	gb, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(gb.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("groupby by year = %v, want %v", got, want)
	}
	// Logical naive and rewritten agree.
	ln, err := ExecLogical(db, naive)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(ln.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("logical naive by year = %v, want %v", got, want)
	}
	lr, err := ExecLogical(db, rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(lr.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("logical rewritten by year = %v, want %v", got, want)
	}
}

// TestOrderByAllPlansAgreeProperty extends the central equivalence to
// ordered queries: every plan produces identically ordered members.
func TestOrderByAllPlansAgreeProperty(t *testing.T) {
	naive, rewritten, spec := plansFor(t, queryOrderedSrc)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
		if err != nil {
			return false
		}
		defer db.Close()
		root := xmltree.E("doc_root")
		n := rng.Intn(10) + 1
		order := rng.Perm(n)
		for i := 0; i < n; i++ {
			art := xmltree.E("article")
			perm := rng.Perm(5)
			for a := 0; a < rng.Intn(3)+1; a++ {
				art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", perm[a])))
			}
			// Exactly one title, unique per article (a random but
			// distinct sort key): with duplicate titles two articles
			// can be char-identical, where the naive plan's structural
			// dedup legitimately diverges from the witness-based plans
			// (see TestStructuralDedupCaveat).
			art.Append(xmltree.Elem("title", fmt.Sprintf("T%02d", order[i])))
			root.Append(art)
		}
		if _, err := db.LoadDocument("bib.xml", root); err != nil {
			return false
		}

		ln, err := ExecLogical(db, naive)
		if err != nil {
			return false
		}
		lr, err := ExecLogical(db, rewritten)
		if err != nil {
			return false
		}
		nRows := rows(ln.Trees)
		if !reflect.DeepEqual(sorted(rows(lr.Trees)), sorted(nRows)) {
			return false
		}
		for _, strat := range []Strategy{
			StrategyDirect, StrategyDirectNested, StrategyDirectBatch, StrategyGroupBy, StrategyReplicating,
		} {
			spec := spec
			spec.Strategy = strat
			res, err := Run(db, spec, Options{})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(sorted(rows(res.Trees)), sorted(nRows)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOrderByRewriteCarriesOrderingList(t *testing.T) {
	_, rewritten, _ := plansFor(t, queryOrderedSrc)
	var gb *plan.GroupBy
	cur := rewritten.(*plan.Stitch).Parts[0].Op
	for cur != nil {
		if g, ok := cur.(*plan.GroupBy); ok {
			gb = g
			break
		}
		ins := cur.Inputs()
		if len(ins) == 0 {
			break
		}
		cur = ins[0]
	}
	if gb == nil {
		t.Fatal("no groupby")
	}
	if len(gb.Ordering) != 1 {
		t.Fatalf("ordering list = %v", gb.Ordering)
	}
	ordNode := gb.Pattern.NodeByLabel(gb.Ordering[0].Label)
	if ordNode == nil || ordNode.TagConstraint() != "title" {
		t.Errorf("ordering label resolves to %v", ordNode)
	}
}

func TestOrderByParseRestrictions(t *testing.T) {
	cases := []string{
		// Two keys.
		`FOR $a IN distinct-values(document("d")//author)
		 RETURN <x>{$a}{FOR $b IN document("d")//article WHERE $a = $b/author ORDER BY $b/title, $b/year RETURN $b/title}</x>`,
		// Key not on the inner variable.
		`FOR $a IN distinct-values(document("d")//author)
		 RETURN <x>{$a}{FOR $b IN document("d")//article WHERE $a = $b/author ORDER BY $a RETURN $b/title}</x>`,
		// Descendant step in the key.
		`FOR $a IN distinct-values(document("d")//author)
		 RETURN <x>{$a}{FOR $b IN document("d")//article WHERE $a = $b/author ORDER BY $b//title RETURN $b/title}</x>`,
	}
	for i, src := range cases {
		e, err := xq.Parse(src)
		if err != nil {
			t.Fatalf("case %d should parse: %v", i, err)
		}
		if _, err := plan.Translate(e); err == nil {
			t.Errorf("case %d should fail translation", i)
		}
	}
}
