package exec

import (
	"errors"
	"fmt"
	"testing"

	"timber/internal/dblpgen"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// The streaming iterator executor must be invisible: for every corpus
// query, every parallelism and every batch size, groupByExec produces
// byte-identical trees and identical ExecStats to the materializing
// reference executor it replaced (groupByMaterialized, strategy
// "groupby-mat"). These tests pin that equivalence, including under
// sort spilling and the materialization budget.

// streamCorpus is every groupby query shape the package tests cover:
// titles, count, ascending and descending ordering lists.
var streamCorpus = []struct {
	name string
	src  string
}{
	{"titles", query1Src},
	{"count", queryCountSrc},
	{"ordered-desc", queryOrderedSrc},
	{"ordered-year", queryOrderedByYearSrc},
}

func assertStreamEqual(t *testing.T, db *storage.DB, spec Spec, label string) {
	t.Helper()
	want, err := groupByMaterialized(db, spec, Options{})
	if err != nil {
		t.Fatalf("%s: materialized: %v", label, err)
	}
	wantBytes := serializeTrees(want.Trees)
	for _, p := range []int{1, 4} {
		for _, bs := range []int{0, 1, 3} {
			got, err := groupByExec(db, spec, Options{Parallelism: p, BatchSize: bs})
			if err != nil {
				t.Fatalf("%s p=%d bs=%d: %v", label, p, bs, err)
			}
			if gotBytes := serializeTrees(got.Trees); gotBytes != wantBytes {
				t.Errorf("%s p=%d bs=%d: trees differ\ngot  %s\nwant %s", label, p, bs, gotBytes, wantBytes)
			}
			if got.Stats != want.Stats {
				t.Errorf("%s p=%d bs=%d: stats = %+v, want %+v", label, p, bs, got.Stats, want.Stats)
			}
		}
	}
}

func TestStreamingMatchesMaterializedCorpus(t *testing.T) {
	db := multiDocDB(t, 7, 11, 13)
	for _, q := range streamCorpus {
		_, _, spec := plansFor(t, q.src)
		assertStreamEqual(t, db, spec, q.name)
	}
}

func TestStreamingMatchesMaterializedDescendant(t *testing.T) {
	_, _, spec := plansFor(t, queryDescSrc)
	for seed := int64(1); seed <= 4; seed++ {
		db, _ := deepDB(t, seed)
		assertStreamEqual(t, db, spec, fmt.Sprintf("descendant seed=%d", seed))
		db.Close()
	}
}

func TestStreamingMatchesMaterializedTwoStepPath(t *testing.T) {
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	_, _, spec := plansFor(t, src)
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", e("author", el("institution", "UM")).Text("Jack"), el("title", "T1")),
		e("article", e("author", el("institution", "UBC")).Text("Jill"), el("title", "T2")),
		e("article", e("author", el("institution", "UM")).Text("Jag"), el("title", "T3")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	assertStreamEqual(t, db, spec, "institution")
}

// TestStreamingSpillEquivalence is the blocking-operator spill
// regression: a GROUPBY over a collection larger than the buffer pool,
// with a sort budget small enough to force many spilled runs, must be
// byte-identical to the in-memory sort and to the materializing
// executor — and must give every temporary page back.
func TestStreamingSpillEquivalence(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		root, _ := dblpgen.Generate(dblpgen.Config{Articles: 60, Seed: int64(100 + i)})
		if _, err := db.LoadDocument(fmt.Sprintf("dblp-%d.xml", i), root); err != nil {
			t.Fatal(err)
		}
	}
	if pages, pool := db.NumPages(), uint32(32); pages <= pool {
		t.Fatalf("collection (%d pages) does not exceed the pool (%d pages)", pages, pool)
	}
	for _, q := range streamCorpus {
		_, _, spec := plansFor(t, q.src)
		want, err := groupByMaterialized(db, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		inMem, err := groupByExec(db, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		before := db.NumPages()
		// Each spilled run pins one pool frame during the k-way merge,
		// so the budget is chosen to yield a handful of runs, not one
		// per few rows.
		spilled, err := groupByExec(db, spec, Options{SortMemRows: 64, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		if after := db.NumPages(); after != before {
			t.Errorf("%s: spill leaked pages: %d -> %d", q.name, before, after)
		}
		wantBytes := serializeTrees(want.Trees)
		if got := serializeTrees(inMem.Trees); got != wantBytes {
			t.Errorf("%s: in-memory streaming differs from materialized", q.name)
		}
		if got := serializeTrees(spilled.Trees); got != wantBytes {
			t.Errorf("%s: spilled streaming differs from materialized", q.name)
		}
		if inMem.Stats != want.Stats || spilled.Stats != want.Stats {
			t.Errorf("%s: stats diverge: mat=%+v mem=%+v spill=%+v", q.name, want.Stats, inMem.Stats, spilled.Stats)
		}
	}
}

// TestMaterializeLimit pins the -maxmem backend: a budget too small
// for the output fails with ErrMaterializeLimit and no result; a
// sufficient budget changes nothing; and a count query fits in a
// budget far below its title volume because it never materializes
// title values.
func TestMaterializeLimit(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	res, err := groupByExec(db, spec, Options{MaxMaterializeBytes: 1})
	if !errors.Is(err, ErrMaterializeLimit) {
		t.Fatalf("limit 1: err = %v, want ErrMaterializeLimit", err)
	}
	if res != nil {
		t.Fatalf("limit 1: partial result returned: %+v", res)
	}
	unlimited, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := groupByExec(db, spec, Options{MaxMaterializeBytes: 1 << 20})
	if err != nil {
		t.Fatalf("generous limit: %v", err)
	}
	if serializeTrees(capped.Trees) != serializeTrees(unlimited.Trees) {
		t.Error("generous limit changed the result")
	}

	// The count query's only materialized bytes are the three author
	// keys — a budget far below the title volume suffices.
	_, _, countSpec := plansFor(t, queryCountSrc)
	if _, err := groupByExec(db, countSpec, Options{MaxMaterializeBytes: 16}); err != nil {
		t.Errorf("count under tight budget: %v", err)
	}
}

func TestGroupByMatStrategy(t *testing.T) {
	s, err := ParseStrategy("groupby-mat")
	if err != nil || s != StrategyGroupByMat {
		t.Fatalf("ParseStrategy = %v, %v", s, err)
	}
	if s.String() != "groupby-mat" {
		t.Errorf("String = %q", s.String())
	}
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	spec.Strategy = StrategyGroupByMat
	res, err := Run(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 3 {
		t.Errorf("groups = %d, want 3", len(res.Trees))
	}
}
