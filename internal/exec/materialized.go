package exec

import (
	"strconv"

	"timber/internal/storage"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// DirectMaterialized is the physical form of the Sec. 4.1 naive plan —
// the paper's "direct" evaluation (Sec. 6): the query is executed as
// written, operator by operator, with every intermediate collection
// materialized through the storage engine:
//
//  1. The outer selection/projection produces the Figure 7 collection
//     (one doc_root/author tree per author node, values fetched), which
//     is written to temporary pages and read back; duplicate
//     elimination by content follows, spilled again.
//  2. The left outer join produces the Figure 8 collection: one
//     TAX_prod_root tree per distinct author holding the author tree
//     plus a fully materialized copy of every matching article — a
//     two-author article is replicated under both its authors. This is
//     the dominant cost: each membership materializes the article's
//     whole subtree, and the trees are spilled.
//  3. The RETURN arguments are evaluated against the materialized
//     product trees (titles are already present in the replicas) and
//     stitched into the output.
//
// Output order matches the logical naive plan: distinct values in
// first-occurrence order, members in document order.
func directMaterialized(db storage.Reader, spec Spec, o Options) (*Result, error) {
	res := &Result{}
	basisTag := spec.BasisTag()
	sp := o.trace("exec: direct materialized")
	defer sp.End()

	// Step 1: outer selection + projection (Figure 7), materialized.
	outerSp := sp.Child("materialize: outer selection")
	outerPosts, err := db.TagPostings(basisTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(outerPosts)
	outer := make([]*xmltree.Node, 0, len(outerPosts))
	for _, p := range outerPosts {
		if err := o.err(); err != nil {
			return nil, err
		}
		v, err := db.Content(p)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		outer = append(outer, xmltree.E("doc_root", xmltree.Elem(basisTag, v)))
	}
	outer, err = db.SpillTrees(outer)
	if err != nil {
		return nil, err
	}
	// Duplicate elimination based on the bound variable's content.
	var distinct []*xmltree.Node
	seen := map[string]bool{}
	for _, tr := range outer {
		v := tr.Children[0].Content
		if seen[v] {
			continue
		}
		seen[v] = true
		distinct = append(distinct, tr)
	}
	distinct, err = db.SpillTrees(distinct)
	if err != nil {
		return nil, err
	}
	outerSp.Add("postings", int64(len(outerPosts)))
	outerSp.Add("value_lookups", int64(len(outerPosts)))
	outerSp.Add("distinct", int64(len(distinct)))
	outerSp.End()

	// Step 2: the left outer join (Figure 8). Identify member/value
	// pairs from the indices, look up the join values, then build one
	// product tree per outer tree with fully materialized member
	// replicas.
	joinSp := sp.Child("sjoin: join path")
	members, err := db.TagPostings(spec.MemberTag)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(members)
	joinSp.Add("postings", int64(len(members)))
	pairs, err := pathPairs(o.Ctx, db, members, spec.JoinPath, o.workers(), joinSp)
	joinSp.End()
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(pairs)
	byValue := map[string][]storage.Posting{}
	dedup := map[string]map[xmltree.NodeID]bool{}
	for _, w := range pairs {
		if err := o.err(); err != nil {
			return nil, err
		}
		v, err := db.Content(w.leaf)
		if err != nil {
			return nil, err
		}
		res.Stats.ValueLookups++
		if dedup[v] == nil {
			dedup[v] = map[xmltree.NodeID]bool{}
		}
		if dedup[v][w.member.ID()] {
			continue // duplicate elimination based on the members
		}
		dedup[v][w.member.ID()] = true
		byValue[v] = append(byValue[v], w.member)
	}

	prodSp := sp.Child("materialize: product trees")
	lookupsBefore := res.Stats.ValueLookups
	prods := make([]*xmltree.Node, 0, len(distinct))
	for _, tr := range distinct {
		// The product-tree loop is the dominant record-fetch phase of
		// this plan; probe once per outer tree.
		if err := o.err(); err != nil {
			return nil, err
		}
		v := tr.Children[0].Content
		prod := xmltree.E(tax.ProdRootTag, tr.Clone())
		// "Duplicate elimination based on articles" is structural in
		// the naive algebra (plan.DedupChildren): two char-identical
		// replicas collapse even when they materialize distinct nodes.
		replicaSeen := map[string]bool{}
		for _, m := range byValue[v] {
			replica, err := db.GetSubtree(m.ID())
			if err != nil {
				return nil, err
			}
			res.Stats.LocatorProbes++
			res.Stats.ValueLookups += replica.Size()
			if k := tax.TreeKey(replica); replicaSeen[k] {
				continue
			} else {
				replicaSeen[k] = true
			}
			prod.Append(replica)
		}
		prods = append(prods, prod)
	}
	prods, err = db.SpillTrees(prods)
	if err != nil {
		return nil, err
	}
	prodSp.Add("product_trees", int64(len(prods)))
	prodSp.Add("value_lookups", int64(res.Stats.ValueLookups-lookupsBefore))
	prodSp.Add("locator_probes", int64(res.Stats.LocatorProbes))
	prodSp.End()

	// Step 3: RETURN arguments against the materialized product trees,
	// stitched under the output tag. An ORDER BY sorts each product
	// tree's member replicas first.
	retSp := sp.Child("eval: RETURN arguments")
	valueTag := spec.ValuePath.LastTag()
	for _, prod := range prods {
		if spec.OrderPath != nil && len(prod.Children) > 1 {
			members := prod.Children[1:]
			sortTreesByPathInPlace(members, spec.OrderPath, spec.OrderDesc)
		}
		out := xmltree.E(spec.OutTag, xmltree.Elem(basisTag, prod.Children[0].Children[0].Content))
		total := 0
		for _, child := range prod.Children[1:] {
			for _, v := range valuesAtPath(child, spec.ValuePath) {
				if spec.Mode == Titles {
					out.Append(xmltree.Elem(valueTag, v))
				} else {
					total++
				}
			}
		}
		if spec.Mode == Count {
			out.Append(xmltree.Elem("count", strconv.Itoa(total)))
		}
		res.Trees = append(res.Trees, out)
	}
	retSp.Add("groups", int64(len(res.Trees)))
	retSp.End()
	if err := finishResult(db, res, sp); err != nil {
		return nil, err
	}
	return res, nil
}
