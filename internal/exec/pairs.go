package exec

import (
	"context"
	"sort"

	"timber/internal/obs"
	"timber/internal/sjoin"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// pair binds a member element to one match of a relative path inside
// it. Pattern matching yields pairs "in terms of node identifiers,
// obtained from the index look up" (Sec. 5.2): both postings come from
// the tag index and no node record is touched.
type pair struct {
	member storage.Posting
	leaf   storage.Posting
}

// pathPairs computes, index-only, all (member, leaf) pairs where leaf
// is reached from a member element by the given child-step path. Pairs
// are in document order of (member, leaf). The ancestor side of each
// step join uses the previous step's distinct leaves, so the whole path
// costs one tag-index scan plus one single-pass structural join per
// step. The joins partition by document and run on up to workers
// goroutines; the output is identical for any worker count.
//
// When sp is non-nil, each step becomes a child span carrying the
// step's posting scan, join input/output and surviving-pair counts.
// Steps run sequentially on the calling goroutine, so the spans nest
// without synchronization. A non-nil ctx cancels between steps and
// inside each step's per-document join pool.
func pathPairs(ctx context.Context, db storage.Reader, members []storage.Posting, path Path, workers int, sp *obs.Span) ([]pair, error) {
	cur := make([]pair, len(members))
	for i, m := range members {
		cur[i] = pair{member: m, leaf: m}
	}
	for _, st := range path {
		stepSp := sp.Child("sjoin: step " + st.Tag)
		next, err := db.TagPostings(st.Tag)
		if err != nil {
			stepSp.End()
			return nil, err
		}
		stepSp.Add("postings", int64(len(next)))
		axis := sjoin.ParentChild
		if st.Descendant {
			axis = sjoin.AncestorDescendant
		}
		var jm *sjoin.Metrics
		if stepSp != nil {
			jm = &sjoin.Metrics{}
		}
		cur, err = stepJoin(ctx, cur, next, axis, workers, jm)
		if err != nil {
			stepSp.End()
			return nil, err
		}
		if jm != nil {
			stepSp.Add("join_inputs", jm.Ancestors.Load()+jm.Descendants.Load())
			stepSp.Add("join_pairs", jm.Pairs.Load())
		}
		stepSp.Add("pairs", int64(len(cur)))
		stepSp.End()
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

// stepJoin extends each pair's leaf by one structural step into the
// candidate postings.
func stepJoin(ctx context.Context, cur []pair, cands []storage.Posting, axis sjoin.Axis, workers int, jm *sjoin.Metrics) ([]pair, error) {
	// Distinct, sorted current leaves form the ancestor list.
	leaves := make([]storage.Posting, 0, len(cur))
	seen := map[xmltree.NodeID]bool{}
	for _, p := range cur {
		id := p.leaf.ID()
		if !seen[id] {
			seen[id] = true
			leaves = append(leaves, p.leaf)
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].ID().Less(leaves[j].ID()) })

	aIvs := make([]xmltree.Interval, len(leaves))
	for i, l := range leaves {
		aIvs[i] = l.Interval
	}
	dIvs := make([]xmltree.Interval, len(cands))
	for i, c := range cands {
		dIvs[i] = c.Interval
	}
	joined, err := sjoin.StackTreeParM(ctx, aIvs, dIvs, axis, workers, jm)
	if err != nil {
		return nil, err
	}

	children := map[xmltree.NodeID][]storage.Posting{}
	for _, pr := range joined {
		id := leaves[pr.A].ID()
		children[id] = append(children[id], cands[pr.D])
	}
	var out []pair
	for _, p := range cur {
		for _, c := range children[p.leaf.ID()] {
			out = append(out, pair{member: p.member, leaf: c})
		}
	}
	return out, nil
}

// groupPairsByMember turns pairs into a member-ID-keyed multimap,
// preserving leaf document order per member.
func groupPairsByMember(pairs []pair) map[xmltree.NodeID][]storage.Posting {
	m := map[xmltree.NodeID][]storage.Posting{}
	for _, p := range pairs {
		m[p.member.ID()] = append(m[p.member.ID()], p.leaf)
	}
	return m
}
