package exec

import (
	"context"
	"sort"

	"timber/internal/obs"
	"timber/internal/par"
	"timber/internal/storage"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// This file implements ORDER BY support across the physical plans: the
// GROUPBY ordering list (Sec. 3) orders each group's members, and
// Sec. 5.3 notes that the sorting-list values are populated alongside
// the grouping values, still on identifiers.

// orderValues fetches, for every distinct member among the postings,
// the member's ordering value: the content of the first order-path
// match. Members without a match are absent from the map (they sort
// with the empty key by convention, matching the logical operator).
// The selection of each member's first (document-order) match is
// sequential and deterministic; only the value fetches fan out over
// the worker pool.
func orderValues(ctx context.Context, db storage.Reader, members []storage.Posting, path Path, res *Result, workers int, sp *obs.Span) (map[xmltree.NodeID]string, error) {
	ordSp := sp.Child("populate: ordering values")
	defer ordSp.End()
	pairs, err := pathPairs(ctx, db, members, path, workers, ordSp)
	if err != nil {
		return nil, err
	}
	res.Stats.IndexPostings += len(pairs)
	var firsts []pair
	seen := map[xmltree.NodeID]bool{}
	for _, p := range pairs {
		id := p.member.ID()
		if seen[id] {
			continue // keep the first (document-order) match
		}
		seen[id] = true
		firsts = append(firsts, p)
	}
	values := make([]string, len(firsts))
	if err := par.Do(ctx, len(firsts), workers, func(i int) error {
		v, err := db.Content(firsts[i].leaf)
		if err != nil {
			return err
		}
		values[i] = v
		return nil
	}); err != nil {
		return nil, err
	}
	res.Stats.ValueLookups += len(firsts)
	ordSp.Add("value_lookups", int64(len(firsts)))
	out := make(map[xmltree.NodeID]string, len(firsts))
	for i, p := range firsts {
		out[p.member.ID()] = values[i]
	}
	return out, nil
}

// orderLess compares two ordering keys under the requested direction.
func orderLess(a, b string, desc bool) bool {
	cmp := tax.CompareValues(a, b)
	if desc {
		cmp = -cmp
	}
	return cmp < 0
}

// sortPostingsByOrder stably sorts member postings by their ordering
// values.
func sortPostingsByOrder(members []storage.Posting, ov map[xmltree.NodeID]string, desc bool) {
	sort.SliceStable(members, func(i, j int) bool {
		return orderLess(ov[members[i].ID()], ov[members[j].ID()], desc)
	})
}

// sortTreesByPathInPlace reorders the member trees (in their slots) by
// the first value at the member-relative path; trees without a match
// keep their positions, mirroring plan.SortChildrenByPath.
func sortTreesByPathInPlace(trees []*xmltree.Node, path Path, desc bool) {
	type keyed struct {
		node *xmltree.Node
		key  string
	}
	var slots []int
	var matched []keyed
	for i, tr := range trees {
		if vs := valuesAtPath(tr, path); len(vs) > 0 {
			slots = append(slots, i)
			matched = append(matched, keyed{node: tr, key: vs[0]})
		}
	}
	sort.SliceStable(matched, func(i, j int) bool {
		return orderLess(matched[i].key, matched[j].key, desc)
	})
	for i, slot := range slots {
		trees[slot] = matched[i].node
	}
}
