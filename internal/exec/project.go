package exec

import (
	"timber/internal/storage"
)

// populateIter is the projection operator of the streaming pipeline:
// it projects each row's Aux identifier to its content, storing it in
// Key — the one early population Sec. 5.3 allows (grouping and
// sorting values), done per batch through the batched
// late-materialization API so same-page postings share a fetch. Rows
// pass through otherwise unchanged; no other content is touched.
type populateIter struct {
	child  Iterator
	db     storage.Reader
	counts *opCounts

	opened bool
	ps     []storage.Posting
	vals   []string
}

func newPopulate(child Iterator, db storage.Reader, counts *opCounts) *populateIter {
	return &populateIter{child: child, db: db, counts: counts}
}

func (p *populateIter) Open() error {
	if p.opened {
		return nil
	}
	p.opened = true
	return p.child.Open()
}

func (p *populateIter) Next(b *Batch) error {
	if err := p.child.Next(b); err != nil {
		return err
	}
	if len(b.Rows) == 0 {
		return nil
	}
	p.ps = p.ps[:0]
	for _, r := range b.Rows {
		p.ps = append(p.ps, r.Aux)
	}
	if cap(p.vals) < len(p.ps) {
		p.vals = make([]string, len(p.ps))
	}
	p.vals = p.vals[:len(p.ps)]
	if err := p.db.ContentsBatch(p.ps, p.vals); err != nil {
		return err
	}
	for i := range b.Rows {
		b.Rows[i].Key = p.vals[i]
	}
	p.counts.in(len(b.Rows))
	p.counts.out(len(b.Rows))
	p.counts.batch()
	return nil
}

func (p *populateIter) Close() error { return p.child.Close() }
