package exec

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"

	"timber/internal/pagestore"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// This file defines the streaming executor's data plane: fixed-size
// batches of identifier-only rows flowing through pull-based operator
// iterators (Sec. 5.3's "identifier-only processing with late value
// materialization", in Volcano form). A Row never carries node content
// except the populated grouping value — output values are fetched by
// the late-materialize sink, only for rows that survive to output.

// rowKind tags a row's role in the stream. Binding rows flow through
// the match pipeline; group and count rows appear only downstream of
// the stitching/aggregation operators, shaping the output.
type rowKind uint8

const (
	// rowBinding is a (member, aux) identifier pair: aux is the current
	// path position (a grouping-basis leaf, a value leaf, ...).
	rowBinding rowKind = iota
	// rowGroup opens a new output group; Key holds the grouping value.
	rowGroup
	// rowCount carries a group's aggregate; Ord holds the count.
	rowCount
)

// Row is one identifier-only tuple. Postings are node identifiers plus
// record locations — no content. Key is the populated grouping value
// (the one value Sec. 5.3 populates early); Ord is the row's global
// arrival order, the sort's final tie-breaker.
type Row struct {
	Kind   rowKind
	Member storage.Posting
	Aux    storage.Posting
	HasAux bool
	Key    string
	Ord    int64
}

// Batch is a reusable fixed-capacity slice of rows. Operators fill the
// caller's batch up to capacity; an empty batch after Next signals
// end-of-stream.
type Batch struct {
	Rows []Row
}

// defaultBatchSize is the rows-per-batch default; Options.BatchSize
// overrides it.
const defaultBatchSize = 256

func newBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = defaultBatchSize
	}
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// batchPool recycles row slices across operators and exchange
// fragments. Reuse is strictly capacity-exact: a pooled batch whose
// slice does not match the requested capacity gets a fresh slice
// rather than a resized one, so batch-count telemetry (and therefore
// result byte-identity across parallelism levels) never depends on
// what happened to be in the pool.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = defaultBatchSize
	}
	b := batchPool.Get().(*Batch)
	if cap(b.Rows) != capacity {
		b.Rows = make([]Row, 0, capacity)
	}
	return b
}

// putBatch zeroes the rows — dropping key-string and posting
// references so pooled memory doesn't pin them — and returns the batch
// for reuse.
func putBatch(b *Batch) {
	rows := b.Rows[:cap(b.Rows)]
	clear(rows)
	b.Rows = rows[:0]
	batchPool.Put(b)
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

func (b *Batch) full() bool { return len(b.Rows) == cap(b.Rows) }

// Iterator is the physical-operator interface of the streaming
// executor: a pull-based Volcano iterator over ID batches. Open
// prepares the operator (opening its inputs first; Open is
// idempotent, so a driver may also open lower stages explicitly to
// attribute their work to a trace span). Next fills the caller's batch
// with up to cap(b.Rows) rows; an empty batch means the stream is
// exhausted. Close releases resources (cursors, spill regions) and is
// idempotent; it must be called on every opened iterator, including
// after errors.
type Iterator interface {
	Open() error
	Next(b *Batch) error
	Close() error
}

// opCounts is the per-operator observability record: rows in, rows
// out and batches produced. Fragment copies are summed by operator
// name after the exchange joins its workers, then folded into the
// trace as per-operator report spans.
type opCounts struct {
	name    string
	rowsIn  int64
	rowsOut int64
	batches int64
}

func (c *opCounts) in(n int) {
	if c != nil {
		c.rowsIn += int64(n)
	}
}

func (c *opCounts) out(n int) {
	if c != nil {
		c.rowsOut += int64(n)
	}
}

func (c *opCounts) batch() {
	if c != nil {
		c.batches++
	}
}

func (c *opCounts) add(o *opCounts) {
	c.rowsIn += o.rowsIn
	c.rowsOut += o.rowsOut
	c.batches += o.batches
}

// rowReader adapts a batch iterator to demand-driven pulls for
// operators that consume at their own pace (chunked joins, merges).
// It owns one pooled batch and refills it on demand; the owning
// operator returns the batch to the pool by calling release from its
// Close.
type rowReader struct {
	it   Iterator
	b    *Batch
	pos  int
	done bool
}

func newRowReader(it Iterator, batchSize int) *rowReader {
	return &rowReader{it: it, b: getBatch(batchSize)}
}

// next returns the next row, or ok=false at end of stream.
func (r *rowReader) next() (Row, bool, error) {
	if r.done {
		return Row{}, false, nil
	}
	for r.pos >= len(r.b.Rows) {
		if err := r.it.Next(r.b); err != nil {
			r.done = true
			return Row{}, false, err
		}
		if len(r.b.Rows) == 0 {
			r.done = true
			return Row{}, false, nil
		}
		r.pos = 0
	}
	row := r.b.Rows[r.pos]
	r.pos++
	return row, true, nil
}

// span returns the reader's unconsumed rows, refilling from the child
// when none remain. A nil span signals end of stream. The slice
// aliases the reader's batch: consume a prefix, report it via advance,
// and do not retain the slice across another span or next call.
func (r *rowReader) span() ([]Row, error) {
	if r.done {
		return nil, nil
	}
	for r.pos >= len(r.b.Rows) {
		if err := r.it.Next(r.b); err != nil {
			r.done = true
			return nil, err
		}
		if len(r.b.Rows) == 0 {
			r.done = true
			return nil, nil
		}
		r.pos = 0
	}
	return r.b.Rows[r.pos:], nil
}

// advance marks the first n rows of the current span consumed.
func (r *rowReader) advance(n int) { r.pos += n }

// release returns the reader's batch to the pool and terminates the
// reader. Idempotent; call from the owning operator's Close.
func (r *rowReader) release() {
	if r.b != nil {
		putBatch(r.b)
		r.b = nil
	}
	r.done = true
}

// Row spill codec. Blocking operators that exceed their memory budget
// write sorted runs of encoded rows through storage.Spool. The layout
// is all-varint (the v1 format was 54 fixed bytes plus the key): a
// kind byte and a flags byte, the member and aux postings as
// {doc, start, extent, level, page, slot}, Ord as a signed varint,
// then the key as a uvarint length plus bytes. The posting extent
// (End-Start) is signed so that every Row value — including inverted
// intervals a fuzzer constructs — round-trips exactly. A row's byte
// length comes from the spool's slotted records, not a fixed width.
const rowFlagHasAux = 1 << 0

var errCorruptRow = errors.New("exec: corrupt spilled row")

func appendRowPosting(dst []byte, p storage.Posting) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Doc))
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Start))
	dst = binary.AppendVarint(dst, int64(p.Interval.End)-int64(p.Interval.Start))
	dst = binary.AppendUvarint(dst, uint64(p.Interval.Level))
	dst = binary.AppendUvarint(dst, uint64(p.RID.Page))
	dst = binary.AppendUvarint(dst, uint64(p.RID.Slot))
	return dst
}

// encodeRow appends the spill encoding of r to dst.
func encodeRow(dst []byte, r Row) []byte {
	dst = append(dst, byte(r.Kind))
	var flags byte
	if r.HasAux {
		flags |= rowFlagHasAux
	}
	dst = append(dst, flags)
	dst = appendRowPosting(dst, r.Member)
	dst = appendRowPosting(dst, r.Aux)
	dst = binary.AppendVarint(dst, r.Ord)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	return dst
}

// decodeRow parses a spilled row. It is a total function over byte
// strings: corrupt input yields an error, never a panic, and the whole
// input must be consumed. The key is copied, so the input may alias a
// pinned page.
func decodeRow(b []byte) (Row, error) {
	if len(b) < 2 {
		return Row{}, errCorruptRow
	}
	var r Row
	r.Kind = rowKind(b[0])
	r.HasAux = b[1]&rowFlagHasAux != 0
	off := 2
	bad := false
	uv := func() uint64 {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			bad = true
			return 0
		}
		off += n
		return v
	}
	sv := func() int64 {
		v, n := binary.Varint(b[off:])
		if n <= 0 {
			bad = true
			return 0
		}
		off += n
		return v
	}
	posting := func() (storage.Posting, bool) {
		doc, start := uv(), uv()
		extent := sv()
		level, page, slot := uv(), uv(), uv()
		var p storage.Posting
		if bad || doc > math.MaxUint32 || start > math.MaxUint32 ||
			level > math.MaxUint16 || page > math.MaxUint32 || slot > math.MaxUint16 {
			return p, false
		}
		end := int64(start) + extent
		if end < 0 || end > math.MaxUint32 {
			return p, false
		}
		p.Interval = xmltree.Interval{
			Doc:   xmltree.DocID(doc),
			Start: uint32(start),
			End:   uint32(end),
			Level: uint16(level),
		}
		p.RID = pagestore.RID{Page: pagestore.PageID(page), Slot: pagestore.Slot(slot)}
		return p, true
	}
	var ok bool
	if r.Member, ok = posting(); !ok {
		return Row{}, errCorruptRow
	}
	if r.Aux, ok = posting(); !ok {
		return Row{}, errCorruptRow
	}
	r.Ord = sv()
	klen := uv()
	if bad || klen > uint64(len(b)-off) {
		return Row{}, errCorruptRow
	}
	r.Key = string(b[off : off+int(klen)])
	off += int(klen)
	if off != len(b) {
		return Row{}, errCorruptRow
	}
	return r, nil
}
