package exec

import (
	"encoding/binary"
	"fmt"

	"timber/internal/pagestore"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// This file defines the streaming executor's data plane: fixed-size
// batches of identifier-only rows flowing through pull-based operator
// iterators (Sec. 5.3's "identifier-only processing with late value
// materialization", in Volcano form). A Row never carries node content
// except the populated grouping value — output values are fetched by
// the late-materialize sink, only for rows that survive to output.

// rowKind tags a row's role in the stream. Binding rows flow through
// the match pipeline; group and count rows appear only downstream of
// the stitching/aggregation operators, shaping the output.
type rowKind uint8

const (
	// rowBinding is a (member, aux) identifier pair: aux is the current
	// path position (a grouping-basis leaf, a value leaf, ...).
	rowBinding rowKind = iota
	// rowGroup opens a new output group; Key holds the grouping value.
	rowGroup
	// rowCount carries a group's aggregate; Ord holds the count.
	rowCount
)

// Row is one identifier-only tuple. Postings are node identifiers plus
// record locations — no content. Key is the populated grouping value
// (the one value Sec. 5.3 populates early); Ord is the row's global
// arrival order, the sort's final tie-breaker.
type Row struct {
	Kind   rowKind
	Member storage.Posting
	Aux    storage.Posting
	HasAux bool
	Key    string
	Ord    int64
}

// Batch is a reusable fixed-capacity slice of rows. Operators fill the
// caller's batch up to capacity; an empty batch after Next signals
// end-of-stream.
type Batch struct {
	Rows []Row
}

// defaultBatchSize is the rows-per-batch default; Options.BatchSize
// overrides it.
const defaultBatchSize = 256

func newBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = defaultBatchSize
	}
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

func (b *Batch) full() bool { return len(b.Rows) == cap(b.Rows) }

// Iterator is the physical-operator interface of the streaming
// executor: a pull-based Volcano iterator over ID batches. Open
// prepares the operator (opening its inputs first; Open is
// idempotent, so a driver may also open lower stages explicitly to
// attribute their work to a trace span). Next fills the caller's batch
// with up to cap(b.Rows) rows; an empty batch means the stream is
// exhausted. Close releases resources (cursors, spill regions) and is
// idempotent; it must be called on every opened iterator, including
// after errors.
type Iterator interface {
	Open() error
	Next(b *Batch) error
	Close() error
}

// opCounts is the per-operator observability record: rows in, rows
// out and batches produced. Fragment copies are summed by operator
// name after the exchange joins its workers, then folded into the
// trace as per-operator report spans.
type opCounts struct {
	name    string
	rowsIn  int64
	rowsOut int64
	batches int64
}

func (c *opCounts) in(n int) {
	if c != nil {
		c.rowsIn += int64(n)
	}
}

func (c *opCounts) out(n int) {
	if c != nil {
		c.rowsOut += int64(n)
	}
}

func (c *opCounts) batch() {
	if c != nil {
		c.batches++
	}
}

func (c *opCounts) add(o *opCounts) {
	c.rowsIn += o.rowsIn
	c.rowsOut += o.rowsOut
	c.batches += o.batches
}

// rowReader adapts a batch iterator to row-at-a-time pulls for
// operators whose logic is inherently per-row (chunked joins, merges).
// It owns one batch and refills it on demand.
type rowReader struct {
	it   Iterator
	b    *Batch
	pos  int
	done bool
}

func newRowReader(it Iterator, batchSize int) *rowReader {
	return &rowReader{it: it, b: newBatch(batchSize)}
}

// next returns the next row, or ok=false at end of stream.
func (r *rowReader) next() (Row, bool, error) {
	if r.done {
		return Row{}, false, nil
	}
	for r.pos >= len(r.b.Rows) {
		if err := r.it.Next(r.b); err != nil {
			r.done = true
			return Row{}, false, err
		}
		if len(r.b.Rows) == 0 {
			r.done = true
			return Row{}, false, nil
		}
		r.pos = 0
	}
	row := r.b.Rows[r.pos]
	r.pos++
	return row, true, nil
}

// Row spill codec. Blocking operators that exceed their memory budget
// write sorted runs of encoded rows through storage.Spool; the layout
// is fixed-width fields plus a length-prefixed key.
const rowFixedLen = 1 + 1 + postingLen + postingLen + 8 + 4

const postingLen = 4 + 4 + 4 + 2 + 4 + 2

func appendPosting(b []byte, p storage.Posting) []byte {
	var tmp [postingLen]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(p.Interval.Doc))
	binary.LittleEndian.PutUint32(tmp[4:], p.Interval.Start)
	binary.LittleEndian.PutUint32(tmp[8:], p.Interval.End)
	binary.LittleEndian.PutUint16(tmp[12:], p.Interval.Level)
	binary.LittleEndian.PutUint32(tmp[14:], uint32(p.RID.Page))
	binary.LittleEndian.PutUint16(tmp[18:], uint16(p.RID.Slot))
	return append(b, tmp[:]...)
}

func decodePostingAt(b []byte) storage.Posting {
	var p storage.Posting
	p.Interval.Doc = xmltree.DocID(binary.LittleEndian.Uint32(b[0:]))
	p.Interval.Start = binary.LittleEndian.Uint32(b[4:])
	p.Interval.End = binary.LittleEndian.Uint32(b[8:])
	p.Interval.Level = binary.LittleEndian.Uint16(b[12:])
	p.RID.Page = pagestore.PageID(binary.LittleEndian.Uint32(b[14:]))
	p.RID.Slot = pagestore.Slot(binary.LittleEndian.Uint16(b[18:]))
	return p
}

// encodeRow appends the spill encoding of r to dst.
func encodeRow(dst []byte, r Row) []byte {
	dst = append(dst, byte(r.Kind))
	var aux byte
	if r.HasAux {
		aux = 1
	}
	dst = append(dst, aux)
	dst = appendPosting(dst, r.Member)
	dst = appendPosting(dst, r.Aux)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Ord))
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Key)))
	dst = append(dst, tmp[:4]...)
	dst = append(dst, r.Key...)
	return dst
}

// decodeRow parses a spilled row. The key is copied, so the input may
// alias a pinned page.
func decodeRow(b []byte) (Row, error) {
	if len(b) < rowFixedLen {
		return Row{}, fmt.Errorf("exec: corrupt spilled row (%d bytes)", len(b))
	}
	var r Row
	r.Kind = rowKind(b[0])
	r.HasAux = b[1] == 1
	off := 2
	r.Member = decodePostingAt(b[off:])
	off += postingLen
	r.Aux = decodePostingAt(b[off:])
	off += postingLen
	r.Ord = int64(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	klen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) != rowFixedLen+klen {
		return Row{}, fmt.Errorf("exec: corrupt spilled row (%d bytes, key %d)", len(b), klen)
	}
	r.Key = string(b[off : off+klen])
	return r, nil
}
